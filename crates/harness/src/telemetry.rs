//! Metrics export and the host-time self-profile (DESIGN.md §17).
//!
//! Two export formats for the telemetry layer's deterministic state:
//!
//! * **JSON** (`repro metrics <scenario>`, `repro fleet … --metrics-out`):
//!   the complete tick-sampled counter time series plus per-tenant
//!   histogram summaries (count/sum/max/mean and p50/p90/p95/p99/p99.9 of
//!   completion latency, queue wait, retries, and migration outage) and
//!   the SLO error-budget / burn-rate tracks.
//! * **Prometheus text exposition** (the `.prom` sibling of every JSON
//!   export): the latest counter-registry values, timestamped series
//!   samples (timestamp = fleet cycle), and cumulative `le`-bucket
//!   histograms — loadable by any Prometheus-compatible scraper or
//!   `promtool`.
//!
//! Both renderers are pure functions of snapshotted state, so a
//! kill+resume run exports byte-identical documents; both are re-validated
//! by their own strict checkers ([`crate::perfetto::check_json`],
//! [`check_prometheus_text`]) before anything is written to disk.
//!
//! The third piece is the **host-time hotspot table** (`repro profile
//! <scenario>`): the [`HostProfiler`]'s wall-clock attribution per
//! simulator phase, rendered with each phase's share of total wall time.
//! Profiler state is host-only — never snapshotted, never part of any
//! determinism surface.

use std::fmt::Write as _;
use std::time::Instant;

use fleet::{scenarios, Fleet};
use gpu_sim::telemetry::{HostProfiler, LatencyHistogram};
use gpu_sim::{Gpu, GpuConfig, NullController, SharingMode};
use qos_core::{QosManager, QosSpec, QuotaScheme};

/// Schema tag embedded in every metrics JSON document (bump on shape
/// changes so downstream consumers can dispatch).
pub const METRICS_SCHEMA: &str = "fgqos-metrics-v1";

/// Scenarios `repro profile` can run on a single simulated GPU, mirroring
/// the bench suite's constructions (paper-scale config, 80 k cycles).
/// Fleet scenario names ([`fleet::scenarios::SCENARIOS`]) are also
/// accepted by [`profile_scenario`].
pub const PROFILE_SCENARIOS: [&str; 3] =
    ["smk_memory_pair", "managed_rollover_pair", "isolated_compute"];

/// Cycles each single-GPU profile scenario runs.
pub const PROFILE_CYCLES: u64 = 80_000;

// ---------------------------------------------------------------------
// JSON export
// ---------------------------------------------------------------------

fn hist_json(h: &LatencyHistogram) -> String {
    format!(
        "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {}, \"p50\": {}, \
         \"p90\": {}, \"p95\": {}, \"p99\": {}, \"p999\": {}}}",
        h.count(),
        h.sum(),
        h.max(),
        h.mean(),
        h.p50(),
        h.p90(),
        h.p95(),
        h.p99(),
        h.p999()
    )
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a finished fleet's metrics as JSON: the full counter time
/// series, per-tenant histogram summaries, and the SLO budget/burn tracks.
/// Pure function of snapshotted fleet state — resumed runs export
/// byte-identical documents.
#[must_use]
pub fn render_fleet_metrics_json(fleet: &Fleet, scenario: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{METRICS_SCHEMA}\",");
    let _ = writeln!(out, "  \"scenario\": \"{}\",", escape(scenario));
    let _ = writeln!(out, "  \"cycle\": {},", fleet.cycle());
    let _ = writeln!(out, "  \"ticks\": {},", fleet.ticks());
    let series = fleet.metrics_series();
    out.push_str("  \"series\": {\n");
    let _ = writeln!(out, "    \"evicted\": {},", series.evicted());
    let columns = series
        .columns()
        .iter()
        .map(|c| format!("\"{}\"", escape(c)))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(out, "    \"columns\": [{columns}],");
    out.push_str("    \"rows\": [\n");
    let rows = series.rows();
    for (i, row) in rows.iter().enumerate() {
        let values = row.values.iter().map(i64::to_string).collect::<Vec<_>>().join(", ");
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(out, "      {{\"stamp\": {}, \"values\": [{values}]}}{comma}", row.stamp);
    }
    out.push_str("    ]\n  },\n");
    out.push_str("  \"tenants\": [\n");
    let specs = &fleet.config().tenants;
    let counters = fleet.tenant_counters();
    for (t, (spec, c)) in specs.iter().zip(counters).enumerate() {
        let slo = match spec.class.slo() {
            Some(slo) => format!(
                "{{\"deadline_cycles\": {}, \"attainment_floor_ppm\": {}, \
                 \"error_budget_ppm\": {}, \"burn_rate_ppm\": {}}}",
                slo.deadline_cycles,
                slo.attainment_floor_ppm,
                slo.error_budget_ppm(),
                slo.burn_rate_ppm(c.slo_met, c.arrived)
            ),
            None => "null".to_string(),
        };
        let comma = if t + 1 == specs.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"guaranteed\": {},\n     \"latency\": {},\n     \
             \"queue_wait\": {},\n     \"retries\": {},\n     \"migration\": {},\n     \
             \"slo\": {slo}}}{comma}",
            escape(&spec.name),
            spec.class.is_guaranteed(),
            hist_json(&c.latency_hist),
            hist_json(&c.queue_wait_hist),
            hist_json(&c.retry_hist),
            hist_json(&c.migration_hist),
        );
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------

/// Escapes a Prometheus label value (`\`, `"`, and newlines).
fn prom_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn prom_histogram(
    out: &mut String,
    metric: &str,
    help: &str,
    scenario: &str,
    tenant: &str,
    h: &LatencyHistogram,
) {
    let _ = writeln!(out, "# HELP {metric} {help}");
    let _ = writeln!(out, "# TYPE {metric} histogram");
    let labels = format!("scenario=\"{}\",tenant=\"{}\"", prom_label(scenario), prom_label(tenant));
    let mut cumulative = 0u64;
    for (upper, count) in h.buckets() {
        cumulative += count;
        let _ = writeln!(out, "{metric}_bucket{{{labels},le=\"{upper}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{metric}_bucket{{{labels},le=\"+Inf\"}} {}", h.count());
    let _ = writeln!(out, "{metric}_sum{{{labels}}} {}", h.sum());
    let _ = writeln!(out, "{metric}_count{{{labels}}} {}", h.count());
}

/// Renders a finished fleet's metrics in the Prometheus text exposition
/// format: the latest counter-registry values (`fgqos_counter`), the full
/// tick-sampled time series as timestamped samples (`fgqos_series`,
/// timestamp = fleet cycle), and one cumulative-bucket histogram family
/// per tenant distribution. Deterministic: a resumed run exports the same
/// bytes as an uninterrupted one.
#[must_use]
pub fn render_fleet_metrics_prom(fleet: &Fleet, scenario: &str) -> String {
    let mut out = String::new();
    let scen = prom_label(scenario);
    out.push_str("# HELP fgqos_counter Latest fleet counter-registry value.\n");
    out.push_str("# TYPE fgqos_counter untyped\n");
    for e in fleet.counter_registry() {
        let _ = writeln!(
            out,
            "fgqos_counter{{scenario=\"{scen}\",scope=\"{}\",name=\"{}\"}} {}",
            prom_label(&e.scope.to_string()),
            prom_label(e.name),
            e.value
        );
    }
    out.push_str(
        "# HELP fgqos_series Tick-sampled counter time series (timestamp = fleet cycle).\n",
    );
    out.push_str("# TYPE fgqos_series untyped\n");
    let series = fleet.metrics_series();
    for row in series.rows() {
        for (column, value) in series.columns().iter().zip(&row.values) {
            let _ = writeln!(
                out,
                "fgqos_series{{scenario=\"{scen}\",column=\"{}\"}} {value} {}",
                prom_label(column),
                row.stamp
            );
        }
    }
    for (spec, c) in fleet.config().tenants.iter().zip(fleet.tenant_counters()) {
        prom_histogram(
            &mut out,
            "fgqos_tenant_latency_cycles",
            "End-to-end completion latency, in fleet cycles.",
            scenario,
            &spec.name,
            &c.latency_hist,
        );
        prom_histogram(
            &mut out,
            "fgqos_tenant_queue_wait_cycles",
            "Arrival-to-first-placement queue wait, in fleet cycles.",
            scenario,
            &spec.name,
            &c.queue_wait_hist,
        );
        prom_histogram(
            &mut out,
            "fgqos_tenant_retries",
            "Retries consumed per completed request.",
            scenario,
            &spec.name,
            &c.retry_hist,
        );
        prom_histogram(
            &mut out,
            "fgqos_tenant_migration_cycles",
            "Live-migration outage (enqueue to restore), in fleet cycles.",
            scenario,
            &spec.name,
            &c.migration_hist,
        );
    }
    out
}

/// Validates a Prometheus text-exposition document: every line is a
/// comment (`# …`), blank, or a sample of the form
/// `name{label="value",…} value [timestamp]` with a legal metric name,
/// balanced and properly quoted labels, and a parseable value. Returns
/// the number of samples.
///
/// # Errors
///
/// A human-readable description of the first violation.
pub fn check_prometheus_text(doc: &str) -> Result<usize, String> {
    fn is_name_start(c: char) -> bool {
        c.is_ascii_alphabetic() || c == '_' || c == ':'
    }
    fn is_name_char(c: char) -> bool {
        is_name_start(c) || c.is_ascii_digit()
    }
    let mut samples = 0usize;
    for (i, line) in doc.lines().enumerate() {
        let fail = |what: &str| format!("line {}: {what}: {line:?}", i + 1);
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut chars = line.char_indices().peekable();
        let Some((_, first)) = chars.next() else { unreachable!("non-empty") };
        if !is_name_start(first) {
            return Err(fail("metric name must start with [a-zA-Z_:]"));
        }
        let mut rest_at = line.len();
        for (at, c) in chars.by_ref() {
            if !is_name_char(c) {
                rest_at = at;
                break;
            }
        }
        let mut rest = &line[rest_at..];
        if let Some(after) = rest.strip_prefix('{') {
            // label pairs: key="value",… — scan respecting escapes.
            let mut r = after;
            loop {
                let key_end = r.find('=').ok_or_else(|| fail("label without '='"))?;
                let key = &r[..key_end];
                if key.is_empty() || !key.chars().all(is_name_char) {
                    return Err(fail("bad label name"));
                }
                r = r[key_end + 1..]
                    .strip_prefix('"')
                    .ok_or_else(|| fail("label value must be quoted"))?;
                let mut end = None;
                let mut esc = false;
                for (at, c) in r.char_indices() {
                    if esc {
                        esc = false;
                    } else if c == '\\' {
                        esc = true;
                    } else if c == '"' {
                        end = Some(at);
                        break;
                    }
                }
                let end = end.ok_or_else(|| fail("unterminated label value"))?;
                r = &r[end + 1..];
                if let Some(next) = r.strip_prefix(',') {
                    r = next;
                } else if let Some(next) = r.strip_prefix('}') {
                    rest = next;
                    break;
                } else {
                    return Err(fail("expected ',' or '}' after label"));
                }
            }
        }
        let mut fields = rest.split_whitespace();
        let value = fields.next().ok_or_else(|| fail("sample without a value"))?;
        if value.parse::<f64>().is_err() && !matches!(value, "+Inf" | "-Inf" | "NaN") {
            return Err(fail("unparseable sample value"));
        }
        if let Some(ts) = fields.next() {
            if ts.parse::<i64>().is_err() {
                return Err(fail("unparseable timestamp"));
            }
        }
        if fields.next().is_some() {
            return Err(fail("trailing fields after timestamp"));
        }
        samples += 1;
    }
    Ok(samples)
}

// ---------------------------------------------------------------------
// Scenario runners
// ---------------------------------------------------------------------

/// Renders a finished fleet's metrics in both formats, self-checking each
/// document before returning `(json, prometheus)`.
///
/// # Errors
///
/// An internal-error description if either document fails its own
/// validator (a bug in the renderer, not the caller).
pub fn fleet_metrics_docs(fleet: &Fleet, scenario: &str) -> Result<(String, String), String> {
    let json = render_fleet_metrics_json(fleet, scenario);
    crate::perfetto::check_json(&json)
        .map_err(|e| format!("internal error: metrics JSON fails its own check: {e}"))?;
    let prom = render_fleet_metrics_prom(fleet, scenario);
    check_prometheus_text(&prom)
        .map_err(|e| format!("internal error: metrics exposition fails its own check: {e}"))?;
    Ok((json, prom))
}

/// Runs fleet scenario `name` to completion and exports its metrics as
/// `(json, prometheus)` — the engine of `repro metrics`.
///
/// # Errors
///
/// Unknown scenario names, or a renderer failing its own self-check.
pub fn run_fleet_metrics(name: &str, seed: u64) -> Result<(String, String), String> {
    let cfg = scenarios::by_name(name, seed).ok_or_else(|| {
        format!("unknown fleet scenario {name:?} (known: {})", scenarios::SCENARIOS.join(", "))
    })?;
    let mut fleet = Fleet::new(cfg);
    fleet.run_to_completion();
    fleet_metrics_docs(&fleet, name)
}

/// Renders the host-time hotspot table: one row per phase with attributed
/// wall time, call count, and share of total wall time, sorted by time;
/// the footer reports how much of the wall the named phases cover.
#[must_use]
pub fn render_hotspot_table(title: &str, prof: &HostProfiler, wall_nanos: u64) -> String {
    let mut out = String::new();
    let wall_ms = wall_nanos as f64 / 1e6;
    let _ = writeln!(out, "host-time profile: {title} (wall {wall_ms:.1} ms)");
    let _ = writeln!(out, "  {:<20} {:>10} {:>12} {:>7}", "phase", "ms", "calls", "share");
    let mut rows = prof.rows();
    rows.sort_by_key(|&(_, t)| std::cmp::Reverse(t.nanos));
    for (phase, t) in rows {
        let share = if wall_nanos == 0 { 0.0 } else { 100.0 * t.nanos as f64 / wall_nanos as f64 };
        let _ = writeln!(
            out,
            "  {:<20} {:>10.3} {:>12} {:>6.1}%",
            phase.name(),
            t.nanos as f64 / 1e6,
            t.calls,
            share
        );
    }
    let attributed = if wall_nanos == 0 {
        0.0
    } else {
        100.0 * prof.attributed_nanos() as f64 / wall_nanos as f64
    };
    let _ = writeln!(out, "  attributed {attributed:.1}% of wall time to named phases");
    out
}

/// Builds one single-GPU profile scenario (paper-scale config,
/// fast-forward on) and returns the machine ready to run — mirrors the
/// bench suite's constructions so profile numbers line up with bench
/// numbers.
fn profile_gpu(name: &str) -> Option<(Gpu, Option<QosManager>)> {
    let mut cfg = GpuConfig::paper_table1();
    cfg.fast_forward = true;
    match name {
        "smk_memory_pair" => {
            let mut gpu = Gpu::new(cfg);
            let a = gpu.launch(workloads::by_name("lbm").expect("known"));
            let b = gpu.launch(workloads::by_name("spmv").expect("known"));
            gpu.set_sharing_mode(SharingMode::Smk);
            for sm in gpu.sm_ids().collect::<Vec<_>>() {
                gpu.set_tb_target(sm, a, 5);
                gpu.set_tb_target(sm, b, 5);
            }
            Some((gpu, None))
        }
        "managed_rollover_pair" => {
            let mut gpu = Gpu::new(cfg);
            let q = gpu.launch(workloads::by_name("mri-q").expect("known"));
            let be = gpu.launch(workloads::by_name("lbm").expect("known"));
            let mgr = QosManager::new(QuotaScheme::Rollover)
                .with_kernel(q, QosSpec::qos(600.0))
                .with_kernel(be, QosSpec::best_effort());
            Some((gpu, Some(mgr)))
        }
        "isolated_compute" => {
            let mut gpu = Gpu::new(cfg);
            gpu.launch(workloads::by_name("sgemm").expect("known"));
            Some((gpu, None))
        }
        _ => None,
    }
}

/// Runs `name` with the host profiler armed and renders its hotspot
/// table — the engine of `repro profile`. Accepts the single-GPU
/// [`PROFILE_SCENARIOS`] (phase breakdown of one simulated device) and
/// every fleet scenario (fleet-tick vs. device-step attribution).
///
/// # Errors
///
/// Unknown scenario names.
pub fn profile_scenario(name: &str) -> Result<String, String> {
    if let Some((mut gpu, mgr)) = profile_gpu(name) {
        gpu.set_profiling(true);
        let started = Instant::now();
        match mgr {
            Some(mut mgr) => gpu.run(PROFILE_CYCLES, &mut mgr),
            None => gpu.run(PROFILE_CYCLES, &mut NullController),
        }
        let wall = started.elapsed().as_nanos() as u64;
        return Ok(render_hotspot_table(name, gpu.profiler(), wall));
    }
    if let Some(cfg) = scenarios::by_name(name, scenarios::DEFAULT_SEED) {
        let mut fleet = Fleet::new(cfg);
        fleet.set_profiling(true);
        let started = Instant::now();
        fleet.run_to_completion();
        let wall = started.elapsed().as_nanos() as u64;
        return Ok(render_hotspot_table(name, fleet.profiler(), wall));
    }
    Err(format!(
        "unknown profile scenario {name:?} (known: {} and fleet scenarios {})",
        PROFILE_SCENARIOS.join(" "),
        scenarios::SCENARIOS.join(" ")
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finished_fleet() -> Fleet {
        let mut f = Fleet::new(scenarios::steady(3));
        f.run_to_completion();
        f
    }

    #[test]
    fn metrics_json_is_valid_and_carries_percentiles() {
        let f = finished_fleet();
        let (json, prom) = fleet_metrics_docs(&f, "steady").expect("self-checks pass");
        assert!(json.contains("\"schema\": \"fgqos-metrics-v1\""));
        assert!(json.contains("\"p999\""), "percentile fields present");
        assert!(json.contains("\"burn_rate_ppm\""), "SLO burn track present");
        assert!(json.contains("\"columns\""), "series columns present");
        assert!(json.contains("tenant[0]/latency_p99"), "registry percentile gauges sampled");
        assert!(prom.contains("fgqos_tenant_latency_cycles_bucket"), "le buckets present");
        assert!(prom.contains("le=\"+Inf\""), "terminal bucket present");
        assert!(prom.contains("slo_burn_ppm"), "burn gauge exported");
    }

    #[test]
    fn metrics_exports_are_deterministic() {
        let a = run_fleet_metrics("steady", 7).expect("run");
        let b = run_fleet_metrics("steady", 7).expect("run");
        assert_eq!(a.0, b.0, "JSON export must be byte-identical");
        assert_eq!(a.1, b.1, "Prometheus export must be byte-identical");
    }

    #[test]
    fn prometheus_checker_accepts_and_rejects() {
        let ok = "# HELP x help\n# TYPE x untyped\nx{a=\"b\\\"c\",d=\"e\"} 1.5 123\nx 2\n";
        assert_eq!(check_prometheus_text(ok), Ok(2));
        for bad in [
            "1bad 2",
            "x{a=b} 1",
            "x{a=\"b} 1",
            "x{a=\"b\"} nope",
            "x{a=\"b\"} 1 notime",
            "x 1 2 3",
            "x",
        ] {
            assert!(check_prometheus_text(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unknown_metrics_scenario_is_an_error() {
        assert!(run_fleet_metrics("nope", 1).is_err());
    }

    #[test]
    fn hotspot_table_attributes_fleet_phases() {
        let out = profile_scenario("steady").expect("fleet scenario profiles");
        assert!(out.contains("fleet_tick"), "{out}");
        assert!(out.contains("device_step"), "{out}");
        assert!(out.contains("attributed"), "{out}");
    }

    #[test]
    fn unknown_profile_scenario_is_an_error() {
        assert!(profile_scenario("nope").is_err());
    }
}
