//! Aggregated simulation statistics.

use crate::types::{per_kernel, Cycle, KernelId, PerKernel};

/// Cumulative statistics for one kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelStats {
    /// Thread-level instructions retired (the unit of quotas and IPC).
    pub thread_insts: u64,
    /// Warp-level instructions retired.
    pub warp_insts: u64,
    /// Thread blocks completed.
    pub tbs_completed: u64,
    /// Full grid executions completed (kernels re-execute when they finish
    /// before the simulation ends, as in the paper's methodology).
    pub launches_completed: u64,
}

impl KernelStats {
    /// Thread-level IPC over `cycles`.
    pub fn ipc(&self, cycles: Cycle) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.thread_insts as f64 / cycles as f64
        }
    }
}

/// Whole-GPU statistics snapshot.
#[derive(Debug, Clone)]
pub struct GpuStats {
    /// Simulated cycles so far.
    pub cycles: Cycle,
    /// Number of launched kernels.
    pub num_kernels: usize,
    kernels: PerKernel<KernelStats>,
}

impl GpuStats {
    pub(crate) fn new(cycles: Cycle, num_kernels: usize, kernels: PerKernel<KernelStats>) -> Self {
        GpuStats { cycles, num_kernels, kernels }
    }

    /// Statistics for kernel `k`.
    pub fn kernel(&self, k: KernelId) -> &KernelStats {
        &self.kernels[k.index()]
    }

    /// Thread-level IPC of kernel `k`.
    pub fn ipc(&self, k: KernelId) -> f64 {
        self.kernels[k.index()].ipc(self.cycles)
    }

    /// Total thread instructions across all kernels.
    pub fn total_thread_insts(&self) -> u64 {
        self.kernels[..self.num_kernels].iter().map(|k| k.thread_insts).sum()
    }

    /// Aggregate thread-level IPC.
    pub fn total_ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_thread_insts() as f64 / self.cycles as f64
        }
    }
}

/// Per-epoch snapshot handed to the [`crate::Controller`].
#[derive(Debug, Clone)]
pub struct EpochSnapshot {
    /// Epoch index (0 = the call before the first executed cycle).
    pub epoch: u64,
    /// Cycles covered by this epoch (0 for the initial call).
    pub cycles: Cycle,
    /// Thread instructions each kernel retired during the epoch.
    pub thread_insts: PerKernel<u64>,
}

impl EpochSnapshot {
    pub(crate) fn empty() -> Self {
        EpochSnapshot { epoch: 0, cycles: 0, thread_insts: per_kernel(|_| 0) }
    }

    /// Thread-level IPC of kernel `k` within the epoch.
    pub fn ipc(&self, k: KernelId) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.thread_insts[k.index()] as f64 / self.cycles as f64
        }
    }
}

crate::impl_snap_struct!(KernelStats {
    thread_insts,
    warp_insts,
    tbs_completed,
    launches_completed,
});

crate::impl_snap_struct!(EpochSnapshot { epoch, cycles, thread_insts });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_math() {
        let ks = KernelStats { thread_insts: 1000, ..Default::default() };
        assert!((ks.ipc(500) - 2.0).abs() < 1e-12);
        assert_eq!(ks.ipc(0), 0.0);
    }

    #[test]
    fn totals_only_cover_launched_kernels() {
        let mut kernels: PerKernel<KernelStats> = per_kernel(|_| KernelStats::default());
        kernels[0].thread_insts = 10;
        kernels[1].thread_insts = 20;
        kernels[2].thread_insts = 999; // not launched; must be ignored
        let s = GpuStats::new(10, 2, kernels);
        assert_eq!(s.total_thread_insts(), 30);
        assert!((s.total_ipc() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn epoch_snapshot_ipc() {
        let mut snap = EpochSnapshot::empty();
        assert_eq!(snap.ipc(KernelId::new(0)), 0.0);
        snap.cycles = 100;
        snap.thread_insts[0] = 250;
        assert!((snap.ipc(KernelId::new(0)) - 2.5).abs() < 1e-12);
    }
}
