//! Prints the isolated thread-level IPC of every Parboil-like kernel model
//! on the paper's Table 1 configuration — the `IPC_isolated` values every
//! QoS goal in the evaluation is expressed against.
//!
//! Run with: `cargo run --release -p workloads --example isolated_ipc`

use std::time::Instant;

use gpu_sim::{Gpu, GpuConfig, NullController};

fn main() {
    let cycles: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(100_000);
    println!("isolated IPC over {cycles} cycles (Table 1 config, 16 SMs)\n");
    println!(
        "{:<10} {:>8} {:>8} {:>10} {:>8} {:>9}",
        "kernel", "class", "IPC", "tbs done", "L1 hit", "wall ms"
    );
    for desc in workloads::all() {
        let name = desc.name().to_string();
        let class = if desc.memory_intensive() { "M" } else { "C" };
        let mut gpu = Gpu::new(GpuConfig::paper_table1());
        let k = gpu.launch(desc);
        let t0 = Instant::now();
        gpu.run(cycles, &mut NullController);
        let wall = t0.elapsed().as_millis();
        let stats = gpu.stats();
        let l1 = gpu
            .sms()
            .iter()
            .map(|s| s.l1_stats())
            .fold((0u64, 0u64), |acc, s| (acc.0 + s.hits, acc.1 + s.accesses()));
        let l1_rate = if l1.1 == 0 { 0.0 } else { l1.0 as f64 / l1.1 as f64 };
        println!(
            "{:<10} {:>8} {:>8.1} {:>10} {:>7.1}% {:>9}",
            name,
            class,
            stats.ipc(k),
            stats.kernel(k).tbs_completed,
            l1_rate * 100.0,
            wall
        );
    }
}
