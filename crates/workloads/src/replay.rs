//! Trace-driven kernels: FGTR traces as drop-in [`KernelDesc`] sources.
//!
//! The replayer turns a [`trace::KernelTrace`] back into the exact
//! [`KernelDesc`] it was captured from, so a traced kernel slots into every
//! existing consumer of the synthetic models unchanged — golden scenarios,
//! experiment sweeps, fleet tenants. A [`TraceLibrary`] mirrors the
//! [`crate::parboil`] API (`names` / `by_name` / `all`-style lookups) over
//! a directory of `.fgtr` files, e.g. the committed corpus under
//! `tests/golden/validate/`.

use std::path::{Path, PathBuf};

use gpu_sim::KernelDesc;
use trace::{KernelTrace, TraceError};

/// Rebuilds the traced kernel (the identity `capture ∘ replay = id`,
/// asserted bit-for-bit by `tests/trace_replay.rs`).
#[must_use]
pub fn kernel(kt: &KernelTrace) -> KernelDesc {
    kt.kernel()
}

/// Loads one `.fgtr` file and rebuilds its kernel in a single step.
///
/// # Errors
///
/// Propagates the strict reader's [`TraceError`].
pub fn load_kernel(path: &Path) -> Result<KernelDesc, TraceError> {
    Ok(trace::load(path)?.kernel())
}

/// A directory of FGTR traces, loaded eagerly and indexed by kernel name —
/// the trace-driven counterpart of [`crate::parboil`].
#[derive(Debug, Clone)]
pub struct TraceLibrary {
    /// Traces sorted by kernel name.
    traces: Vec<KernelTrace>,
}

impl TraceLibrary {
    /// Loads every `*.fgtr` file under `dir` (sorted by file name, so the
    /// library order is stable across platforms).
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] if the directory is unreadable, otherwise the
    /// first file that fails the strict reader.
    pub fn load_dir(dir: &Path) -> Result<Self, TraceError> {
        let entries = std::fs::read_dir(dir)
            .map_err(|e| TraceError::Io(format!("cannot read {}: {e}", dir.display())))?;
        let mut paths: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "fgtr"))
            .collect();
        paths.sort();
        let mut traces = Vec::with_capacity(paths.len());
        for path in &paths {
            traces.push(trace::load(path)?);
        }
        traces.sort_by(|a, b| a.meta.name.cmp(&b.meta.name));
        Ok(TraceLibrary { traces })
    }

    /// Builds a library from already-loaded traces (sorted by name).
    #[must_use]
    pub fn from_traces(mut traces: Vec<KernelTrace>) -> Self {
        traces.sort_by(|a, b| a.meta.name.cmp(&b.meta.name));
        TraceLibrary { traces }
    }

    /// Kernel names in library order.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.traces.iter().map(|t| t.meta.name.as_str()).collect()
    }

    /// The loaded traces, sorted by kernel name.
    #[must_use]
    pub fn traces(&self) -> &[KernelTrace] {
        &self.traces
    }

    /// Number of traces in the library.
    #[must_use]
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether the library holds no traces.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Rebuilds the named kernel, mirroring [`crate::by_name`].
    #[must_use]
    pub fn by_name(&self, name: &str) -> Option<KernelDesc> {
        self.traces.iter().find(|t| t.meta.name == name).map(KernelTrace::kernel)
    }

    /// Rebuilds every kernel, mirroring [`crate::all`].
    #[must_use]
    pub fn all(&self) -> Vec<KernelDesc> {
        self.traces.iter().map(KernelTrace::kernel).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fgtr-replay-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn library_round_trips_captured_parboil_kernels() {
        let dir = temp_dir("lib");
        let names = ["sgemm", "lbm"];
        for name in names {
            let desc = crate::by_name(name).expect("known");
            let kt = trace::capture(&desc, &GpuConfig::tiny(), trace::DEFAULT_CAPTURE_CYCLES)
                .expect("capture");
            trace::save_atomic(&dir.join(format!("{name}.fgtr")), &kt).expect("save");
        }
        let lib = TraceLibrary::load_dir(&dir).expect("load");
        assert_eq!(lib.names(), vec!["lbm", "sgemm"], "sorted by kernel name");
        assert_eq!(lib.len(), 2);
        assert!(!lib.is_empty());
        for name in names {
            let replayed = lib.by_name(name).expect("present");
            assert_eq!(replayed, crate::by_name(name).expect("known"), "replay is exact");
        }
        assert!(lib.by_name("nope").is_none());
        assert_eq!(lib.all().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_dir_propagates_strict_reader_errors() {
        let dir = temp_dir("bad");
        std::fs::write(dir.join("junk.fgtr"), b"not a trace at all").expect("write");
        assert!(TraceLibrary::load_dir(&dir).is_err());
        assert!(matches!(TraceLibrary::load_dir(&dir.join("missing")), Err(TraceError::Io(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
