//! One Criterion benchmark per paper table/figure.
//!
//! Each bench runs the corresponding `harness::experiments` regenerator at
//! `RunScale::Bench` (tiny cycle budget, subsampled cases) so `cargo bench`
//! finishes in minutes; the printed report has the same rows/series as the
//! paper's table or figure. For faithful numbers run
//! `repro --scale quick all` (or `--scale paper`).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use harness::experiments::Session;
use harness::RunScale;

fn bench_experiment(c: &mut Criterion, name: &str, run: impl Fn(&Session) -> String) {
    // One fresh session per iteration: memoization inside a session would
    // otherwise make every iteration after the first free.
    let mut printed = false;
    c.bench_function(name, |b| {
        b.iter(|| {
            let session = Session::new(RunScale::Bench);
            let report = run(&session);
            if !printed {
                println!("\n{report}");
                printed = true;
            }
            report.len()
        })
    });
}

fn figures(c: &mut Criterion) {
    bench_experiment(c, "table1", |s| s.table1());
    bench_experiment(c, "table2", |s| s.table2());
    bench_experiment(c, "fig5_miss_distances", |s| s.fig5());
    bench_experiment(c, "fig6a_qos_reach_pairs", |s| s.fig6a());
    bench_experiment(c, "fig6b_qos_reach_trios_1qos", |s| s.fig6b());
    bench_experiment(c, "fig6c_qos_reach_trios_2qos", |s| s.fig6c());
    bench_experiment(c, "fig7_per_kernel_reach", |s| s.fig7());
    bench_experiment(c, "fig8a_nonqos_throughput_pairs", |s| s.fig8a());
    bench_experiment(c, "fig8b_nonqos_throughput_trios_1qos", |s| s.fig8bc(1));
    bench_experiment(c, "fig8c_nonqos_throughput_trios_2qos", |s| s.fig8bc(2));
    bench_experiment(c, "fig9_qos_overshoot", |s| s.fig9());
    bench_experiment(c, "fig10_rollover_vs_time_reach", |s| s.fig10());
    bench_experiment(c, "fig11_rollover_vs_time_throughput", |s| s.fig11());
    bench_experiment(c, "fig12_56sm_reach", |s| s.fig12());
    bench_experiment(c, "fig13_56sm_throughput", |s| s.fig13());
    bench_experiment(c, "fig14_energy_efficiency", |s| s.fig14());
    bench_experiment(c, "ablation_preemption", |s| s.ablation_preemption());
    bench_experiment(c, "ablation_history", |s| s.ablation_history());
    bench_experiment(c, "ablation_static_alloc", |s| s.ablation_static());
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    targets = figures
}
criterion_main!(benches);
