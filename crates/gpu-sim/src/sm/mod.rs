//! A streaming multiprocessor: one self-contained execution domain.
//!
//! The SM executes resident thread blocks' warps under a warp-scheduling
//! policy, gated by the per-kernel *quota counters* that implement the
//! paper's Enhanced Warp Scheduler (EWS): a kernel whose counter is
//! exhausted is simply skipped by the (otherwise unmodified) scheduler.
//! Mid-epoch refill rules (non-QoS top-up, elastic epoch restart) are
//! evaluated lazily when a blocked warp is encountered, so the per-cycle
//! issue loop stays branch-light.
//!
//! Every field of [`Sm`] is private, domain-local state: warp and TB slots,
//! the private L1, quota counters, statistics, and the flight-recorder ring.
//! The one piece of shared machine state an SM used to reach into — the
//! L2/DRAM hierarchy — is now behind the typed [`crate::icn::IcnPort`]
//! boundary: [`Sm::tick`] takes no `MemSystem` and instead enqueues requests
//! that the machine drains at the end-of-cycle barrier in stable SM-index
//! order (DESIGN.md §13). That isolation is what lets `intra_parallel`
//! stepping run SM domains on concurrent threads with bit-identical results.
//!
//! Module map:
//!
//! | module    | owns                                                        |
//! |-----------|-------------------------------------------------------------|
//! | `mod.rs`  | the [`Sm`] struct, construction, snapshot codec              |
//! | `slots`   | occupancy: TB dispatch, preemption, completion, audits       |
//! | `quota`   | the EWS quota gate: carry rules, refills, fault freezes      |
//! | `issue`   | the front end: schedulers, issue, `IcnPort` traffic, horizons|
//! | `observe` | sampling, counters, and every read-only stats accessor       |

mod issue;
mod observe;
mod quota;
mod slots;
#[cfg(test)]
mod tests;

pub use quota::QuotaCarry;

use std::sync::Arc;

use crate::cache::Cache;
use crate::config::GpuConfig;
use crate::icn::IcnPort;
use crate::kernel::KernelDesc;
use crate::observe::{EventRing, TraceEvent, TraceEventKind};
use crate::preempt::{PreemptStats, SavedTb};
use crate::tb::TbState;
use crate::telemetry::LatencyHistogram;
use crate::types::{per_kernel, Cycle, KernelId, PerKernel, SmId, TbIndex};
use crate::warp::WarpState;
use crate::warp_sched::{Candidate, SchedPolicy, SchedulerState};

/// Per-kernel issue counters of one SM for one epoch.
#[derive(Debug, Clone, Copy, Default)]
pub struct SmKernelCounters {
    /// Thread-level instructions issued (what quotas count).
    pub thread_insts: u64,
    /// Warp-level instructions issued.
    pub warp_insts: u64,
}

/// A streaming multiprocessor.
#[derive(Debug)]
pub struct Sm {
    id: SmId,
    policy: SchedPolicy,
    num_scheds: u16,
    max_warps: u16,
    max_tbs: u16,
    max_threads: u32,
    regfile_bytes: u64,
    smem_bytes: u64,

    l1: Cache,
    descs: PerKernel<Option<Arc<KernelDesc>>>,

    // Domain-local copies of machine config consulted on the issue path;
    // the SM must not reach across the interconnect boundary to read them.
    l1_hit_latency: u32,
    line_bytes: u32,

    used_threads: u32,
    used_regs: u64,
    used_smem: u64,

    warps: Vec<Option<WarpState>>,
    tbs: Vec<Option<TbState>>,
    free_warps: Vec<u16>,
    free_tbs: Vec<u16>,
    scheds: Vec<SchedulerState>,
    next_age: u64,
    transitioning: Vec<u16>,

    // --- interconnect boundary (DESIGN.md §13) ---
    // Requests filled by `issue`, drained by the machine at the end-of-cycle
    // barrier; empty outside the step→drain window of a single cycle.
    icn: IcnPort,

    // --- quota state (EWS) ---
    quota: PerKernel<i64>,
    gated: PerKernel<bool>,
    refill: PerKernel<i64>,
    is_qos: PerKernel<bool>,
    elastic: bool,
    priority_block: bool,

    // --- quota double-entry ledger (audit mode) ---
    // Every change to `quota` flows through exactly two channels: credits
    // (epoch grants, mid-epoch refills) and debits (issued lanes while
    // gated). `quota[k] == quota_credit[k] - quota_debit[k]` is then a
    // conservation law any stray mutation breaks.
    quota_credit: PerKernel<i64>,
    quota_debit: PerKernel<i64>,

    // --- injected faults ---
    quota_frozen: bool,
    sched_frozen: bool,
    preempt_stalled: bool,

    // --- statistics ---
    hosted: PerKernel<u16>,
    counters: PerKernel<SmKernelCounters>,
    alu_thread_insts: PerKernel<u64>,
    sfu_thread_insts: PerKernel<u64>,
    smem_accesses: PerKernel<u64>,
    busy_cycles: u64,
    issue_slots: u64,
    issued_total: u64,
    idle_warp_acc: PerKernel<u64>,
    idle_samples: u64,
    preempt_stats: PreemptStats,
    // Per-kernel preemption-save latency (context-save cost per save),
    // log-bucketed; snapshotted like every other statistic (DESIGN.md §17).
    preempt_save_hist: PerKernel<LatencyHistogram>,

    // --- observability (counter registry + flight recorder, DESIGN.md §12) ---
    trace_on: bool,
    events: EventRing,
    quota_blocked: PerKernel<u64>,
    quota_exhaustions: PerKernel<u64>,
    scoreboard_waits: PerKernel<u64>,

    // --- outboxes drained by the TB scheduler ---
    completed: Vec<(KernelId, TbIndex)>,
    saved: Vec<(KernelId, SavedTb)>,

    ready_buf: Vec<Candidate>,
}

impl Sm {
    /// Builds an SM from the GPU configuration.
    pub fn new(id: SmId, cfg: &GpuConfig) -> Self {
        let max_warps = cfg.sm.max_warps() as u16;
        let max_tbs = cfg.sm.max_tbs as u16;
        Sm {
            id,
            policy: cfg.sm.sched_policy,
            num_scheds: cfg.sm.warp_schedulers as u16,
            max_warps,
            max_tbs,
            max_threads: cfg.sm.max_threads,
            regfile_bytes: cfg.sm.register_file_bytes,
            smem_bytes: cfg.sm.shared_mem_bytes,
            l1: Cache::new(cfg.mem.l1_bytes, cfg.mem.l1_ways, cfg.mem.line_bytes),
            descs: per_kernel(|_| None),
            l1_hit_latency: cfg.mem.l1_hit_latency,
            line_bytes: cfg.mem.line_bytes,
            used_threads: 0,
            used_regs: 0,
            used_smem: 0,
            warps: (0..max_warps).map(|_| None).collect(),
            tbs: (0..max_tbs).map(|_| None).collect(),
            free_warps: (0..max_warps).rev().collect(),
            free_tbs: (0..max_tbs).rev().collect(),
            scheds: vec![SchedulerState::default(); cfg.sm.warp_schedulers as usize],
            next_age: 0,
            transitioning: Vec::new(),
            icn: IcnPort::default(),
            quota: per_kernel(|_| 0),
            gated: per_kernel(|_| false),
            refill: per_kernel(|_| 0),
            is_qos: per_kernel(|_| false),
            elastic: false,
            priority_block: false,
            quota_credit: per_kernel(|_| 0),
            quota_debit: per_kernel(|_| 0),
            quota_frozen: false,
            sched_frozen: false,
            preempt_stalled: false,
            hosted: per_kernel(|_| 0),
            counters: per_kernel(|_| SmKernelCounters::default()),
            alu_thread_insts: per_kernel(|_| 0),
            sfu_thread_insts: per_kernel(|_| 0),
            smem_accesses: per_kernel(|_| 0),
            busy_cycles: 0,
            issue_slots: 0,
            issued_total: 0,
            idle_warp_acc: per_kernel(|_| 0),
            idle_samples: 0,
            preempt_stats: PreemptStats::default(),
            preempt_save_hist: per_kernel(|_| LatencyHistogram::new()),
            trace_on: cfg.trace.level.is_on(),
            events: EventRing::new(if cfg.trace.level.is_on() {
                cfg.trace.ring_capacity
            } else {
                0
            }),
            quota_blocked: per_kernel(|_| 0),
            quota_exhaustions: per_kernel(|_| 0),
            scoreboard_waits: per_kernel(|_| 0),
            completed: Vec::new(),
            saved: Vec::new(),
            ready_buf: Vec::with_capacity(max_warps as usize),
        }
    }

    /// This SM's identifier.
    pub fn id(&self) -> SmId {
        self.id
    }

    /// Records a flight-recorder event. A single branch when tracing is off,
    /// so the hot path stays free of ring-buffer work at level `Off`.
    #[inline]
    fn record(&mut self, cycle: Cycle, kind: TraceEventKind) {
        if self.trace_on {
            self.events.push(TraceEvent { cycle, sm: Some(self.id.index() as u32), kind });
        }
    }
}

crate::impl_snap_struct!(SmKernelCounters { thread_insts, warp_insts });

// `ready_buf` is per-tick scratch, always drained before `tick` returns, and
// `icn` is pure transit state, always empty outside the step→drain window of
// one cycle (snapshots are taken at epoch boundaries, between cycles), so a
// restored SM starts with empty (re-growable) buffers for both.
crate::impl_snap_struct!(Sm {
    id,
    policy,
    num_scheds,
    max_warps,
    max_tbs,
    max_threads,
    regfile_bytes,
    smem_bytes,
    l1,
    descs,
    l1_hit_latency,
    line_bytes,
    used_threads,
    used_regs,
    used_smem,
    warps,
    tbs,
    free_warps,
    free_tbs,
    scheds,
    next_age,
    transitioning,
    quota,
    gated,
    refill,
    is_qos,
    elastic,
    priority_block,
    quota_credit,
    quota_debit,
    quota_frozen,
    sched_frozen,
    preempt_stalled,
    hosted,
    counters,
    alu_thread_insts,
    sfu_thread_insts,
    smem_accesses,
    busy_cycles,
    issue_slots,
    issued_total,
    idle_warp_acc,
    idle_samples,
    preempt_stats,
    preempt_save_hist,
    trace_on,
    events,
    quota_blocked,
    quota_exhaustions,
    scoreboard_waits,
    completed,
    saved,
} skip { ready_buf, icn });
