//! Quickstart: share a GPU between a latency-sensitive kernel and a batch
//! kernel, with a QoS guarantee on the former.
//!
//! Run with: `cargo run --release --example quickstart`

use fgqos::{Gpu, GpuConfig, NullController, QosManager, QosSpec, QuotaScheme};

fn main() {
    // 1. Measure the latency-sensitive kernel's isolated IPC — QoS goals are
    //    expressed relative to it (paper §3.2).
    let cycles = 150_000;
    let mut solo = Gpu::new(GpuConfig::paper_table1());
    let k = solo.launch(fgqos::workloads::by_name("sgemm").expect("bundled benchmark"));
    solo.run(cycles, &mut NullController);
    let isolated_ipc = solo.stats().ipc(k);
    let goal = 0.7 * isolated_ipc;
    println!("sgemm isolated IPC: {isolated_ipc:.1}; QoS goal: {goal:.1} (70%)");

    // 2. Co-run it with a bandwidth-hungry batch kernel under the paper's
    //    best scheme (Rollover quotas + static TB adjustment).
    let mut gpu = Gpu::new(GpuConfig::paper_table1());
    let qos_kernel = gpu.launch(fgqos::workloads::by_name("sgemm").expect("bundled"));
    let batch_kernel = gpu.launch(fgqos::workloads::by_name("lbm").expect("bundled"));
    let mut manager = QosManager::new(QuotaScheme::Rollover)
        .with_kernel(qos_kernel, QosSpec::qos(goal))
        .with_kernel(batch_kernel, QosSpec::best_effort());
    gpu.run(cycles, &mut manager);

    // 3. Report.
    let stats = gpu.stats();
    let achieved = stats.ipc(qos_kernel);
    println!(
        "shared GPU: sgemm {achieved:.1} IPC ({:.1}% of goal) — goal {}",
        100.0 * achieved / goal,
        if achieved >= goal { "REACHED" } else { "MISSED" },
    );
    println!(
        "             lbm  {:.1} IPC on leftover resources ({} TB context switches)",
        stats.ipc(batch_kernel),
        gpu.preempt_stats().saves,
    );
}
