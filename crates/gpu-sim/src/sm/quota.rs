//! The EWS quota gate: epoch grants with carry semantics, lazy mid-epoch
//! refills, the Rollover-Time priority gate, and injected fault freezes.

use crate::types::KernelId;
use crate::MAX_KERNELS;

use super::Sm;

/// How an epoch-boundary quota assignment treats the previous counter value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotaCarry {
    /// Discard unused (positive) quota, keep over-consumption debt:
    /// `C ← alloc + min(C, 0)` (Naïve/Elastic behaviour, and non-QoS kernels
    /// under every scheme — Fig. 4a/4c).
    DiscardSurplus,
    /// Keep debt and the unused quota *from the last epoch* (Rollover,
    /// Fig. 4c): `C ← alloc + min(C, alloc)`. Capping the carried surplus at
    /// one allocation keeps a long TLP-starved transient from stockpiling
    /// epochs' worth of quota that would later let the kernel run far past
    /// its goal.
    Full,
    /// Fresh counter every epoch: `C ← alloc`. Used for non-QoS kernels,
    /// whose work-conserving slack issues would otherwise accumulate
    /// unbounded debt that locks them out of the normal issue path.
    Reset,
}

impl Sm {
    /// Enables or disables quota gating for kernel `k` on this SM.
    pub fn set_gated(&mut self, k: KernelId, gated: bool) {
        if self.quota_frozen {
            return;
        }
        self.wake.invalidate();
        self.gated[k.index()] = gated;
    }

    /// Assigns the epoch quota for kernel `k`.
    ///
    /// `carry` selects the paper's carry-over semantics, and `refill` is the
    /// amount added by mid-epoch refills (non-QoS top-ups, elastic restarts).
    pub fn set_epoch_quota(&mut self, k: KernelId, alloc: i64, carry: QuotaCarry, refill: i64) {
        if self.quota_frozen {
            return;
        }
        self.wake.invalidate();
        let i = k.index();
        let old = self.quota[i];
        self.quota[i] = match carry {
            QuotaCarry::DiscardSurplus => alloc + old.min(0),
            QuotaCarry::Full => alloc + old.min(alloc),
            QuotaCarry::Reset => alloc,
        };
        self.quota_credit[i] += self.quota[i] - old;
        self.refill[i] = refill;
    }

    /// Current quota counter for kernel `k`.
    pub fn quota(&self, k: KernelId) -> i64 {
        self.quota[k.index()]
    }

    /// Marks kernel `k` as a QoS kernel (affects mid-epoch refill rules and
    /// the Rollover-Time priority gate).
    pub fn set_qos_kernel(&mut self, k: KernelId, qos: bool) {
        self.wake.invalidate();
        self.is_qos[k.index()] = qos;
    }

    /// Enables elastic-epoch mid-epoch restarts (all gated kernels are
    /// replenished when every one of them is exhausted).
    pub fn set_elastic(&mut self, on: bool) {
        if self.quota_frozen {
            return;
        }
        self.wake.invalidate();
        self.elastic = on;
    }

    /// Enables the Rollover-Time priority gate: non-QoS kernels may only
    /// issue when every gated QoS kernel has exhausted its quota.
    pub fn set_priority_block(&mut self, on: bool) {
        self.wake.invalidate();
        self.priority_block = on;
    }

    #[inline]
    pub(super) fn any_qos_quota_positive(&self) -> bool {
        (0..MAX_KERNELS).any(|i| self.gated[i] && self.is_qos[i] && self.quota[i] > 0)
    }

    #[inline]
    fn all_gated_exhausted(&self) -> bool {
        (0..MAX_KERNELS).all(|i| !self.gated[i] || self.quota[i] <= 0)
    }

    /// Quota admission check with lazy mid-epoch refills.
    pub(super) fn quota_allows(&mut self, k: usize) -> bool {
        if self.quota_frozen {
            // Injected StarveQuota fault: every kernel is gated at zero and
            // no refill channel may revive it.
            return !self.gated[k];
        }
        if self.priority_block && !self.is_qos[k] && self.any_qos_quota_positive() {
            return false;
        }
        if !self.gated[k] {
            return true;
        }
        if self.quota[k] > 0 {
            return true;
        }
        if self.elastic {
            // Elastic epoch: a new epoch starts early once *all* kernels
            // have consumed their quotas (Fig. 4b), carrying debt.
            if self.all_gated_exhausted() {
                // Quota refills change which kernels are inert.
                self.wake.invalidate();
                for i in 0..MAX_KERNELS {
                    if self.gated[i] {
                        self.quota[i] += self.refill[i];
                        self.quota_credit[i] += self.refill[i];
                    }
                }
                return self.quota[k] > 0;
            }
            return false;
        }
        if !self.is_qos[k] && self.refill[k] > 0 && !self.any_qos_quota_positive() {
            // Naïve/Rollover mid-epoch rule: once every QoS kernel reached
            // its per-epoch goal, non-QoS kernels keep running (§3.4.1).
            self.wake.invalidate();
            self.quota[k] += self.refill[k];
            self.quota_credit[k] += self.refill[k];
            return self.quota[k] > 0;
        }
        false
    }

    /// Whether a warp of kernel `k` that is otherwise issuable is *inert*:
    /// [`Sm::quota_allows`] would return `false` without mutating any state,
    /// and the scavenger can never pick it. Inert warps generate no events,
    /// so they do not hold fast-forward back.
    ///
    /// Every input here (quota counters, gates, QoS flags, elastic mode) only
    /// changes through issues, epoch-boundary controller writes, or injected
    /// faults — all of which happen on cycles fast-forward never skips — so
    /// inertness computed at the start of an idle window holds throughout it.
    pub(super) fn quota_inert(&self, k: usize) -> bool {
        if self.quota_frozen {
            // StarveQuota freezes refills too: gated kernels stay blocked.
            return self.gated[k];
        }
        if self.priority_block && !self.is_qos[k] && self.any_qos_quota_positive() {
            return true;
        }
        if !self.gated[k] || self.quota[k] > 0 {
            return false;
        }
        if !self.is_qos[k] {
            // Exhausted non-QoS kernels stay live: scavenging or the §3.4.1
            // mid-epoch refill may let them issue on any cycle.
            return false;
        }
        // QoS, gated, exhausted: pure-false unless an elastic restart would
        // refill every gated kernel the moment quota_allows is consulted.
        !(self.elastic && self.all_gated_exhausted())
    }

    /// Whether any kernel is quota-inert while owning resident warps on
    /// this SM. Guards the quiescent-tick fast path: inert kernels' issuable
    /// warps must keep accumulating `quota_blocked` every cycle, which only
    /// the full gather does. The gate tests (`gated`/`priority_block`/
    /// `quota_frozen`) run first because no kernel can be inert without one
    /// of them set, and unmanaged scenarios set none.
    #[inline]
    pub(super) fn any_inert_resident(&self) -> bool {
        if !self.quota_frozen && !self.priority_block && !self.gated.iter().any(|&g| g) {
            return false;
        }
        (0..MAX_KERNELS)
            .any(|k| self.quota_inert(k) && self.warps.kernel_mask[k].iter().any(|&w| w != 0))
    }

    /// Injected `StarveQuota` fault: gates every kernel at zero quota and
    /// freezes all quota writes and refill channels, so no controller can
    /// revive issue on this SM.
    pub(crate) fn freeze_all_quota(&mut self) {
        self.wake.invalidate();
        for i in 0..MAX_KERNELS {
            self.gated[i] = true;
            let old = self.quota[i];
            self.quota[i] = old.min(0);
            self.quota_credit[i] += self.quota[i] - old;
            self.refill[i] = 0;
        }
        self.elastic = false;
        self.quota_frozen = true;
    }

    /// Injected `FreezeScheduler` fault: the SM stops issuing forever
    /// (in-flight context transfers still retire).
    pub(crate) fn freeze_schedulers(&mut self) {
        self.wake.invalidate();
        self.sched_frozen = true;
    }

    /// Injected `StallPreemption` fault: `start_preempt` refuses new saves.
    pub(crate) fn stall_preemption(&mut self) {
        self.preempt_stalled = true;
    }

    /// Clears every injected fault *effect* (frozen schedulers, frozen
    /// quota channels, stalled preemption). Used by cross-device restore
    /// ([`crate::Gpu::restore_compat`]): the effects model sick hardware,
    /// not workload state, so a batch migrating onto healthy silicon must
    /// not carry them along. Quota counters and gates themselves are left
    /// untouched — they are workload state the controller owns.
    pub(crate) fn clear_fault_effects(&mut self) {
        self.wake.invalidate();
        self.sched_frozen = false;
        self.quota_frozen = false;
        self.preempt_stalled = false;
    }

    /// Whether kernel `k` is quota-gated on this SM.
    pub fn is_gated(&self, k: KernelId) -> bool {
        self.gated[k.index()]
    }

    /// Test-only backdoor: mutates the quota counter *without* going
    /// through a ledger channel, to prove the audit catches stray writes.
    #[cfg(test)]
    pub(crate) fn corrupt_quota_for_test(&mut self, k: KernelId, delta: i64) {
        self.wake.invalidate();
        self.quota[k.index()] += delta;
    }
}
