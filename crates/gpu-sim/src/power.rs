//! GPUWattch-style event-energy power model.
//!
//! Energy is accumulated per architectural event (instruction issue, cache
//! and DRAM accesses) plus per-cycle static power for busy/idle SMs. The
//! paper's Fig. 14 reports *relative* instructions-per-Watt, so the model
//! needs faithful utilisation sensitivity, not absolute Watts.

use crate::config::PowerConfig;
use crate::gpu::Gpu;

/// Energy totals by component, in the model's arbitrary energy units.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Static energy of busy SMs.
    pub sm_static: f64,
    /// Static energy of idle (TB-less) SMs.
    pub sm_idle: f64,
    /// ALU dynamic energy.
    pub alu: f64,
    /// SFU dynamic energy.
    pub sfu: f64,
    /// Shared-memory dynamic energy.
    pub smem: f64,
    /// L1 access energy.
    pub l1: f64,
    /// L2 access energy.
    pub l2: f64,
    /// DRAM access energy (including preemption context traffic).
    pub dram: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.sm_static
            + self.sm_idle
            + self.alu
            + self.sfu
            + self.smem
            + self.l1
            + self.l2
            + self.dram
    }
}

/// Computes the energy consumed by a simulation so far.
pub fn energy(gpu: &Gpu) -> EnergyBreakdown {
    let p: &PowerConfig = &gpu.config().power;
    let cycles = gpu.cycle() as f64;
    let mut e = EnergyBreakdown::default();

    for sm in gpu.sms() {
        let busy = sm.busy_cycles() as f64;
        e.sm_static += busy * p.sm_static_per_cycle;
        e.sm_idle += (cycles - busy).max(0.0) * p.sm_idle_per_cycle;
        for k in 0..crate::MAX_KERNELS {
            let kid = crate::types::KernelId::new(k);
            e.alu += sm.alu_thread_insts(kid) as f64 * p.alu_per_thread_inst;
            e.sfu += sm.sfu_thread_insts(kid) as f64 * p.sfu_per_thread_inst;
            e.smem += sm.smem_accesses(kid) as f64 * p.smem_per_thread_access;
        }
    }

    let traffic = gpu.mem().traffic();
    for k in 0..crate::MAX_KERNELS {
        e.l1 += traffic.l1_accesses[k] as f64 * p.l1_per_access;
        e.l2 += traffic.l2_accesses[k] as f64 * p.l2_per_access;
        e.dram +=
            (traffic.dram_accesses[k] + traffic.context_transactions[k]) as f64 * p.dram_per_access;
    }
    e
}

/// Instructions per energy unit — the Fig. 14 metric (instructions per Watt
/// equals instructions per energy when compared over equal durations).
pub fn insts_per_energy(gpu: &Gpu) -> f64 {
    let e = energy(gpu).total();
    if e <= 0.0 {
        0.0
    } else {
        gpu.stats().total_thread_insts() as f64 / e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::gpu::NullController;
    use crate::kernel::{KernelDesc, Op};

    fn compute_kernel() -> KernelDesc {
        KernelDesc::builder("c")
            .threads_per_tb(128)
            .grid_tbs(64)
            .iterations(100)
            .body(vec![Op::alu(2, 16)])
            .build()
    }

    #[test]
    fn energy_grows_with_time() {
        let mut gpu = Gpu::new(GpuConfig::tiny());
        gpu.launch(compute_kernel());
        gpu.run(1_000, &mut NullController);
        let e1 = energy(&gpu).total();
        gpu.run(1_000, &mut NullController);
        let e2 = energy(&gpu).total();
        assert!(e2 > e1, "energy must accumulate: {e1} -> {e2}");
    }

    #[test]
    fn busy_gpu_burns_more_than_idle() {
        let mut idle = Gpu::new(GpuConfig::tiny());
        idle.run(1_000, &mut NullController);
        let mut busy = Gpu::new(GpuConfig::tiny());
        busy.launch(compute_kernel());
        busy.run(1_000, &mut NullController);
        assert!(energy(&busy).total() > energy(&idle).total());
    }

    #[test]
    fn insts_per_energy_positive_when_running() {
        let mut gpu = Gpu::new(GpuConfig::tiny());
        gpu.launch(compute_kernel());
        gpu.run(2_000, &mut NullController);
        assert!(insts_per_energy(&gpu) > 0.0);
    }
}
