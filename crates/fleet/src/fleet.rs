//! The fleet proper: many simulated GPUs behind one cluster scheduler.
//!
//! Execution is tick-based. One tick = [`FleetConfig::tick_cycles`] device
//! cycles, a multiple of the per-device watchdog window, so every busy
//! device sits at an epoch boundary — and is therefore snapshottable — at
//! every tick boundary. Each tick:
//!
//! 1. **arrivals** are collected from every tenant stream (deterministic,
//!    per-tenant seeded) and pass **admission control**: best-effort
//!    requests are rejected outright when projected occupancy would push
//!    queue drain past the guaranteed tenants' SLO horizon, or when the
//!    fleet's **working-set estimates** project device memory past
//!    capacity;
//! 2. the **load-shedding hysteresis** updates (enter above
//!    `shed_enter_permille`, exit below `shed_exit_permille`) and, while
//!    engaged, sheds queued best-effort work oldest-first;
//! 3. **planned drains** retire their devices, snapshotting any running
//!    batch into the pending-migration queue;
//! 4. **placement** first services pending migrations (restoring batch
//!    snapshots onto idle devices of the same migration class), may
//!    preempt one all-best-effort batch under shed pressure to free a
//!    device for waiting guaranteed work, then routes queued requests
//!    through the configured [`PlacementPolicy`] object;
//! 5. busy devices are **stepped in parallel** via
//!    [`exec::parallel_for_each`];
//! 6. results are harvested in stable device order: device failures are
//!    **classified first** (loss / wedge, by the typed [`SimError`]),
//!    *then* accounted — completions that beat the fault in the same tick
//!    still count, and survivors resume from their last **checkpoint** on
//!    a compatible spare with retries untouched; clean completions retire
//!    (feeding closed-loop streams and the working-set trackers),
//!    timeouts go through **bounded retry with exponential backoff and
//!    deterministic jitter**.
//!
//! Every decision is a pure function of the config and the master seed, so
//! the final report is byte-identical across runs — and across a
//! kill+resume through [`Fleet::snapshot`]/[`Fleet::restore`], even with
//! migrations in flight.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use gpu_sim::rng::{derive_seed, SplitMix64};
use gpu_sim::snap::{self, Snap, SnapError, SnapReader};
use gpu_sim::telemetry::{HostProfiler, LatencyHistogram, ProfPhase, TimeSeries};
use gpu_sim::{
    CounterEntry, CounterKind, CounterScope, FaultKind, FaultPlan, Gpu, KernelId, NullController,
    SimError, SnapshotBlob, MAX_KERNELS,
};
use qos_core::{kernel_footprint_bytes, WorkingSetTracker};
use workloads::arrival::{request_kernel, ArrivalStream};

use crate::config::FleetConfig;
use crate::migrate::{MigrationReason, MigrationRecord, PendingMigration};
use crate::placement::{self, DeviceView, PlacementCtx, PlacementPolicy, RequestView};
use crate::request::{Request, RequestState, ShedReason};

/// Schema version of the fleet snapshot encoding. v2 added heterogeneous
/// device classes, live migration state (per-batch checkpoints, the
/// pending-migration queue, migration records), planned drains, and the
/// per-tenant working-set trackers. v3 added the telemetry layer's
/// deterministic state: per-tenant latency / queue-wait / retry /
/// migration-duration histograms and the tick-sampled counter
/// [`TimeSeries`] (DESIGN.md §17). Host-profiler wall-clock state is
/// deliberately absent — it is host-dependent and must never influence
/// simulated state.
pub const FLEET_SNAPSHOT_VERSION: u32 = 3;

/// Ring capacity of the fleet's tick-sampled counter time series. Large
/// enough that every shipped scenario (the diurnal soak runs 558 ticks)
/// keeps its full history; longer runs evict oldest-first and count the
/// evictions.
pub const FLEET_SERIES_CAPACITY: usize = 4096;

/// What ultimately happened to a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceFate {
    /// Alive and serving.
    Healthy,
    /// Killed by a device-loss fault at the given fleet cycle.
    Lost {
        /// Fleet cycle at which the loss was detected.
        at: u64,
    },
    /// Wedged (watchdog-classified) at the given fleet cycle.
    Wedged {
        /// Fleet cycle at which the watchdog classified it.
        at: u64,
    },
    /// Retired by a planned drain at the given fleet cycle.
    Drained {
        /// Fleet cycle at which the drain took effect.
        at: u64,
    },
}

impl DeviceFate {
    fn is_healthy(self) -> bool {
        matches!(self, DeviceFate::Healthy)
    }
}

impl Snap for DeviceFate {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            DeviceFate::Healthy => out.push(0),
            DeviceFate::Lost { at } => {
                out.push(1);
                at.encode(out);
            }
            DeviceFate::Wedged { at } => {
                out.push(2);
                at.encode(out);
            }
            DeviceFate::Drained { at } => {
                out.push(3);
                at.encode(out);
            }
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match u8::decode(r)? {
            0 => Ok(DeviceFate::Healthy),
            1 => Ok(DeviceFate::Lost { at: u64::decode(r)? }),
            2 => Ok(DeviceFate::Wedged { at: u64::decode(r)? }),
            3 => Ok(DeviceFate::Drained { at: u64::decode(r)? }),
            _ => Err(SnapError::Invalid("DeviceFate")),
        }
    }
}

/// A batch's migration checkpoint: a serialized device snapshot plus the
/// device-relative cycle it was taken at (needed to translate fleet-cycle
/// fault schedules onto a restore target).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Ckpt {
    blob: Vec<u8>,
    gpu_cycle: u64,
}

gpu_sim::impl_snap_struct!(Ckpt { blob, gpu_cycle });

/// One in-flight batch: a fresh [`Gpu`] running up to [`MAX_KERNELS`]
/// request kernels under SMK sharing. Kernel slot `i` serves request
/// `requests[i]`.
#[derive(Debug)]
struct Batch {
    /// Request ids, in kernel launch order.
    requests: Vec<usize>,
    /// Whether slot `i` is still live (not yet completed / timed out).
    active: Vec<bool>,
    /// Fleet cycle at which the batch was originally placed (the timeout
    /// base its requests keep, even across migrations).
    started_at: u64,
    /// Fleet cycle that maps to this GPU's cycle zero: fleet cycle `F` is
    /// device cycle `F - fault_base`. Equals `started_at` for fresh
    /// batches; differs after a migration restores mid-flight state.
    fault_base: u64,
    /// Device-relative fault plan installed in this batch's GPU.
    faults: FaultPlan,
    /// Latest migration checkpoint (present whenever migration is
    /// enabled — taken at placement, refreshed on the checkpoint cadence).
    ckpt: Option<Ckpt>,
    /// The simulated device.
    gpu: Gpu,
    /// Error from the last tick's step, harvested after the parallel phase.
    step_err: Option<SimError>,
}

/// One fleet device: a slot that hosts consecutive batches until a fault
/// or a planned drain retires it.
#[derive(Debug)]
struct Device {
    id: u32,
    /// Index into `FleetConfig::classes` (derived from `id`, not
    /// snapshotted).
    class: usize,
    fate: DeviceFate,
    /// Batches created on this device so far (including migrated-in ones).
    batches: u64,
    /// Requests completed on this device.
    served: u64,
    /// Scheduled faults not yet injected, fleet-absolute.
    pending_faults: Vec<FleetFault>,
    /// Scheduled planned drains not yet taken, fleet-absolute cycles.
    pending_drains: Vec<u64>,
    batch: Option<Batch>,
}

use crate::config::FleetFault;

impl Device {
    fn idle_healthy(&self) -> bool {
        self.fate.is_healthy() && self.batch.is_none()
    }

    fn busy_healthy(&self) -> bool {
        self.fate.is_healthy() && self.batch.is_some()
    }

    /// Steps this device's batch by `cycles`; called from worker threads.
    fn step(&mut self, cycles: u64) {
        if let Some(batch) = &mut self.batch {
            batch.step_err = batch.gpu.try_run(cycles, &mut NullController).err();
        }
    }
}

/// Cumulative per-tenant serving metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantCounters {
    /// Requests that arrived (entered the fleet).
    pub arrived: u64,
    /// Requests completed.
    pub completed: u64,
    /// Completed requests that met the tenant's SLO deadline (guaranteed
    /// tenants only; stays 0 for best-effort).
    pub slo_met: u64,
    /// Per-request timeouts observed.
    pub timeouts: u64,
    /// Retries consumed (each timeout or device failure that re-queued).
    pub retries: u64,
    /// Requests live-migrated to another device (retries untouched).
    pub migrated: u64,
    /// Requests shed at admission.
    pub shed_admission: u64,
    /// Requests shed under overload.
    pub shed_overload: u64,
    /// Requests shed with the retry budget exhausted.
    pub shed_retries: u64,
    /// Requests shed for any other reason (fleet dead, unfinished).
    pub shed_other: u64,
    /// Sum of completion latencies, for the mean.
    pub latency_sum: u64,
    /// Worst completion latency.
    pub latency_max: u64,
    /// End-to-end completion latency distribution (arrival → done), in
    /// fleet cycles. Log-bucketed and integer-exact, so percentiles are
    /// deterministic and the state snapshots byte-identically.
    pub latency_hist: LatencyHistogram,
    /// Queue-wait distribution: arrival → first placement, in fleet
    /// cycles (first placements only — retry re-queues are excluded so a
    /// retried request does not double-count its service time as wait).
    pub queue_wait_hist: LatencyHistogram,
    /// Retries-consumed distribution, recorded once per completed
    /// request (value = total retries that request used).
    pub retry_hist: LatencyHistogram,
    /// Live-migration outage distribution: enqueue → restore, in fleet
    /// cycles, recorded once per resumed request.
    pub migration_hist: LatencyHistogram,
}

gpu_sim::impl_snap_struct!(TenantCounters {
    arrived,
    completed,
    slo_met,
    timeouts,
    retries,
    migrated,
    shed_admission,
    shed_overload,
    shed_retries,
    shed_other,
    latency_sum,
    latency_max,
    latency_hist,
    queue_wait_hist,
    retry_hist,
    migration_hist,
});

impl TenantCounters {
    /// Total requests shed, over all reasons.
    pub fn shed_total(&self) -> u64 {
        self.shed_admission + self.shed_overload + self.shed_retries + self.shed_other
    }
}

/// One per-tick observability sample for one tenant (cumulative counters
/// plus the instantaneous queue depth) — the raw material of the Perfetto
/// per-tenant tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantSample {
    /// Cumulative completions.
    pub completed: u64,
    /// Cumulative SLO-met completions.
    pub slo_met: u64,
    /// Cumulative retries.
    pub retries: u64,
    /// Cumulative sheds.
    pub shed: u64,
    /// Cumulative live migrations.
    pub migrated: u64,
    /// Requests of this tenant queued right now.
    pub queued: u64,
    /// p50 completion latency so far, in fleet cycles (0 until the first
    /// completion).
    pub latency_p50: u64,
    /// p90 completion latency so far, in fleet cycles.
    pub latency_p90: u64,
    /// p99 completion latency so far, in fleet cycles.
    pub latency_p99: u64,
    /// p99.9 completion latency so far, in fleet cycles.
    pub latency_p999: u64,
    /// SLO error-budget burn rate in ppm (1_000_000 = consuming the
    /// budget exactly; above ⇒ the attainment floor is violated). 0 for
    /// best-effort tenants.
    pub slo_burn_ppm: u64,
}

gpu_sim::impl_snap_struct!(TenantSample {
    completed,
    slo_met,
    retries,
    shed,
    migrated,
    queued,
    latency_p50,
    latency_p90,
    latency_p99,
    latency_p999,
    slo_burn_ppm,
});

/// One per-tick observability sample across the fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickSample {
    /// Fleet cycle at the end of the tick.
    pub cycle: u64,
    /// Queue depth across all tenants.
    pub queue_depth: u64,
    /// Healthy device count.
    pub healthy_devices: u64,
    /// Whether load shedding was engaged.
    pub shedding: bool,
    /// Batches waiting in the pending-migration queue.
    pub pending_migrations: u64,
    /// Per-tenant cumulative counters, in tenant order.
    pub tenants: Vec<TenantSample>,
}

gpu_sim::impl_snap_struct!(TickSample {
    cycle,
    queue_depth,
    healthy_devices,
    shedding,
    pending_migrations,
    tenants,
});

/// The fleet: devices, tenants, queue, and the scheduler state machine.
#[derive(Debug)]
pub struct Fleet {
    cfg: FleetConfig,
    policy: Arc<dyn PlacementPolicy>,
    /// Per-class compat fingerprints (migration classes), config-derived.
    class_compat: Vec<u64>,
    /// Per-class DRAM line size, config-derived (footprint samples).
    line_bytes: Vec<u32>,
    cycle: u64,
    tick_index: u64,
    shedding: bool,
    finished: bool,
    devices: Vec<Device>,
    requests: Vec<Request>,
    queue: VecDeque<usize>,
    streams: Vec<ArrivalStream>,
    tenants: Vec<TenantCounters>,
    /// Per-tenant measured working-set estimates.
    ws: Vec<WorkingSetTracker>,
    /// Batches waiting for a compatible spare, oldest first.
    pending_migrations: Vec<PendingMigration>,
    /// Completed migrations, for reports and trace export.
    migrations: Vec<MigrationRecord>,
    /// Pending migrations that fell back to bounded retry (patience or
    /// timeout expired before a spare appeared).
    migration_fallbacks: u64,
    /// Requests evicted into retry-from-scratch (no checkpoint, migration
    /// disabled, or fallback).
    evictions: u64,
    samples: Vec<TickSample>,
    /// Tick-sampled counter-registry time series (snapshotted: a resumed
    /// run carries the same history a straight-through run would).
    series: TimeSeries,
    /// Host-side wall-clock self-profiler. Deliberately NOT snapshotted
    /// and never read by simulation logic — wall time is host-dependent.
    prof: HostProfiler,
}

impl Fleet {
    /// Builds a fleet from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not validate.
    pub fn new(cfg: FleetConfig) -> Self {
        cfg.validate().expect("fleet config must validate");
        let policy = placement::resolve(&cfg.placement).expect("validated placement resolves");
        let class_compat: Vec<u64> =
            (0..cfg.classes.len()).map(|ci| cfg.class_compat_fingerprint(ci)).collect();
        let line_bytes: Vec<u32> = (0..cfg.classes.len())
            .map(|ci| cfg.device_config(ci, FaultPlan::none()).mem.line_bytes)
            .collect();
        let ws_floor = u64::from(line_bytes.iter().copied().min().unwrap_or(32));
        let devices = (0..cfg.total_devices())
            .map(|id| Device {
                id,
                class: cfg.class_of(id),
                fate: DeviceFate::Healthy,
                batches: 0,
                served: 0,
                pending_faults: cfg.faults.iter().copied().filter(|f| f.device == id).collect(),
                pending_drains: cfg
                    .drains
                    .iter()
                    .filter(|d| d.device == id)
                    .map(|d| d.at_cycle)
                    .collect(),
                batch: None,
            })
            .collect();
        let streams = cfg
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let seed =
                    derive_seed(cfg.seed, workloads::arrival::hash_label(&t.name) ^ i as u64);
                ArrivalStream::new(t.arrival, seed, t.requests)
            })
            .collect();
        let tenants = vec![TenantCounters::default(); cfg.tenants.len()];
        let ws =
            cfg.tenants.iter().map(|t| WorkingSetTracker::new(t.mem_bytes, ws_floor)).collect();
        Fleet {
            cfg,
            policy,
            class_compat,
            line_bytes,
            cycle: 0,
            tick_index: 0,
            shedding: false,
            finished: false,
            devices,
            requests: Vec::new(),
            queue: VecDeque::new(),
            streams,
            tenants,
            ws,
            pending_migrations: Vec::new(),
            migrations: Vec::new(),
            migration_fallbacks: 0,
            evictions: 0,
            samples: Vec::new(),
            series: TimeSeries::new(FLEET_SERIES_CAPACITY),
            prof: HostProfiler::new(),
        }
    }

    /// The configuration this fleet runs under.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Current fleet cycle (a multiple of the tick length).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Ticks executed so far.
    pub fn ticks(&self) -> u64 {
        self.tick_index
    }

    /// Whether the run is over (all streams drained and all requests
    /// terminal, or the fleet is dead / out of ticks).
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Whether load shedding is currently engaged.
    pub fn shedding(&self) -> bool {
        self.shedding
    }

    /// The request table (arrival order).
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Cumulative per-tenant counters, in config tenant order.
    pub fn tenant_counters(&self) -> &[TenantCounters] {
        &self.tenants
    }

    /// Per-tick observability samples recorded so far.
    pub fn samples(&self) -> &[TickSample] {
        &self.samples
    }

    /// The tick-sampled counter-registry time series.
    pub fn metrics_series(&self) -> &TimeSeries {
        &self.series
    }

    /// Replaces the counter time series with one of the given ring
    /// capacity (0 disables sampling). Clears any recorded rows — call
    /// before the first tick.
    pub fn enable_metrics_series(&mut self, capacity: usize) {
        self.series = TimeSeries::new(capacity);
    }

    /// Arms or disarms the host-side wall-clock self-profiler.
    pub fn set_profiling(&mut self, on: bool) {
        self.prof.set_enabled(on);
    }

    /// The host-side self-profiler. Fleet-level phases only: all wall
    /// time spent inside device simulation lands in
    /// [`ProfPhase::DeviceStep`]; per-phase device breakdowns come from
    /// profiling a single [`Gpu`] directly.
    pub fn profiler(&self) -> &HostProfiler {
        &self.prof
    }

    /// Mutable profiler access, for callers that attribute their own
    /// host-side phases (e.g. checkpoint writes) to this fleet's table.
    pub fn profiler_mut(&mut self) -> &mut HostProfiler {
        &mut self.prof
    }

    /// Completed migrations, oldest first.
    pub fn migrations(&self) -> &[MigrationRecord] {
        &self.migrations
    }

    /// Batches currently waiting in the pending-migration queue.
    pub fn pending_migration_count(&self) -> usize {
        self.pending_migrations.len()
    }

    /// Pending migrations that fell back to bounded retry.
    pub fn migration_fallbacks(&self) -> u64 {
        self.migration_fallbacks
    }

    /// Requests evicted into retry-from-scratch over the run.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Requests resumed via live migration over the run (one count per
    /// request per successful migration).
    pub fn migrated_requests(&self) -> u64 {
        self.tenants.iter().map(|c| c.migrated).sum()
    }

    /// Tenant `t`'s current measured working-set estimate, in bytes.
    pub fn working_set_estimate(&self, t: usize) -> u64 {
        self.ws[t].estimate()
    }

    /// Arrived requests that are in no terminal state. Zero once
    /// [`Fleet::finished`] — the zero-lost-requests invariant.
    pub fn lost_requests(&self) -> usize {
        self.requests.iter().filter(|r| !r.is_terminal()).count()
    }

    /// Whether every guaranteed tenant meets its SLO attainment floor.
    pub fn all_guaranteed_met(&self) -> bool {
        self.cfg.tenants.iter().zip(&self.tenants).all(|(spec, c)| match spec.class.slo() {
            Some(slo) => slo.satisfied_by(c.slo_met, c.arrived),
            None => true,
        })
    }

    /// Runs to completion (bounded by the config's tick safety net).
    pub fn run_to_completion(&mut self) {
        while !self.finished {
            self.step();
        }
    }

    // ------------------------------------------------------------------
    // The tick state machine
    // ------------------------------------------------------------------

    /// Executes one tick; returns `true` when the fleet has finished.
    pub fn step(&mut self) -> bool {
        if self.finished {
            return true;
        }
        let now = self.cycle;
        let end = now + self.cfg.tick_cycles;

        let t0 = self.prof.begin();
        self.collect_arrivals(now);
        self.update_shedding(now);
        self.process_drains(now);
        self.place(now);
        let t1 = self.prof.lap(ProfPhase::FleetTick, t0);
        self.step_devices();
        let t2 = self.prof.lap(ProfPhase::DeviceStep, t1);
        for di in 0..self.devices.len() {
            self.harvest_device(di, end);
        }
        self.cycle = end;
        self.tick_index += 1;
        self.expire_migrations(end);
        self.record_sample();
        self.check_finished();
        self.prof.end(ProfPhase::FleetTick, t2);
        self.finished
    }

    /// Pulls every arrival due at or before `now` from the tenant streams,
    /// running admission control on best-effort work.
    fn collect_arrivals(&mut self, now: u64) {
        for t in 0..self.streams.len() {
            for (seq, at) in self.streams[t].arrivals_before(now + 1) {
                let id = self.requests.len();
                self.tenants[t].arrived += 1;
                let guaranteed = self.cfg.tenants[t].class.is_guaranteed();
                let state = if guaranteed {
                    RequestState::Queued { not_before: 0 }
                } else if self.shedding {
                    self.tenants[t].shed_overload += 1;
                    RequestState::Shed { reason: ShedReason::Overload, at: now }
                } else if self.load_permille(1) > 1000
                    || self.mem_load_permille(self.ws[t].estimate()) > 1000
                {
                    // Projected drain of one more request would overrun the
                    // guaranteed SLO horizon — or its measured working set
                    // would not fit the healthy fleet's memory: reject at
                    // the door.
                    self.tenants[t].shed_admission += 1;
                    RequestState::Shed { reason: ShedReason::Admission, at: now }
                } else {
                    RequestState::Queued { not_before: 0 }
                };
                let queued = matches!(state, RequestState::Queued { .. });
                self.requests.push(Request {
                    id,
                    tenant: t,
                    seq,
                    arrived_at: at,
                    retries: 0,
                    state,
                });
                if queued {
                    self.queue.push_back(id);
                }
            }
        }
    }

    /// Projected fleet load in permille of the guaranteed SLO horizon:
    /// outstanding work (running + migrating + queued + `extra`
    /// hypothetical requests, each costing the scheduler-visible service
    /// estimate) over what the healthy devices can drain within the
    /// horizon. 1000‰ means the last queued request is projected to finish
    /// exactly at the horizon.
    fn load_permille(&self, extra: u64) -> u64 {
        let healthy_slots =
            self.devices.iter().filter(|d| d.fate.is_healthy()).count() as u64 * MAX_KERNELS as u64;
        if healthy_slots == 0 {
            return u64::MAX;
        }
        let running = self
            .requests
            .iter()
            .filter(|r| {
                matches!(r.state, RequestState::Running { .. } | RequestState::Migrating { .. })
            })
            .count() as u64;
        let work = (running + self.queue.len() as u64 + extra) * self.cfg.est_service_cycles;
        work.saturating_mul(1000) / (healthy_slots * self.admission_horizon())
    }

    /// Projected device-memory demand in permille of healthy capacity:
    /// every outstanding request claims its tenant's measured working-set
    /// estimate, plus `extra_bytes` for a hypothetical admission.
    fn mem_load_permille(&self, extra_bytes: u64) -> u64 {
        let capacity: u64 = self
            .devices
            .iter()
            .filter(|d| d.fate.is_healthy())
            .map(|d| self.cfg.classes[d.class].mem_bytes)
            .sum();
        if capacity == 0 {
            return u64::MAX;
        }
        let demand: u64 = self
            .requests
            .iter()
            .filter(|r| {
                matches!(
                    r.state,
                    RequestState::Queued { .. }
                        | RequestState::Running { .. }
                        | RequestState::Migrating { .. }
                )
            })
            .map(|r| self.ws[r.tenant].estimate())
            .sum::<u64>()
            .saturating_add(extra_bytes);
        demand.saturating_mul(1000) / capacity
    }

    /// The SLO horizon admission control defends: the tightest guaranteed
    /// deadline, or the request timeout when no tenant holds a guarantee.
    fn admission_horizon(&self) -> u64 {
        self.cfg
            .tenants
            .iter()
            .filter_map(|t| t.class.slo())
            .map(|slo| slo.deadline_cycles)
            .min()
            .unwrap_or(self.cfg.timeout_cycles)
            .max(1)
    }

    /// Updates the load-shedding hysteresis and sheds queued best-effort
    /// work while engaged.
    fn update_shedding(&mut self, now: u64) {
        let load = self.load_permille(0);
        if !self.shedding && load > u64::from(self.cfg.shed_enter_permille) {
            self.shedding = true;
        } else if self.shedding && load < u64::from(self.cfg.shed_exit_permille) {
            self.shedding = false;
        }
        if !self.shedding {
            return;
        }
        // Shed queued best-effort oldest-first until the projection drops
        // back to the engage threshold (guaranteed work is never shed).
        while self.load_permille(0) > u64::from(self.cfg.shed_enter_permille) {
            let Some(pos) = self
                .queue
                .iter()
                .position(|&id| !self.cfg.tenants[self.requests[id].tenant].class.is_guaranteed())
            else {
                break;
            };
            let id = self.queue.remove(pos).expect("position is in range");
            let t = self.requests[id].tenant;
            self.requests[id].state = RequestState::Shed { reason: ShedReason::Overload, at: now };
            self.tenants[t].shed_overload += 1;
        }
    }

    /// Takes every planned drain that is due: the device's running batch
    /// (if any) is snapshotted fresh at this tick boundary and queued for
    /// migration, and the device leaves service.
    fn process_drains(&mut self, now: u64) {
        for di in 0..self.devices.len() {
            if !self.devices[di].fate.is_healthy()
                || !self.devices[di].pending_drains.iter().any(|&at| at <= now)
            {
                continue;
            }
            self.devices[di].pending_drains.clear();
            self.devices[di].pending_faults.clear();
            if self.devices[di].batch.is_some() {
                if self.cfg.migration.enabled {
                    self.preempt_batch(di, now, MigrationReason::Drain);
                } else {
                    let batch = self.devices[di].batch.take().expect("checked busy");
                    let victims: Vec<usize> = batch
                        .requests
                        .iter()
                        .zip(&batch.active)
                        .filter_map(|(&id, &live)| live.then_some(id))
                        .collect();
                    drop(batch);
                    for id in victims {
                        self.evictions += 1;
                        self.retry_or_shed(id, now);
                    }
                }
            }
            self.devices[di].fate = DeviceFate::Drained { at: now };
        }
    }

    /// Placement phase: pending migrations first (they carry the most
    /// sunk work), then an optional shed-pressure preemption, then the
    /// policy-driven queue placement.
    fn place(&mut self, now: u64) {
        self.service_migrations(now);
        self.preempt_for_guaranteed(now);
        self.place_queue(now);
    }

    /// Restores pending migrations, oldest first, onto idle devices of the
    /// same migration class.
    fn service_migrations(&mut self, now: u64) {
        if self.pending_migrations.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending_migrations);
        for pm in pending {
            let target = self.devices.iter().position(|d| {
                d.idle_healthy() && self.class_compat[d.class] == pm.compat_fingerprint
            });
            match target {
                Some(di) if self.install_migration(di, &pm, now) => {}
                _ => self.pending_migrations.push(pm),
            }
        }
    }

    /// Restores one pending migration onto idle device `di`. Returns
    /// `false` (leaving the fleet untouched) if the blob refuses to
    /// decode or restore — the migration then waits out its patience and
    /// falls back to bounded retry.
    fn install_migration(&mut self, di: usize, pm: &PendingMigration, now: u64) -> bool {
        let Ok(blob) = SnapshotBlob::from_bytes(&pm.blob) else { return false };
        // Translate the target's fleet-absolute fault schedule into the
        // restored device's cycle domain: the restored GPU resumes at
        // device cycle `pm.gpu_cycle`, which corresponds to fleet cycle
        // `now`.
        let mut faults = FaultPlan::none();
        for f in &self.devices[di].pending_faults {
            faults = faults.with(pm.gpu_cycle + f.at_cycle.saturating_sub(now), f.kind);
        }
        let class = self.devices[di].class;
        let mut gpu = Gpu::new(self.cfg.device_config(class, faults.clone()));
        if gpu.restore_compat(&blob).is_err() {
            return false;
        }
        // Gate every slot that retired after the checkpoint was taken so
        // finished work never re-runs (and can never double-complete).
        let sm_ids: Vec<_> = gpu.sm_ids().collect();
        for (slot, &live) in pm.active.iter().enumerate() {
            if !live {
                for &sm in &sm_ids {
                    gpu.sm_quota(sm).set_gated(KernelId::new(slot), true);
                }
            }
        }
        let device_id = self.devices[di].id;
        let mut record = MigrationRecord {
            from_device: pm.from_device,
            to_device: device_id,
            reason: pm.reason,
            requests: Vec::new(),
            tenants: Vec::new(),
            enqueued_at: pm.enqueued_at,
            restored_at: now,
        };
        for id in pm.live_requests() {
            let t = self.requests[id].tenant;
            let started_at = match self.requests[id].state {
                RequestState::Migrating { started_at, .. } => started_at,
                _ => pm.started_at,
            };
            self.requests[id].state = RequestState::Running { device: device_id, started_at };
            self.tenants[t].migrated += 1;
            self.tenants[t].migration_hist.record(now.saturating_sub(pm.enqueued_at));
            record.requests.push(id as u64);
            record.tenants.push(t as u64);
        }
        self.migrations.push(record);
        let device = &mut self.devices[di];
        device.batches += 1;
        device.batch = Some(Batch {
            requests: pm.slots.iter().map(|&x| x as usize).collect(),
            active: pm.active.clone(),
            started_at: pm.started_at,
            fault_base: now.saturating_sub(pm.gpu_cycle),
            faults,
            ckpt: Some(Ckpt { blob: pm.blob.clone(), gpu_cycle: pm.gpu_cycle }),
            gpu,
            step_err: None,
        });
        true
    }

    /// Under shed pressure with guaranteed work waiting and no idle
    /// device, preempts (at most) one all-best-effort batch — snapshotted
    /// fresh, zero progress lost — to free its device for the guaranteed
    /// queue this very tick.
    fn preempt_for_guaranteed(&mut self, now: u64) {
        if !self.shedding || !self.cfg.migration.enabled {
            return;
        }
        let guaranteed_waiting = self.queue.iter().any(|&id| {
            self.cfg.tenants[self.requests[id].tenant].class.is_guaranteed()
                && matches!(self.requests[id].state,
                    RequestState::Queued { not_before } if not_before <= now)
        });
        if !guaranteed_waiting || self.devices.iter().any(Device::idle_healthy) {
            return;
        }
        let candidate = self.devices.iter().position(|d| {
            d.busy_healthy()
                && d.batch.as_ref().is_some_and(|b| {
                    b.requests.iter().zip(&b.active).filter(|&(_, &live)| live).all(|(&id, _)| {
                        !self.cfg.tenants[self.requests[id].tenant].class.is_guaranteed()
                    })
                })
        });
        if let Some(di) = candidate {
            self.preempt_batch(di, now, MigrationReason::ShedPressure);
        }
    }

    /// Snapshots device `di`'s batch fresh at this tick boundary and moves
    /// it into the pending-migration queue.
    ///
    /// # Panics
    ///
    /// Panics if the device is idle or its GPU is off an epoch boundary (a
    /// fleet invariant violation).
    fn preempt_batch(&mut self, di: usize, now: u64, reason: MigrationReason) {
        let batch = self.devices[di].batch.take().expect("preempt target is busy");
        let blob = batch.gpu.snapshot().expect("busy devices sit at epoch boundaries at ticks");
        let device_id = self.devices[di].id;
        let pm = PendingMigration {
            slots: batch.requests.iter().map(|&id| id as u64).collect(),
            active: batch.active.clone(),
            started_at: batch.started_at,
            gpu_cycle: batch.gpu.cycle(),
            blob: blob.to_bytes(),
            compat_fingerprint: self.class_compat[self.devices[di].class],
            from_device: device_id,
            reason,
            enqueued_at: now,
        };
        for id in pm.live_requests() {
            let started_at = match self.requests[id].state {
                RequestState::Running { started_at, .. } => started_at,
                _ => batch.started_at,
            };
            self.requests[id].state = RequestState::Migrating { from: device_id, started_at };
        }
        self.pending_migrations.push(pm);
    }

    /// Routes queued, backoff-eligible requests to idle healthy devices
    /// through the configured placement policy. The policy only suggests;
    /// capacity (kernel slots, working-set memory) is re-validated here.
    fn place_queue(&mut self, now: u64) {
        let mut views: Vec<DeviceView> = Vec::new();
        let mut view_devices: Vec<usize> = Vec::new();
        for (di, d) in self.devices.iter().enumerate() {
            if d.idle_healthy() {
                views.push(DeviceView {
                    device: d.id,
                    class: d.class,
                    free_slots: MAX_KERNELS,
                    free_mem_bytes: self.cfg.classes[d.class].mem_bytes,
                    assigned: 0,
                    batches: d.batches,
                });
                view_devices.push(di);
            }
        }
        if views.is_empty() {
            return;
        }
        let mut eligible: VecDeque<usize> = VecDeque::new();
        let mut rest: VecDeque<usize> = VecDeque::new();
        for &id in &self.queue {
            match self.requests[id].state {
                RequestState::Queued { not_before } if not_before <= now => {
                    eligible.push_back(id);
                }
                _ => rest.push_back(id),
            }
        }
        let load = self.load_permille(0);
        let queue_depth = eligible.len() + rest.len();
        let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); views.len()];
        let mut leftover: VecDeque<usize> = VecDeque::new();
        let policy = Arc::clone(&self.policy);
        while let Some(id) = eligible.pop_front() {
            let t = self.requests[id].tenant;
            let rv = RequestView {
                id,
                tenant: t,
                guaranteed: self.cfg.tenants[t].class.is_guaranteed(),
                mem_bytes: self.ws[t].estimate(),
                queued_for: now.saturating_sub(self.requests[id].arrived_at),
            };
            let ctx = PlacementCtx { now, queue_depth, load_permille: load, devices: &views };
            let choice = policy.assign(&rv, &ctx);
            let slot = choice.and_then(|dev| views.iter().position(|v| v.device == dev));
            match slot {
                Some(vi)
                    if views[vi].free_slots > 0 && views[vi].free_mem_bytes >= rv.mem_bytes =>
                {
                    views[vi].free_slots -= 1;
                    views[vi].free_mem_bytes -= rv.mem_bytes;
                    views[vi].assigned += 1;
                    assigned[vi].push(id);
                }
                _ => leftover.push_back(id),
            }
        }
        // Whatever was not placed stays queued, in order.
        rest.extend(leftover);
        self.queue = rest;
        for (vi, ids) in assigned.into_iter().enumerate() {
            if !ids.is_empty() {
                self.start_batch(view_devices[vi], ids, now);
            }
        }
    }

    /// Creates a batch on device `di` serving `ids`, translating the
    /// device's pending faults into the new GPU's device-relative plan and
    /// taking the initial migration checkpoint.
    fn start_batch(&mut self, di: usize, ids: Vec<usize>, now: u64) {
        let mut faults = FaultPlan::none();
        for f in &self.devices[di].pending_faults {
            faults = faults.with(f.at_cycle.saturating_sub(now), f.kind);
        }
        let class = self.devices[di].class;
        let mut gpu = Gpu::new(self.cfg.device_config(class, faults.clone()));
        gpu.set_sharing_mode(gpu_sim::SharingMode::Smk);
        for &id in &ids {
            let req = &self.requests[id];
            let spec = &self.cfg.tenants[req.tenant];
            gpu.launch(request_kernel(&spec.name, req.seq, spec.grid_tbs));
        }
        for &id in &ids {
            let req = &self.requests[id];
            // Queue wait is arrival → first placement; retry re-queues are
            // excluded so service time never masquerades as wait.
            if req.retries == 0 {
                self.tenants[req.tenant].queue_wait_hist.record(now.saturating_sub(req.arrived_at));
            }
            self.requests[id].state =
                RequestState::Running { device: self.devices[di].id, started_at: now };
        }
        // The initial checkpoint, taken before the first cycle runs: even a
        // first-tick device loss migrates instead of retrying from scratch.
        let ckpt = if self.cfg.migration.enabled {
            let blob = gpu.snapshot().expect("a fresh GPU sits at epoch boundary zero");
            Some(Ckpt { blob: blob.to_bytes(), gpu_cycle: 0 })
        } else {
            None
        };
        let device = &mut self.devices[di];
        device.batches += 1;
        let active = vec![true; ids.len()];
        device.batch = Some(Batch {
            requests: ids,
            active,
            started_at: now,
            fault_base: now,
            faults,
            ckpt,
            gpu,
            step_err: None,
        });
    }

    /// Steps every busy healthy device by one tick, in parallel.
    fn step_devices(&mut self) {
        let tick = self.cfg.tick_cycles;
        let busy: Vec<Mutex<&mut Device>> =
            self.devices.iter_mut().filter(|d| d.busy_healthy()).map(Mutex::new).collect();
        if busy.is_empty() {
            return;
        }
        let threads = std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .min(busy.len());
        exec::parallel_for_each(&busy, threads, |cell| {
            cell.lock().expect("device mutex").step(tick);
        });
    }

    /// Harvests one device after the parallel step: completions, timeouts,
    /// device failures, and checkpoint refresh. Runs in stable device
    /// order.
    fn harvest_device(&mut self, di: usize, end: u64) {
        if !self.devices[di].busy_healthy() {
            return;
        }
        let Some(mut batch) = self.devices[di].batch.take() else { return };

        if let Some(err) = batch.step_err.take() {
            // Classify FIRST: the device's fate must be on the books before
            // any request accounting, so a wedge that fires during a
            // batch's final tick can never be laundered into a clean
            // eviction — the sticky-fault race this ordering closes.
            let device_id = self.devices[di].id;
            self.devices[di].fate = match err {
                SimError::DeviceLost(_) => DeviceFate::Lost { at: end },
                _ => DeviceFate::Wedged { at: end },
            };
            self.devices[di].pending_faults.clear();
            self.devices[di].pending_drains.clear();
            // THEN account: kernels that completed before the fault hit in
            // this same tick produced real results — harvest them as done.
            let stats = batch.gpu.stats();
            for slot in 0..batch.requests.len() {
                if !batch.active[slot] {
                    continue;
                }
                if stats.kernel(KernelId::new(slot)).launches_completed >= 1 {
                    batch.active[slot] = false;
                    let id = batch.requests[slot];
                    self.complete(id, end);
                    self.devices[di].served += 1;
                }
            }
            // Survivors resume from the last checkpoint on a compatible
            // spare; without migration they go through bounded retry.
            let any_live = batch.active.iter().any(|&l| l);
            let reason = match self.devices[di].fate {
                DeviceFate::Lost { .. } => MigrationReason::DeviceLost,
                _ => MigrationReason::DeviceWedged,
            };
            if any_live && self.cfg.migration.enabled {
                if let Some(ckpt) = batch.ckpt.take() {
                    let pm = PendingMigration {
                        slots: batch.requests.iter().map(|&id| id as u64).collect(),
                        active: batch.active.clone(),
                        started_at: batch.started_at,
                        gpu_cycle: ckpt.gpu_cycle,
                        blob: ckpt.blob,
                        compat_fingerprint: self.class_compat[self.devices[di].class],
                        from_device: device_id,
                        reason,
                        enqueued_at: end,
                    };
                    for id in pm.live_requests() {
                        let started_at = match self.requests[id].state {
                            RequestState::Running { started_at, .. } => started_at,
                            _ => batch.started_at,
                        };
                        self.requests[id].state =
                            RequestState::Migrating { from: device_id, started_at };
                    }
                    self.pending_migrations.push(pm);
                    return;
                }
            }
            let victims: Vec<usize> = batch
                .requests
                .iter()
                .zip(&batch.active)
                .filter_map(|(&id, &live)| live.then_some(id))
                .collect();
            drop(batch);
            for id in victims {
                self.evictions += 1;
                self.retry_or_shed(id, end);
            }
            return;
        }

        let stats = batch.gpu.stats();
        let sm_ids: Vec<_> = batch.gpu.sm_ids().collect();
        for slot in 0..batch.requests.len() {
            if !batch.active[slot] {
                continue;
            }
            let id = batch.requests[slot];
            let k = KernelId::new(slot);
            let started_at = match self.requests[id].state {
                RequestState::Running { started_at, .. } => started_at,
                _ => unreachable!("active slots hold running requests"),
            };
            let done = stats.kernel(k).launches_completed >= 1;
            let timed_out = !done && end.saturating_sub(started_at) >= self.cfg.timeout_cycles;
            if !done && !timed_out {
                continue;
            }
            // Either way the slot retires: gate the kernel everywhere so it
            // stops consuming issue slots for the rest of the batch.
            for &sm in &sm_ids {
                batch.gpu.sm_quota(sm).set_gated(k, true);
            }
            batch.active[slot] = false;
            if done {
                let t = self.requests[id].tenant;
                let launches = stats.kernel(k).launches_completed.max(1);
                if let Some(fp) = kernel_footprint_bytes(
                    &batch.gpu.counter_registry(),
                    slot,
                    self.line_bytes[self.devices[di].class],
                ) {
                    self.ws[t].observe(fp / launches);
                }
                self.complete(id, end);
                self.devices[di].served += 1;
            } else {
                let t = self.requests[id].tenant;
                self.tenants[t].timeouts += 1;
                self.retry_or_shed(id, end);
            }
        }

        if batch.active.iter().any(|&a| a) {
            // Refresh the migration checkpoint on the configured cadence —
            // the GPU sits at an epoch boundary here, so the snapshot is
            // legal.
            if self.cfg.migration.enabled
                && self
                    .tick_index
                    .wrapping_add(1)
                    .is_multiple_of(self.cfg.migration.checkpoint_every_ticks)
            {
                let blob =
                    batch.gpu.snapshot().expect("busy devices sit at epoch boundaries at ticks");
                batch.ckpt = Some(Ckpt { blob: blob.to_bytes(), gpu_cycle: batch.gpu.cycle() });
            }
            self.devices[di].batch = Some(batch);
        } else {
            // Batch over: drop the GPU and retire transient faults that
            // fired inside it. Device-terminal faults (loss, wedge) stay
            // pending even if they technically fired — a batch whose work
            // happened to finish before the watchdog could trip must not
            // launder the device back to health; the next batch on it will
            // hit the fault at cycle zero and be classified properly.
            let ran = batch.gpu.cycle();
            let base = batch.fault_base;
            self.devices[di].pending_faults.retain(|f| {
                matches!(f.kind, FaultKind::DeviceLoss | FaultKind::DeviceWedge)
                    || f.at_cycle.saturating_sub(base) >= ran
            });
        }
    }

    /// Applies patience and timeout limits to the pending-migration queue:
    /// a migration nobody can host falls back to bounded retry, so the
    /// queue can never hold work forever.
    fn expire_migrations(&mut self, end: u64) {
        if self.pending_migrations.is_empty() {
            return;
        }
        let patience = self.cfg.migration.patience_ticks.saturating_mul(self.cfg.tick_cycles);
        let pending = std::mem::take(&mut self.pending_migrations);
        for pm in pending {
            if end.saturating_sub(pm.started_at) >= self.cfg.timeout_cycles {
                self.migration_fallbacks += 1;
                for id in pm.live_requests() {
                    let t = self.requests[id].tenant;
                    self.tenants[t].timeouts += 1;
                    self.retry_or_shed(id, end);
                }
            } else if end.saturating_sub(pm.enqueued_at) >= patience {
                self.migration_fallbacks += 1;
                for id in pm.live_requests() {
                    self.evictions += 1;
                    self.retry_or_shed(id, end);
                }
            } else {
                self.pending_migrations.push(pm);
            }
        }
    }

    /// Retires `id` as completed at `end`.
    fn complete(&mut self, id: usize, end: u64) {
        let req = &mut self.requests[id];
        req.state = RequestState::Done { finished_at: end };
        let t = req.tenant;
        let latency = end - req.arrived_at;
        let retries = u64::from(req.retries);
        let c = &mut self.tenants[t];
        c.completed += 1;
        c.latency_sum += latency;
        c.latency_max = c.latency_max.max(latency);
        c.latency_hist.record(latency);
        c.retry_hist.record(retries);
        if let Some(slo) = self.cfg.tenants[t].class.slo() {
            if latency <= slo.deadline_cycles {
                c.slo_met += 1;
            }
        }
        self.streams[t].on_completion(end);
    }

    /// Sends `id` through bounded retry with exponential backoff and
    /// deterministic jitter, or sheds it once the budget is exhausted.
    fn retry_or_shed(&mut self, id: usize, end: u64) {
        let req = &mut self.requests[id];
        req.retries += 1;
        let t = req.tenant;
        if req.retries > self.cfg.max_retries {
            req.state = RequestState::Shed { reason: ShedReason::RetriesExhausted, at: end };
            self.tenants[t].shed_retries += 1;
            return;
        }
        // Stateless jitter: re-derived from (seed, request, attempt), so it
        // is identical no matter how the run was interrupted and resumed.
        let exp = (req.retries - 1).min(16);
        let jitter_seed = derive_seed(self.cfg.seed, (id as u64) << 8 | u64::from(req.retries));
        let jitter = SplitMix64::new(jitter_seed).next_below(self.cfg.backoff_base);
        let not_before = end + (self.cfg.backoff_base << exp) + jitter;
        req.state = RequestState::Queued { not_before };
        self.tenants[t].retries += 1;
        self.queue.push_back(id);
    }

    /// Records the per-tick observability sample.
    fn record_sample(&mut self) {
        let mut queued_per_tenant = vec![0u64; self.cfg.tenants.len()];
        for &id in &self.queue {
            queued_per_tenant[self.requests[id].tenant] += 1;
        }
        let tenants = self
            .tenants
            .iter()
            .enumerate()
            .zip(&queued_per_tenant)
            .map(|((t, c), &queued)| TenantSample {
                completed: c.completed,
                slo_met: c.slo_met,
                retries: c.retries,
                shed: c.shed_total(),
                migrated: c.migrated,
                queued,
                latency_p50: c.latency_hist.p50(),
                latency_p90: c.latency_hist.p90(),
                latency_p99: c.latency_hist.p99(),
                latency_p999: c.latency_hist.p999(),
                slo_burn_ppm: self.cfg.tenants[t]
                    .class
                    .slo()
                    .map_or(0, |slo| slo.burn_rate_ppm(c.slo_met, c.arrived)),
            })
            .collect();
        self.samples.push(TickSample {
            cycle: self.cycle,
            queue_depth: self.queue.len() as u64,
            healthy_devices: self.devices.iter().filter(|d| d.fate.is_healthy()).count() as u64,
            shedding: self.shedding,
            pending_migrations: self.pending_migrations.len() as u64,
            tenants,
        });
        if self.series.enabled() {
            let entries = self.counter_registry();
            self.series.sample_deterministic(self.cycle, &entries);
        }
    }

    /// Sheds every live request still waiting in the pending-migration
    /// queue (endgame paths).
    fn shed_pending_migrations(&mut self, reason: ShedReason, now: u64) {
        let pending = std::mem::take(&mut self.pending_migrations);
        for pm in pending {
            for id in pm.live_requests() {
                let t = self.requests[id].tenant;
                self.requests[id].state = RequestState::Shed { reason, at: now };
                self.tenants[t].shed_other += 1;
            }
        }
    }

    /// Decides whether the run is over, applying the graceful-degradation
    /// endgames: a dead fleet sheds its queue (and any in-flight
    /// migrations), and the tick safety net sheds whatever is still
    /// pending.
    fn check_finished(&mut self) {
        let healthy = self.devices.iter().filter(|d| d.fate.is_healthy()).count();
        if healthy == 0 {
            let now = self.cycle;
            while let Some(id) = self.queue.pop_front() {
                let t = self.requests[id].tenant;
                self.requests[id].state =
                    RequestState::Shed { reason: ShedReason::FleetDead, at: now };
                self.tenants[t].shed_other += 1;
            }
            self.shed_pending_migrations(ShedReason::FleetDead, now);
            self.finished = true;
            return;
        }
        if self.tick_index >= self.cfg.max_ticks {
            let now = self.cycle;
            // Evict still-running work first, then drain the queue.
            for di in 0..self.devices.len() {
                if let Some(batch) = self.devices[di].batch.take() {
                    for (&id, &live) in batch.requests.iter().zip(&batch.active) {
                        if live {
                            let t = self.requests[id].tenant;
                            self.requests[id].state =
                                RequestState::Shed { reason: ShedReason::Unfinished, at: now };
                            self.tenants[t].shed_other += 1;
                        }
                    }
                }
            }
            while let Some(id) = self.queue.pop_front() {
                let t = self.requests[id].tenant;
                self.requests[id].state =
                    RequestState::Shed { reason: ShedReason::Unfinished, at: now };
                self.tenants[t].shed_other += 1;
            }
            self.shed_pending_migrations(ShedReason::Unfinished, now);
            self.finished = true;
            return;
        }
        let drained = self.streams.iter().all(ArrivalStream::exhausted)
            && self.queue.is_empty()
            && self.pending_migrations.is_empty()
            && self.devices.iter().all(|d| d.batch.is_none());
        if drained {
            self.finished = true;
        }
    }

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    /// Every fleet counter, in stable order: machine scope first, then one
    /// block per tenant, then one block per device — the fleet-level
    /// extension of [`Gpu::counter_registry`].
    pub fn counter_registry(&self) -> Vec<CounterEntry> {
        use CounterKind::{Counter, Gauge};
        let mut out = Vec::new();
        let mut push = |name, scope, kind, value: i64| {
            out.push(CounterEntry { name, scope, kind, value });
        };
        let machine = CounterScope::Machine;
        let as_i64 = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
        push("fleet_cycle", machine, Gauge, as_i64(self.cycle));
        push("fleet_ticks", machine, Counter, as_i64(self.tick_index));
        push("fleet_queue_depth", machine, Gauge, self.queue.len() as i64);
        push(
            "fleet_healthy_devices",
            machine,
            Gauge,
            self.devices.iter().filter(|d| d.fate.is_healthy()).count() as i64,
        );
        push("fleet_shedding", machine, Gauge, i64::from(self.shedding));
        push("fleet_evictions", machine, Counter, as_i64(self.evictions));
        push("fleet_migrations", machine, Counter, self.migrations.len() as i64);
        push("fleet_migrated_requests", machine, Counter, as_i64(self.migrated_requests()));
        push("fleet_pending_migrations", machine, Gauge, self.pending_migrations.len() as i64);
        push("fleet_migration_fallbacks", machine, Counter, as_i64(self.migration_fallbacks));
        for (t, c) in self.tenants.iter().enumerate() {
            let scope = CounterScope::Tenant(t);
            push("arrived", scope, Counter, as_i64(c.arrived));
            push("completed", scope, Counter, as_i64(c.completed));
            push("slo_met", scope, Counter, as_i64(c.slo_met));
            push("timeouts", scope, Counter, as_i64(c.timeouts));
            push("retries", scope, Counter, as_i64(c.retries));
            push("migrated", scope, Counter, as_i64(c.migrated));
            push("shed", scope, Counter, as_i64(c.shed_total()));
            push("ws_estimate_bytes", scope, Gauge, as_i64(self.ws[t].estimate()));
            push("latency_p50", scope, Gauge, as_i64(c.latency_hist.p50()));
            push("latency_p90", scope, Gauge, as_i64(c.latency_hist.p90()));
            push("latency_p99", scope, Gauge, as_i64(c.latency_hist.p99()));
            push("latency_p999", scope, Gauge, as_i64(c.latency_hist.p999()));
            if let Some(slo) = self.cfg.tenants[t].class.slo() {
                push("slo_burn_ppm", scope, Gauge, as_i64(slo.burn_rate_ppm(c.slo_met, c.arrived)));
                push("error_budget_ppm", scope, Gauge, i64::from(slo.error_budget_ppm()));
            }
        }
        for (di, d) in self.devices.iter().enumerate() {
            let scope = CounterScope::Device(di);
            push("batches", scope, Counter, as_i64(d.batches));
            push("served", scope, Counter, as_i64(d.served));
            push("healthy", scope, Gauge, i64::from(d.fate.is_healthy()));
        }
        out
    }

    /// Jain's fairness index over per-tenant completion ratios (completed /
    /// arrived). 1.0 is perfectly fair; tends to `1/n` as service collapses
    /// onto one tenant. Tenants with no arrivals are excluded.
    pub fn fairness_index(&self) -> f64 {
        let ratios: Vec<f64> = self
            .tenants
            .iter()
            .filter(|c| c.arrived > 0)
            .map(|c| c.completed as f64 / c.arrived as f64)
            .collect();
        if ratios.is_empty() {
            return 1.0;
        }
        let sum: f64 = ratios.iter().sum();
        let sq: f64 = ratios.iter().map(|x| x * x).sum();
        if sq == 0.0 {
            return 1.0;
        }
        (sum * sum) / (ratios.len() as f64 * sq)
    }

    /// Renders the deterministic fleet report. Pure function of the fleet
    /// state: two runs with the same config and seed — interrupted or not —
    /// produce byte-identical output.
    pub fn report(&self, title: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fleet {title} [seed {}, {} device(s), {} tenant(s), {} tick(s), {} cycles]",
            self.cfg.seed,
            self.cfg.total_devices(),
            self.cfg.tenants.len(),
            self.tick_index,
            self.cycle
        );
        for (spec, c) in self.cfg.tenants.iter().zip(&self.tenants) {
            let class = if spec.class.is_guaranteed() { "guaranteed " } else { "best-effort" };
            let slo = match spec.class.slo() {
                Some(slo) => {
                    let pct = if c.arrived == 0 {
                        100.0
                    } else {
                        c.slo_met as f64 * 100.0 / c.arrived as f64
                    };
                    let verdict =
                        if slo.satisfied_by(c.slo_met, c.arrived) { "MET" } else { "MISSED" };
                    format!(
                        "slo {}/{} ({:.1}% >= {:.1}%) {}",
                        c.slo_met,
                        c.arrived,
                        pct,
                        slo.floor_fraction() * 100.0,
                        verdict
                    )
                }
                None => "slo -".to_string(),
            };
            let mean_latency = c.latency_sum.checked_div(c.completed).unwrap_or(0);
            let _ = writeln!(
                out,
                "  tenant {:<12} {class}  arrived {:>4}  done {:>4}  {slo}  \
                 retries {}  timeouts {}  migrated {}  shed {} (admission {}, overload {}, \
                 retries {}, other {})  latency mean {} max {} p50 {} p95 {} p99 {}",
                spec.name,
                c.arrived,
                c.completed,
                c.retries,
                c.timeouts,
                c.migrated,
                c.shed_total(),
                c.shed_admission,
                c.shed_overload,
                c.shed_retries,
                c.shed_other,
                mean_latency,
                c.latency_max,
                c.latency_hist.p50(),
                c.latency_hist.p95(),
                c.latency_hist.p99()
            );
        }
        for d in &self.devices {
            let fate = match d.fate {
                DeviceFate::Healthy => "healthy".to_string(),
                DeviceFate::Lost { at } => format!("lost at {at}"),
                DeviceFate::Wedged { at } => format!("wedged at {at}"),
                DeviceFate::Drained { at } => format!("drained at {at}"),
            };
            let _ = writeln!(
                out,
                "  device {} ({}): {:<16} batches {:>3}  served {:>4}",
                d.id, self.cfg.classes[d.class].name, fate, d.batches, d.served
            );
        }
        let _ = writeln!(
            out,
            "  migrations: {} completed ({} requests resumed), {} pending, {} fallback(s)",
            self.migrations.len(),
            self.migrated_requests(),
            self.pending_migrations.len(),
            self.migration_fallbacks
        );
        let arrived: u64 = self.tenants.iter().map(|c| c.arrived).sum();
        let completed: u64 = self.tenants.iter().map(|c| c.completed).sum();
        let shed: u64 = self.tenants.iter().map(|c| c.shed_total()).sum();
        let _ = writeln!(
            out,
            "  goodput {completed}/{arrived} requests, {shed} shed, {} evicted, {} migrated, \
             {} lost | fairness {:.3}",
            self.evictions,
            self.migrated_requests(),
            self.lost_requests(),
            self.fairness_index()
        );
        let _ = writeln!(
            out,
            "  guaranteed SLOs: {}",
            if self.all_guaranteed_met() { "MET" } else { "MISSED" }
        );
        out
    }

    // ------------------------------------------------------------------
    // Snapshot / restore
    // ------------------------------------------------------------------

    /// Serializes the complete fleet state — including in-flight
    /// migrations. Legal at tick boundaries only (which is the only time
    /// callers can observe the fleet anyway): every busy device then sits
    /// at an epoch boundary, so the embedded GPU snapshots are legal too.
    ///
    /// # Panics
    ///
    /// Panics if a busy device is somehow off an epoch boundary (a fleet
    /// invariant violation).
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        FLEET_SNAPSHOT_VERSION.encode(&mut out);
        self.cfg.fingerprint().encode(&mut out);
        self.cycle.encode(&mut out);
        self.tick_index.encode(&mut out);
        self.shedding.encode(&mut out);
        self.finished.encode(&mut out);
        self.requests.encode(&mut out);
        let queue: Vec<u64> = self.queue.iter().map(|&id| id as u64).collect();
        queue.encode(&mut out);
        self.streams.encode(&mut out);
        self.tenants.encode(&mut out);
        self.ws.encode(&mut out);
        self.pending_migrations.encode(&mut out);
        self.migrations.encode(&mut out);
        self.migration_fallbacks.encode(&mut out);
        self.evictions.encode(&mut out);
        self.samples.encode(&mut out);
        self.series.encode(&mut out);
        (self.devices.len() as u64).encode(&mut out);
        for d in &self.devices {
            d.id.encode(&mut out);
            d.fate.encode(&mut out);
            d.batches.encode(&mut out);
            d.served.encode(&mut out);
            d.pending_faults.encode(&mut out);
            d.pending_drains.encode(&mut out);
            match &d.batch {
                None => out.push(0),
                Some(b) => {
                    out.push(1);
                    let ids: Vec<u64> = b.requests.iter().map(|&id| id as u64).collect();
                    ids.encode(&mut out);
                    b.active.encode(&mut out);
                    b.started_at.encode(&mut out);
                    b.fault_base.encode(&mut out);
                    b.faults.encode(&mut out);
                    b.ckpt.encode(&mut out);
                    let blob =
                        b.gpu.snapshot().expect("busy devices sit at epoch boundaries at ticks");
                    blob.to_bytes().encode(&mut out);
                }
            }
        }
        out
    }

    /// Reconstructs a fleet from [`Fleet::snapshot`] bytes under `cfg`.
    ///
    /// # Errors
    ///
    /// A description of the mismatch: wrong snapshot version, a config
    /// whose fingerprint differs from the one the snapshot was taken
    /// under, or a corrupt encoding.
    pub fn restore(cfg: FleetConfig, bytes: &[u8]) -> Result<Fleet, String> {
        cfg.validate().map_err(|e| e.to_string())?;
        let mut r = SnapReader::new(bytes);
        let fail = |e: SnapError| format!("fleet snapshot: {e:?}");
        let version = u32::decode(&mut r).map_err(fail)?;
        if version != FLEET_SNAPSHOT_VERSION {
            return Err(format!(
                "fleet snapshot version {version}, this build expects {FLEET_SNAPSHOT_VERSION}"
            ));
        }
        let fingerprint = u64::decode(&mut r).map_err(fail)?;
        if fingerprint != cfg.fingerprint() {
            return Err("fleet snapshot was taken under a different configuration".to_string());
        }
        let cycle = u64::decode(&mut r).map_err(fail)?;
        let tick_index = u64::decode(&mut r).map_err(fail)?;
        let shedding = bool::decode(&mut r).map_err(fail)?;
        let finished = bool::decode(&mut r).map_err(fail)?;
        let requests = Vec::<Request>::decode(&mut r).map_err(fail)?;
        let queue: VecDeque<usize> =
            Vec::<u64>::decode(&mut r).map_err(fail)?.into_iter().map(|id| id as usize).collect();
        let streams = Vec::<ArrivalStream>::decode(&mut r).map_err(fail)?;
        let tenants = Vec::<TenantCounters>::decode(&mut r).map_err(fail)?;
        let ws = Vec::<WorkingSetTracker>::decode(&mut r).map_err(fail)?;
        let pending_migrations = Vec::<PendingMigration>::decode(&mut r).map_err(fail)?;
        let migrations = Vec::<MigrationRecord>::decode(&mut r).map_err(fail)?;
        let migration_fallbacks = u64::decode(&mut r).map_err(fail)?;
        let evictions = u64::decode(&mut r).map_err(fail)?;
        let samples = Vec::<TickSample>::decode(&mut r).map_err(fail)?;
        let series = TimeSeries::decode(&mut r).map_err(fail)?;
        let n_devices = u64::decode(&mut r).map_err(fail)? as usize;
        let mut devices = Vec::with_capacity(n_devices);
        for _ in 0..n_devices {
            let id = u32::decode(&mut r).map_err(fail)?;
            let fate = DeviceFate::decode(&mut r).map_err(fail)?;
            let batches = u64::decode(&mut r).map_err(fail)?;
            let served = u64::decode(&mut r).map_err(fail)?;
            let pending_faults = Vec::<FleetFault>::decode(&mut r).map_err(fail)?;
            let pending_drains = Vec::<u64>::decode(&mut r).map_err(fail)?;
            if id >= cfg.total_devices() {
                return Err("fleet snapshot shape does not match the configuration".to_string());
            }
            let class = cfg.class_of(id);
            let batch = match u8::decode(&mut r).map_err(fail)? {
                0 => None,
                1 => {
                    let ids: Vec<usize> = Vec::<u64>::decode(&mut r)
                        .map_err(fail)?
                        .into_iter()
                        .map(|id| id as usize)
                        .collect();
                    let active = Vec::<bool>::decode(&mut r).map_err(fail)?;
                    let started_at = u64::decode(&mut r).map_err(fail)?;
                    let fault_base = u64::decode(&mut r).map_err(fail)?;
                    let faults = FaultPlan::decode(&mut r).map_err(fail)?;
                    let ckpt = Option::<Ckpt>::decode(&mut r).map_err(fail)?;
                    let blob_bytes = Vec::<u8>::decode(&mut r).map_err(fail)?;
                    let blob = SnapshotBlob::from_bytes(&blob_bytes)
                        .map_err(|e| format!("fleet snapshot: device blob: {e}"))?;
                    let mut gpu = Gpu::new(cfg.device_config(class, faults.clone()));
                    gpu.restore(&blob)
                        .map_err(|e| format!("fleet snapshot: device restore: {e}"))?;
                    Some(Batch {
                        requests: ids,
                        active,
                        started_at,
                        fault_base,
                        faults,
                        ckpt,
                        gpu,
                        step_err: None,
                    })
                }
                _ => return Err("fleet snapshot: invalid batch tag".to_string()),
            };
            devices.push(Device {
                id,
                class,
                fate,
                batches,
                served,
                pending_faults,
                pending_drains,
                batch,
            });
        }
        if devices.len() != cfg.total_devices() as usize || tenants.len() != cfg.tenants.len() {
            return Err("fleet snapshot shape does not match the configuration".to_string());
        }
        let policy = placement::resolve(&cfg.placement)
            .ok_or_else(|| "fleet snapshot: placement policy is unregistered".to_string())?;
        let class_compat: Vec<u64> =
            (0..cfg.classes.len()).map(|ci| cfg.class_compat_fingerprint(ci)).collect();
        let line_bytes: Vec<u32> = (0..cfg.classes.len())
            .map(|ci| cfg.device_config(ci, FaultPlan::none()).mem.line_bytes)
            .collect();
        Ok(Fleet {
            cfg,
            policy,
            class_compat,
            line_bytes,
            cycle,
            tick_index,
            shedding,
            finished,
            devices,
            requests,
            queue,
            streams,
            tenants,
            ws,
            pending_migrations,
            migrations,
            migration_fallbacks,
            evictions,
            samples,
            series,
            prof: HostProfiler::new(),
        })
    }

    /// Convenience: checksummed one-shot encoding of `snapshot` (FNV-1a
    /// appended), for callers that persist fleet state without the
    /// harness's framing.
    pub fn snapshot_checksummed(&self) -> Vec<u8> {
        let mut bytes = self.snapshot();
        let sum = snap::fnv1a(&bytes);
        sum.encode(&mut bytes);
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{
        DeviceClass, FleetConfig, MigrationConfig, Placement, PlannedDrain, TenantSpec,
    };
    use crate::scenarios;
    use gpu_sim::FaultKind;
    use qos_core::{SloTarget, TenantClass};
    use workloads::arrival::ArrivalModel;

    #[test]
    fn steady_scenario_serves_every_request() {
        let mut fleet = Fleet::new(scenarios::steady(7));
        fleet.run_to_completion();
        assert!(fleet.finished());
        assert_eq!(fleet.lost_requests(), 0, "every request must reach a terminal state");
        let done: u64 = fleet.tenant_counters().iter().map(|c| c.completed).sum();
        let arrived: u64 = fleet.tenant_counters().iter().map(|c| c.arrived).sum();
        assert_eq!(done, arrived, "an unloaded healthy fleet completes everything");
        assert!(fleet.all_guaranteed_met());
    }

    #[test]
    fn same_seed_runs_produce_byte_identical_reports() {
        let mut a = Fleet::new(scenarios::chaos(42));
        let mut b = Fleet::new(scenarios::chaos(42));
        a.run_to_completion();
        b.run_to_completion();
        assert_eq!(a.report("chaos"), b.report("chaos"));
    }

    #[test]
    fn admission_control_rejects_best_effort_that_would_break_the_horizon() {
        // One device (4 slots) defending a 5k-cycle guaranteed deadline with
        // a 30k-cycle service estimate: slot capacity within the horizon is
        // 4 * 5k = 20k cycles, so a single best-effort request (30k) already
        // projects past it and must be rejected at the door.
        let cfg = FleetConfig {
            classes: vec![DeviceClass::small(1)],
            placement: Placement::Binpack,
            migration: MigrationConfig::default(),
            seed: 3,
            epoch_cycles: 1_000,
            tick_cycles: 4_000,
            timeout_cycles: 60_000,
            max_retries: 2,
            backoff_base: 2_000,
            est_service_cycles: 30_000,
            shed_enter_permille: 100_000, // hysteresis far out of the way
            shed_exit_permille: 99_999,
            max_ticks: 300,
            tenants: vec![
                TenantSpec {
                    name: "gold".into(),
                    class: TenantClass::guaranteed(SloTarget::new(5_000, 1)),
                    arrival: ArrivalModel::Open { mean_gap: 50_000 },
                    requests: 2,
                    grid_tbs: 4,
                    mem_bytes: 1 << 20,
                },
                TenantSpec {
                    name: "riffraff".into(),
                    class: TenantClass::best_effort(),
                    arrival: ArrivalModel::Open { mean_gap: 2_000 },
                    requests: 8,
                    grid_tbs: 4,
                    mem_bytes: 1 << 20,
                },
            ],
            faults: Vec::new(),
            drains: Vec::new(),
        };
        let mut fleet = Fleet::new(cfg);
        fleet.run_to_completion();
        let be = &fleet.tenant_counters()[1];
        assert_eq!(be.arrived, 8);
        assert_eq!(
            be.shed_admission, 8,
            "every best-effort request should be rejected at admission"
        );
        let gold = &fleet.tenant_counters()[0];
        assert_eq!(gold.shed_total(), 0, "guaranteed work is never shed");
        assert_eq!(fleet.lost_requests(), 0);
    }

    #[test]
    fn shedding_engages_under_overload_without_flapping() {
        let mut fleet = Fleet::new(scenarios::overload(11));
        fleet.run_to_completion();
        let shed_overload: u64 =
            fleet.tenant_counters().iter().map(|c| c.shed_overload + c.shed_admission).sum();
        assert!(shed_overload > 0, "the flood tenant must lose work");
        // Hysteresis: the shedding flag may engage and disengage, but must
        // not oscillate tick to tick.
        let transitions =
            fleet.samples().windows(2).filter(|w| w[0].shedding != w[1].shedding).count();
        assert!(transitions <= 4, "shedding flapped: {transitions} transitions");
        assert!(fleet.all_guaranteed_met(), "overload must not break the guarantee");
        assert_eq!(fleet.lost_requests(), 0);
    }

    #[test]
    fn device_loss_migrates_in_flight_batches_to_spares() {
        let mut fleet = Fleet::new(scenarios::chaos(scenarios::DEFAULT_SEED));
        fleet.run_to_completion();
        let fates: Vec<DeviceFate> = fleet.devices.iter().map(|d| d.fate).collect();
        assert!(
            fates.iter().any(|f| matches!(f, DeviceFate::Lost { .. })),
            "the scheduled device loss must fire: {fates:?}"
        );
        assert!(
            fates.iter().any(|f| matches!(f, DeviceFate::Wedged { .. })),
            "the scheduled wedge must be watchdog-classified: {fates:?}"
        );
        assert!(
            fleet.migrated_requests() > 0,
            "in-flight work on the dead devices resumes via migration"
        );
        assert_eq!(fleet.lost_requests(), 0, "migrated requests never vanish");
        assert!(fleet.all_guaranteed_met(), "survivors must absorb the guaranteed load");
        let healthy_served: u64 =
            fleet.devices.iter().filter(|d| d.fate.is_healthy()).map(|d| d.served).sum();
        assert!(healthy_served > 0);
        // Migration preserved the retry budget on the resumed requests.
        for rec in fleet.migrations() {
            assert!(matches!(
                rec.reason,
                MigrationReason::DeviceLost | MigrationReason::DeviceWedged
            ));
        }
    }

    #[test]
    fn with_migration_disabled_device_loss_falls_back_to_eviction() {
        let mut cfg = scenarios::chaos(scenarios::DEFAULT_SEED);
        cfg.migration.enabled = false;
        let mut fleet = Fleet::new(cfg);
        fleet.run_to_completion();
        assert!(fleet.evictions() > 0, "without migration, victims retry from scratch");
        assert_eq!(fleet.migrated_requests(), 0);
        assert_eq!(fleet.lost_requests(), 0);
    }

    #[test]
    fn wedge_during_final_drain_tick_classifies_before_accounting() {
        // A tiny request completes a few thousand cycles into the tick; the
        // wedge fires later in the same tick (device cycle 12_000) and the
        // watchdog classifies it before the tick ends. The fix under test:
        // the device fate must be recorded BEFORE accounting, yet the
        // completion that beat the wedge still counts — no eviction, no
        // retry, no laundering of the sticky fault.
        let cfg = FleetConfig {
            classes: vec![DeviceClass::small(1)],
            placement: Placement::Binpack,
            migration: MigrationConfig::default(),
            seed: 9,
            epoch_cycles: 1_000,
            tick_cycles: 16_000,
            timeout_cycles: 120_000,
            max_retries: 3,
            backoff_base: 2_000,
            est_service_cycles: 20_000,
            shed_enter_permille: 900,
            shed_exit_permille: 500,
            max_ticks: 40,
            tenants: vec![TenantSpec {
                name: "lone".into(),
                class: TenantClass::guaranteed(SloTarget::new(200_000, 1)),
                arrival: ArrivalModel::Open { mean_gap: 1 },
                requests: 1,
                grid_tbs: 2,
                mem_bytes: 1 << 20,
            }],
            // The request arrives by cycle 2, is placed at the tick-1
            // boundary (fleet cycle 16_000), so fleet cycle 28_000 is
            // device cycle 12_000 — mid-tick, after the kernel completes.
            faults: vec![FleetFault { at_cycle: 28_000, device: 0, kind: FaultKind::DeviceWedge }],
            drains: Vec::new(),
        };
        let mut fleet = Fleet::new(cfg);
        fleet.run_to_completion();
        assert!(
            matches!(fleet.devices[0].fate, DeviceFate::Wedged { .. }),
            "the wedge must be classified even though the batch's work completed: {:?}",
            fleet.devices[0].fate
        );
        let c = &fleet.tenant_counters()[0];
        assert_eq!(c.completed, 1, "the completion that beat the wedge still counts");
        assert_eq!(c.retries, 0, "no retry: the request finished");
        assert_eq!(fleet.evictions(), 0, "nothing was evicted");
        assert_eq!(fleet.requests()[0].retries, 0);
        assert!(matches!(fleet.requests()[0].state, RequestState::Done { .. }));
        assert_eq!(fleet.lost_requests(), 0);
    }

    #[test]
    fn planned_drain_migrates_the_batch_and_retires_the_device() {
        // Both requests arrive within the first tick (gap 1) and binpack
        // onto device 0 at the cycle-4000 boundary; the drain at 8_000
        // catches the batch mid-flight, so it must migrate to device 1.
        let cfg = FleetConfig {
            classes: vec![DeviceClass::small(2)],
            placement: Placement::Binpack,
            migration: MigrationConfig::default(),
            seed: 17,
            epoch_cycles: 1_000,
            tick_cycles: 4_000,
            timeout_cycles: 120_000,
            max_retries: 3,
            backoff_base: 2_000,
            est_service_cycles: 20_000,
            shed_enter_permille: 900,
            shed_exit_permille: 500,
            max_ticks: 300,
            tenants: vec![TenantSpec {
                name: "latency".into(),
                class: TenantClass::guaranteed(SloTarget::new(300_000, 900_000)),
                arrival: ArrivalModel::Open { mean_gap: 1 },
                requests: 2,
                grid_tbs: 8,
                mem_bytes: 64 << 20,
            }],
            faults: Vec::new(),
            drains: vec![PlannedDrain { at_cycle: 8_000, device: 0 }],
        };
        let mut fleet = Fleet::new(cfg);
        fleet.run_to_completion();
        assert!(
            matches!(fleet.devices[0].fate, DeviceFate::Drained { .. }),
            "the drain must retire device 0: {:?}",
            fleet.devices[0].fate
        );
        assert!(
            fleet.migrations().iter().any(|m| m.reason == MigrationReason::Drain),
            "the drained device's batch must migrate: {:?}",
            fleet.migrations()
        );
        let done: u64 = fleet.tenant_counters().iter().map(|c| c.completed).sum();
        let arrived: u64 = fleet.tenant_counters().iter().map(|c| c.arrived).sum();
        assert_eq!(done, arrived, "a planned drain loses nothing");
        assert_eq!(fleet.lost_requests(), 0);
        assert!(fleet.all_guaranteed_met());
    }

    #[test]
    fn shed_pressure_preempts_best_effort_for_guaranteed_work() {
        // One device. Four best-effort requests fill it early; the
        // guaranteed request arrives while they run. Shedding engages
        // (enter threshold sits between 4 and 5 outstanding requests), and
        // the scheduler preempts the all-best-effort batch — snapshotted
        // fresh — to serve the guaranteed request immediately. The
        // preempted batch later resumes on the same device and completes.
        let cfg = FleetConfig {
            classes: vec![DeviceClass::small(1)],
            placement: Placement::Binpack,
            migration: MigrationConfig {
                enabled: true,
                checkpoint_every_ticks: 1,
                patience_ticks: 60,
            },
            seed: 2,
            epoch_cycles: 1_000,
            tick_cycles: 4_000,
            timeout_cycles: 400_000,
            max_retries: 3,
            backoff_base: 2_000,
            est_service_cycles: 30_000,
            shed_enter_permille: 280,
            shed_exit_permille: 100,
            max_ticks: 600,
            tenants: vec![
                TenantSpec {
                    name: "gold".into(),
                    class: TenantClass::guaranteed(SloTarget::new(120_000, 1)),
                    arrival: ArrivalModel::Open { mean_gap: 8_000 },
                    requests: 1,
                    grid_tbs: 8,
                    mem_bytes: 1 << 20,
                },
                TenantSpec {
                    name: "batch".into(),
                    class: TenantClass::best_effort(),
                    arrival: ArrivalModel::Open { mean_gap: 1 },
                    requests: 4,
                    grid_tbs: 32,
                    mem_bytes: 1 << 20,
                },
            ],
            faults: Vec::new(),
            drains: Vec::new(),
        };
        let mut fleet = Fleet::new(cfg);
        fleet.run_to_completion();
        assert!(
            fleet.migrations().iter().any(|m| m.reason == MigrationReason::ShedPressure),
            "shed pressure must preempt the best-effort batch: {:?}",
            fleet.migrations()
        );
        assert!(fleet.all_guaranteed_met(), "the preemption exists to protect the guarantee");
        let done: u64 = fleet.tenant_counters().iter().map(|c| c.completed).sum();
        let arrived: u64 = fleet.tenant_counters().iter().map(|c| c.arrived).sum();
        assert_eq!(done, arrived, "preempted work resumes and completes — zero loss");
        assert_eq!(fleet.lost_requests(), 0);
    }

    #[test]
    fn working_set_estimates_converge_below_inflated_declarations() {
        // The tenant declares half a device of memory per request; its
        // kernels actually touch a few hundred KiB. After completions the
        // EWMA must have moved off the declaration.
        let mut cfg = scenarios::steady(23);
        cfg.tenants[0].mem_bytes = 512 << 20;
        let declared = cfg.tenants[0].mem_bytes;
        let mut fleet = Fleet::new(cfg);
        fleet.run_to_completion();
        assert!(fleet.tenant_counters()[0].completed > 0);
        assert!(
            fleet.working_set_estimate(0) < declared,
            "measured working set ({}) must fall below the declaration ({declared})",
            fleet.working_set_estimate(0)
        );
        assert_eq!(fleet.lost_requests(), 0);
    }

    #[test]
    fn memory_admission_rejects_overcommitted_best_effort() {
        // Device memory is 1 GiB; each best-effort request declares 900 MiB.
        // Cycle-load admission is disabled (tiny estimate, huge horizon), so
        // any admission shed is memory-driven.
        let cfg = FleetConfig {
            classes: vec![DeviceClass::small(1)],
            placement: Placement::Binpack,
            migration: MigrationConfig::default(),
            seed: 31,
            epoch_cycles: 1_000,
            tick_cycles: 4_000,
            timeout_cycles: 500_000,
            max_retries: 3,
            backoff_base: 2_000,
            est_service_cycles: 1,
            shed_enter_permille: 100_000,
            shed_exit_permille: 99_999,
            max_ticks: 600,
            tenants: vec![TenantSpec {
                name: "hog".into(),
                class: TenantClass::best_effort(),
                arrival: ArrivalModel::Open { mean_gap: 500 },
                requests: 4,
                grid_tbs: 4,
                mem_bytes: 900 << 20,
            }],
            faults: Vec::new(),
            drains: Vec::new(),
        };
        let mut fleet = Fleet::new(cfg);
        fleet.run_to_completion();
        let c = &fleet.tenant_counters()[0];
        assert!(
            c.shed_admission > 0,
            "co-queuing two 900 MiB working sets on a 1 GiB fleet must shed at admission: {c:?}"
        );
        assert!(c.completed > 0, "the admitted request still completes");
        assert_eq!(fleet.lost_requests(), 0);
    }

    #[test]
    fn snapshot_round_trips_mid_run_and_converges_identically() {
        let cfg = scenarios::chaos(99);
        let mut live = Fleet::new(cfg.clone());
        for _ in 0..12 {
            if live.step() {
                break;
            }
        }
        let bytes = live.snapshot();
        let mut restored = Fleet::restore(cfg, &bytes).expect("restore");
        assert_eq!(restored.cycle(), live.cycle());
        assert_eq!(restored.ticks(), live.ticks());
        live.run_to_completion();
        restored.run_to_completion();
        assert_eq!(live.report("chaos"), restored.report("chaos"));
        // And the counter registries agree row for row.
        assert_eq!(live.counter_registry(), restored.counter_registry());
    }

    #[test]
    fn snapshot_taken_mid_migration_resumes_byte_identically() {
        // Force a pending migration to survive across ticks: every spare
        // of the victim's class is also killed, so the blob waits in the
        // queue. Snapshot in that window, restore, and both runs must
        // converge to byte-identical reports.
        let mut cfg = scenarios::chaos(7);
        cfg.migration.patience_ticks = 4;
        cfg.faults = vec![
            FleetFault { at_cycle: 30_000, device: 1, kind: FaultKind::DeviceLoss },
            FleetFault { at_cycle: 30_000, device: 2, kind: FaultKind::DeviceLoss },
            FleetFault { at_cycle: 30_000, device: 3, kind: FaultKind::DeviceLoss },
        ];
        let mut live = Fleet::new(cfg.clone());
        let mut saw_pending = false;
        let mut bytes = Vec::new();
        while !live.step() {
            if !saw_pending && live.pending_migration_count() > 0 {
                saw_pending = true;
                bytes = live.snapshot();
            }
        }
        assert!(saw_pending, "the triple loss must leave at least one migration in flight");
        let mut restored = Fleet::restore(cfg, &bytes).expect("mid-migration restore");
        assert!(restored.pending_migration_count() > 0, "pending migrations survive the codec");
        restored.run_to_completion();
        assert_eq!(live.report("storm"), restored.report("storm"));
        assert_eq!(live.counter_registry(), restored.counter_registry());
        assert_eq!(restored.lost_requests(), 0);
    }

    #[test]
    fn restore_rejects_a_different_configuration() {
        let mut fleet = Fleet::new(scenarios::steady(5));
        fleet.step();
        let bytes = fleet.snapshot();
        let other = scenarios::steady(6); // different seed, different fingerprint
        let err = Fleet::restore(other, &bytes).expect_err("must reject");
        assert!(err.contains("different configuration"), "{err}");
    }

    #[test]
    fn dead_fleet_sheds_the_queue_instead_of_losing_it() {
        let mut cfg = scenarios::steady(13);
        cfg.classes = vec![DeviceClass::small(1)];
        cfg.faults = vec![FleetFault { at_cycle: 0, device: 0, kind: FaultKind::DeviceLoss }];
        let mut fleet = Fleet::new(cfg);
        fleet.run_to_completion();
        assert!(fleet.finished());
        assert_eq!(fleet.lost_requests(), 0);
        let sheds: u64 = fleet.tenant_counters().iter().map(TenantCounters::shed_total).sum();
        assert!(sheds > 0, "work that arrived before the fleet died must be shed explicitly");
    }

    #[test]
    fn migration_respects_compatibility_classes() {
        // Two classes: the small device dies; the only spare is big. The
        // blob must NOT restore onto the incompatible spare — it waits out
        // its patience and falls back to bounded retry.
        let mut cfg = scenarios::steady(3);
        cfg.classes = vec![DeviceClass::small(1), DeviceClass::big(1)];
        cfg.migration.patience_ticks = 2;
        cfg.placement = Placement::Binpack; // fill the small device first
        cfg.faults = vec![FleetFault { at_cycle: 8_000, device: 0, kind: FaultKind::DeviceLoss }];
        let mut fleet = Fleet::new(cfg);
        fleet.run_to_completion();
        assert!(
            fleet.migrations().iter().all(|m| m.to_device != 1 || m.from_device == 1),
            "a small-class blob must never land on the big device: {:?}",
            fleet.migrations()
        );
        assert_eq!(fleet.lost_requests(), 0);
    }

    #[test]
    fn counter_registry_is_stably_ordered() {
        let mut fleet = Fleet::new(scenarios::steady(21));
        fleet.step();
        let names: Vec<String> =
            fleet.counter_registry().iter().map(|e| format!("{} {}", e.scope, e.name)).collect();
        let machine = names.iter().position(|n| n == "machine fleet_cycle").expect("machine rows");
        let tenant = names.iter().position(|n| n.starts_with("tenant[0]")).expect("tenant rows");
        let device = names.iter().position(|n| n.starts_with("device[0]")).expect("device rows");
        assert!(machine < tenant && tenant < device, "scope blocks out of order: {names:?}");
        let mut sorted = names.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate counter rows");
    }
}
