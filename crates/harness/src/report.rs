//! Plain-text table rendering for experiment reports.
//!
//! All figure regenerators return a `String` so the same output appears in
//! the `repro` binary, the Criterion benches and `EXPERIMENTS.md`.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ =
            writeln!(out, "|{}|", self.header.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate().take(cols) {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate().take(cols) {
                if c > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}", width = widths[c]);
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a ratio with three decimals.
pub fn ratio(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a goal fraction the way the paper's x-axes label it.
pub fn goal_label(frac: f64) -> String {
    format!("{:.0}%", 100.0 * frac)
}

/// Standard report preamble: figure id, what the paper reported, scale note.
pub fn preamble(experiment: &str, paper_claim: &str, scale_note: &str) -> String {
    format!("== {experiment} ==\npaper: {paper_claim}\n{scale_note}\n\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_padding() {
        let mut t = Table::new(["goal", "Spart", "Rollover"]);
        t.row(["50%", "0.9", "1.0"]);
        t.row(vec!["95%"]); // padded
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Rollover"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].trim_start().starts_with("50%"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        let md = t.to_markdown();
        assert_eq!(md, "| a | b |\n|---|---|\n| 1 | 2 |\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.438), "43.8%");
        assert_eq!(ratio(1.0 / 3.0), "0.333");
        assert_eq!(goal_label(0.55), "55%");
    }

    #[test]
    fn preamble_contains_pieces() {
        let p = preamble("Fig. 6a", "Rollover best", "Quick scale");
        assert!(p.contains("Fig. 6a"));
        assert!(p.contains("Rollover best"));
        assert!(p.contains("Quick scale"));
    }
}
