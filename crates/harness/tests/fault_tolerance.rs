//! Acceptance tests for the fault-tolerant sweep runner: a sweep with
//! injected faults still completes, reports every healthy case's result,
//! and names the failed cases in the digest — and with no faults injected,
//! execution stays bit-identical run to run.

use gpu_sim::{FaultKind, FaultPlan};
use harness::cases::{pairs, CaseSpec, Policy};
use harness::error::{failure_digest, FailedCase};
use harness::runner::{run_cases, IsolatedCache};
use qos_core::QuotaScheme;

/// Builds a smoke-scale sweep of `n` distinct pair cases.
fn smoke_sweep(n: usize, cycles: u64) -> Vec<CaseSpec> {
    pairs()
        .into_iter()
        .take(n)
        .map(|(q, b)| {
            CaseSpec::new(&[q, b], &[Some(0.5), None], Policy::Quota(QuotaScheme::Rollover), cycles)
        })
        .collect()
}

#[test]
fn sweep_with_injected_panic_and_livelock_completes_with_18_of_20() {
    let mut specs = smoke_sweep(20, 30_000);
    // Case 4 crashes mid-simulation; case 11 livelocks (all quotas starved
    // and frozen) and must be caught by the watchdog, not the cycle budget.
    specs[4].faults = FaultPlan::one(5_000, FaultKind::Panic);
    specs[11].faults = FaultPlan::one(15_000, FaultKind::StarveQuota);
    specs[11].cycles = 100_000;

    let iso = IsolatedCache::new();
    let results = run_cases(&specs, &iso);
    assert_eq!(results.len(), 20, "every case produces an entry");

    let mut failures = Vec::new();
    for (index, (result, spec)) in results.iter().zip(&specs).enumerate() {
        match result {
            Ok(r) => {
                assert!(r.ipc.iter().all(|&v| v > 0.0), "healthy case {index} must make progress")
            }
            Err(error) => {
                failures.push(FailedCase { index, spec: spec.clone(), error: error.clone() })
            }
        }
    }
    assert_eq!(results.iter().filter(|r| r.is_ok()).count(), 18);
    assert_eq!(failures.len(), 2);
    assert_eq!(failures[0].index, 4);
    assert_eq!(failures[0].error.kind(), "panic");
    assert_eq!(failures[1].index, 11);
    assert_eq!(failures[1].error.kind(), "watchdog");

    let digest = failure_digest(&failures);
    assert!(digest.contains("2 case(s) failed"), "{digest}");
    assert!(digest.contains(&specs[4].label()), "{digest}");
    assert!(digest.contains(&specs[11].label()), "{digest}");
    assert!(digest.contains("[panic]") && digest.contains("[watchdog]"), "{digest}");
}

#[test]
fn fault_free_sweeps_are_bit_identical_across_runs() {
    // Determinism: the health layer (watchdog observation, panic isolation,
    // parallel scheduling) must not perturb results at all.
    let specs = smoke_sweep(6, 30_000);
    let a = run_cases(&specs, &IsolatedCache::new());
    let b = run_cases(&specs, &IsolatedCache::new());
    for (x, y) in a.iter().zip(&b) {
        let (x, y) = (x.as_ref().expect("ok"), y.as_ref().expect("ok"));
        assert_eq!(x.ipc, y.ipc, "IPC must be bit-identical");
        assert_eq!(x.isolated_ipc, y.isolated_ipc);
        assert_eq!(x.goal_ipc, y.goal_ipc);
        assert_eq!(x.insts_per_energy, y.insts_per_energy);
        assert_eq!(x.preemption_saves, y.preemption_saves);
    }
}
