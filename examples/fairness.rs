//! Fairness mode: equalize relative slowdown across sharers (the SMK-style
//! policy the paper's firmware can swap in for QoS management, §3.3).
//!
//! Run with: `cargo run --release --example fairness`

use fgqos::qos::fairness::{jain_index, FairnessController};
use fgqos::sim::SharingMode;
use fgqos::{Gpu, GpuConfig, KernelId, NullController};

fn isolated(name: &str, cycles: u64) -> f64 {
    let mut gpu = Gpu::new(GpuConfig::paper_table1());
    let k = gpu.launch(fgqos::workloads::by_name(name).expect("bundled"));
    gpu.run(cycles, &mut NullController);
    gpu.stats().ipc(k)
}

fn main() {
    let cycles = 200_000;
    let names = ["cutcp", "stencil", "spmv"];
    let iso: Vec<f64> = names.iter().map(|n| isolated(n, cycles)).collect();
    println!("tenants: {names:?} (no SLAs — equalize slowdown)\n");

    // Unmanaged: first-come dispatch monopolizes SM capacity.
    let mut gpu = Gpu::new(GpuConfig::paper_table1());
    let kids: Vec<KernelId> =
        names.iter().map(|n| gpu.launch(fgqos::workloads::by_name(n).expect("bundled"))).collect();
    gpu.set_sharing_mode(SharingMode::Smk);
    gpu.run(cycles, &mut NullController);
    let unmanaged: Vec<f64> =
        kids.iter().zip(&iso).map(|(&k, &i)| gpu.stats().ipc(k) / i).collect();

    // Managed fairness.
    let mut gpu = Gpu::new(GpuConfig::paper_table1());
    let kids: Vec<KernelId> =
        names.iter().map(|n| gpu.launch(fgqos::workloads::by_name(n).expect("bundled"))).collect();
    let mut ctrl = FairnessController::new(iso.clone());
    gpu.run(cycles, &mut ctrl);
    let managed: Vec<f64> = kids.iter().zip(&iso).map(|(&k, &i)| gpu.stats().ipc(k) / i).collect();

    println!("{:<10} {:>12} {:>12}", "kernel", "unmanaged", "fair quotas");
    for (i, name) in names.iter().enumerate() {
        println!("{:<10} {:>11.1}% {:>11.1}%", name, 100.0 * unmanaged[i], 100.0 * managed[i]);
    }
    println!(
        "\nJain fairness index: unmanaged {:.3} -> managed {:.3} (1.0 = perfectly fair)",
        jain_index(&unmanaged),
        jain_index(&managed)
    );
    println!("converged slowdown scale: {:.2}", ctrl.scale());
}
