//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--scale bench|smoke|quick|paper] <experiment>...
//! repro --scale quick all
//! repro fig6a fig9
//! repro list
//! ```

use std::process::ExitCode;

use harness::experiments::Session;
use harness::scale::RunScale;

const EXPERIMENTS: [&str; 19] = [
    "table1",
    "table2",
    "fig5",
    "fig6a",
    "fig6b",
    "fig6c",
    "fig7",
    "fig8a",
    "fig8b",
    "fig8c",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "ablations",
    "ablation-epoch",
    "all",
];

fn usage() -> String {
    format!(
        "usage: repro [--scale bench|smoke|quick|paper] <experiment>...\n\
         \u{20}      repro golden [--bless]\n\
         experiments: {}\n\
         golden: verify the golden-trace corpus (tests/golden/); \
         --bless regenerates it\n",
        EXPERIMENTS.join(" ")
    )
}

/// Verifies (or with `bless` regenerates) the golden-trace corpus.
fn run_golden(bless: bool) -> ExitCode {
    if bless {
        if let Err(e) = harness::golden::bless_all() {
            eprintln!("failed to write golden corpus: {e}");
            return ExitCode::FAILURE;
        }
        for name in harness::golden::SCENARIOS {
            println!("blessed {}", harness::golden::golden_path(name).display());
        }
        return ExitCode::SUCCESS;
    }
    let mut ok = true;
    for name in harness::golden::SCENARIOS {
        match harness::golden::check(name) {
            Ok(()) => println!("golden {name}: ok"),
            Err(e) => {
                ok = false;
                eprintln!("golden {name}: FAILED\n{e}");
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_one(session: &Session, name: &str) -> Option<String> {
    Some(match name {
        "table1" => session.table1(),
        "table2" => session.table2(),
        "fig5" => session.fig5(),
        "fig6a" => session.fig6a(),
        "fig6b" => session.fig6b(),
        "fig6c" => session.fig6c(),
        "fig7" => session.fig7(),
        "fig8a" => session.fig8a(),
        "fig8b" => session.fig8bc(1),
        "fig8c" => session.fig8bc(2),
        "fig9" => session.fig9(),
        "fig10" => session.fig10(),
        "fig11" => session.fig11(),
        "fig12" => session.fig12(),
        "fig13" => session.fig13(),
        "fig14" => session.fig14(),
        "ablation-epoch" => session.ablation_epoch_length(),
        "ablations" => format!(
            "{}\n{}\n{}",
            session.ablation_preemption(),
            session.ablation_history(),
            session.ablation_static()
        ),
        _ => return None,
    })
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    let mut scale = RunScale::Quick;
    let mut bless = false;
    let mut wanted: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bless" => bless = true,
            "--scale" | "-s" => {
                let Some(value) = args.next() else {
                    eprintln!("--scale needs a value\n{}", usage());
                    return ExitCode::FAILURE;
                };
                match RunScale::parse(&value) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("unknown scale {value:?}\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "list" | "--list" => {
                println!("{}", EXPERIMENTS.join("\n"));
                return ExitCode::SUCCESS;
            }
            "help" | "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    if wanted.iter().any(|w| w == "golden") {
        if wanted.len() > 1 {
            eprintln!("`golden` cannot be combined with experiments\n{}", usage());
            return ExitCode::FAILURE;
        }
        return run_golden(bless);
    }
    if bless {
        eprintln!("--bless only applies to `golden`\n{}", usage());
        return ExitCode::FAILURE;
    }
    if wanted.iter().any(|w| w == "all") {
        // `all` covers the paper's tables/figures and the section 4.8
        // ablations; the epoch-length ablation is extra and opt-in.
        wanted = EXPERIMENTS[..EXPERIMENTS.len() - 2]
            .iter()
            .map(|s| s.to_string())
            .collect();
    }
    for w in &wanted {
        if !EXPERIMENTS.contains(&w.as_str()) {
            eprintln!("unknown experiment {w:?}\n{}", usage());
            return ExitCode::FAILURE;
        }
    }

    let session = Session::new(scale);
    for name in &wanted {
        let started = std::time::Instant::now();
        let report = run_one(&session, name).expect("validated above");
        println!("{report}");
        eprintln!("[{name} done in {:.1}s]\n", started.elapsed().as_secs_f64());
    }
    // Every run ends with the failure digest: either the all-clear line or
    // one line per failed case (label, error kind, health summary).
    println!("{}", session.failure_digest());
    if session.failures().is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
