//! The (enhanced) thread-block scheduler.
//!
//! Dispatches TBs to SMs under one of three sharing disciplines:
//!
//! * [`SharingMode::Exclusive`] — a single kernel fills the whole GPU
//!   (isolated baseline runs),
//! * [`SharingMode::Smk`] — fine-grained *simultaneous multikernel* sharing:
//!   every SM hosts TBs of multiple kernels up to per-SM per-kernel targets
//!   set by the QoS manager (the paper's static resource management),
//! * [`SharingMode::Spatial`] — each SM is owned by one kernel (the `Spart`
//!   baseline's substrate).
//!
//! Targets are *enforced*: if an SM hosts more TBs of a kernel than its
//! target allows, the scheduler starts a partial context switch; saved TBs
//! go back to the kernel's preempted pool and are resumed with priority when
//! capacity reappears.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::config::PreemptConfig;
use crate::kernel::KernelDesc;
use crate::memsys::MemSystem;
use crate::preempt::{load_cycles, save_cycles, SavedTb};
use crate::sm::Sm;
use crate::types::{per_kernel, Cycle, KernelId, PerKernel, TbIndex};

/// How concurrently launched kernels share the GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SharingMode {
    /// No sharing constraints: all kernels dispatch greedily everywhere.
    /// With one kernel launched this is the isolated-execution baseline.
    Exclusive,
    /// Fine-grained sharing within each SM, bounded by per-SM per-kernel
    /// TB targets.
    Smk,
    /// Spatial partitioning: each SM executes TBs of its owner kernel only.
    Spatial,
    /// Kernel-granularity time multiplexing (the paper's "third type" of
    /// sharing, Fig. 2a): one kernel owns the whole GPU until it completes a
    /// full grid execution, then the next kernel takes over.
    TimeMux,
}

/// Per-kernel dispatch bookkeeping (grid cursor, re-execution, preempted pool).
#[derive(Debug)]
pub struct KernelRuntime {
    /// The kernel's immutable description.
    pub desc: Arc<KernelDesc>,
    next_tb: u32,
    tbs_completed: u64,
    preempted: Vec<SavedTb>,
}

impl KernelRuntime {
    pub(crate) fn new(desc: Arc<KernelDesc>) -> Self {
        KernelRuntime { desc, next_tb: 0, tbs_completed: 0, preempted: Vec::new() }
    }

    fn next_fresh_tb(&mut self) -> TbIndex {
        let idx = self.next_tb % self.desc.grid_tbs();
        self.next_tb = self.next_tb.wrapping_add(1);
        TbIndex(idx)
    }

    pub(crate) fn note_tb_completed(&mut self) {
        self.tbs_completed += 1;
    }

    /// TBs completed across all grid executions.
    pub fn tbs_completed(&self) -> u64 {
        self.tbs_completed
    }

    /// Full grid executions completed.
    pub fn launches_completed(&self) -> u64 {
        self.tbs_completed / u64::from(self.desc.grid_tbs())
    }

    /// Number of preempted TBs awaiting resumption.
    pub fn preempted_len(&self) -> usize {
        self.preempted.len()
    }
}

const UNLIMITED: u16 = u16::MAX;

/// The thread-block scheduler.
#[derive(Debug)]
pub struct TbScheduler {
    mode: SharingMode,
    targets: Vec<PerKernel<u16>>,
    owner: Vec<Option<KernelId>>,
    active: usize,
    active_baseline: u64,
    completed_scratch: Vec<(KernelId, TbIndex)>,
    saved_scratch: Vec<(KernelId, SavedTb)>,
}

impl TbScheduler {
    pub(crate) fn new(num_sms: usize) -> Self {
        TbScheduler {
            mode: SharingMode::Exclusive,
            targets: (0..num_sms).map(|_| per_kernel(|_| UNLIMITED)).collect(),
            owner: vec![None; num_sms],
            active: 0,
            active_baseline: 0,
            completed_scratch: Vec::new(),
            saved_scratch: Vec::new(),
        }
    }

    /// Current sharing mode.
    pub fn mode(&self) -> SharingMode {
        self.mode
    }

    pub(crate) fn set_mode(&mut self, mode: SharingMode) {
        self.mode = mode;
    }

    /// Sets the SMK TB target for kernel `k` on SM `sm`.
    pub(crate) fn set_target(&mut self, sm: usize, k: KernelId, tbs: u16) {
        self.targets[sm][k.index()] = tbs;
    }

    /// SMK TB target for kernel `k` on SM `sm`.
    pub fn target(&self, sm: usize, k: KernelId) -> u16 {
        self.targets[sm][k.index()]
    }

    /// Assigns the owner kernel of SM `sm` (spatial mode).
    pub(crate) fn set_owner(&mut self, sm: usize, owner: Option<KernelId>) {
        self.owner[sm] = owner;
    }

    /// Owner kernel of SM `sm` (spatial mode).
    pub fn owner(&self, sm: usize) -> Option<KernelId> {
        self.owner[sm]
    }

    fn allowed(&self, sm: usize, k: usize, num_kernels: usize) -> u16 {
        if k >= num_kernels {
            return 0;
        }
        match self.mode {
            SharingMode::Exclusive => UNLIMITED,
            SharingMode::Smk => self.targets[sm][k],
            SharingMode::Spatial => {
                if self.owner[sm].map(KernelId::index) == Some(k) {
                    UNLIMITED
                } else {
                    0
                }
            }
            SharingMode::TimeMux => {
                if self.active == k {
                    UNLIMITED
                } else {
                    0
                }
            }
        }
    }

    /// The kernel currently owning the GPU in [`SharingMode::TimeMux`].
    pub fn active_kernel(&self) -> KernelId {
        KernelId::new(self.active)
    }

    /// Rotates the time-multiplexed owner once it has completed one full
    /// grid execution since taking over (stragglers are preempted by the
    /// regular target enforcement, modelling the drain).
    fn rotate_time_mux(&mut self, kernels: &[KernelRuntime]) {
        if kernels.is_empty() {
            return;
        }
        if self.active >= kernels.len() {
            self.active = 0;
            self.active_baseline = kernels[0].launches_completed();
        }
        if kernels[self.active].launches_completed() > self.active_baseline {
            self.active = (self.active + 1) % kernels.len();
            self.active_baseline = kernels[self.active].launches_completed();
        }
    }

    /// Whether one more TB of kernel `k` fits on SM `si` after setting
    /// aside the capacity other kernels still need to reach their targets.
    fn fits_with_reservations(
        &self,
        si: usize,
        k: usize,
        sm: &Sm,
        kernels: &[KernelRuntime],
    ) -> bool {
        let nk = kernels.len();
        let (mut r_threads, mut r_regs, mut r_smem, mut r_warps, mut r_tbs) =
            (0u64, 0u64, 0u64, 0u64, 0u64);
        for (j, kr) in kernels.iter().enumerate() {
            if j == k {
                continue;
            }
            let allowed = self.allowed(si, j, nk);
            if allowed == UNLIMITED {
                // Unbounded targets (exclusive / spatial owner) reserve
                // nothing: they are not a managed allocation.
                continue;
            }
            let deficit =
                u64::from(allowed).saturating_sub(u64::from(sm.hosted_tbs(KernelId::new(j))));
            if deficit == 0 {
                continue;
            }
            let d = &kr.desc;
            r_threads += deficit * u64::from(d.threads_per_tb());
            r_regs += deficit * d.regfile_bytes_per_tb();
            r_smem += deficit * d.smem_per_tb();
            r_warps += deficit * u64::from(d.warps_per_tb());
            r_tbs += deficit;
        }
        let d = &kernels[k].desc;
        u64::from(sm.free_threads()) >= u64::from(d.threads_per_tb()) + r_threads
            && sm.free_regs() >= d.regfile_bytes_per_tb() + r_regs
            && sm.free_smem() >= d.smem_per_tb() + r_smem
            && u64::from(sm.free_warp_slots()) >= u64::from(d.warps_per_tb()) + r_warps
            && u64::from(sm.free_tb_slots()) > r_tbs
    }

    /// Whether a [`TbScheduler::service`] pass would mutate nothing — no
    /// notifications to drain, no TimeMux rotation due, no kernel over its
    /// target, and no TB that could be dispatched into free capacity.
    ///
    /// Fast-forward uses this to decide whether `DISPATCH_INTERVAL` service
    /// points inside an idle window must be simulated. Every input read here
    /// (outboxes, residency, occupancy, targets, mode) only changes on
    /// cycles that are themselves simulated — issues, transition
    /// completions, controller writes — so a `true` verdict holds for the
    /// whole window. The `now`-dependent dispatch rotation in `service` only
    /// permutes kernel order, which is irrelevant when no kernel can
    /// dispatch.
    pub(crate) fn service_would_noop(&self, sms: &[Sm], kernels: &[KernelRuntime]) -> bool {
        if sms.iter().any(Sm::has_pending_notifications) {
            return false;
        }
        if self.mode == SharingMode::TimeMux && !kernels.is_empty() {
            if self.active >= kernels.len() {
                return false;
            }
            if kernels[self.active].launches_completed() > self.active_baseline {
                return false;
            }
        }
        let nk = kernels.len();
        for (si, sm) in sms.iter().enumerate() {
            let in_flight = sm.context_switch_in_flight();
            for (k, kernel) in kernels.iter().enumerate() {
                let kid = KernelId::new(k);
                let allowed = u32::from(self.allowed(si, k, nk));
                let hosted = sm.hosted_tbs(kid);
                if !in_flight && hosted > allowed {
                    return false;
                }
                if hosted < allowed
                    && sm.can_host(&kernel.desc)
                    && self.fits_with_reservations(si, k, sm, kernels)
                {
                    return false;
                }
            }
        }
        true
    }

    /// Drains SM notifications, enforces targets via preemption, and
    /// dispatches fresh or resumed TBs into free capacity.
    pub(crate) fn service(
        &mut self,
        now: Cycle,
        sms: &mut [Sm],
        kernels: &mut [KernelRuntime],
        mem: &mut MemSystem,
        pcfg: &PreemptConfig,
    ) {
        let nk = kernels.len();
        // 1. Collect completions and finished context saves.
        for sm in sms.iter_mut() {
            sm.drain_completed(&mut self.completed_scratch);
            sm.drain_saved(&mut self.saved_scratch);
        }
        for (k, _tb) in self.completed_scratch.drain(..) {
            kernels[k.index()].note_tb_completed();
        }
        for (k, tb) in self.saved_scratch.drain(..) {
            kernels[k.index()].preempted.push(tb);
        }
        if self.mode == SharingMode::TimeMux {
            self.rotate_time_mux(kernels);
        }

        for (si, sm) in sms.iter_mut().enumerate() {
            // 2. Enforce targets: over-subscribed kernels lose one TB at a
            //    time per SM (bounding concurrent context-switch traffic).
            if !sm.context_switch_in_flight() {
                for (k, kernel) in kernels.iter().enumerate().take(nk) {
                    let kid = KernelId::new(k);
                    if sm.hosted_tbs(kid) > u32::from(self.allowed(si, k, nk)) {
                        let desc = &kernel.desc;
                        let cost = save_cycles(desc, pcfg);
                        if sm.start_preempt(kid, now, cost) {
                            mem.inject_context_traffic(kid, desc.context_bytes_per_tb(), now);
                        }
                        break;
                    }
                }
            }
            // 3. Fill free capacity, rotating the starting kernel so no
            //    kernel is structurally favoured. A kernel may not take
            //    capacity that is *reserved* — needed by another kernel to
            //    reach its own target — otherwise small-TB kernels would
            //    race into every hole a completing large TB leaves and
            //    permanently crowd out their co-runners.
            let start = (now as usize / 8) % nk.max(1);
            for off in 0..nk {
                let k = (start + off) % nk;
                let kid = KernelId::new(k);
                let allowed = u32::from(self.allowed(si, k, nk));
                while sm.hosted_tbs(kid) < allowed
                    && sm.can_host(&kernels[k].desc)
                    && self.fits_with_reservations(si, k, sm, kernels)
                {
                    if let Some(saved) = kernels[k].preempted.pop() {
                        let desc = &kernels[k].desc;
                        let cost = load_cycles(desc, pcfg);
                        mem.inject_context_traffic(kid, desc.context_bytes_per_tb(), now);
                        sm.dispatch(kid, saved.tb_index, Some(saved), now, cost);
                    } else {
                        let tb = kernels[k].next_fresh_tb();
                        sm.dispatch(kid, tb, None, now, 0);
                    }
                }
            }
        }
    }
}

crate::impl_snap_enum!(SharingMode { Exclusive = 0, Smk = 1, Spatial = 2, TimeMux = 3 });

crate::impl_snap_struct!(KernelRuntime { desc, next_tb, tbs_completed, preempted });

crate::impl_snap_struct!(TbScheduler {
    mode,
    targets,
    owner,
    active,
    active_baseline,
} skip { completed_scratch, saved_scratch });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::kernel::Op;
    use crate::types::SmId;

    fn desc(name: &str) -> Arc<KernelDesc> {
        Arc::new(
            KernelDesc::builder(name)
                .threads_per_tb(256)
                .regs_per_thread(32)
                .grid_tbs(64)
                .iterations(50)
                .body(vec![Op::alu(1, 10)])
                .build(),
        )
    }

    fn setup(nk: usize) -> (Vec<Sm>, Vec<KernelRuntime>, MemSystem, TbScheduler, PreemptConfig) {
        let cfg = GpuConfig::tiny();
        let sms: Vec<Sm> = (0..2).map(|i| Sm::new(SmId::new(i), &cfg)).collect();
        let kernels: Vec<KernelRuntime> =
            (0..nk).map(|i| KernelRuntime::new(desc(&format!("k{i}")))).collect();
        let mut sms = sms;
        for sm in &mut sms {
            for (i, kr) in kernels.iter().enumerate() {
                sm.set_kernel_desc(KernelId::new(i), kr.desc.clone());
            }
        }
        let sched = TbScheduler::new(2);
        (sms, kernels, MemSystem::new(cfg.mem), sched, cfg.preempt)
    }

    #[test]
    fn exclusive_fills_all_sms() {
        let (mut sms, mut kernels, mut mem, mut sched, pcfg) = setup(1);
        sched.service(0, &mut sms, &mut kernels, &mut mem, &pcfg);
        for sm in &sms {
            assert_eq!(sm.hosted_tbs(KernelId::new(0)), 8, "2048 threads / 256 per TB");
        }
    }

    #[test]
    fn smk_targets_bound_residency() {
        let (mut sms, mut kernels, mut mem, mut sched, pcfg) = setup(2);
        sched.set_mode(SharingMode::Smk);
        for si in 0..2 {
            sched.set_target(si, KernelId::new(0), 3);
            sched.set_target(si, KernelId::new(1), 2);
        }
        sched.service(0, &mut sms, &mut kernels, &mut mem, &pcfg);
        for sm in &sms {
            assert_eq!(sm.hosted_tbs(KernelId::new(0)), 3);
            assert_eq!(sm.hosted_tbs(KernelId::new(1)), 2);
        }
    }

    #[test]
    fn spatial_mode_respects_ownership() {
        let (mut sms, mut kernels, mut mem, mut sched, pcfg) = setup(2);
        sched.set_mode(SharingMode::Spatial);
        sched.set_owner(0, Some(KernelId::new(0)));
        sched.set_owner(1, Some(KernelId::new(1)));
        sched.service(0, &mut sms, &mut kernels, &mut mem, &pcfg);
        assert_eq!(sms[0].hosted_tbs(KernelId::new(0)), 8);
        assert_eq!(sms[0].hosted_tbs(KernelId::new(1)), 0);
        assert_eq!(sms[1].hosted_tbs(KernelId::new(1)), 8);
        assert_eq!(sms[1].hosted_tbs(KernelId::new(0)), 0);
    }

    #[test]
    fn lowering_target_triggers_preemption_and_requeue() {
        let (mut sms, mut kernels, mut mem, mut sched, pcfg) = setup(2);
        sched.set_mode(SharingMode::Smk);
        for si in 0..2 {
            sched.set_target(si, KernelId::new(0), 8);
            sched.set_target(si, KernelId::new(1), 0);
        }
        sched.service(0, &mut sms, &mut kernels, &mut mem, &pcfg);
        assert_eq!(sms[0].hosted_tbs(KernelId::new(0)), 8);
        // Now shrink kernel 0 to make room for kernel 1.
        for si in 0..2 {
            sched.set_target(si, KernelId::new(0), 4);
            sched.set_target(si, KernelId::new(1), 4);
        }
        // Run enough service passes + cycles for the saves to complete.
        for now in 0..20_000u64 {
            if now % 8 == 0 {
                sched.service(now, &mut sms, &mut kernels, &mut mem, &pcfg);
            }
            for sm in &mut sms {
                sm.step(now, &mut mem);
            }
        }
        for sm in &sms {
            assert!(sm.hosted_tbs(KernelId::new(0)) <= 4, "target enforced via preemption");
            assert_eq!(sm.hosted_tbs(KernelId::new(1)), 4);
            assert!(sm.preempt_stats().saves > 0);
        }
    }

    #[test]
    fn time_mux_grants_everything_to_the_active_kernel() {
        let (mut sms, mut kernels, mut mem, mut sched, pcfg) = setup(2);
        sched.set_mode(SharingMode::TimeMux);
        sched.service(0, &mut sms, &mut kernels, &mut mem, &pcfg);
        assert_eq!(sched.active_kernel(), KernelId::new(0));
        for sm in &sms {
            assert_eq!(sm.hosted_tbs(KernelId::new(0)), 8);
            assert_eq!(sm.hosted_tbs(KernelId::new(1)), 0);
        }
    }

    #[test]
    fn time_mux_rotates_after_a_full_grid() {
        let (mut sms, mut kernels, mut mem, mut sched, pcfg) = setup(2);
        sched.set_mode(SharingMode::TimeMux);
        sched.service(0, &mut sms, &mut kernels, &mut mem, &pcfg);
        // Simulate kernel 0 completing one full grid.
        let grid = kernels[0].desc.grid_tbs() as u64;
        for _ in 0..=grid {
            kernels[0].note_tb_completed();
        }
        sched.service(8, &mut sms, &mut kernels, &mut mem, &pcfg);
        assert_eq!(sched.active_kernel(), KernelId::new(1), "ownership rotates");
    }

    #[test]
    fn fresh_tb_indices_wrap_around_grid() {
        let (_, mut kernels, _, _, _) = setup(1);
        let grid = kernels[0].desc.grid_tbs();
        for expect in 0..grid * 2 {
            assert_eq!(kernels[0].next_fresh_tb(), TbIndex(expect % grid));
        }
    }

    #[test]
    fn launches_derived_from_completed_tbs() {
        let (_, mut kernels, _, _, _) = setup(1);
        let grid = u64::from(kernels[0].desc.grid_tbs());
        for _ in 0..grid + 3 {
            kernels[0].note_tb_completed();
        }
        assert_eq!(kernels[0].launches_completed(), 1);
        assert_eq!(kernels[0].tbs_completed(), grid + 3);
    }
}
