//! A set-associative cache model with LRU replacement.
//!
//! Used for both the per-SM L1 data caches and the per-memory-controller L2
//! slices. The model tracks only tags (no data) — a lookup either hits or
//! misses-and-fills. Writes are modeled as allocate-on-write (the simulator
//! cares about traffic and latency, not coherence).
//!
//! Storage is struct-of-arrays: one flat `tags` vec and one flat `lru` vec,
//! with validity encoded as `lru != 0` (the access clock is pre-incremented,
//! so every touched line carries a stamp ≥ 1 and an invalid line's stamp of
//! 0 is exactly the victim key the old `valid` flag produced). The hit scan
//! walks one small contiguous `u64` slice per lookup instead of
//! three-field structs, which is what the dense-path issue loop hammers.

use crate::types::Addr;

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was resident.
    Hit,
    /// The line was not resident and has been filled (possibly evicting).
    Miss,
}

/// Aggregate hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; zero for an untouched cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A set-associative, LRU, allocate-on-miss cache.
#[derive(Debug, Clone)]
pub struct Cache {
    /// Line tags, `sets * ways` entries, set-major.
    tags: Vec<u64>,
    /// LRU stamps, parallel to `tags`; larger = more recently used, and
    /// `0` means the line is invalid (the clock starts at 1).
    lru: Vec<u64>,
    sets: usize,
    ways: usize,
    line_shift: u32,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache of `total_bytes` capacity, `ways` associativity and
    /// `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (`total_bytes` not divisible
    /// into `ways * line_bytes` sets, non-power-of-two line size or set
    /// count, or zero sizes).
    pub fn new(total_bytes: u64, ways: u32, line_bytes: u32) -> Self {
        assert!(total_bytes > 0 && ways > 0 && line_bytes > 0, "cache sizes must be positive");
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        let set_bytes = u64::from(ways) * u64::from(line_bytes);
        assert!(
            total_bytes.is_multiple_of(set_bytes),
            "capacity must divide into ways * line_bytes sets"
        );
        let sets = (total_bytes / set_bytes) as usize;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            tags: vec![0; sets * ways as usize],
            lru: vec![0; sets * ways as usize],
            sets,
            ways: ways as usize,
            line_shift: line_bytes.trailing_zeros(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Accesses the line containing `addr`: on a miss the line is filled
    /// (evicting the set's LRU victim).
    pub fn access(&mut self, addr: Addr) -> AccessOutcome {
        self.clock += 1;
        let block = addr >> self.line_shift;
        let set = (block as usize) & (self.sets - 1);
        let tag = block >> self.sets.trailing_zeros();
        let base = set * self.ways;
        let set_tags = &self.tags[base..base + self.ways];
        let set_lru = &mut self.lru[base..base + self.ways];

        // An invalid line's stamp is 0, strictly below every valid stamp, so
        // the first-strict-minimum scan picks invalid ways first and the
        // true LRU way otherwise — the same victim the flagged layout chose.
        let mut victim = 0usize;
        let mut victim_lru = u64::MAX;
        for (i, (&t, stamp)) in set_tags.iter().zip(set_lru.iter_mut()).enumerate() {
            if *stamp != 0 && t == tag {
                *stamp = self.clock;
                self.stats.hits += 1;
                return AccessOutcome::Hit;
            }
            if *stamp < victim_lru {
                victim_lru = *stamp;
                victim = i;
            }
        }
        self.tags[base + victim] = tag;
        self.lru[base + victim] = self.clock;
        self.stats.misses += 1;
        AccessOutcome::Miss
    }

    /// Returns whether the line containing `addr` is resident, without
    /// touching LRU state or statistics.
    pub fn probe(&self, addr: Addr) -> bool {
        let block = addr >> self.line_shift;
        let set = (block as usize) & (self.sets - 1);
        let tag = block >> self.sets.trailing_zeros();
        let base = set * self.ways;
        self.tags[base..base + self.ways]
            .iter()
            .zip(&self.lru[base..base + self.ways])
            .any(|(&t, &stamp)| stamp != 0 && t == tag)
    }

    /// Invalidates every line.
    pub fn flush(&mut self) {
        self.lru.fill(0);
    }

    /// Access counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the counters (contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

crate::impl_snap_struct!(CacheStats { hits, misses });

crate::impl_snap_struct!(Cache { tags, lru, sets, ways, line_shift, clock, stats });

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 32B lines = 256 B
        Cache::new(256, 2, 32)
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.sets(), 4);
        assert_eq!(c.ways(), 2);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert_eq!(c.access(0x40), AccessOutcome::Miss);
        assert_eq!(c.access(0x40), AccessOutcome::Hit);
        assert_eq!(c.access(0x47), AccessOutcome::Hit, "same line");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Three tags mapping to set 0 in a 2-way set: set index = (addr>>5) & 3.
        let a = 0u64; // set 0
        let b = 4 * 32; // set 0
        let d = 8 * 32; // set 0
        c.access(a);
        c.access(b);
        c.access(a); // a most recent; b is LRU
        c.access(d); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn probe_does_not_disturb() {
        let mut c = small();
        c.access(0);
        let before = c.stats();
        assert!(c.probe(0));
        assert!(!c.probe(1 << 20));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn flush_empties() {
        let mut c = small();
        c.access(0);
        c.flush();
        assert!(!c.probe(0));
        assert_eq!(c.access(0), AccessOutcome::Miss);
    }

    #[test]
    fn flushed_lines_never_alias_tag_zero() {
        // A flushed way keeps its tag but must not hit: validity lives in
        // the LRU stamp, and address 0 has tag 0, the tags vec's fill value.
        let mut c = small();
        assert_eq!(c.access(0), AccessOutcome::Miss, "cold line with tag 0 must miss");
        c.flush();
        assert_eq!(c.access(0), AccessOutcome::Miss, "flushed line with tag 0 must miss");
    }

    #[test]
    fn hit_rate_math() {
        let mut c = small();
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.access(0);
        c.access(0);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn working_set_within_capacity_stays_resident() {
        // 8 distinct lines in a 8-line cache, round robin: after the first
        // pass everything hits.
        let mut c = small();
        let addrs: Vec<u64> = (0..8).map(|i| i * 32).collect();
        for &a in &addrs {
            c.access(a);
        }
        for &a in &addrs {
            assert_eq!(c.access(a), AccessOutcome::Hit);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_line_size() {
        let _ = Cache::new(256, 2, 48);
    }
}
