//! The top-level GPU: owns SMs, memory system, TB scheduler, and the
//! epoch-driven controller hook.

use std::fmt;
use std::sync::Arc;

use crate::config::GpuConfig;
use crate::health::{
    AuditKind, AuditViolation, FaultKind, HealthReport, KernelHealth, SimError, SmHealth,
};
use crate::kernel::KernelDesc;
use crate::memsys::MemSystem;
use crate::observe::{
    CounterEntry, CounterKind, CounterScope, EventRing, TbLifecycle, TbLogError, TraceEvent,
    TraceEventKind,
};
use crate::preempt::PreemptStats;
use crate::sm::{QuotaCarry, Sm};
use crate::snap::{Snap, SnapError, SnapReader};
use crate::stats::{EpochSnapshot, GpuStats, KernelStats};
use crate::tb_sched::{KernelRuntime, SharingMode, TbScheduler};
use crate::telemetry::{HostProfiler, LatencyHistogram, ProfPhase, TimeSeries};
use crate::types::{per_kernel, Cycle, KernelId, PerKernel, SmId};

/// Cycles between TB-scheduler service passes (dispatch / preemption checks).
const DISPATCH_INTERVAL: Cycle = 8;

/// Epoch-driven policy hook.
///
/// Implementations are the QoS managers of the `qos-core` crate; the
/// simulator calls [`Controller::on_epoch`] every `epoch_cycles` (first at
/// cycle 0, before any instruction issues) with full mutable access to the
/// GPU's control plane: quota counters, TB targets, SM ownership.
pub trait Controller {
    /// Called at every epoch boundary. `epoch` counts from 0.
    fn on_epoch(&mut self, gpu: &mut Gpu, epoch: u64);
}

/// A controller that never intervenes (plain unmanaged sharing).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullController;

impl Controller for NullController {
    fn on_epoch(&mut self, _gpu: &mut Gpu, _epoch: u64) {}
}

/// Boxed controllers forward to their inner policy, so dynamically chosen
/// policies (e.g. the harness's per-case controllers) can be wrapped in
/// adapters like [`crate::trace::Tracer`].
impl Controller for Box<dyn Controller + '_> {
    fn on_epoch(&mut self, gpu: &mut Gpu, epoch: u64) {
        (**self).on_epoch(gpu, epoch);
    }
}

/// The simulated GPU.
#[derive(Debug)]
pub struct Gpu {
    cfg: GpuConfig,
    cycle: Cycle,
    sms: Vec<Sm>,
    mem: MemSystem,
    kernels: Vec<KernelRuntime>,
    tb_sched: TbScheduler,
    epoch_snapshot: EpochSnapshot,
    last_totals: PerKernel<u64>,
    last_epoch_cycle: Cycle,
    epoch_index: u64,
    sample_interval: Cycle,
    fault_cursor: usize,
    ff_skipped: Cycle,
    trace_on: bool,
    events: EventRing,
    was_idle: bool,
    // Epoch-sampled counter time series (telemetry; disabled by default and
    // enabled at runtime via `enable_metrics_series` so the registry walk
    // costs nothing otherwise). Snapshotted — part of the bit-identity
    // surface, which is why it samples via `sample_deterministic`.
    series: TimeSeries,
    // Host-side self-profiler. Deliberately NOT snapshotted: wall-clock
    // attribution is nondeterministic host state (DESIGN.md §17).
    prof: HostProfiler,
}

impl Gpu {
    /// Builds a GPU from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`GpuConfig::validate`].
    pub fn new(mut cfg: GpuConfig) -> Self {
        cfg.validate().expect("invalid GPU configuration");
        // Faults are applied by a cursor walking the plan in cycle order.
        cfg.faults.faults.sort_by_key(|f| f.at_cycle);
        let sms = (0..cfg.num_sms as usize).map(|i| Sm::new(SmId::new(i), &cfg)).collect();
        let sample_interval = (cfg.epoch_cycles / Cycle::from(cfg.samples_per_epoch)).max(1);
        Gpu {
            sms,
            mem: MemSystem::new(cfg.mem.clone()),
            kernels: Vec::new(),
            tb_sched: TbScheduler::new(cfg.num_sms as usize),
            epoch_snapshot: EpochSnapshot::empty(),
            last_totals: per_kernel(|_| 0),
            last_epoch_cycle: 0,
            epoch_index: 0,
            sample_interval,
            fault_cursor: 0,
            ff_skipped: 0,
            trace_on: cfg.trace.level.is_on(),
            events: EventRing::new(if cfg.trace.level.is_on() {
                cfg.trace.ring_capacity
            } else {
                0
            }),
            was_idle: false,
            series: TimeSeries::disabled(),
            prof: HostProfiler::new(),
            cycle: 0,
            cfg,
        }
    }

    /// Records a machine-level flight-recorder event; a single branch when
    /// tracing is off.
    #[inline]
    fn record(&mut self, cycle: Cycle, kind: TraceEventKind) {
        if self.trace_on {
            self.events.push(TraceEvent { cycle, sm: None, kind });
        }
    }

    /// Launches a kernel; it becomes resident according to the sharing mode
    /// at the next TB-scheduler service pass.
    ///
    /// # Panics
    ///
    /// Panics if [`crate::MAX_KERNELS`] kernels are already launched.
    pub fn launch(&mut self, desc: KernelDesc) -> KernelId {
        assert!(
            self.kernels.len() < crate::MAX_KERNELS,
            "at most {} resident kernels",
            crate::MAX_KERNELS
        );
        let kid = KernelId::new(self.kernels.len());
        let desc = Arc::new(desc);
        for sm in &mut self.sms {
            sm.set_kernel_desc(kid, desc.clone());
        }
        self.kernels.push(KernelRuntime::new(desc));
        kid
    }

    /// Runs the simulation for `cycles` cycles under `ctrl`.
    ///
    /// # Panics
    ///
    /// Panics if the health layer reports a [`SimError`] — impossible with
    /// the default configuration, which disables the watchdog and audits —
    /// or when the fault plan injects [`FaultKind::Panic`]. Callers that
    /// enable the health layer should use [`Gpu::try_run`] instead.
    pub fn run(&mut self, cycles: Cycle, ctrl: &mut dyn Controller) {
        if let Err(err) = self.try_run(cycles, ctrl) {
            panic!("simulator health failure: {err}");
        }
    }

    /// Runs the simulation for `cycles` cycles under `ctrl`, returning a
    /// typed error instead of spinning when the machine stops making
    /// forward progress (watchdog) or an invariant audit fails.
    ///
    /// With the default [`crate::HealthConfig`] (watchdog and audits
    /// disabled) and an empty fault plan this never returns `Err` and is
    /// cycle-for-cycle identical to the unchecked loop.
    ///
    /// # Errors
    ///
    /// [`SimError::Watchdog`] when no instruction issues machine-wide for a
    /// full watchdog window while kernels are resident;
    /// [`SimError::Audit`] when audit mode finds a violated invariant at an
    /// epoch boundary;
    /// [`SimError::DeviceLost`] when a [`FaultKind::DeviceLoss`] fault
    /// fires. On error `self` is left at the failing cycle so the state can
    /// be inspected.
    pub fn try_run(&mut self, cycles: Cycle, ctrl: &mut dyn Controller) -> Result<(), SimError> {
        let threads = self.step_threads();
        exec::scope(threads, |pool| self.run_loop(cycles, ctrl, pool))
    }

    /// Number of worker threads the run loop steps SM domains with: 1
    /// (serial) unless [`GpuConfig::intra_parallel`] is set, in which case
    /// the host's available parallelism, clamped to the SM count and to a
    /// floor of 2 so the concurrent path is exercised even on single-core
    /// hosts.
    fn step_threads(&self) -> usize {
        if !self.cfg.intra_parallel {
            return 1;
        }
        let avail = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        avail.min(self.cfg.num_sms as usize).max(2)
    }

    /// The run loop proper. Each iteration steps every SM domain (serially
    /// or via `pool`), then drains the interconnect ports into the memory
    /// domain in stable SM-index order — the same order the former
    /// monolithic loop mutated the memory system in, which is what makes
    /// the parallel path bit-identical to the serial one.
    fn run_loop(
        &mut self,
        cycles: Cycle,
        ctrl: &mut dyn Controller,
        pool: &exec::Pool,
    ) -> Result<(), SimError> {
        let end = self.cycle + cycles;
        let window = self.cfg.health.watchdog_window;
        let mut last_progress_cycle = self.cycle;
        let mut last_issued = self.total_issued();
        // checked_div: window == 0 disables the watchdog entirely.
        let mut next_check = match self.cycle.checked_div(window) {
            Some(windows_elapsed) => (windows_elapsed + 1) * window,
            None => Cycle::MAX,
        };
        while self.cycle < end {
            let now = self.cycle;
            if self.fault_cursor < self.cfg.faults.faults.len() {
                self.apply_faults(now)?;
            }
            if now.is_multiple_of(self.cfg.epoch_cycles) {
                let t0 = self.prof.begin();
                self.record(now, TraceEventKind::EpochBoundary { epoch: self.epoch_index });
                self.finish_epoch(now);
                if self.cfg.health.audit {
                    self.audit_epoch(now)?;
                }
                ctrl.on_epoch(self, self.epoch_index);
                self.epoch_index += 1;
                for sm in &mut self.sms {
                    sm.reset_idle_sampling();
                }
                if self.series.enabled() {
                    let entries = self.counter_registry();
                    self.series.sample_deterministic(now, &entries);
                }
                let t1 = self.prof.lap(ProfPhase::QosEpochService, t0);
                self.service(now);
                self.prof.end(ProfPhase::TbService, t1);
            } else if now.is_multiple_of(DISPATCH_INTERVAL) {
                let t0 = self.prof.begin();
                self.service(now);
                self.prof.end(ProfPhase::TbService, t0);
            }
            let issued_before_tick = self.total_issued();
            // Step every SM domain — each touches only its own state plus
            // its interconnect port, so this is safe to run concurrently —
            // then drain the ports into the shared memory domain in stable
            // SM-index order (the bit-identity barrier; see `crate::icn`).
            let t0 = self.prof.begin();
            pool.run(&mut self.sms, |_, sm| sm.tick(now));
            self.prof.end(ProfPhase::SmStep, t0);
            if self.prof.is_enabled() {
                // Harvest the warp-selection sub-span each SM timed inside
                // its tick; it nests under the SmStep total just recorded.
                for sm in &mut self.sms {
                    let (nanos, calls) = sm.take_issue_select();
                    self.prof.add_span(ProfPhase::IssueSelect, nanos, calls);
                }
            }
            for sm in &mut self.sms {
                sm.drain_icn(&mut self.mem, now, &mut self.prof);
            }
            if now.is_multiple_of(self.sample_interval) {
                for sm in &mut self.sms {
                    sm.sample_idle_warps(now);
                }
            }
            if now >= next_check {
                let issued = self.total_issued();
                if issued > last_issued {
                    last_issued = issued;
                    last_progress_cycle = now;
                } else if !self.kernels.is_empty() {
                    let mut report = self.health_report();
                    report.window = window;
                    report.last_progress_cycle = last_progress_cycle;
                    return Err(SimError::Watchdog(Box::new(report)));
                }
                next_check += window;
            }
            self.cycle += 1;
            // Attempting a jump costs a machine-wide horizon scan, so only
            // try when this cycle issued nothing — on an issuing cycle some
            // warp almost certainly remains issuable next cycle. This is
            // purely an attempt filter: `fast_forward_target` re-proves
            // idleness itself, so skipping an attempt never affects results.
            if self.cfg.fast_forward && self.total_issued() == issued_before_tick {
                let t0 = self.prof.begin();
                if let Some(target) = self.fast_forward_target(end, next_check) {
                    let from = self.cycle;
                    // Replay is per-SM private state only — no port traffic
                    // — so the skip fan-out parallelizes without a drain.
                    pool.run(&mut self.sms, |_, sm| sm.note_skipped_cycles(from, target));
                    self.ff_skipped += target - from;
                    self.cycle = target;
                }
                self.prof.end(ProfPhase::FastForward, t0);
            }
        }
        Ok(())
    }

    /// Computes how far the run loop may jump from `self.cycle` without
    /// changing any observable state, or `None` when the next cycle must be
    /// simulated.
    ///
    /// The jump target is the earliest component horizon ([`Sm::next_event`]
    /// wake-ups and context-transition completions), clamped so that every
    /// externally observable event still fires on its exact cycle: epoch
    /// boundaries, idle-warp sampling ticks, the watchdog's `next_check`,
    /// the first still-pending `FaultPlan` entry, `DISPATCH_INTERVAL`
    /// service points whenever a service pass could act
    /// ([`TbScheduler::service_would_noop`]), and the end of the run. The
    /// memory system contributes no horizon: transaction completions are
    /// computed eagerly at access time and carried by warp scoreboards
    /// (see [`MemSystem::next_event`]).
    fn fast_forward_target(&self, end: Cycle, next_check: Cycle) -> Option<Cycle> {
        /// Smallest multiple of `step` at or above `from` — boundary cycles
        /// themselves are never skipped.
        fn next_boundary(from: Cycle, step: Cycle) -> Cycle {
            from.next_multiple_of(step)
        }
        let from = self.cycle;
        if from >= end {
            return None;
        }
        // The busy scan runs first: on most simulated cycles some warp can
        // issue, and `Sm::next_event` detects that with an early return,
        // keeping the per-cycle overhead of a failed jump attempt small.
        let mut target = Cycle::MAX;
        for sm in &self.sms {
            match sm.next_event(from) {
                // A wake at or before `from` means some warp can issue now.
                Some(busy) if busy <= from => return None,
                Some(wake) => target = target.min(wake),
                None => {}
            }
        }
        target = target
            .min(end)
            .min(next_boundary(from, self.cfg.epoch_cycles))
            .min(next_boundary(from, self.sample_interval))
            .min(next_check);
        if self.fault_cursor < self.cfg.faults.faults.len() {
            target = target.min(self.cfg.faults.faults[self.fault_cursor].at_cycle);
        }
        if target <= from {
            return None;
        }
        // `service_would_noop` is the costliest predicate; consult it only
        // when the clamp it guards could actually shorten the jump.
        let dispatch = next_boundary(from, DISPATCH_INTERVAL);
        if target > dispatch && !self.tb_sched.service_would_noop(&self.sms, &self.kernels) {
            target = target.min(dispatch);
        }
        (target > from).then_some(target)
    }

    /// Applies every scheduled fault whose cycle has arrived.
    ///
    /// # Errors
    ///
    /// [`SimError::DeviceLost`] when a [`FaultKind::DeviceLoss`] fault
    /// fires; the run loop propagates it immediately (mid-epoch), modeling
    /// a device that drops off the bus without warning.
    fn apply_faults(&mut self, now: Cycle) -> Result<(), SimError> {
        while self.fault_cursor < self.cfg.faults.faults.len()
            && self.cfg.faults.faults[self.fault_cursor].at_cycle <= now
        {
            let fault = self.cfg.faults.faults[self.fault_cursor];
            self.fault_cursor += 1;
            self.record(now, TraceEventKind::FaultInjected { fault: fault.kind });
            match fault.kind {
                FaultKind::StarveQuota => {
                    for sm in &mut self.sms {
                        sm.freeze_all_quota();
                    }
                }
                FaultKind::FreezeScheduler { sm } => self.sms[sm].freeze_schedulers(),
                FaultKind::StallPreemption => {
                    for sm in &mut self.sms {
                        sm.stall_preemption();
                    }
                }
                FaultKind::Panic => {
                    panic!("injected fault: panic at cycle {now} (scheduled at {})", fault.at_cycle)
                }
                FaultKind::DeviceLoss => {
                    return Err(SimError::DeviceLost(Box::new(self.health_report())));
                }
                FaultKind::DeviceWedge => {
                    for sm in &mut self.sms {
                        sm.freeze_schedulers();
                    }
                }
            }
        }
        Ok(())
    }

    fn total_issued(&self) -> u64 {
        self.sms.iter().map(Sm::issued_total).sum()
    }

    /// Checks machine-wide and per-SM invariants; called at epoch
    /// boundaries when [`crate::HealthConfig::audit`] is set.
    fn audit_epoch(&self, now: Cycle) -> Result<(), SimError> {
        let snap = &self.epoch_snapshot;
        let bound = snap.cycles
            * u64::from(self.cfg.num_sms)
            * u64::from(self.cfg.sm.warp_schedulers)
            * u64::from(crate::WARP_SIZE);
        let issued: u64 = snap.thread_insts.iter().sum();
        if issued > bound {
            return Err(SimError::Audit(AuditViolation {
                cycle: now,
                sm: None,
                kind: AuditKind::IssueBound,
                detail: format!(
                    "epoch {} retired {issued} thread insts, hardware bound is {bound}",
                    snap.epoch
                ),
            }));
        }
        for sm in &self.sms {
            if let Err((kind, detail)) = sm.audit_invariants() {
                return Err(SimError::Audit(AuditViolation {
                    cycle: now,
                    sm: Some(sm.id().index()),
                    kind,
                    detail,
                }));
            }
        }
        Ok(())
    }

    /// Structured snapshot of machine health: per-kernel residency and
    /// quota state, per-SM warp stall census. This is what the watchdog
    /// attaches to [`SimError::Watchdog`]; it can also be taken on demand.
    pub fn health_report(&self) -> HealthReport {
        let now = self.cycle;
        let totals = self.kernel_totals();
        let kernels = (0..self.kernels.len())
            .map(|k| {
                let kid = KernelId::new(k);
                let mut resident_tbs = 0u32;
                let mut quota = 0i64;
                let mut gated_sms = 0u32;
                let mut exhausted_sms = 0u32;
                for sm in &self.sms {
                    resident_tbs += sm.hosted_tbs(kid);
                    quota += sm.quota(kid);
                    if sm.is_gated(kid) {
                        gated_sms += 1;
                        if sm.quota(kid) <= 0 {
                            exhausted_sms += 1;
                        }
                    }
                }
                KernelHealth {
                    kernel: k,
                    name: self.kernels[k].desc.name().to_string(),
                    resident_tbs,
                    preempted_tbs: self.kernels[k].preempted_len(),
                    quota,
                    gated_sms,
                    exhausted_sms,
                    thread_insts: totals[k],
                }
            })
            .collect();
        let sms = self
            .sms
            .iter()
            .map(|sm| SmHealth {
                sm: sm.id().index(),
                resident_tbs: sm.resident_tbs(),
                warps: sm.warp_stall_counts(now),
                transfer_in_flight: sm.context_switch_in_flight(),
            })
            .collect();
        HealthReport {
            cycle: now,
            window: self.cfg.health.watchdog_window,
            last_progress_cycle: now,
            total_issued: self.total_issued(),
            kernels,
            sms,
            events: self.recent_events(HEALTH_REPORT_EVENTS),
        }
    }

    fn service(&mut self, now: Cycle) {
        self.tb_sched.service(
            now,
            &mut self.sms,
            &mut self.kernels,
            &mut self.mem,
            &self.cfg.preempt,
        );
    }

    fn finish_epoch(&mut self, now: Cycle) {
        let totals = self.kernel_totals();
        let mut snap = EpochSnapshot::empty();
        snap.epoch = self.epoch_index;
        snap.cycles = now - self.last_epoch_cycle;
        for (k, &total) in totals.iter().enumerate() {
            snap.thread_insts[k] = total - self.last_totals[k];
        }
        self.last_totals = totals;
        self.last_epoch_cycle = now;
        self.epoch_snapshot = snap;
        // Watchdog-relevant idle transitions: an epoch that retired nothing
        // while kernels were resident marks the machine as idle; the first
        // productive epoch after that ends the idle spell. Both edges land
        // on epoch boundaries, which fast-forward never skips, so traced
        // runs stay bit-identical across the fast-forward toggle.
        if self.trace_on && now > 0 && !self.kernels.is_empty() {
            let idle = self.epoch_snapshot.thread_insts.iter().sum::<u64>() == 0;
            if idle != self.was_idle {
                let kind = if idle { TraceEventKind::IdleStart } else { TraceEventKind::IdleEnd };
                self.record(now, kind);
                self.was_idle = idle;
            }
        }
    }

    fn kernel_totals(&self) -> PerKernel<u64> {
        let mut totals = per_kernel(|_| 0u64);
        for sm in &self.sms {
            for (k, total) in totals.iter_mut().enumerate() {
                *total += sm.counters(KernelId::new(k)).thread_insts;
            }
        }
        totals
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The configuration in use.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Cycles elided by idle fast-forward so far (always 0 when
    /// `cfg.fast_forward` is off). Skipped cycles still count toward
    /// [`Gpu::cycle`] and all per-SM busy accounting; this counter only
    /// reports how much per-cycle work the jump optimisation avoided.
    pub fn skipped_cycles(&self) -> Cycle {
        self.ff_skipped
    }

    /// The machine-level flight-recorder ring (epoch boundaries, idle
    /// transitions, injected faults). Per-SM events live on the SMs.
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    /// Enables epoch-boundary counter-registry sampling into a bounded
    /// [`TimeSeries`] holding at most `capacity` rows (0 disables it again).
    /// The series is snapshotted, so it must be enabled identically on a
    /// machine that will restore a snapshot taken with it enabled.
    pub fn enable_metrics_series(&mut self, capacity: usize) {
        self.series = TimeSeries::new(capacity);
    }

    /// The epoch-sampled counter time series (empty unless
    /// [`Gpu::enable_metrics_series`] was called).
    pub fn metrics_series(&self) -> &TimeSeries {
        &self.series
    }

    /// Enables or disables the host-side self-profiler. Profiler state is
    /// host-only: never snapshotted, never part of any determinism surface.
    pub fn set_profiling(&mut self, on: bool) {
        self.prof.set_enabled(on);
        for sm in &mut self.sms {
            sm.set_issue_profiling(on);
        }
    }

    /// The host-side self-profiler's accumulated phase totals.
    pub fn profiler(&self) -> &HostProfiler {
        &self.prof
    }

    /// Mutable profiler access, for callers that attribute externally timed
    /// spans (e.g. checkpoint writes) to this machine's profile.
    pub fn profiler_mut(&mut self) -> &mut HostProfiler {
        &mut self.prof
    }

    /// Machine-wide preemption-save latency histogram of kernel `k` (the
    /// per-SM histograms merged).
    pub fn preempt_save_histogram(&self, k: KernelId) -> LatencyHistogram {
        let mut agg = LatencyHistogram::new();
        for sm in &self.sms {
            agg.merge(sm.preempt_save_hist(k));
        }
        agg
    }

    /// The last `n` flight-recorder events machine-wide, oldest first: the
    /// machine-level ring merged with every SM's ring, ordered by cycle.
    /// Ties keep machine events before SM events and lower SM ids first;
    /// within one source, recording order is preserved.
    pub fn recent_events(&self, n: usize) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = self.events.iter().copied().collect();
        for sm in &self.sms {
            all.extend(sm.events().iter().copied());
        }
        all.sort_by_key(|e| (e.cycle, e.sm.map_or(0, |s| s + 1)));
        if all.len() > n {
            all.drain(..all.len() - n);
        }
        all
    }

    /// Reconstructs the completed TB executions of kernel `k` from the
    /// per-SM flight-recorder rings — the capture hook behind the FGTR
    /// kernel-trace format (DESIGN.md §15).
    ///
    /// Pairs every [`TraceEventKind::TbDispatch`] with its
    /// [`TraceEventKind::TbDrain`] on the same SM and returns the completed
    /// lifecycles ordered by (dispatch cycle, SM, TB). TBs still resident
    /// when the run stopped are omitted. The result is only trusted when no
    /// ring lost events, so run with [`crate::TraceLevel::Events`] and a
    /// [`crate::TraceConfig::ring_capacity`] large enough to hold the whole
    /// recording.
    ///
    /// # Errors
    ///
    /// [`TbLogError::RingOverflow`] if any SM ring discarded events, and
    /// [`TbLogError::UnmatchedDrain`] if a drain has no open dispatch (a
    /// recording that started mid-flight).
    pub fn tb_lifecycles(&self, k: KernelId) -> Result<Vec<TbLifecycle>, TbLogError> {
        let kernel = k.index() as u32;
        let mut out = Vec::new();
        for sm in &self.sms {
            let sm_id = sm.id().index() as u32;
            let ring = sm.events();
            if ring.dropped() > 0 {
                return Err(TbLogError::RingOverflow { sm: sm_id, dropped: ring.dropped() });
            }
            // Open dispatches of this kernel on this SM: (tb, cycle, resumed).
            let mut open: Vec<(u32, Cycle, bool)> = Vec::new();
            for event in ring.iter() {
                match event.kind {
                    TraceEventKind::TbDispatch { kernel: ek, tb, resumed } if ek == kernel => {
                        open.push((tb, event.cycle, resumed));
                    }
                    TraceEventKind::TbDrain { kernel: ek, tb } if ek == kernel => {
                        let Some(pos) = open.iter().position(|&(t, _, _)| t == tb) else {
                            return Err(TbLogError::UnmatchedDrain { sm: sm_id, tb });
                        };
                        let (tb, dispatch_cycle, resumed) = open.swap_remove(pos);
                        out.push(TbLifecycle {
                            tb,
                            sm: sm_id,
                            dispatch_cycle,
                            drain_cycle: event.cycle,
                            resumed,
                        });
                    }
                    _ => {}
                }
            }
        }
        out.sort_by_key(|l| (l.dispatch_cycle, l.sm, l.tb));
        Ok(out)
    }

    /// Enumerates the counter registry: every named monotonic counter and
    /// gauge the simulator maintains, tagged with its scope (machine,
    /// kernel, SM, or memory channel). The set and order of entries is
    /// stable for a given configuration, so exporters and tests can rely on
    /// positional identity. All values come from state that snapshots
    /// round-trip bit-exactly.
    pub fn counter_registry(&self) -> Vec<CounterEntry> {
        use CounterKind::{Counter, Gauge};
        let mut out = Vec::new();
        let mut push = |name, scope, kind, value: i64| {
            out.push(CounterEntry { name, scope, kind, value });
        };
        let machine = CounterScope::Machine;
        push("cycle", machine, Gauge, self.cycle as i64);
        push("epoch_index", machine, Counter, self.epoch_index as i64);
        push("ff_skipped_cycles", machine, Counter, self.ff_skipped as i64);
        push("total_issued", machine, Counter, self.total_issued() as i64);
        let agg = self.preempt_stats();
        push("preempt_saves", machine, Counter, agg.saves as i64);
        push("preempt_resumes", machine, Counter, agg.resumes as i64);
        push("preempt_transfer_cycles", machine, Counter, agg.transfer_cycles as i64);
        for k in 0..self.kernels.len() {
            let kid = KernelId::new(k);
            let scope = CounterScope::Kernel(k);
            let mut thread_insts = 0u64;
            let mut warp_insts = 0u64;
            let mut quota_blocked = 0u64;
            let mut quota_exhaustions = 0u64;
            let mut scoreboard_waits = 0u64;
            let mut resident = 0u64;
            let mut quota = 0i64;
            for sm in &self.sms {
                let c = sm.counters(kid);
                thread_insts += c.thread_insts;
                warp_insts += c.warp_insts;
                quota_blocked += sm.quota_blocked_cycles(kid);
                quota_exhaustions += sm.quota_exhaustions(kid);
                scoreboard_waits += sm.scoreboard_wait_samples(kid);
                resident += u64::from(sm.hosted_tbs(kid));
                quota += sm.quota(kid);
            }
            push("thread_insts", scope, Counter, thread_insts as i64);
            push("warp_insts", scope, Counter, warp_insts as i64);
            push("quota_blocked_cycles", scope, Counter, quota_blocked as i64);
            push("quota_exhaustions", scope, Counter, quota_exhaustions as i64);
            push("scoreboard_wait_samples", scope, Counter, scoreboard_waits as i64);
            push("resident_tbs", scope, Gauge, resident as i64);
            push("quota", scope, Gauge, quota);
            let t = self.mem.traffic();
            push("l1_accesses", scope, Counter, t.l1_accesses[k] as i64);
            push("l2_accesses", scope, Counter, t.l2_accesses[k] as i64);
            push("dram_accesses", scope, Counter, t.dram_accesses[k] as i64);
            push("context_transactions", scope, Counter, t.context_transactions[k] as i64);
        }
        for sm in &self.sms {
            let scope = CounterScope::Sm(sm.id().index());
            push("busy_cycles", scope, Counter, sm.busy_cycles() as i64);
            push("issue_slots", scope, Counter, sm.issue_slots() as i64);
            push("issued_total", scope, Counter, sm.issued_total() as i64);
            let l1 = sm.l1_stats();
            push("l1_hits", scope, Counter, l1.hits as i64);
            push("l1_misses", scope, Counter, l1.misses as i64);
            let p = sm.preempt_stats();
            push("preempt_saves", scope, Counter, p.saves as i64);
            push("preempt_resumes", scope, Counter, p.resumes as i64);
            push("preempt_transfer_cycles", scope, Counter, p.transfer_cycles as i64);
        }
        let l2 = self.mem.l2_stats();
        push("l2_hits", machine, Counter, l2.hits as i64);
        push("l2_misses", machine, Counter, l2.misses as i64);
        for (ch, q) in self.mem.l2_queues().iter().enumerate() {
            let scope = CounterScope::Channel(ch);
            push("l2_served", scope, Counter, q.served() as i64);
            push("l2_total_wait", scope, Counter, q.total_wait() as i64);
            push("l2_peak_wait", scope, Counter, q.peak_wait() as i64);
            push("l2_queue_depth", scope, Gauge, q.backlog_at(self.cycle) as i64);
        }
        for (ch, q) in self.mem.dram_queues().iter().enumerate() {
            let scope = CounterScope::Channel(ch);
            push("dram_served", scope, Counter, q.served() as i64);
            push("dram_total_wait", scope, Counter, q.total_wait() as i64);
            push("dram_peak_wait", scope, Counter, q.peak_wait() as i64);
            push("dram_queue_depth", scope, Gauge, q.backlog_at(self.cycle) as i64);
        }
        out
    }

    /// Number of launched kernels.
    pub fn num_kernels(&self) -> usize {
        self.kernels.len()
    }

    /// Launched kernel ids.
    pub fn kernel_ids(&self) -> impl Iterator<Item = KernelId> + '_ {
        (0..self.kernels.len()).map(KernelId::new)
    }

    /// Description of kernel `k`.
    pub fn kernel_desc(&self, k: KernelId) -> &Arc<KernelDesc> {
        &self.kernels[k.index()].desc
    }

    /// Number of preempted TBs of kernel `k` awaiting resumption.
    pub fn preempted_len(&self, k: KernelId) -> usize {
        self.kernels[k.index()].preempted_len()
    }

    /// The SMs (read-only).
    pub fn sms(&self) -> &[Sm] {
        &self.sms
    }

    /// Mutable access to one SM's control plane (quota counters, gating).
    pub fn sm_mut(&mut self, id: SmId) -> &mut Sm {
        &mut self.sms[id.index()]
    }

    /// Control-plane view of one SM, scoped to the quota/gating knobs a
    /// [`Controller`] is meant to turn. Policy code goes through this view
    /// rather than [`Gpu::sm_mut`] so the surface a controller can mutate —
    /// and therefore the cross-domain state the parallel stepping argument
    /// must account for — stays explicit and small. Controllers run only
    /// at epoch boundaries, outside the tick→drain window, so these writes
    /// never race domain stepping.
    pub fn sm_quota(&mut self, id: SmId) -> SmQuotaView<'_> {
        SmQuotaView { sm: &mut self.sms[id.index()] }
    }

    /// The shared memory system.
    pub fn mem(&self) -> &MemSystem {
        &self.mem
    }

    /// Latest epoch snapshot (per-kernel instructions in the last epoch).
    pub fn epoch_snapshot(&self) -> &EpochSnapshot {
        &self.epoch_snapshot
    }

    /// Whether any SM has a context switch in flight.
    pub fn context_switch_in_flight(&self) -> bool {
        self.sms.iter().any(Sm::context_switch_in_flight)
    }

    /// Aggregated preemption statistics.
    pub fn preempt_stats(&self) -> PreemptStats {
        let mut agg = PreemptStats::default();
        for sm in &self.sms {
            let s = sm.preempt_stats();
            agg.saves += s.saves;
            agg.resumes += s.resumes;
            agg.transfer_cycles += s.transfer_cycles;
        }
        agg
    }

    /// Aggregated statistics snapshot.
    pub fn stats(&self) -> GpuStats {
        let mut kernels: PerKernel<KernelStats> = per_kernel(|_| KernelStats::default());
        for sm in &self.sms {
            for (k, ks) in kernels.iter_mut().enumerate() {
                let c = sm.counters(KernelId::new(k));
                ks.thread_insts += c.thread_insts;
                ks.warp_insts += c.warp_insts;
            }
        }
        for (k, kr) in self.kernels.iter().enumerate() {
            kernels[k].tbs_completed = kr.tbs_completed();
            kernels[k].launches_completed = kr.launches_completed();
        }
        GpuStats::new(self.cycle, self.kernels.len(), kernels)
    }

    // ------------------------------------------------------------------
    // Control plane (used by QoS managers)
    // ------------------------------------------------------------------

    /// Current sharing mode.
    pub fn sharing_mode(&self) -> SharingMode {
        self.tb_sched.mode()
    }

    /// Switches the sharing mode. Residency converges at subsequent service
    /// passes (over-subscribed TBs are preempted, free capacity refilled).
    pub fn set_sharing_mode(&mut self, mode: SharingMode) {
        self.tb_sched.set_mode(mode);
    }

    /// Sets the SMK TB target of kernel `k` on SM `sm`.
    pub fn set_tb_target(&mut self, sm: SmId, k: KernelId, tbs: u16) {
        self.tb_sched.set_target(sm.index(), k, tbs);
    }

    /// SMK TB target of kernel `k` on SM `sm`.
    pub fn tb_target(&self, sm: SmId, k: KernelId) -> u16 {
        self.tb_sched.target(sm.index(), k)
    }

    /// Assigns SM `sm` to `owner` (spatial mode).
    pub fn set_sm_owner(&mut self, sm: SmId, owner: Option<KernelId>) {
        self.tb_sched.set_owner(sm.index(), owner);
    }

    /// Owner of SM `sm` (spatial mode).
    pub fn sm_owner(&self, sm: SmId) -> Option<KernelId> {
        self.tb_sched.owner(sm.index())
    }

    /// The kernel currently owning the GPU under
    /// [`SharingMode::TimeMux`].
    pub fn time_mux_active(&self) -> KernelId {
        self.tb_sched.active_kernel()
    }

    /// Maximum TBs of kernel `k` one SM can host (occupancy bound).
    pub fn max_resident_tbs(&self, k: KernelId) -> u32 {
        self.sms[0].max_resident_tbs(self.kernel_desc(k))
    }

    /// All SM ids.
    pub fn sm_ids(&self) -> impl Iterator<Item = SmId> + '_ {
        (0..self.sms.len()).map(SmId::new)
    }

    // ------------------------------------------------------------------
    // Snapshot / restore
    // ------------------------------------------------------------------

    /// Stable 64-bit fingerprint of this GPU's configuration (FNV-1a over
    /// the encoded [`GpuConfig`]). Snapshots carry it so [`Gpu::restore`]
    /// can refuse blobs taken under a different configuration.
    pub fn config_fingerprint(&self) -> u64 {
        self.cfg.fingerprint()
    }

    /// Migration-class fingerprint of this GPU's configuration: the config
    /// fingerprint with the fault plan erased (see
    /// [`GpuConfig::compat_fingerprint`]). Snapshots carry it so
    /// [`Gpu::restore_compat`] can accept blobs from a same-class machine
    /// that merely had different scheduled faults.
    pub fn compat_fingerprint(&self) -> u64 {
        self.cfg.compat_fingerprint()
    }

    /// Captures the complete mutable state of the machine into a versioned
    /// [`SnapshotBlob`].
    ///
    /// Snapshots are only legal at **epoch boundaries** (`cycle` a multiple
    /// of `epoch_cycles`, including cycle 0) — the one point where no
    /// intra-epoch loop state is implicit in the call stack, so a restored
    /// machine continues bit-identically to one that never stopped. The
    /// watchdog and epoch audits also fire only on such cycles (the harness
    /// sizes the watchdog window as a multiple of the epoch), so failure
    /// states are snapshot-legal too.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::NotEpochBoundary`] when called mid-epoch.
    pub fn snapshot(&self) -> Result<SnapshotBlob, SnapshotError> {
        if !self.cycle.is_multiple_of(self.cfg.epoch_cycles) {
            return Err(SnapshotError::NotEpochBoundary {
                cycle: self.cycle,
                epoch_cycles: self.cfg.epoch_cycles,
            });
        }
        let mut payload = Vec::new();
        self.cycle.encode(&mut payload);
        self.sms.encode(&mut payload);
        self.mem.encode(&mut payload);
        self.kernels.encode(&mut payload);
        self.tb_sched.encode(&mut payload);
        self.epoch_snapshot.encode(&mut payload);
        self.last_totals.encode(&mut payload);
        self.last_epoch_cycle.encode(&mut payload);
        self.epoch_index.encode(&mut payload);
        self.sample_interval.encode(&mut payload);
        self.fault_cursor.encode(&mut payload);
        self.ff_skipped.encode(&mut payload);
        self.events.encode(&mut payload);
        self.was_idle.encode(&mut payload);
        self.series.encode(&mut payload);
        Ok(SnapshotBlob {
            version: SNAPSHOT_SCHEMA_VERSION,
            config_fingerprint: self.config_fingerprint(),
            compat_fingerprint: self.compat_fingerprint(),
            payload,
        })
    }

    /// Replaces this machine's state with a previously captured snapshot.
    ///
    /// The receiver must have been built from the **same configuration**
    /// that produced the blob (checked via the fingerprint); kernel launch
    /// state is part of the snapshot, so restoring into a freshly
    /// constructed `Gpu::new(cfg)` is the intended use. On any error `self`
    /// is left untouched.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::SchemaVersion`] on a version mismatch,
    /// [`SnapshotError::ConfigFingerprint`] when the blob was taken under a
    /// different configuration, and [`SnapshotError::Corrupt`] when the
    /// payload fails to decode.
    pub fn restore(&mut self, blob: &SnapshotBlob) -> Result<(), SnapshotError> {
        if blob.version != SNAPSHOT_SCHEMA_VERSION {
            return Err(SnapshotError::SchemaVersion {
                found: blob.version,
                expected: SNAPSHOT_SCHEMA_VERSION,
            });
        }
        let expected = self.config_fingerprint();
        if blob.config_fingerprint != expected {
            return Err(SnapshotError::ConfigFingerprint {
                found: blob.config_fingerprint,
                expected,
            });
        }
        self.restore_payload(&blob.payload)
    }

    /// Restores a snapshot from a **migration-class-compatible** machine:
    /// the blob's [`compat fingerprint`](SnapshotBlob::compat_fingerprint)
    /// must match this machine's, but the full config fingerprints may
    /// differ — i.e. the source may have carried a different fault plan.
    ///
    /// This is the receiving half of live migration: state captured on a
    /// device that was about to fail (or be drained) resumes on a spare of
    /// the same class. The snapshot's `fault_cursor` indexed the *source*
    /// plan, so it is rebased onto the receiver's plan: every receiver fault
    /// scheduled strictly before the restored cycle is treated as already
    /// consumed (the fleet layer translates pending faults so none land in
    /// the past), and faults at or after the restored cycle fire normally.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::SchemaVersion`] on a version mismatch,
    /// [`SnapshotError::ConfigFingerprint`] when the blob's migration class
    /// differs from the receiver's, and [`SnapshotError::Corrupt`] when the
    /// payload fails to decode.
    pub fn restore_compat(&mut self, blob: &SnapshotBlob) -> Result<(), SnapshotError> {
        if blob.version != SNAPSHOT_SCHEMA_VERSION {
            return Err(SnapshotError::SchemaVersion {
                found: blob.version,
                expected: SNAPSHOT_SCHEMA_VERSION,
            });
        }
        let expected = self.compat_fingerprint();
        if blob.compat_fingerprint != expected {
            return Err(SnapshotError::ConfigFingerprint {
                found: blob.compat_fingerprint,
                expected,
            });
        }
        self.restore_payload(&blob.payload)?;
        // Rebase the fault cursor from the source plan onto the receiver's
        // (sorted) plan: faults strictly in the past are consumed, the rest
        // remain armed.
        self.fault_cursor =
            self.cfg.faults.faults.iter().take_while(|f| f.at_cycle < self.cycle).count();
        // The snapshot may have been taken after a silent fault fired on
        // the source machine (a wedge freezes schedulers well before the
        // watchdog can classify it). Those effects describe the sick
        // device, not the workload — carrying them onto healthy silicon
        // would wedge the receiver too, cascading one hardware failure
        // across the fleet. The plain [`Gpu::restore`] path deliberately
        // keeps them: resuming the *same* machine must reproduce the
        // original run bit for bit, watchdog trip included.
        for sm in &mut self.sms {
            sm.clear_fault_effects();
        }
        Ok(())
    }

    /// Decodes a snapshot payload and swaps it in. Decodes fully into locals
    /// before assigning, so `self` is untouched on any error.
    fn restore_payload(&mut self, payload: &[u8]) -> Result<(), SnapshotError> {
        let mut r = SnapReader::new(payload);
        let cycle = Cycle::decode(&mut r)?;
        let sms = Vec::<Sm>::decode(&mut r)?;
        let mem = MemSystem::decode(&mut r)?;
        let kernels = Vec::<KernelRuntime>::decode(&mut r)?;
        let tb_sched = TbScheduler::decode(&mut r)?;
        let epoch_snapshot = EpochSnapshot::decode(&mut r)?;
        let last_totals = PerKernel::<u64>::decode(&mut r)?;
        let last_epoch_cycle = Cycle::decode(&mut r)?;
        let epoch_index = u64::decode(&mut r)?;
        let sample_interval = Cycle::decode(&mut r)?;
        let fault_cursor = usize::decode(&mut r)?;
        let ff_skipped = Cycle::decode(&mut r)?;
        let events = EventRing::decode(&mut r)?;
        let was_idle = bool::decode(&mut r)?;
        let series = TimeSeries::decode(&mut r)?;
        if !r.is_exhausted() {
            return Err(SnapshotError::Corrupt(SnapError::Invalid(
                "trailing bytes in snapshot payload",
            )));
        }
        self.cycle = cycle;
        self.sms = sms;
        // Profiler state is host-only and never snapshotted; restored SMs
        // decode with the flag off, so re-arm them from the live profiler.
        if self.prof.is_enabled() {
            for sm in &mut self.sms {
                sm.set_issue_profiling(true);
            }
        }
        self.mem = mem;
        self.kernels = kernels;
        self.tb_sched = tb_sched;
        self.epoch_snapshot = epoch_snapshot;
        self.last_totals = last_totals;
        self.last_epoch_cycle = last_epoch_cycle;
        self.epoch_index = epoch_index;
        self.sample_interval = sample_interval;
        self.fault_cursor = fault_cursor;
        self.ff_skipped = ff_skipped;
        self.events = events;
        self.was_idle = was_idle;
        self.series = series;
        Ok(())
    }
}

/// Borrowed control-plane view of one SM (see [`Gpu::sm_quota`]).
///
/// Exposes exactly the quota-gating knobs of the paper's Enhanced Warp
/// Scheduler (§3.2): per-kernel instruction quotas with carry policy, QoS
/// membership, gating, and the elastic / priority-block refinements.
#[derive(Debug)]
pub struct SmQuotaView<'a> {
    sm: &'a mut Sm,
}

impl SmQuotaView<'_> {
    /// Gates (or ungates) kernel `k`'s issue on this SM.
    pub fn set_gated(&mut self, k: KernelId, gated: bool) {
        self.sm.set_gated(k, gated);
    }

    /// Installs kernel `k`'s per-epoch instruction quota.
    pub fn set_epoch_quota(&mut self, k: KernelId, alloc: i64, carry: QuotaCarry, refill: i64) {
        self.sm.set_epoch_quota(k, alloc, carry, refill);
    }

    /// Remaining quota of kernel `k` on this SM.
    pub fn quota(&self, k: KernelId) -> i64 {
        self.sm.quota(k)
    }

    /// Marks kernel `k` as QoS (quota-managed) or best-effort.
    pub fn set_qos_kernel(&mut self, k: KernelId, qos: bool) {
        self.sm.set_qos_kernel(k, qos);
    }

    /// Enables elastic quota (best-effort kernels borrow idle QoS slots).
    pub fn set_elastic(&mut self, on: bool) {
        self.sm.set_elastic(on);
    }

    /// Enables priority-block mode (QoS kernels always issue first).
    pub fn set_priority_block(&mut self, on: bool) {
        self.sm.set_priority_block(on);
    }
}

/// How many trailing flight-recorder events a [`HealthReport`] embeds.
const HEALTH_REPORT_EVENTS: usize = 32;

/// Version of the snapshot payload layout. Bumped whenever the set, order,
/// or encoding of snapshotted fields changes; [`Gpu::restore`] refuses
/// blobs from any other version. Version 3 added the SM-domain cache
/// parameters (`l1_hit_latency`, `line_bytes`) to the per-SM record when
/// the SM↔memory boundary moved behind [`crate::icn::IcnPort`]; version 4
/// added the `dropped` discard counter to every [`EventRing`] so lossless
/// trace capture can prove a recording never wrapped; version 5 added the
/// migration-class `compat_fingerprint` to the blob header so live
/// migration ([`Gpu::restore_compat`]) can accept snapshots from a
/// same-class device with a different fault plan; version 6 added the
/// telemetry layer's deterministic state — per-SM per-kernel
/// preemption-save latency histograms and the machine's epoch-sampled
/// counter [`TimeSeries`] (DESIGN.md §17); version 7 switched the hot
/// per-SM state to struct-of-arrays layouts — the warp table
/// ([`crate::sm::WarpTable`]), the TB slab ([`crate::tb::TbSlab`]), and the
/// cache tag/LRU arrays — changing the field set and order of every per-SM
/// record (DESIGN.md §18). Host-profiler state is deliberately absent:
/// wall-clock attribution never enters snapshots.
pub const SNAPSHOT_SCHEMA_VERSION: u32 = 7;

/// Leading magic of a serialized [`SnapshotBlob`].
const SNAPSHOT_MAGIC: [u8; 4] = *b"FGQS";

/// Why a snapshot could not be taken, serialized, or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// [`Gpu::snapshot`] was called mid-epoch; snapshots are only legal
    /// when `cycle` is a multiple of `epoch_cycles`.
    NotEpochBoundary {
        /// The cycle at which the snapshot was requested.
        cycle: Cycle,
        /// The configured epoch length.
        epoch_cycles: Cycle,
    },
    /// The byte stream does not begin with the snapshot magic.
    BadMagic,
    /// The blob was written by a different snapshot schema version.
    SchemaVersion {
        /// Version found in the blob.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The blob was taken under a different [`GpuConfig`].
    ConfigFingerprint {
        /// Fingerprint carried by the blob.
        found: u64,
        /// Fingerprint of the restoring machine's configuration.
        expected: u64,
    },
    /// The payload failed to decode (truncated or corrupted).
    Corrupt(SnapError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::NotEpochBoundary { cycle, epoch_cycles } => write!(
                f,
                "snapshot requested at cycle {cycle}, which is not an epoch \
                 boundary (epoch length {epoch_cycles})"
            ),
            SnapshotError::BadMagic => f.write_str("not a GPU snapshot (bad magic)"),
            SnapshotError::SchemaVersion { found, expected } => {
                write!(f, "snapshot schema version {found} is not the supported version {expected}")
            }
            SnapshotError::ConfigFingerprint { found, expected } => write!(
                f,
                "snapshot config fingerprint {found:#018x} does not match the \
                 restoring machine's {expected:#018x}"
            ),
            SnapshotError::Corrupt(e) => write!(f, "snapshot payload corrupt: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<SnapError> for SnapshotError {
    fn from(e: SnapError) -> Self {
        SnapshotError::Corrupt(e)
    }
}

/// A versioned, self-describing capture of a [`Gpu`]'s mutable state.
///
/// The blob carries the schema version and a fingerprint of the producing
/// configuration; [`Gpu::restore`] validates both before touching any
/// state. [`SnapshotBlob::to_bytes`] / [`SnapshotBlob::from_bytes`] give a
/// stable on-disk form (magic + version + fingerprint + compat fingerprint
/// + payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotBlob {
    version: u32,
    config_fingerprint: u64,
    compat_fingerprint: u64,
    payload: Vec<u8>,
}

impl SnapshotBlob {
    /// Schema version the blob was written with.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Fingerprint of the configuration that produced the blob.
    pub fn config_fingerprint(&self) -> u64 {
        self.config_fingerprint
    }

    /// Migration-class fingerprint of the producing configuration (the
    /// config fingerprint with the fault plan erased; see
    /// [`GpuConfig::compat_fingerprint`]).
    pub fn compat_fingerprint(&self) -> u64 {
        self.compat_fingerprint
    }

    /// Size of the encoded state payload in bytes.
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// Serializes the blob to its on-disk byte form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload.len() + 32);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        self.version.encode(&mut out);
        self.config_fingerprint.encode(&mut out);
        self.compat_fingerprint.encode(&mut out);
        self.payload.encode(&mut out);
        out
    }

    /// Parses a blob previously written by [`SnapshotBlob::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::BadMagic`] when the stream is not a snapshot, and
    /// [`SnapshotError::Corrupt`] when the framing fails to decode.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < SNAPSHOT_MAGIC.len() || bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let mut r = SnapReader::new(&bytes[SNAPSHOT_MAGIC.len()..]);
        let version = u32::decode(&mut r)?;
        let config_fingerprint = u64::decode(&mut r)?;
        let compat_fingerprint = u64::decode(&mut r)?;
        let payload = Vec::<u8>::decode(&mut r)?;
        if !r.is_exhausted() {
            return Err(SnapshotError::Corrupt(SnapError::Invalid(
                "trailing bytes after snapshot payload",
            )));
        }
        Ok(SnapshotBlob { version, config_fingerprint, compat_fingerprint, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{AccessPattern, Op};

    fn compute_kernel(name: &str) -> KernelDesc {
        KernelDesc::builder(name)
            .threads_per_tb(256)
            .regs_per_thread(32)
            .grid_tbs(256)
            .iterations(8)
            .body(vec![Op::alu(2, 12), Op::mem_load(AccessPattern::tile(8 * 1024))])
            .build()
    }

    fn memory_kernel(name: &str) -> KernelDesc {
        KernelDesc::builder(name)
            .threads_per_tb(256)
            .regs_per_thread(24)
            .grid_tbs(256)
            .iterations(64)
            .memory_intensive(true)
            .body(vec![Op::mem_load(AccessPattern::stream()), Op::alu(2, 2)])
            .build()
    }

    #[test]
    fn isolated_run_makes_progress() {
        let mut gpu = Gpu::new(GpuConfig::tiny());
        let k = gpu.launch(compute_kernel("c"));
        gpu.run(20_000, &mut NullController);
        let stats = gpu.stats();
        assert!(stats.kernel(k).thread_insts > 100_000);
        assert!(stats.kernel(k).tbs_completed > 0);
        assert!(stats.ipc(k) > 1.0, "IPC {}", stats.ipc(k));
    }

    #[test]
    fn compute_kernel_outruns_memory_kernel_in_isolation() {
        let mut c = Gpu::new(GpuConfig::tiny());
        let kc = c.launch(compute_kernel("c"));
        c.run(20_000, &mut NullController);
        let mut m = Gpu::new(GpuConfig::tiny());
        let km = m.launch(memory_kernel("m"));
        m.run(20_000, &mut NullController);
        assert!(
            c.stats().ipc(kc) > m.stats().ipc(km),
            "compute IPC {} must exceed memory IPC {}",
            c.stats().ipc(kc),
            m.stats().ipc(km)
        );
    }

    #[test]
    fn corun_degrades_both_kernels() {
        let mut gpu = Gpu::new(GpuConfig::tiny());
        let a = gpu.launch(memory_kernel("a"));
        let b = gpu.launch(memory_kernel("b").with_seed(99));
        gpu.set_sharing_mode(SharingMode::Smk);
        // Force co-residency: half the TB slots each (unbounded targets would
        // let whichever kernel dispatches first monopolize the SMs — the very
        // problem the paper's static resource management addresses).
        for sm in gpu.sm_ids().collect::<Vec<_>>() {
            gpu.set_tb_target(sm, a, 4);
            gpu.set_tb_target(sm, b, 4);
        }
        gpu.run(20_000, &mut NullController);
        let shared = gpu.stats();

        let mut iso = Gpu::new(GpuConfig::tiny());
        let ki = iso.launch(memory_kernel("a"));
        iso.run(20_000, &mut NullController);
        let isolated = iso.stats();

        assert!(shared.ipc(a) > 0.0 && shared.ipc(b) > 0.0);
        assert!(
            shared.ipc(a) < isolated.ipc(ki),
            "sharing must cost bandwidth-bound kernels: {} vs isolated {}",
            shared.ipc(a),
            isolated.ipc(ki)
        );
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut gpu = Gpu::new(GpuConfig::tiny());
            let a = gpu.launch(compute_kernel("a"));
            let b = gpu.launch(memory_kernel("b"));
            gpu.set_sharing_mode(SharingMode::Smk);
            gpu.run(15_000, &mut NullController);
            (gpu.stats().kernel(a).thread_insts, gpu.stats().kernel(b).thread_insts)
        };
        assert_eq!(run(), run(), "same seeds must replay identically");
    }

    #[test]
    fn epoch_snapshot_reports_progress() {
        let mut gpu = Gpu::new(GpuConfig::tiny());
        gpu.launch(compute_kernel("c"));

        struct Check {
            saw_progress: bool,
        }
        impl Controller for Check {
            fn on_epoch(&mut self, gpu: &mut Gpu, epoch: u64) {
                if epoch > 0 {
                    let snap = gpu.epoch_snapshot();
                    assert_eq!(snap.cycles, gpu.config().epoch_cycles);
                    if snap.thread_insts[0] > 0 {
                        self.saw_progress = true;
                    }
                }
            }
        }
        let mut ctrl = Check { saw_progress: false };
        gpu.run(5_000, &mut ctrl);
        assert!(ctrl.saw_progress);
    }

    #[test]
    fn spatial_mode_partitions_sms() {
        let mut gpu = Gpu::new(GpuConfig::tiny());
        let a = gpu.launch(compute_kernel("a"));
        let b = gpu.launch(compute_kernel("b").with_seed(7));
        gpu.set_sharing_mode(SharingMode::Spatial);
        gpu.set_sm_owner(SmId::new(0), Some(a));
        gpu.set_sm_owner(SmId::new(1), Some(b));
        gpu.run(5_000, &mut NullController);
        assert_eq!(gpu.sms()[0].hosted_tbs(b), 0);
        assert_eq!(gpu.sms()[1].hosted_tbs(a), 0);
        assert!(gpu.stats().ipc(a) > 0.0);
        assert!(gpu.stats().ipc(b) > 0.0);
    }

    #[test]
    fn time_mux_serializes_kernels() {
        let mut gpu = Gpu::new(GpuConfig::tiny());
        let a = gpu.launch(compute_kernel("a"));
        let b = gpu.launch(compute_kernel("b").with_seed(5));
        gpu.set_sharing_mode(SharingMode::TimeMux);
        // While kernel a's first grid is incomplete, b must not be resident.
        gpu.run(2_000, &mut NullController);
        assert_eq!(gpu.time_mux_active(), a);
        assert!(gpu.stats().ipc(b) == 0.0, "kernel b must wait its turn");
        // Run long enough for a to finish a full grid and hand over.
        gpu.run(400_000, &mut NullController);
        assert!(
            gpu.stats().kernel(b).thread_insts > 0,
            "ownership must eventually rotate to kernel b"
        );
    }

    #[test]
    fn smk_outperforms_time_multiplexing_for_complementary_kernels() {
        // The paper's motivation (section 2.3): fine-grained sharing beats
        // kernel-granularity time multiplexing in total throughput because
        // compute- and memory-bound kernels overlap.
        let run = |mode: SharingMode| {
            let mut gpu = Gpu::new(GpuConfig::tiny());
            let a = gpu.launch(compute_kernel("c"));
            let b = gpu.launch(memory_kernel("m"));
            gpu.set_sharing_mode(mode);
            if mode == SharingMode::Smk {
                for sm in gpu.sm_ids().collect::<Vec<_>>() {
                    gpu.set_tb_target(sm, a, 4);
                    gpu.set_tb_target(sm, b, 4);
                }
            }
            gpu.run(100_000, &mut NullController);
            gpu.stats().total_thread_insts()
        };
        let smk = run(SharingMode::Smk);
        let timemux = run(SharingMode::TimeMux);
        assert!(
            smk > timemux,
            "SMK total throughput ({smk}) must beat time multiplexing ({timemux})"
        );
    }

    #[test]
    fn launch_limit_enforced() {
        let mut gpu = Gpu::new(GpuConfig::tiny());
        for i in 0..crate::MAX_KERNELS {
            gpu.launch(compute_kernel(&format!("k{i}")));
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            gpu.launch(compute_kernel("overflow"));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn run_is_resumable() {
        let mut gpu = Gpu::new(GpuConfig::tiny());
        let k = gpu.launch(compute_kernel("c"));
        gpu.run(5_000, &mut NullController);
        let mid = gpu.stats().kernel(k).thread_insts;
        gpu.run(5_000, &mut NullController);
        let end = gpu.stats().kernel(k).thread_insts;
        assert!(end > mid);
        assert_eq!(gpu.cycle(), 10_000);
    }

    use crate::health::{FaultKind, FaultPlan, SimError};

    #[test]
    fn watchdog_stays_silent_while_progressing() {
        let mut cfg = GpuConfig::tiny();
        cfg.health.watchdog_window = 1_000;
        let mut gpu = Gpu::new(cfg);
        gpu.launch(compute_kernel("c"));
        gpu.try_run(20_000, &mut NullController).expect("healthy run must not trip");
        assert_eq!(gpu.cycle(), 20_000);
    }

    #[test]
    fn watchdog_observation_does_not_perturb_results() {
        let run = |window: Cycle| {
            let mut cfg = GpuConfig::tiny();
            cfg.health.watchdog_window = window;
            let mut gpu = Gpu::new(cfg);
            let a = gpu.launch(compute_kernel("a"));
            let b = gpu.launch(memory_kernel("b"));
            gpu.set_sharing_mode(SharingMode::Smk);
            gpu.try_run(15_000, &mut NullController).expect("healthy");
            (gpu.stats().kernel(a).thread_insts, gpu.stats().kernel(b).thread_insts)
        };
        assert_eq!(run(0), run(500), "the watchdog is observation-only");
    }

    #[test]
    fn watchdog_trips_on_starved_quota_livelock_and_names_the_kernel() {
        let mut cfg = GpuConfig::tiny();
        cfg.health.watchdog_window = 2_000;
        cfg.faults = FaultPlan::one(3_000, FaultKind::StarveQuota);
        let mut gpu = Gpu::new(cfg);
        gpu.launch(compute_kernel("victim"));
        gpu.launch(memory_kernel("other"));
        let err = gpu
            .try_run(50_000, &mut NullController)
            .expect_err("all-gated livelock must trip the watchdog");
        assert!(
            gpu.cycle() < 50_000,
            "the watchdog must fire instead of spinning out the budget (cycle {})",
            gpu.cycle()
        );
        let SimError::Watchdog(report) = err else {
            panic!("expected a watchdog trip, got {err}");
        };
        let starved: Vec<&str> = report.starved_kernels().map(|k| k.name.as_str()).collect();
        assert!(
            starved.contains(&"victim") && starved.contains(&"other"),
            "report must name the quota-starved kernels, got {starved:?}"
        );
        assert!(report.summary().contains("victim"), "{}", report.summary());
        assert!(report.total_issued > 0, "progress happened before the fault");
    }

    #[test]
    fn frozen_scheduler_halts_only_that_sm() {
        let mut cfg = GpuConfig::tiny();
        cfg.faults = FaultPlan::one(0, FaultKind::FreezeScheduler { sm: 0 });
        let mut gpu = Gpu::new(cfg);
        gpu.launch(compute_kernel("c"));
        gpu.run(10_000, &mut NullController);
        assert_eq!(gpu.sms()[0].issued_total(), 0, "frozen SM must not issue");
        assert!(gpu.sms()[1].issued_total() > 0, "the other SM keeps running");
    }

    #[test]
    fn stalled_preemption_engine_refuses_saves() {
        let run = |stalled: bool| {
            let mut cfg = GpuConfig::tiny();
            if stalled {
                cfg.faults = FaultPlan::one(0, FaultKind::StallPreemption);
            }
            let mut gpu = Gpu::new(cfg);
            let k = gpu.launch(compute_kernel("c"));
            gpu.set_sharing_mode(SharingMode::Smk);
            for sm in gpu.sm_ids().collect::<Vec<_>>() {
                gpu.set_tb_target(sm, k, 4);
            }
            gpu.run(3_000, &mut NullController);
            // Shrink the target: the TB scheduler now wants to preempt.
            for sm in gpu.sm_ids().collect::<Vec<_>>() {
                gpu.set_tb_target(sm, k, 1);
            }
            gpu.run(10_000, &mut NullController);
            gpu.preempt_stats().saves
        };
        assert_eq!(run(true), 0, "a stalled engine must refuse every save");
        assert!(run(false) > 0, "the healthy engine preempts down to the target");
    }

    #[test]
    fn panic_fault_panics_inside_run() {
        let mut cfg = GpuConfig::tiny();
        cfg.faults = FaultPlan::one(1_000, FaultKind::Panic);
        let mut gpu = Gpu::new(cfg);
        gpu.launch(compute_kernel("c"));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            gpu.run(5_000, &mut NullController);
        }));
        let payload = result.expect_err("the injected panic must surface");
        let msg = payload.downcast_ref::<String>().expect("panic carries a message");
        assert!(msg.contains("injected fault"), "{msg}");
    }

    #[test]
    fn device_loss_surfaces_as_a_typed_error_mid_epoch() {
        let mut cfg = GpuConfig::tiny();
        cfg.faults = FaultPlan::one(2_500, FaultKind::DeviceLoss);
        let mut gpu = Gpu::new(cfg);
        gpu.launch(compute_kernel("victim"));
        let err =
            gpu.try_run(50_000, &mut NullController).expect_err("a lost device must stop the run");
        assert_eq!(err.kind(), "device-lost");
        let SimError::DeviceLost(report) = err else {
            panic!("expected a device-lost error, got {err}");
        };
        assert_eq!(gpu.cycle(), 2_500, "the loss fires mid-epoch, not at a boundary");
        assert_eq!(report.cycle, 2_500);
        assert!(report.total_issued > 0, "progress happened before the loss");
    }

    #[test]
    fn watchdog_classifies_a_wedged_device_within_one_window() {
        let mut cfg = GpuConfig::tiny();
        cfg.health.watchdog_window = 2_000;
        cfg.faults = FaultPlan::one(3_000, FaultKind::DeviceWedge);
        let mut gpu = Gpu::new(cfg);
        gpu.launch(compute_kernel("victim"));
        let err = gpu
            .try_run(50_000, &mut NullController)
            .expect_err("a wedged device must trip the watchdog");
        assert_eq!(err.kind(), "watchdog");
        let SimError::Watchdog(report) = err else {
            panic!("expected a watchdog trip, got {err}");
        };
        // The wedge fires at 3 000; the first full window with zero issues is
        // (4 000, 6 000], so classification lands at 6 000 — one window after
        // the first check that still saw pre-wedge progress.
        assert!(
            report.cycle <= 3_000 + 2 * 2_000,
            "wedge must be classified within one window of the first silent check \
             (tripped at {})",
            report.cycle
        );
        assert!(
            report.starved_kernels().count() == 0,
            "a wedged device is not a quota livelock; no kernel is quota-starved"
        );
        for sm in &report.sms {
            assert!(sm.warps.ready > 0, "ready warps that cannot issue mark a frozen scheduler");
        }
    }

    #[test]
    fn audit_passes_on_clean_smk_run_with_quota_gating() {
        let mut cfg = GpuConfig::tiny();
        cfg.health.audit = true;
        let mut gpu = Gpu::new(cfg);
        let a = gpu.launch(compute_kernel("a"));
        let b = gpu.launch(memory_kernel("b"));
        gpu.set_sharing_mode(SharingMode::Smk);
        for sm in gpu.sm_ids().collect::<Vec<_>>() {
            gpu.set_tb_target(sm, a, 4);
            gpu.set_tb_target(sm, b, 4);
        }

        struct Gate;
        impl Controller for Gate {
            fn on_epoch(&mut self, gpu: &mut Gpu, _epoch: u64) {
                for sm in gpu.sm_ids().collect::<Vec<_>>() {
                    let sm = gpu.sm_mut(sm);
                    sm.set_gated(KernelId::new(0), true);
                    sm.set_qos_kernel(KernelId::new(0), true);
                    sm.set_epoch_quota(KernelId::new(0), 2_000, crate::sm::QuotaCarry::Full, 0);
                }
            }
        }
        gpu.try_run(25_000, &mut Gate).expect("a clean run must pass every audit");
    }

    #[test]
    fn audit_catches_quota_ledger_corruption() {
        let mut cfg = GpuConfig::tiny();
        cfg.health.audit = true;
        let mut gpu = Gpu::new(cfg);
        let k = gpu.launch(compute_kernel("c"));
        gpu.run(5_000, &mut NullController);
        gpu.sm_mut(SmId::new(0)).corrupt_quota_for_test(k, 7);
        let err = gpu
            .try_run(5_000, &mut NullController)
            .expect_err("a stray quota mutation must fail the ledger audit");
        match err {
            SimError::Audit(v) => {
                assert_eq!(v.kind, crate::health::AuditKind::QuotaLedger, "{v}");
                assert_eq!(v.sm, Some(0));
            }
            other => panic!("expected an audit violation, got {other}"),
        }
    }

    #[test]
    fn snapshot_restore_continues_bit_identically() {
        let cfg = GpuConfig::tiny();
        // Straight run to 12k cycles.
        let mut straight = Gpu::new(cfg.clone());
        let a = straight.launch(compute_kernel("a"));
        let b = straight.launch(memory_kernel("b"));
        straight.set_sharing_mode(SharingMode::Smk);
        for sm in straight.sm_ids().collect::<Vec<_>>() {
            straight.set_tb_target(sm, a, 4);
            straight.set_tb_target(sm, b, 4);
        }
        straight.run(12_000, &mut NullController);

        // Same run, snapshotted at 5k (an epoch boundary in the tiny config)
        // and restored into a *fresh* machine that never saw cycles 0..5k.
        let mut gpu = Gpu::new(cfg.clone());
        let a2 = gpu.launch(compute_kernel("a"));
        let b2 = gpu.launch(memory_kernel("b"));
        gpu.set_sharing_mode(SharingMode::Smk);
        for sm in gpu.sm_ids().collect::<Vec<_>>() {
            gpu.set_tb_target(sm, a2, 4);
            gpu.set_tb_target(sm, b2, 4);
        }
        gpu.run(5_000, &mut NullController);
        let blob = gpu.snapshot().expect("cycle 5000 is an epoch boundary");
        let mut resumed = Gpu::new(cfg);
        resumed.restore(&blob).expect("fingerprints match");
        assert_eq!(resumed.cycle(), 5_000);
        resumed.run(7_000, &mut NullController);

        assert_eq!(resumed.stats().kernel(a).thread_insts, straight.stats().kernel(a).thread_insts);
        assert_eq!(resumed.stats().kernel(b).thread_insts, straight.stats().kernel(b).thread_insts);
        assert_eq!(resumed.preempt_stats(), straight.preempt_stats());
        assert_eq!(resumed.skipped_cycles(), straight.skipped_cycles());
    }

    #[test]
    fn snapshot_refuses_mid_epoch() {
        let mut gpu = Gpu::new(GpuConfig::tiny());
        gpu.launch(compute_kernel("c"));
        gpu.run(500, &mut NullController);
        match gpu.snapshot() {
            Err(SnapshotError::NotEpochBoundary { cycle: 500, epoch_cycles: 1_000 }) => {}
            other => panic!("expected NotEpochBoundary, got {other:?}"),
        }
    }

    #[test]
    fn restore_refuses_config_mismatch() {
        let mut gpu = Gpu::new(GpuConfig::tiny());
        gpu.launch(compute_kernel("c"));
        let blob = gpu.snapshot().expect("cycle 0 is a boundary");
        let mut other_cfg = GpuConfig::tiny();
        other_cfg.epoch_cycles = 2_000;
        let mut other = Gpu::new(other_cfg);
        match other.restore(&blob) {
            Err(SnapshotError::ConfigFingerprint { .. }) => {}
            other => panic!("expected ConfigFingerprint, got {other:?}"),
        }
        assert_eq!(other.cycle(), 0, "failed restore must leave the machine untouched");
    }

    #[test]
    fn restore_compat_accepts_different_fault_plan_and_rebases_cursor() {
        // Source: clean machine, run to 5k, snapshot.
        let cfg = GpuConfig::tiny();
        let mut src = Gpu::new(cfg.clone());
        src.launch(compute_kernel("c"));
        src.run(5_000, &mut NullController);
        let blob = src.snapshot().expect("cycle 5000 is an epoch boundary");

        // Receiver: same class, different fault plan — one fault strictly in
        // the past (must be treated as consumed, not re-fired), one in the
        // future (must still fire).
        let mut dst_cfg = cfg.clone();
        dst_cfg.faults =
            FaultPlan::one(2_000, FaultKind::DeviceLoss).with(9_000, FaultKind::DeviceLoss);
        let mut dst = Gpu::new(dst_cfg);
        dst.launch(compute_kernel("c"));
        match dst.restore(&blob) {
            Err(SnapshotError::ConfigFingerprint { .. }) => {}
            other => panic!("full restore must refuse a fault-plan mismatch, got {other:?}"),
        }
        dst.restore_compat(&blob).expect("same migration class");
        assert_eq!(dst.cycle(), 5_000);
        // The past fault is consumed: stepping does not fire it...
        dst.run(2_000, &mut NullController);
        assert_eq!(dst.cycle(), 7_000);
        // ...but the future one still does.
        let err = dst.try_run(5_000, &mut NullController).expect_err("armed fault must fire");
        assert!(matches!(err, SimError::DeviceLost(_)), "got {err}");
        assert_eq!(dst.cycle(), 9_000);
    }

    #[test]
    fn compat_fingerprint_erases_faults_but_not_geometry() {
        let clean = GpuConfig::tiny();
        let mut faulty = clean.clone();
        faulty.faults = FaultPlan::one(100, FaultKind::DeviceWedge);
        assert_ne!(clean.fingerprint(), faulty.fingerprint());
        assert_eq!(clean.compat_fingerprint(), faulty.compat_fingerprint());
        let mut bigger = clean.clone();
        bigger.num_sms = 4;
        assert_ne!(clean.compat_fingerprint(), bigger.compat_fingerprint());
    }

    #[test]
    fn blob_bytes_round_trip_and_detect_corruption() {
        let mut gpu = Gpu::new(GpuConfig::tiny());
        gpu.launch(compute_kernel("c"));
        gpu.run(1_000, &mut NullController);
        let blob = gpu.snapshot().expect("boundary");
        let bytes = blob.to_bytes();
        let parsed = SnapshotBlob::from_bytes(&bytes).expect("round trip");
        assert_eq!(parsed, blob);
        assert!(matches!(SnapshotBlob::from_bytes(b"nope"), Err(SnapshotError::BadMagic)));
        assert!(SnapshotBlob::from_bytes(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn failure_state_is_snapshot_legal() {
        // The watchdog trips at a multiple of its window; with the window a
        // multiple of the epoch length (the harness convention), the failing
        // machine sits on an epoch boundary and can be snapshotted for
        // offline inspection.
        let mut cfg = GpuConfig::tiny();
        cfg.health.watchdog_window = 2_000;
        cfg.faults = FaultPlan::one(3_000, FaultKind::StarveQuota);
        let mut gpu = Gpu::new(cfg.clone());
        gpu.launch(compute_kernel("victim"));
        let err = gpu.try_run(50_000, &mut NullController).expect_err("must trip");
        assert!(matches!(err, SimError::Watchdog(_)));
        let blob = gpu.snapshot().expect("trip cycle is an epoch boundary");
        let mut inspect = Gpu::new(cfg);
        inspect.restore(&blob).expect("restore for inspection");
        assert_eq!(inspect.cycle(), gpu.cycle());
        let report = inspect.health_report();
        assert!(report.kernels[0].quota_starved());
    }

    #[test]
    fn compat_restore_thaws_fault_effects_but_full_restore_keeps_them() {
        // A wedge is silent: schedulers freeze long before the watchdog can
        // classify the device, so a snapshot taken in that window carries
        // the frozen state. Migrating the blob onto healthy silicon must
        // thaw it (the sickness belongs to the machine, not the workload);
        // resuming the same machine must keep it, watchdog trip included.
        let mut cfg = GpuConfig::tiny();
        cfg.health.watchdog_window = 2_000;
        cfg.faults = FaultPlan::one(500, FaultKind::DeviceWedge);
        let mut src = Gpu::new(cfg.clone());
        src.launch(compute_kernel("c"));
        src.try_run(1_000, &mut NullController).expect("watchdog has not tripped yet");
        let blob = src.snapshot().expect("cycle 1000 is an epoch boundary");

        // Same machine (same fault plan): the frozen schedulers survive the
        // full restore and the watchdog classifies the wedge on schedule.
        let mut same = Gpu::new(cfg.clone());
        same.launch(compute_kernel("c"));
        same.restore(&blob).expect("identical fingerprint");
        let err = same.try_run(50_000, &mut NullController).expect_err("still wedged");
        assert!(matches!(err, SimError::Watchdog(_)), "got {err}");

        // Healthy spare of the same class: the thawed workload resumes and
        // completes instead of wedging the receiver.
        let mut clean_cfg = GpuConfig::tiny();
        clean_cfg.health.watchdog_window = 2_000;
        let mut spare = Gpu::new(clean_cfg);
        spare.launch(compute_kernel("c"));
        spare.restore_compat(&blob).expect("same migration class");
        spare.try_run(200_000, &mut NullController).expect("healthy silicon must not wedge");
        assert!(
            spare.stats().kernel(KernelId::new(0)).launches_completed >= 1,
            "the migrated kernel finishes on the spare"
        );
    }

    #[test]
    fn health_report_on_demand_reflects_residency() {
        let mut gpu = Gpu::new(GpuConfig::tiny());
        gpu.launch(compute_kernel("c"));
        gpu.run(5_000, &mut NullController);
        let report = gpu.health_report();
        assert_eq!(report.cycle, 5_000);
        assert_eq!(report.kernels.len(), 1);
        assert_eq!(report.sms.len(), 2);
        assert!(report.kernels[0].resident_tbs > 0);
        assert!(report.total_issued > 0);
        assert!(report.sms.iter().any(|s| s.warps.total() > 0));
    }
}
