//! Occupancy and slot accounting: TB dispatch, preemption context switches,
//! completion outboxes, and the epoch-boundary invariant audit.
//!
//! All TB bookkeeping lives in the arena-allocated [`crate::tb::TbSlab`] and
//! all warp state in the struct-of-arrays [`super::WarpTable`]; dispatch and
//! release are index-based and allocation-free in steady state (the per-slot
//! warp lists keep their capacity across reuse). Every TB phase change also
//! updates the warp table's `tb_active`/`tb_loading` mirror bits, the
//! invariant the issue path's bitmask scan relies on.

use std::sync::Arc;

use crate::health::AuditKind;
use crate::kernel::KernelDesc;
use crate::observe::TraceEventKind;
use crate::preempt::SavedTb;
use crate::rng::derive_seed;
use crate::tb::TbPhase;
use crate::types::{Cycle, KernelId, TbIndex};
use crate::warp::WarpProgress;
use crate::MAX_KERNELS;

use super::warp_table::{mask_clear, mask_get};
use super::Sm;

impl Sm {
    /// Registers the kernel description for slot `k` (done once at launch).
    pub(crate) fn set_kernel_desc(&mut self, k: KernelId, desc: Arc<KernelDesc>) {
        self.bodies[k.index()] = desc.body().to_vec();
        self.descs[k.index()] = Some(desc);
    }

    /// Whether one more TB of `desc` fits in the remaining resources.
    pub fn can_host(&self, desc: &KernelDesc) -> bool {
        self.tbs.free_slots() > 0
            && self.warps.free_slots() >= desc.warps_per_tb() as usize
            && self.used_threads + desc.threads_per_tb() <= self.max_threads
            && self.used_regs + desc.regfile_bytes_per_tb() <= self.regfile_bytes
            && self.used_smem + desc.smem_per_tb() <= self.smem_bytes
    }

    /// Maximum TBs of `desc` an (empty) SM of this configuration can hold.
    pub fn max_resident_tbs(&self, desc: &KernelDesc) -> u32 {
        let by_tbs = u32::from(self.max_tbs);
        let by_warps = u32::from(self.max_warps) / desc.warps_per_tb();
        let by_threads = self.max_threads / desc.threads_per_tb();
        let by_regs = (self.regfile_bytes / desc.regfile_bytes_per_tb().max(1)) as u32;
        let by_smem = if desc.smem_per_tb() == 0 {
            u32::MAX
        } else {
            (self.smem_bytes / desc.smem_per_tb()) as u32
        };
        by_tbs.min(by_warps).min(by_threads).min(by_regs).min(by_smem)
    }

    /// Number of TBs of kernel `k` currently resident (including loading /
    /// saving ones).
    pub fn hosted_tbs(&self, k: KernelId) -> u32 {
        u32::from(self.hosted[k.index()])
    }

    /// Dispatches one TB of kernel `k`, optionally resuming saved context.
    /// The TB's warps may issue after `load_cost` cycles.
    ///
    /// # Panics
    ///
    /// Panics if the TB does not fit (callers check [`Sm::can_host`]) or the
    /// kernel description was not registered.
    pub(crate) fn dispatch(
        &mut self,
        k: KernelId,
        tb_index: TbIndex,
        resume: Option<SavedTb>,
        now: Cycle,
        load_cost: Cycle,
    ) {
        let desc = self.descs[k.index()].as_ref().expect("kernel desc registered").clone();
        assert!(self.can_host(&desc), "dispatch without capacity on {}", self.id);
        // New residency changes the horizon inputs.
        self.wake.invalidate();
        let resumed = resume.is_some();
        let warps_per_tb = desc.warps_per_tb() as u16;
        let tb_slot = self
            .tbs
            .alloc(k, tb_index, 0, TbPhase::Loading(now + load_cost))
            .expect("free TB slot");
        let saved_warps = resume.as_ref().map(|s| &s.warps);
        if let Some(s) = &resume {
            assert_eq!(s.tb_index, tb_index, "resume must target the saved TB index");
            assert_eq!(s.warps.len(), warps_per_tb as usize, "saved warp count mismatch");
            self.preempt_stats.resumes += 1;
            self.preempt_stats.transfer_cycles += load_cost;
        }
        let mut warps_done = 0u16;
        for wi in 0..warps_per_tb {
            let warp_uid = u64::from(tb_index.0) * u64::from(warps_per_tb) + u64::from(wi);
            let progress = match saved_warps {
                Some(saved) => {
                    let p: &WarpProgress = &saved[wi as usize];
                    if p.done {
                        warps_done += 1;
                    }
                    p.clone()
                }
                None => WarpProgress {
                    pc: 0,
                    rem: 0,
                    iter: desc.iterations(),
                    seq: 0,
                    done: false,
                    rng: crate::rng::SplitMix64::new(derive_seed(desc.seed(), warp_uid)),
                },
            };
            let slot = self
                .warps
                .alloc(k, tb_slot, wi, warp_uid, &progress, now + load_cost, self.next_age)
                .expect("free warp slot");
            self.next_age += 1;
            self.warps.set_tb_phase_bits(slot, false, true);
            self.tbs.warp_slots[usize::from(tb_slot)].push(slot);
        }
        self.tbs.warps_done[usize::from(tb_slot)] = warps_done;
        self.used_threads += desc.threads_per_tb();
        self.used_regs += desc.regfile_bytes_per_tb();
        self.used_smem += desc.smem_per_tb();
        self.hosted[k.index()] += 1;
        self.transitioning.push(tb_slot);
        self.record(
            now,
            TraceEventKind::TbDispatch { kernel: k.index() as u32, tb: tb_index.0, resumed },
        );
    }

    /// Starts a partial context switch of one `k` TB (the most recently
    /// dispatched active one). Returns `false` if no active TB of `k` is
    /// resident.
    pub(crate) fn start_preempt(&mut self, k: KernelId, now: Cycle, save_cost: Cycle) -> bool {
        if self.preempt_stalled {
            return false;
        }
        let victim = self
            .tbs
            .iter_occupied()
            .filter(|&slot| {
                let i = usize::from(slot);
                self.tbs.kernel[i] == k
                    && self.tbs.phase[i] == TbPhase::Active
                    && !self.tbs.finished(slot)
            })
            .map(|slot| (slot, self.tbs.tb_index[usize::from(slot)].0))
            .max_by_key(|&(_, idx)| idx);
        let Some((slot, victim_tb)) = victim else { return false };
        self.wake.invalidate();
        let i = usize::from(slot);
        self.tbs.phase[i] = TbPhase::Saving(now + save_cost);
        // Warps parked at a barrier would deadlock the saved context check;
        // the barrier state is recomputed on resume, so release the arrivals.
        self.tbs.barrier_arrived[i] = 0;
        // Saving TBs' warps are frozen: neither phase-mirror bit set.
        for idx in 0..self.tbs.warp_slots[i].len() {
            let ws = self.tbs.warp_slots[i][idx];
            self.warps.set_tb_phase_bits(ws, false, false);
        }
        self.preempt_stats.saves += 1;
        self.preempt_stats.transfer_cycles += save_cost;
        self.preempt_save_hist[k.index()].record(save_cost);
        self.transitioning.push(slot);
        self.record(now, TraceEventKind::PreemptStart { kernel: k.index() as u32, tb: victim_tb });
        true
    }

    /// Whether any TB is currently loading or saving context.
    pub fn context_switch_in_flight(&self) -> bool {
        self.transitioning
            .iter()
            .any(|&s| self.tbs.is_occupied(s) && self.tbs.transition_done_at(s).is_some())
    }

    pub(super) fn process_transitions(&mut self, now: Cycle) {
        let mut i = 0;
        while i < self.transitioning.len() {
            let slot = self.transitioning[i];
            if !self.tbs.is_occupied(slot) {
                // The TB completed while transitioning bookkeeping was
                // pending (cannot normally happen; defensive).
                self.wake.invalidate();
                self.transitioning.swap_remove(i);
                continue;
            }
            match self.tbs.phase[usize::from(slot)] {
                TbPhase::Loading(until) if now >= until => {
                    self.wake.invalidate();
                    self.tbs.phase[usize::from(slot)] = TbPhase::Active;
                    let si = usize::from(slot);
                    for idx in 0..self.tbs.warp_slots[si].len() {
                        let ws = self.tbs.warp_slots[si][idx];
                        self.warps.set_tb_phase_bits(ws, true, false);
                    }
                    self.transitioning.swap_remove(i);
                }
                TbPhase::Saving(until) if now >= until => {
                    self.finalize_save(slot, now);
                    self.transitioning.swap_remove(i);
                }
                _ => i += 1,
            }
        }
    }

    fn finalize_save(&mut self, tb_slot: u16, now: Cycle) {
        self.wake.invalidate();
        let i = usize::from(tb_slot);
        let kernel = self.tbs.kernel[i];
        let tb_index = self.tbs.tb_index[i];
        let desc = self.descs[kernel.index()].as_ref().expect("desc").clone();
        let n = self.tbs.warp_slots[i].len();
        let mut warps = Vec::with_capacity(n);
        for idx in 0..n {
            let ws = self.tbs.warp_slots[i][idx];
            warps.push(self.warps.capture_progress(ws));
            self.warps.free_slot(ws);
        }
        self.release_resources(&desc);
        self.hosted[kernel.index()] -= 1;
        self.tbs.release(tb_slot);
        self.saved.push((kernel, SavedTb { tb_index, warps }));
        self.record(
            now,
            TraceEventKind::PreemptComplete { kernel: kernel.index() as u32, tb: tb_index.0 },
        );
    }

    fn release_resources(&mut self, desc: &KernelDesc) {
        self.used_threads -= desc.threads_per_tb();
        self.used_regs -= desc.regfile_bytes_per_tb();
        self.used_smem -= desc.smem_per_tb();
    }

    pub(super) fn note_barrier_arrival(&mut self, tb_slot: u16, now: Cycle) {
        let i = usize::from(tb_slot);
        self.tbs.barrier_arrived[i] += 1;
        let live = self.tbs.warp_slots[i].len() as u16 - self.tbs.warps_done[i];
        if self.tbs.barrier_arrived[i] >= live {
            self.wake.invalidate();
            self.tbs.barrier_arrived[i] = 0;
            for idx in 0..self.tbs.warp_slots[i].len() {
                let ws = self.tbs.warp_slots[i][idx];
                if self.warps.is_occupied(ws) && mask_get(&self.warps.at_barrier, ws) {
                    mask_clear(&mut self.warps.at_barrier, ws);
                    let w = usize::from(ws);
                    self.warps.ready_at[w] = self.warps.ready_at[w].max(now + 1);
                }
            }
        }
    }

    pub(super) fn note_warp_retired(&mut self, tb_slot: u16, now: Cycle) {
        let i = usize::from(tb_slot);
        self.tbs.warps_done[i] += 1;
        if self.tbs.finished(tb_slot) {
            self.wake.invalidate();
            let kernel = self.tbs.kernel[i];
            let tb_index = self.tbs.tb_index[i];
            let desc = self.descs[kernel.index()].as_ref().expect("desc").clone();
            for idx in 0..self.tbs.warp_slots[i].len() {
                let ws = self.tbs.warp_slots[i][idx];
                self.warps.free_slot(ws);
            }
            self.release_resources(&desc);
            self.hosted[kernel.index()] -= 1;
            self.tbs.release(tb_slot);
            self.record(
                now,
                TraceEventKind::TbDrain { kernel: kernel.index() as u32, tb: tb_index.0 },
            );
            self.completed.push((kernel, tb_index));
        }
    }

    /// Whether TB completions or finished context saves are waiting for the
    /// TB scheduler's next service pass.
    pub(crate) fn has_pending_notifications(&self) -> bool {
        !self.completed.is_empty() || !self.saved.is_empty()
    }

    /// Drains TB-completion notifications for the TB scheduler.
    pub(crate) fn drain_completed(&mut self, out: &mut Vec<(KernelId, TbIndex)>) {
        out.append(&mut self.completed);
    }

    /// Drains saved-context notifications for the TB scheduler.
    pub(crate) fn drain_saved(&mut self, out: &mut Vec<(KernelId, SavedTb)>) {
        out.append(&mut self.saved);
    }

    /// Re-derives this SM's bookkeeping from its resident TBs and checks it
    /// against the incrementally maintained state. Returns the first
    /// violated invariant. Called at epoch boundaries in audit mode.
    pub fn audit_invariants(&self) -> Result<(), (AuditKind, String)> {
        let mut threads = 0u32;
        let mut regs = 0u64;
        let mut smem = 0u64;
        let mut hosted = [0u16; MAX_KERNELS];
        let mut live_tbs = 0usize;
        for slot in self.tbs.iter_occupied() {
            let i = usize::from(slot);
            let k = self.tbs.kernel[i].index();
            let Some(desc) = self.descs[k].as_ref() else {
                return Err((
                    AuditKind::SlotAccounting,
                    format!("TB slot {slot} hosts unregistered kernel {k}"),
                ));
            };
            threads += desc.threads_per_tb();
            regs += desc.regfile_bytes_per_tb();
            smem += desc.smem_per_tb();
            hosted[k] += 1;
            live_tbs += 1;
            let (want_active, want_loading) = match self.tbs.phase[i] {
                TbPhase::Active => (true, false),
                TbPhase::Loading(_) => (false, true),
                TbPhase::Saving(_) => (false, false),
            };
            for &ws in &self.tbs.warp_slots[i] {
                let ok = self.warps.is_occupied(ws)
                    && self.warps.kernel[usize::from(ws)] == self.tbs.kernel[i]
                    && self.warps.tb_slot[usize::from(ws)] == slot;
                if !ok {
                    return Err((
                        AuditKind::SlotAccounting,
                        format!("TB slot {slot} claims warp slot {ws} it does not own"),
                    ));
                }
                let is_active = mask_get(&self.warps.tb_active, ws);
                let is_loading = mask_get(&self.warps.tb_loading, ws);
                if (is_active, is_loading) != (want_active, want_loading) {
                    return Err((
                        AuditKind::SlotAccounting,
                        format!(
                            "warp slot {ws}: TB-phase mirror bits (active={is_active}, \
                             loading={is_loading}) disagree with TB slot {slot} phase {:?}",
                            self.tbs.phase[i]
                        ),
                    ));
                }
            }
        }
        if threads > self.max_threads || regs > self.regfile_bytes || smem > self.smem_bytes {
            return Err((
                AuditKind::Occupancy,
                format!(
                    "resident TBs need {threads} threads / {regs} reg bytes / {smem} smem \
                     bytes, limits are {} / {} / {}",
                    self.max_threads, self.regfile_bytes, self.smem_bytes
                ),
            ));
        }
        if threads != self.used_threads || regs != self.used_regs || smem != self.used_smem {
            return Err((
                AuditKind::Occupancy,
                format!(
                    "tracked occupancy {}t/{}r/{}s != recomputed {threads}t/{regs}r/{smem}s",
                    self.used_threads, self.used_regs, self.used_smem
                ),
            ));
        }
        for (k, &count) in hosted.iter().enumerate() {
            if count != self.hosted[k] {
                return Err((
                    AuditKind::SlotAccounting,
                    format!(
                        "kernel {k}: hosted counter {} != {count} resident TBs",
                        self.hosted[k]
                    ),
                ));
            }
        }
        if self.tbs.free_slots() + live_tbs != self.max_tbs as usize {
            return Err((
                AuditKind::SlotAccounting,
                format!(
                    "{} free + {live_tbs} live TB slots != {} total",
                    self.tbs.free_slots(),
                    self.max_tbs
                ),
            ));
        }
        let live_warps: usize = self.warps.occupied.iter().map(|w| w.count_ones() as usize).sum();
        if self.warps.free_slots() + live_warps != self.max_warps as usize {
            return Err((
                AuditKind::SlotAccounting,
                format!(
                    "{} free + {live_warps} live warp slots != {} total",
                    self.warps.free_slots(),
                    self.max_warps
                ),
            ));
        }
        for k in 0..MAX_KERNELS {
            let expected = self.quota_credit[k] - self.quota_debit[k];
            if self.quota[k] != expected {
                return Err((
                    AuditKind::QuotaLedger,
                    format!(
                        "kernel {k}: quota {} != credits {} - debits {}",
                        self.quota[k], self.quota_credit[k], self.quota_debit[k]
                    ),
                ));
            }
        }
        Ok(())
    }
}
