//! Snapshot codec: a small, dependency-free binary serialization layer.
//!
//! The checkpoint/restore subsystem needs every state-carrying struct in the
//! simulator to round-trip through bytes bit-exactly. The vendored `serde`
//! is a no-op stand-in (this environment has no registry access), so the
//! derive surface is provided here instead: the [`Snap`] trait plus the
//! [`impl_snap_struct!`] / [`impl_snap_enum!`] macros generate the same
//! field-by-field encoders a `serde` derive would, without a proc macro.
//!
//! Format notes:
//! * integers are little-endian fixed width; `usize` travels as `u64`,
//! * `f64` travels as its IEEE-754 bit pattern (restores are bit-exact,
//!   including NaN payloads),
//! * sequences are a `u64` length followed by the elements,
//! * enums are a `u8` tag followed by the variant's fields.
//!
//! The format carries no field names or type tags beyond enum discriminants;
//! compatibility across schema changes is handled one level up by
//! [`crate::gpu::SNAPSHOT_SCHEMA_VERSION`] refusing to decode blobs from a
//! different schema at all.

use std::fmt;
use std::sync::Arc;

/// Error decoding a snapshot byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The stream ended before the value was fully decoded.
    UnexpectedEof,
    /// The bytes decoded to a structurally invalid value (bad enum tag,
    /// out-of-range length, …). The message names the offending type.
    Invalid(&'static str),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::UnexpectedEof => write!(f, "snapshot stream ended unexpectedly"),
            SnapError::Invalid(what) => write!(f, "invalid snapshot encoding for {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Cursor over a snapshot byte stream being decoded.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Creates a reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Takes the next `n` bytes, or fails if fewer remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        let end = self.pos.checked_add(n).ok_or(SnapError::UnexpectedEof)?;
        if end > self.buf.len() {
            return Err(SnapError::UnexpectedEof);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }
}

/// A value that can be snapshotted to bytes and restored bit-exactly.
///
/// `decode(encode(x)) == x` for every reachable state `x`; the differential
/// proptests in `tests/snapshot.rs` hold the whole simulator to this.
pub trait Snap: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one value from the reader.
    ///
    /// # Errors
    ///
    /// [`SnapError`] when the stream is truncated or structurally invalid.
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;
}

/// Encodes a value into a fresh byte vector.
pub fn encode_to_vec<T: Snap>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode(&mut out);
    out
}

/// Decodes a value from a byte slice, requiring the slice to be fully
/// consumed.
///
/// # Errors
///
/// [`SnapError`] when decoding fails or trailing bytes remain.
pub fn decode_from_slice<T: Snap>(bytes: &[u8]) -> Result<T, SnapError> {
    let mut r = SnapReader::new(bytes);
    let value = T::decode(&mut r)?;
    if !r.is_exhausted() {
        return Err(SnapError::Invalid("trailing bytes after value"));
    }
    Ok(value)
}

/// FNV-1a over a byte slice — the same constants as
/// [`crate::trace::records_hash`], reused for snapshot checksums and config
/// fingerprints.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

macro_rules! impl_snap_int {
    ($($ty:ty),+) => {
        $(impl Snap for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                let bytes = r.take(std::mem::size_of::<$ty>())?;
                Ok(<$ty>::from_le_bytes(bytes.try_into().expect("sized take")))
            }
        })+
    };
}

impl_snap_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64);

impl Snap for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        usize::try_from(u64::decode(r)?).map_err(|_| SnapError::Invalid("usize"))
    }
}

impl Snap for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Invalid("bool")),
        }
    }
}

impl Snap for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(f64::from_bits(u64::decode(r)?))
    }
}

impl Snap for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = usize::decode(r)?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::Invalid("utf-8 string"))
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = usize::decode(r)?;
        // Clamp pre-allocation so a corrupt length can't trigger a huge
        // allocation before the first element decode fails on EOF.
        let mut v = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<T: Snap> Snap for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(SnapError::Invalid("Option tag")),
        }
    }
}

impl<T: Snap, E: Snap> Snap for Result<T, E> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Ok(v) => {
                out.push(0);
                v.encode(out);
            }
            Err(e) => {
                out.push(1);
                e.encode(out);
            }
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match u8::decode(r)? {
            0 => Ok(Ok(T::decode(r)?)),
            1 => Ok(Err(E::decode(r)?)),
            _ => Err(SnapError::Invalid("Result tag")),
        }
    }
}

impl<T: Snap, const N: usize> Snap for [T; N] {
    fn encode(&self, out: &mut Vec<u8>) {
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mut v = Vec::with_capacity(N);
        for _ in 0..N {
            v.push(T::decode(r)?);
        }
        v.try_into().map_err(|_| SnapError::Invalid("array length"))
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

/// `Arc` snapshots its inner value; decoding creates a fresh, unshared
/// allocation. The simulator never relies on `Arc` pointer identity (SMs and
/// the TB scheduler only read through it), so restored clones are
/// behaviorally identical.
impl<T: Snap> Snap for Arc<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (**self).encode(out);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Arc::new(T::decode(r)?))
    }
}

/// Implements [`Snap`] for a struct by encoding the listed fields in order.
///
/// Must be invoked inside the module that can see the fields. An optional
/// trailing `skip { .. }` block names scratch fields that are *not*
/// persisted; they are rebuilt with `Default::default()` on decode (every
/// such field is empty between the simulator's public calls, which is the
/// only place snapshots are taken).
#[macro_export]
macro_rules! impl_snap_struct {
    ($ty:ty { $($field:tt),+ $(,)? }) => {
        $crate::impl_snap_struct!($ty { $($field),+ } skip {});
    };
    ($ty:ty { $($field:tt),+ $(,)? } skip { $($scratch:tt),* $(,)? }) => {
        impl $crate::snap::Snap for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                $($crate::snap::Snap::encode(&self.$field, out);)+
            }
            fn decode(
                r: &mut $crate::snap::SnapReader<'_>,
            ) -> Result<Self, $crate::snap::SnapError> {
                Ok(Self {
                    $($field: $crate::snap::Snap::decode(r)?,)+
                    $($scratch: Default::default(),)*
                })
            }
        }
    };
}

/// Implements [`Snap`] for a fieldless enum as a tagged `u8`.
#[macro_export]
macro_rules! impl_snap_enum {
    ($ty:ty { $($variant:ident = $tag:literal),+ $(,)? }) => {
        impl $crate::snap::Snap for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                let tag: u8 = match self {
                    $(Self::$variant => $tag,)+
                };
                $crate::snap::Snap::encode(&tag, out);
            }
            fn decode(
                r: &mut $crate::snap::SnapReader<'_>,
            ) -> Result<Self, $crate::snap::SnapError> {
                match <u8 as $crate::snap::Snap>::decode(r)? {
                    $($tag => Ok(Self::$variant),)+
                    _ => Err($crate::snap::SnapError::Invalid(stringify!($ty))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Snap + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = encode_to_vec(&value);
        let back: T = decode_from_slice(&bytes).expect("decode");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u64::MAX);
        round_trip(-12345i64);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(f64::NEG_INFINITY);
        round_trip(1.5f64);
        round_trip("héllo".to_string());
    }

    #[test]
    fn nan_payload_survives() {
        let weird = f64::from_bits(0x7ff8_dead_beef_0001);
        let bytes = encode_to_vec(&weird);
        let back: f64 = decode_from_slice(&bytes).expect("decode");
        assert_eq!(back.to_bits(), weird.to_bits());
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u32>::new());
        round_trip(Some(7u16));
        round_trip(Option::<u16>::None);
        round_trip([1u8, 2, 3, 4]);
        round_trip((42u64, "x".to_string()));
        round_trip(Ok::<u32, String>(5));
        round_trip(Err::<u32, String>("boom".to_string()));
    }

    #[test]
    fn arc_round_trips_by_value() {
        let a = Arc::new(99u64);
        let bytes = encode_to_vec(&a);
        let back: Arc<u64> = decode_from_slice(&bytes).expect("decode");
        assert_eq!(*back, 99);
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let bytes = encode_to_vec(&12345u64);
        let err = decode_from_slice::<u64>(&bytes[..4]).expect_err("truncated");
        assert_eq!(err, SnapError::UnexpectedEof);
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut bytes = encode_to_vec(&1u8);
        bytes.push(0);
        assert!(decode_from_slice::<u8>(&bytes).is_err());
    }

    #[test]
    fn corrupt_length_fails_without_huge_allocation() {
        let mut bytes = Vec::new();
        u64::MAX.encode(&mut bytes); // absurd element count
        let err = decode_from_slice::<Vec<u64>>(&bytes).expect_err("corrupt length");
        assert_eq!(err, SnapError::UnexpectedEof);
    }

    #[test]
    fn bad_enum_tags_are_invalid() {
        assert!(matches!(decode_from_slice::<bool>(&[9]), Err(SnapError::Invalid("bool"))));
        assert!(matches!(decode_from_slice::<Option<u8>>(&[7]), Err(SnapError::Invalid(_))));
    }

    #[test]
    fn fnv_matches_known_vector() {
        // FNV-1a of the empty string is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[derive(Debug, PartialEq)]
    struct Demo {
        a: u32,
        b: Vec<u8>,
        scratch: Vec<u64>,
    }
    crate::impl_snap_struct!(Demo { a, b } skip { scratch });

    #[test]
    fn struct_macro_skips_scratch_fields() {
        let d = Demo { a: 7, b: vec![1, 2], scratch: vec![9, 9, 9] };
        let bytes = encode_to_vec(&d);
        let back: Demo = decode_from_slice(&bytes).expect("decode");
        assert_eq!(back.a, 7);
        assert_eq!(back.b, vec![1, 2]);
        assert!(back.scratch.is_empty(), "scratch fields restore empty");
    }

    #[derive(Debug, PartialEq)]
    enum Tri {
        X,
        Y,
        Z,
    }
    crate::impl_snap_enum!(Tri { X = 0, Y = 1, Z = 2 });

    #[test]
    fn enum_macro_round_trips_and_rejects_bad_tags() {
        for v in [Tri::X, Tri::Y, Tri::Z] {
            let bytes = encode_to_vec(&v);
            assert_eq!(decode_from_slice::<Tri>(&bytes).expect("decode"), v);
        }
        assert!(decode_from_slice::<Tri>(&[3]).is_err());
    }
}
