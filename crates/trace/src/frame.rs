//! FGTR file framing and the strict reader.
//!
//! A trace file is framed exactly like the snapshot and checkpoint codecs
//! (DESIGN.md §11): 4-byte magic, little-endian `u32` schema version, the
//! [`Snap`]-encoded [`KernelTrace`] payload, and a trailing little-endian
//! `u64` FNV-1a checksum over everything before it. The reader verifies
//! length, magic, checksum, then version — in that order, so corruption is
//! reported as corruption rather than as a bogus version — and finally runs
//! [`KernelTrace::validate`], so a successfully loaded trace is always
//! semantically replayable.

use std::fmt;
use std::path::Path;

use gpu_sim::snap::{self, Snap, SnapError, SnapReader};

use crate::format::KernelTrace;

/// Leading magic of an FGTR trace file.
pub const TRACE_MAGIC: [u8; 4] = *b"FGTR";

/// Version of the trace payload layout. Bumped whenever the set, order, or
/// encoding of [`KernelTrace`] fields changes; the reader refuses any other
/// version, and `repro validate --bless` refuses to bless expectations over
/// a corpus written by a different version.
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// Why a trace could not be read (or written).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The input is shorter than the fixed frame (magic + version +
    /// checksum); nothing else can be checked.
    Truncated {
        /// Bytes present.
        got: usize,
        /// Minimum bytes a well-formed frame needs.
        needed: usize,
    },
    /// The leading four bytes are not [`TRACE_MAGIC`].
    BadMagic {
        /// The bytes found instead.
        found: [u8; 4],
    },
    /// The trailing FNV-1a checksum does not match the frame body — the
    /// file was truncated mid-payload or corrupted.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum computed over the body.
        computed: u64,
    },
    /// The frame is intact but written by a different schema version.
    VersionMismatch {
        /// Version found in the frame.
        found: u32,
        /// Version this binary reads and writes.
        expected: u32,
    },
    /// The payload bytes do not decode as a [`KernelTrace`] (possible only
    /// on a checksum collision or a same-version encoding bug).
    Malformed(SnapError),
    /// The decoded trace violates a semantic invariant (named).
    Invalid(&'static str),
    /// A filesystem error while loading or saving (stringified).
    Io(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Truncated { got, needed } => {
                write!(f, "truncated trace: {got} bytes, frame needs at least {needed}")
            }
            TraceError::BadMagic { found } => {
                write!(f, "not an FGTR trace (magic {found:02x?})")
            }
            TraceError::ChecksumMismatch { stored, computed } => write!(
                f,
                "trace checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            TraceError::VersionMismatch { found, expected } => {
                write!(f, "trace schema version {found} (this binary reads and writes {expected})")
            }
            TraceError::Malformed(e) => write!(f, "malformed trace payload: {e:?}"),
            TraceError::Invalid(what) => write!(f, "invalid trace: {what}"),
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Smallest well-formed frame: magic + version + empty payload + checksum.
const MIN_FRAME: usize = TRACE_MAGIC.len() + 4 + 8;

/// Serializes a trace into a framed FGTR byte string.
#[must_use]
pub fn to_bytes(trace: &KernelTrace) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + trace.tbs.len() * 32);
    out.extend_from_slice(&TRACE_MAGIC);
    TRACE_SCHEMA_VERSION.encode(&mut out);
    trace.encode(&mut out);
    let checksum = snap::fnv1a(&out);
    checksum.encode(&mut out);
    out
}

/// Strictly decodes a framed FGTR byte string.
///
/// # Errors
///
/// Every way the input can be wrong maps to a distinct [`TraceError`]
/// variant; see the module docs for the check order.
pub fn from_bytes(bytes: &[u8]) -> Result<KernelTrace, TraceError> {
    if bytes.len() < MIN_FRAME {
        return Err(TraceError::Truncated { got: bytes.len(), needed: MIN_FRAME });
    }
    let found: [u8; 4] = bytes[..4].try_into().expect("4-byte magic");
    if found != TRACE_MAGIC {
        return Err(TraceError::BadMagic { found });
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte checksum"));
    let computed = snap::fnv1a(body);
    if stored != computed {
        return Err(TraceError::ChecksumMismatch { stored, computed });
    }
    let version = u32::from_le_bytes(body[4..8].try_into().expect("4-byte version"));
    if version != TRACE_SCHEMA_VERSION {
        return Err(TraceError::VersionMismatch { found: version, expected: TRACE_SCHEMA_VERSION });
    }
    let mut r = SnapReader::new(&body[8..]);
    let trace = KernelTrace::decode(&mut r).map_err(TraceError::Malformed)?;
    if !r.is_exhausted() {
        return Err(TraceError::Malformed(SnapError::Invalid("trailing payload bytes")));
    }
    trace.validate()?;
    Ok(trace)
}

/// Reads just the schema version of a framed trace, without verifying the
/// checksum or decoding the payload — what `repro validate --bless` uses to
/// refuse blessing a corpus written by a different schema version.
///
/// # Errors
///
/// [`TraceError::Truncated`] / [`TraceError::BadMagic`] if the fixed header
/// is not present.
pub fn peek_version(bytes: &[u8]) -> Result<u32, TraceError> {
    if bytes.len() < MIN_FRAME {
        return Err(TraceError::Truncated { got: bytes.len(), needed: MIN_FRAME });
    }
    let found: [u8; 4] = bytes[..4].try_into().expect("4-byte magic");
    if found != TRACE_MAGIC {
        return Err(TraceError::BadMagic { found });
    }
    Ok(u32::from_le_bytes(bytes[4..8].try_into().expect("4-byte version")))
}

/// Loads and strictly decodes a trace file.
///
/// # Errors
///
/// [`TraceError::Io`] on filesystem errors, otherwise as [`from_bytes`].
pub fn load(path: &Path) -> Result<KernelTrace, TraceError> {
    let bytes = std::fs::read(path)
        .map_err(|e| TraceError::Io(format!("cannot read {}: {e}", path.display())))?;
    from_bytes(&bytes)
}

/// Writes a trace file atomically (tmp + fsync + rename, the checkpoint
/// write discipline), so a crash mid-write never leaves a torn corpus file.
///
/// # Errors
///
/// [`TraceError::Io`] on filesystem errors.
pub fn save_atomic(path: &Path, trace: &KernelTrace) -> Result<(), TraceError> {
    use std::io::Write as _;
    let bytes = to_bytes(trace);
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let tmp_name = format!(
        ".{}.tmp.{}",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("trace"),
        std::process::id()
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result.map_err(|e| TraceError::Io(format!("cannot write {}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{TbRecord, TbShape, TraceMeta};
    use gpu_sim::{AccessPattern, Op};

    fn sample() -> KernelTrace {
        KernelTrace {
            meta: TraceMeta {
                name: "frame-test".into(),
                source: "unit-test".into(),
                seed: 41,
                capture_cycles: 2_000,
                config_fingerprint: 0xbeef,
            },
            shape: TbShape {
                threads_per_tb: 128,
                regs_per_thread: 24,
                smem_per_tb: 0,
                grid_tbs: 4,
                iterations: 3,
                memory_intensive: false,
            },
            warp_ops: vec![Op::alu(4, 2), Op::mem_load(AccessPattern::stream())],
            tbs: vec![TbRecord {
                tb: 0,
                sm: 0,
                dispatch_cycle: 2,
                drain_cycle: 40,
                resumed: false,
            }],
        }
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let kt = sample();
        let bytes = to_bytes(&kt);
        let back = from_bytes(&bytes).expect("round trip");
        assert_eq!(back, kt);
        assert_eq!(to_bytes(&back), bytes, "re-encoding reproduces the bytes");
        assert_eq!(peek_version(&bytes), Ok(TRACE_SCHEMA_VERSION));
    }

    #[test]
    fn reader_rejects_truncation_magic_checksum_and_version() {
        let bytes = to_bytes(&sample());

        assert!(matches!(from_bytes(&bytes[..10]), Err(TraceError::Truncated { got: 10, .. })));

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            from_bytes(&bad_magic),
            Err(TraceError::BadMagic { found: *b"XGTR" }),
            "magic is checked before anything else"
        );

        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(matches!(from_bytes(&flipped), Err(TraceError::ChecksumMismatch { .. })));

        // A version mismatch must be reported as such, which requires
        // re-sealing the frame with a valid checksum.
        let mut other_version = bytes[..bytes.len() - 8].to_vec();
        other_version[4..8].copy_from_slice(&(TRACE_SCHEMA_VERSION + 1).to_le_bytes());
        let checksum = snap::fnv1a(&other_version);
        checksum.encode(&mut other_version);
        assert_eq!(
            from_bytes(&other_version),
            Err(TraceError::VersionMismatch {
                found: TRACE_SCHEMA_VERSION + 1,
                expected: TRACE_SCHEMA_VERSION
            })
        );
        assert_eq!(peek_version(&other_version), Ok(TRACE_SCHEMA_VERSION + 1));

        // Dropping payload bytes (keeping the frame length ≥ MIN_FRAME)
        // breaks the checksum, never panics the decoder.
        let short = &bytes[..bytes.len() - 9];
        assert!(matches!(from_bytes(short), Err(TraceError::ChecksumMismatch { .. })));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let kt = sample();
        let mut body = TRACE_MAGIC.to_vec();
        TRACE_SCHEMA_VERSION.encode(&mut body);
        kt.encode(&mut body);
        body.push(0); // one stray byte after the payload
        let checksum = snap::fnv1a(&body);
        checksum.encode(&mut body);
        assert_eq!(
            from_bytes(&body),
            Err(TraceError::Malformed(SnapError::Invalid("trailing payload bytes")))
        );
    }

    #[test]
    fn save_and_load_round_trip_on_disk() {
        let kt = sample();
        let dir = std::env::temp_dir().join(format!("fgtr-frame-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("sample.fgtr");
        save_atomic(&path, &kt).expect("save");
        assert_eq!(load(&path), Ok(kt));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_error_displays() {
        for e in [
            TraceError::Truncated { got: 1, needed: 16 },
            TraceError::BadMagic { found: *b"ABCD" },
            TraceError::ChecksumMismatch { stored: 1, computed: 2 },
            TraceError::VersionMismatch { found: 2, expected: 1 },
            TraceError::Malformed(SnapError::UnexpectedEof),
            TraceError::Invalid("nope"),
            TraceError::Io("gone".into()),
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }
}
