//! Shared scoped-thread executor (DESIGN.md §13).
//!
//! Two layers of the repo need bounded, dependency-free parallelism:
//!
//! * the harness sweeps independent cases (`repro sweep` warms and runs
//!   hundreds of isolated simulations), and
//! * the simulator steps per-SM execution domains concurrently within one
//!   cycle when `GpuConfig::intra_parallel` is set.
//!
//! Both reduce to "claim indices from a shared counter, run a closure on
//! each item". [`parallel_for_each`] covers the one-shot sweep shape, where
//! spawning a thread per call is cheap relative to the seconds of work per
//! item. [`scope`]/[`Pool`] cover the per-cycle shape, where the work per
//! round is microseconds and threads must be spawned once and fed thousands
//! of rounds through a mutex/condvar handshake instead.
//!
//! The crate is deliberately free of dependencies (the workspace vendors its
//! deps; rayon is not among them) and of any ordering policy: callers that
//! need deterministic merges do them after a round completes, in their own
//! stable order.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Runs `f` over every item with up to `threads` OS threads, claiming items
/// from a shared counter so uneven item costs balance automatically.
///
/// Runs on the caller's thread when `threads <= 1` or there is a single
/// item. A panic in `f` propagates to the caller once all threads have
/// joined (via [`std::thread::scope`]).
pub fn parallel_for_each<T: Sync, F: Fn(&T) + Sync>(items: &[T], threads: usize, f: F) {
    let workers = threads.min(items.len()).max(1);
    if workers == 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                f(item);
            });
        }
    });
}

/// Spawns a pool of `threads - 1` workers (the caller participates too),
/// runs `f` with a [`Pool`] handle, then tears the workers down.
///
/// With `threads <= 1` no thread is spawned and every subsequent
/// [`Pool::run`] executes serially on the caller's thread — callers can
/// wrap their whole run loop unconditionally and pay nothing in the serial
/// configuration.
pub fn scope<R>(threads: usize, f: impl FnOnce(&Pool) -> R) -> R {
    let pool = Pool::new(threads);
    if threads <= 1 {
        return f(&pool);
    }
    std::thread::scope(|s| {
        for _ in 1..threads {
            s.spawn(|| pool.worker_loop());
        }
        // Shut the workers down even if `f` unwinds, or scope's implicit
        // join would deadlock on workers still waiting for a round.
        let _guard = ShutdownGuard(&pool);
        f(&pool)
    })
}

struct ShutdownGuard<'a>(&'a Pool);

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// A round of work published to the workers: a type-erased view of the
/// caller's `&mut [T]` plus the monomorphized trampoline that applies the
/// caller's closure to one item.
///
/// Workers touch disjoint indices (the claim counter hands each index to
/// exactly one thread), so aliasing `*mut T` across threads is sound; the
/// pointers stay valid because [`Pool::run`] does not return until every
/// worker has left the round (`active == 0`).
#[derive(Clone, Copy)]
struct Round {
    data: *const (),
    call: unsafe fn(*const (), usize),
    len: usize,
}

// SAFETY: the raw pointers are only dereferenced while `Pool::run` keeps the
// underlying borrow alive (it blocks until all workers exit the round), and
// the index-claim protocol gives each index to exactly one thread.
unsafe impl Send for Round {}

struct PoolState {
    /// Round generation; bumped at publish so a worker never re-enters a
    /// round it already finished.
    generation: u64,
    round: Option<Round>,
    /// Workers currently inside a round. `run` returns only when this is 0.
    active: usize,
    shutdown: bool,
    panicked: bool,
}

/// A reusable worker pool for fine-grained rounds; obtained from [`scope`].
///
/// One round = one [`Pool::run`] call: items are claimed index-by-index
/// from an atomic counter shared by the workers and the calling thread, and
/// the call returns only after every item ran and every worker has left the
/// round — the caller's barrier.
pub struct Pool {
    threads: usize,
    state: Mutex<PoolState>,
    work_ready: Condvar,
    work_done: Condvar,
    /// Next item index to claim. Lives here, not on `run`'s stack, so a
    /// late worker racing the end of a round never touches freed memory.
    next: AtomicUsize,
    /// Items published but not yet completed this round.
    pending: AtomicUsize,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("threads", &self.threads).finish_non_exhaustive()
    }
}

impl Pool {
    fn new(threads: usize) -> Self {
        Pool {
            threads,
            state: Mutex::new(PoolState {
                generation: 0,
                round: None,
                active: 0,
                shutdown: false,
                panicked: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
            next: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
        }
    }

    /// Applies `f` to every item, in parallel when the pool has workers.
    ///
    /// Blocks until all items completed and all workers left the round, so
    /// on return the caller again has exclusive, fully synchronized access
    /// to `items` (the mutex handshake publishes the workers' writes).
    /// Item order of execution is unspecified; completion is total.
    ///
    /// # Panics
    ///
    /// If `f` panics on any thread the round still runs to completion
    /// (remaining items are processed) and the first caller-thread panic is
    /// re-raised — or, for worker-only panics, a summary panic is raised —
    /// after the barrier, never leaving items half-stepped behind the
    /// caller's back.
    pub fn run<T: Send, F: Fn(usize, &mut T) + Sync>(&self, items: &mut [T], f: F) {
        let len = items.len();
        if self.threads <= 1 || len <= 1 {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return;
        }

        struct Ctx<'f, T, F> {
            base: *mut T,
            f: &'f F,
        }
        /// Trampoline: recovers `T`/`F` from the erased pointer and steps
        /// item `i`.
        ///
        /// # Safety
        ///
        /// `data` must point at a live `Ctx<T, F>` whose `base` covers at
        /// least `i + 1` items, and no other thread may hold a reference to
        /// item `i`.
        unsafe fn call<T, F: Fn(usize, &mut T) + Sync>(data: *const (), i: usize) {
            let ctx = unsafe { &*data.cast::<Ctx<'_, T, F>>() };
            (ctx.f)(i, unsafe { &mut *ctx.base.add(i) });
        }

        let ctx = Ctx { base: items.as_mut_ptr(), f: &f };
        self.next.store(0, Ordering::Relaxed);
        self.pending.store(len, Ordering::Relaxed);
        {
            let mut st = self.state.lock().expect("pool mutex");
            st.generation += 1;
            st.round =
                Some(Round { data: std::ptr::from_ref(&ctx).cast(), call: call::<T, F>, len });
            drop(st);
            self.work_ready.notify_all();
        }

        // The calling thread claims items alongside the workers. Panics are
        // deferred past the barrier: bailing out early would free `ctx` and
        // the slice while workers still hold pointers into them.
        let mut payload = None;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= len {
                break;
            }
            let item = unsafe { &mut *ctx.base.add(i) };
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| (ctx.f)(i, item))) {
                payload.get_or_insert(p);
            }
            self.pending.fetch_sub(1, Ordering::Release);
        }

        let mut st = self.state.lock().expect("pool mutex");
        st.round = None;
        while self.pending.load(Ordering::Acquire) > 0 || st.active > 0 {
            st = self.work_done.wait(st).expect("pool mutex");
        }
        let worker_panicked = std::mem::take(&mut st.panicked);
        drop(st);
        if let Some(p) = payload {
            resume_unwind(p);
        }
        assert!(!worker_panicked, "pool worker panicked while stepping an item");
    }

    fn worker_loop(&self) {
        let mut seen = 0u64;
        loop {
            let round = {
                let mut st = self.state.lock().expect("pool mutex");
                loop {
                    if st.shutdown {
                        return;
                    }
                    if st.generation != seen {
                        if let Some(round) = st.round {
                            seen = st.generation;
                            st.active += 1;
                            break round;
                        }
                        // Round already retired; don't re-check this
                        // generation.
                        seen = st.generation;
                    }
                    st = self.work_ready.wait(st).expect("pool mutex");
                }
            };
            loop {
                let i = self.next.fetch_add(1, Ordering::Relaxed);
                if i >= round.len {
                    break;
                }
                // SAFETY: `run` keeps the round's context alive until
                // `active` drops to 0, and index `i` was claimed by this
                // thread alone.
                let step = || unsafe { (round.call)(round.data, i) };
                if catch_unwind(AssertUnwindSafe(step)).is_err() {
                    self.state.lock().expect("pool mutex").panicked = true;
                }
                self.pending.fetch_sub(1, Ordering::Release);
            }
            let mut st = self.state.lock().expect("pool mutex");
            st.active -= 1;
            drop(st);
            self.work_done.notify_all();
        }
    }

    fn shutdown(&self) {
        let mut st = self.state.lock().expect("pool mutex");
        st.shutdown = true;
        drop(st);
        self.work_ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_for_each_visits_every_item_once() {
        let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        parallel_for_each(&hits, 4, |h| {
            h.fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_each_serial_fallback() {
        let hits: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        parallel_for_each(&hits, 1, |h| {
            h.fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pool_runs_many_rounds_mutating_in_place() {
        let mut items: Vec<u64> = vec![0; 23];
        scope(4, |pool| {
            for _ in 0..1_000 {
                pool.run(&mut items, |_, v| *v += 1);
            }
        });
        assert!(items.iter().all(|&v| v == 1_000));
    }

    #[test]
    fn pool_serial_mode_spawns_nothing_and_still_runs() {
        let mut items = [1u64, 2, 3];
        scope(1, |pool| {
            pool.run(&mut items, |i, v| *v += i as u64);
        });
        assert_eq!(items, [1, 3, 5]);
    }

    #[test]
    fn pool_round_results_match_serial() {
        let f = |i: usize, v: &mut u64| *v = (i as u64) * 31 + *v % 7;
        let mut serial: Vec<u64> = (0..101).collect();
        for (i, v) in serial.iter_mut().enumerate() {
            f(i, v);
        }
        let mut parallel: Vec<u64> = (0..101).collect();
        scope(3, |pool| pool.run(&mut parallel, f));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn pool_reuses_workers_across_item_types() {
        let mut a = [0u32; 8];
        let mut b = [0u64; 5];
        scope(2, |pool| {
            pool.run(&mut a, |i, v| *v = i as u32);
            pool.run(&mut b, |i, v| *v = i as u64 + 10);
        });
        assert_eq!(a[7], 7);
        assert_eq!(b[4], 14);
    }

    #[test]
    fn pool_scope_returns_closure_value() {
        let got = scope(2, |pool| {
            let mut items = [5u64; 4];
            pool.run(&mut items, |_, v| *v *= 2);
            items.iter().sum::<u64>()
        });
        assert_eq!(got, 40);
    }

    #[test]
    fn pool_run_propagates_panics_after_the_barrier() {
        let completed = AtomicU64::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            scope(2, |pool| {
                let mut items = [0u8; 16];
                pool.run(&mut items, |i, _| {
                    assert!(i != 7, "boom on item 7");
                    completed.fetch_add(1, Ordering::Relaxed);
                });
            });
        }));
        assert!(result.is_err(), "the item panic must propagate");
        assert_eq!(completed.load(Ordering::Relaxed), 15, "the other items still ran");
    }

    #[test]
    fn pool_run_survives_a_worker_only_panic_without_deadlocking() {
        // Regression for the dead-fleet-device failure mode: a panic on a
        // *worker* thread (never the caller, which defers and re-raises its
        // own panics) must still be surfaced by the barrier as the summary
        // panic, and the barrier itself must not deadlock on the worker's
        // abandoned round slot. Panic only off the caller thread so the
        // worker-only path is exercised deterministically.
        let caller = std::thread::current().id();
        let worker_fired = std::sync::atomic::AtomicBool::new(false);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            scope(2, |pool| {
                let mut items = [0u8; 64];
                pool.run(&mut items, |_, _| {
                    if std::thread::current().id() != caller {
                        worker_fired.store(true, Ordering::Release);
                        panic!("worker-thread fault");
                    }
                    // Hold the caller on its first claim until the worker has
                    // panicked at least once, so the caller cannot drain the
                    // whole round before the worker wakes up.
                    while !worker_fired.load(Ordering::Acquire) {
                        std::thread::yield_now();
                    }
                });
            });
        }));
        let payload = result.expect_err("the worker panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .expect("panic carries a message");
        assert!(
            msg.contains("pool worker panicked"),
            "worker-only panics surface as the summary panic, got: {msg}"
        );
        // The pool remains usable after the failed round: the scope below
        // must complete (no wedged worker, no stuck barrier).
        let mut items = [1u64; 8];
        scope(2, |pool| pool.run(&mut items, |_, v| *v += 1));
        assert!(items.iter().all(|&v| v == 2));
    }

    #[test]
    fn pool_empty_round_is_a_no_op() {
        scope(2, |pool| {
            let mut items: [u64; 0] = [];
            pool.run(&mut items, |_, _| unreachable!());
        });
    }
}
