//! Named, fully-deterministic fleet scenarios.
//!
//! Each scenario is a complete [`FleetConfig`] — tenants, policy knobs, and
//! fault schedule — so `repro fleet <name>` needs nothing but a name and an
//! optional seed override. The constants below are calibrated against the
//! tiny device configuration: one 8-TB request kernel completes well inside
//! 20k cycles solo, and inside ~3× that when sharing a device with three
//! neighbours under SMK.

use gpu_sim::FaultKind;
use qos_core::{SloTarget, TenantClass};
use workloads::arrival::ArrivalModel;

use crate::config::{FleetConfig, FleetFault, Placement, TenantSpec};

/// Default master seed for scenarios (overridable on the CLI).
pub const DEFAULT_SEED: u64 = 0x000F_1EE7_CAFE;

/// Scenario names, in presentation order.
pub const SCENARIOS: [&str; 3] = ["steady", "overload", "chaos"];

/// Builds the named scenario, or `None` for an unknown name.
pub fn by_name(name: &str, seed: u64) -> Option<FleetConfig> {
    match name {
        "steady" => Some(steady(seed)),
        "overload" => Some(overload(seed)),
        "chaos" => Some(chaos(seed)),
        _ => None,
    }
}

fn base(seed: u64) -> FleetConfig {
    FleetConfig {
        devices: 2,
        device_mem_bytes: 1 << 30,
        placement: Placement::Spread,
        seed,
        epoch_cycles: 1_000,
        tick_cycles: 4_000,
        timeout_cycles: 60_000,
        max_retries: 3,
        backoff_base: 2_000,
        est_service_cycles: 20_000,
        shed_enter_permille: 900,
        shed_exit_permille: 500,
        max_ticks: 600,
        tenants: Vec::new(),
        faults: Vec::new(),
    }
}

fn guaranteed(deadline: u64, floor_ppm: u32) -> TenantClass {
    TenantClass::guaranteed(SloTarget::new(deadline, floor_ppm))
}

/// Two healthy devices, light load, no faults: every request should
/// complete with headroom. The baseline the fault scenarios are read
/// against.
pub fn steady(seed: u64) -> FleetConfig {
    let mut cfg = base(seed);
    cfg.tenants = vec![
        TenantSpec {
            name: "latency".into(),
            class: guaranteed(120_000, 900_000),
            arrival: ArrivalModel::Open { mean_gap: 8_000 },
            requests: 12,
            grid_tbs: 8,
            mem_bytes: 64 << 20,
        },
        TenantSpec {
            name: "batch".into(),
            class: TenantClass::best_effort(),
            arrival: ArrivalModel::Open { mean_gap: 6_000 },
            requests: 12,
            grid_tbs: 8,
            mem_bytes: 64 << 20,
        },
    ];
    cfg
}

/// One device, a guaranteed closed-loop tenant, and a best-effort open
/// tenant arriving far faster than the device can drain: admission control
/// and load shedding must sacrifice best-effort work to keep the guarantee.
pub fn overload(seed: u64) -> FleetConfig {
    let mut cfg = base(seed);
    cfg.devices = 1;
    cfg.placement = Placement::Binpack;
    cfg.tenants = vec![
        TenantSpec {
            name: "latency".into(),
            class: guaranteed(120_000, 850_000),
            arrival: ArrivalModel::Closed { think: 10_000, population: 2 },
            requests: 10,
            grid_tbs: 8,
            mem_bytes: 64 << 20,
        },
        TenantSpec {
            name: "flood".into(),
            class: TenantClass::best_effort(),
            arrival: ArrivalModel::Open { mean_gap: 1_000 },
            requests: 60,
            grid_tbs: 8,
            mem_bytes: 64 << 20,
        },
    ];
    cfg
}

/// The chaos soak: four devices, three tenants, and a fault schedule that
/// kills one device outright and wedges another mid-run. The two surviving
/// devices must absorb the re-placed work — every guaranteed tenant still
/// meets its floor, every request ends completed or explicitly shed.
pub fn chaos(seed: u64) -> FleetConfig {
    let mut cfg = base(seed);
    cfg.devices = 4;
    cfg.tenants = vec![
        TenantSpec {
            name: "latency".into(),
            class: guaranteed(200_000, 850_000),
            arrival: ArrivalModel::Open { mean_gap: 8_000 },
            requests: 15,
            grid_tbs: 8,
            mem_bytes: 64 << 20,
        },
        TenantSpec {
            name: "interactive".into(),
            class: guaranteed(200_000, 850_000),
            arrival: ArrivalModel::Closed { think: 8_000, population: 2 },
            requests: 12,
            grid_tbs: 8,
            mem_bytes: 64 << 20,
        },
        TenantSpec {
            name: "batch".into(),
            class: TenantClass::best_effort(),
            arrival: ArrivalModel::Open { mean_gap: 4_000 },
            requests: 20,
            grid_tbs: 8,
            mem_bytes: 64 << 20,
        },
    ];
    cfg.faults = vec![
        FleetFault { at_cycle: 30_000, device: 1, kind: FaultKind::DeviceLoss },
        FleetFault { at_cycle: 50_000, device: 2, kind: FaultKind::DeviceWedge },
    ];
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_validates() {
        for name in SCENARIOS {
            let cfg = by_name(name, DEFAULT_SEED).expect("known scenario");
            cfg.validate().unwrap_or_else(|e| panic!("scenario {name}: {e}"));
        }
    }

    #[test]
    fn unknown_scenario_is_none() {
        assert!(by_name("nope", 1).is_none());
    }

    #[test]
    fn chaos_schedules_a_loss_and_a_wedge() {
        let cfg = chaos(DEFAULT_SEED);
        assert!(cfg.faults.iter().any(|f| f.kind == FaultKind::DeviceLoss));
        assert!(cfg.faults.iter().any(|f| f.kind == FaultKind::DeviceWedge));
    }
}
