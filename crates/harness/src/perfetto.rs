//! Chrome-trace / Perfetto export of a traced run (DESIGN.md §12).
//!
//! [`render_trace`] turns a finished machine plus its epoch telemetry into a
//! Chrome-trace JSON document (the "JSON object format" both `chrome://
//! tracing` and [ui.perfetto.dev](https://ui.perfetto.dev) load): one counter
//! track per kernel carrying the per-epoch IPC / residency / quota series,
//! and one instant per flight-recorder event, attributed to its SM's thread
//! row. One simulated cycle maps to one microsecond of trace time.
//!
//! The document is built by plain string formatting — no JSON library — so
//! [`check_chrome_trace`] re-parses every export with a small strict JSON
//! parser and verifies the event schema; the harness test suite runs it on
//! every golden scenario.

use std::fmt::Write as _;

use gpu_sim::telemetry::HostProfiler;
use gpu_sim::trace::EpochRecord;
use gpu_sim::{Gpu, TraceEvent, TraceEventKind};

use crate::golden::run_scenario_traced;

/// Runs a golden scenario with the flight recorder on and renders its
/// Chrome-trace document.
///
/// # Panics
///
/// Panics on a name outside [`crate::golden::SCENARIOS`].
#[must_use]
pub fn export_scenario(name: &str) -> String {
    let (gpu, records) = run_scenario_traced(name);
    render_trace(name, &gpu, &records)
}

/// Renders a traced run as Chrome-trace JSON.
///
/// The top-level object carries `traceEvents` (what the viewers read) plus a
/// `counters` object with the full counter-registry dump and a
/// `dropped_events` count (flight-recorder ring overflow across the machine
/// and every SM) — viewers ignore unknown top-level keys, so both ride
/// along for free. When the host profiler was armed, its per-phase
/// wall-time totals appear as counter tracks under a dedicated
/// `host-profiler` process.
#[must_use]
pub fn render_trace(name: &str, gpu: &Gpu, records: &[EpochRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"displayTimeUnit\": \"ms\",");
    let _ = writeln!(out, "  \"scenario\": \"{}\",", escape(name));
    let _ = writeln!(out, "  \"dropped_events\": {},", dropped_events(gpu));
    out.push_str("  \"traceEvents\": [\n");

    let mut events: Vec<String> = Vec::new();
    metadata_events(gpu, records, &mut events);
    counter_events(records, &mut events);
    instant_events(&gpu.recent_events(usize::MAX), &mut events);
    host_profile_events(gpu.profiler(), &mut events);

    for (i, e) in events.iter().enumerate() {
        let comma = if i + 1 == events.len() { "" } else { "," };
        let _ = writeln!(out, "    {e}{comma}");
    }
    out.push_str("  ],\n");
    out.push_str("  \"counters\": {\n");
    let registry = gpu.counter_registry();
    for (i, entry) in registry.iter().enumerate() {
        let comma = if i + 1 == registry.len() { "" } else { "," };
        let _ = writeln!(out, "    \"{}/{}\": {}{comma}", entry.scope, entry.name, entry.value);
    }
    out.push_str("  }\n}\n");
    out
}

/// Total flight-recorder events lost to ring overflow, machine + all SMs.
fn dropped_events(gpu: &Gpu) -> u64 {
    gpu.events().dropped() + gpu.sms().iter().map(|sm| sm.events().dropped()).sum::<u64>()
}

/// Dedicated pid for the host-profiler counter tracks — far from the
/// simulated pids so the wall-time rows group separately in Perfetto.
const HOST_PROFILE_PID: u32 = 999;

/// One counter track per profiled phase (host wall milliseconds + call
/// count, a single sample at ts 0). Empty when the profiler was never
/// armed. Host time is wall-clock — these tracks are the one deliberately
/// nondeterministic part of a trace, and only appear on opt-in.
fn host_profile_events(prof: &HostProfiler, out: &mut Vec<String>) {
    let rows = prof.rows();
    if rows.is_empty() {
        return;
    }
    out.push(format!(
        "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {HOST_PROFILE_PID}, \"tid\": 0, \
         \"args\": {{\"name\": \"host-profiler\"}}}}"
    ));
    for (phase, t) in rows {
        out.push(format!(
            "{{\"name\": \"host/{}\", \"ph\": \"C\", \"ts\": 0, \"pid\": {HOST_PROFILE_PID}, \
             \"args\": {{\"ms\": {}, \"calls\": {}}}}}",
            phase.name(),
            t.nanos as f64 / 1e6,
            t.calls
        ));
    }
}

/// Process/thread naming: pid 0 is the machine; tid 0 the machine-scope
/// event row, tid `s + 1` the row of SM `s`.
fn metadata_events(gpu: &Gpu, records: &[EpochRecord], out: &mut Vec<String>) {
    out.push(
        "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": 0, \
         \"args\": {\"name\": \"fgqos-sim\"}}"
            .to_string(),
    );
    out.push(
        "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": 0, \
         \"args\": {\"name\": \"machine\"}}"
            .to_string(),
    );
    for s in 0..gpu.sms().len() {
        out.push(format!(
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": {}, \
             \"args\": {{\"name\": \"sm{s}\"}}}}",
            s + 1
        ));
    }
    let kernels = records.first().map_or(0, |r| r.kernels.len());
    for k in 0..kernels {
        // Counter tracks live in their own pid so Perfetto groups the
        // per-kernel series away from the instant rows.
        out.push(format!(
            "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {}, \"tid\": 0, \
             \"args\": {{\"name\": \"kernel{k}\"}}}}",
            k + 1
        ));
    }
}

/// One `ph: "C"` counter sample per kernel per epoch: the IPC, residency and
/// quota series behind the paper's time-behaviour figures.
fn counter_events(records: &[EpochRecord], out: &mut Vec<String>) {
    for r in records {
        for (k, s) in r.kernels.iter().enumerate() {
            let ipc = if s.epoch_ipc.is_finite() { s.epoch_ipc } else { 0.0 };
            out.push(format!(
                "{{\"name\": \"kernel{k}\", \"ph\": \"C\", \"ts\": {}, \"pid\": {}, \
                 \"args\": {{\"ipc\": {ipc}, \"hosted_tbs\": {}, \"quota_total\": {}, \
                 \"preempted\": {}}}}}",
                r.cycle,
                k + 1,
                s.hosted_tbs,
                s.quota_total,
                s.preempted
            ));
        }
    }
}

/// One `ph: "i"` instant per flight-recorder event, on its SM's thread row
/// (tid 0 for machine-scope events), with the event payload as `args`.
fn instant_events(events: &[TraceEvent], out: &mut Vec<String>) {
    for e in events {
        let tid = e.sm.map_or(0, |s| s + 1);
        out.push(format!(
            "{{\"name\": \"{}\", \"ph\": \"i\", \"ts\": {}, \"pid\": 0, \"tid\": {tid}, \
             \"s\": \"t\", \"args\": {{{}}}}}",
            e.kind.name(),
            e.cycle,
            event_args(&e.kind)
        ));
    }
}

fn event_args(kind: &TraceEventKind) -> String {
    match kind {
        TraceEventKind::QuotaExhausted { kernel } => format!("\"kernel\": {kernel}"),
        TraceEventKind::PreemptStart { kernel, tb }
        | TraceEventKind::PreemptComplete { kernel, tb }
        | TraceEventKind::TbDrain { kernel, tb } => {
            format!("\"kernel\": {kernel}, \"tb\": {tb}")
        }
        TraceEventKind::TbDispatch { kernel, tb, resumed } => {
            format!("\"kernel\": {kernel}, \"tb\": {tb}, \"resumed\": {resumed}")
        }
        TraceEventKind::EpochBoundary { epoch } => format!("\"epoch\": {epoch}"),
        TraceEventKind::IdleStart | TraceEventKind::IdleEnd => String::new(),
        TraceEventKind::FaultInjected { fault } => {
            format!("\"fault\": \"{fault:?}\"")
        }
    }
}

/// Renders a finished fleet run as Chrome-trace JSON: one counter track per
/// tenant (cumulative SLO-met / completed / retry / shed / migrated series
/// plus the instantaneous queue depth, latency p99, and SLO burn rate, one
/// sample per fleet tick), a
/// machine track with fleet-wide queue depth, healthy-device count,
/// pending-migration depth and the load-shedding flag, and one `ph: "X"`
/// span per migrated request on its tenant's track — from the cycle the
/// batch left its device to the cycle it resumed, with the source/target
/// device and reason in `args`. The full fleet counter registry rides
/// along under the `counters` key, exactly like the single-GPU export.
#[must_use]
pub fn render_fleet_trace(fleet: &fleet::Fleet, name: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"displayTimeUnit\": \"ms\",");
    let _ = writeln!(out, "  \"scenario\": \"fleet/{}\",", escape(name));
    out.push_str("  \"traceEvents\": [\n");

    let mut events: Vec<String> = Vec::new();
    events.push(
        "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": 0, \
         \"args\": {\"name\": \"fleet\"}}"
            .to_string(),
    );
    for (t, spec) in fleet.config().tenants.iter().enumerate() {
        events.push(format!(
            "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {}, \"tid\": 0, \
             \"args\": {{\"name\": \"tenant/{}\"}}}}",
            t + 1,
            escape(&spec.name)
        ));
    }
    for s in fleet.samples() {
        events.push(format!(
            "{{\"name\": \"fleet\", \"ph\": \"C\", \"ts\": {}, \"pid\": 0, \
             \"args\": {{\"queue_depth\": {}, \"healthy_devices\": {}, \"shedding\": {}, \
             \"pending_migrations\": {}}}}}",
            s.cycle,
            s.queue_depth,
            s.healthy_devices,
            u8::from(s.shedding),
            s.pending_migrations
        ));
        for (t, ts) in s.tenants.iter().enumerate() {
            events.push(format!(
                "{{\"name\": \"tenant{t}\", \"ph\": \"C\", \"ts\": {}, \"pid\": {}, \
                 \"args\": {{\"completed\": {}, \"slo_met\": {}, \"retries\": {}, \
                 \"shed\": {}, \"queued\": {}, \"migrated\": {}, \
                 \"latency_p99\": {}, \"slo_burn_ppm\": {}}}}}",
                s.cycle,
                t + 1,
                ts.completed,
                ts.slo_met,
                ts.retries,
                ts.shed,
                ts.queued,
                ts.migrated,
                ts.latency_p99,
                ts.slo_burn_ppm
            ));
        }
    }
    host_profile_events(fleet.profiler(), &mut events);
    // One complete-span per migrated request, on its tenant's track: the
    // span covers the window the request was off-device (enqueue → resume).
    for rec in fleet.migrations() {
        let dur = rec.restored_at.saturating_sub(rec.enqueued_at).max(1);
        for (req, tenant) in rec.requests.iter().zip(&rec.tenants) {
            events.push(format!(
                "{{\"name\": \"migration/{}\", \"ph\": \"X\", \"ts\": {}, \"dur\": {dur}, \
                 \"pid\": {}, \"tid\": 1, \"args\": {{\"request\": {req}, \"from_device\": {}, \
                 \"to_device\": {}, \"reason\": \"{}\"}}}}",
                rec.reason,
                rec.enqueued_at,
                tenant + 1,
                rec.from_device,
                rec.to_device,
                rec.reason
            ));
        }
    }

    for (i, e) in events.iter().enumerate() {
        let comma = if i + 1 == events.len() { "" } else { "," };
        let _ = writeln!(out, "    {e}{comma}");
    }
    out.push_str("  ],\n");
    out.push_str("  \"counters\": {\n");
    let registry = fleet.counter_registry();
    for (i, entry) in registry.iter().enumerate() {
        let comma = if i + 1 == registry.len() { "" } else { "," };
        let _ = writeln!(out, "    \"{}/{}\": {}{comma}", entry.scope, entry.name, entry.value);
    }
    out.push_str("  }\n}\n");
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------
// Schema check: a small strict JSON parser + Chrome-trace shape rules.
// ---------------------------------------------------------------------

/// A parsed JSON value (just enough structure for the schema check).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(self.err("expected '\"'"));
        }
        self.pos += 1;
        let mut out = Vec::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(out).map_err(|_| self.err("invalid UTF-8"));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(&c @ (b'"' | b'\\' | b'/')) => out.push(c),
                        Some(b'n') => out.push(b'\n'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'r') => out.push(b'\r'),
                        Some(b'b') => out.push(0x08),
                        Some(b'f') => out.push(0x0c),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("bad \\u code point"))?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(&c) if c >= 0x20 => {
                    out.push(c);
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|v| v.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn parse_document(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing garbage"));
        }
        Ok(v)
    }
}

/// Validates that `doc` is well-formed JSON (strict grammar, no trailing
/// garbage). Used by the metrics exporter to self-check documents before
/// they are written to disk.
///
/// # Errors
///
/// A human-readable description of the first grammar violation.
pub fn check_json(doc: &str) -> Result<(), String> {
    Parser::new(doc).parse_document().map(|_| ())
}

/// Validates that `doc` is well-formed JSON in the Chrome-trace object
/// format: a top-level object whose `traceEvents` is an array of event
/// objects, each with a string `name`, a string `ph` of a known phase, an
/// integer `pid`, and (for non-metadata phases) a numeric `ts`; instants
/// additionally carry a valid `s` scope. Returns the number of events.
///
/// # Errors
///
/// A human-readable description of the first violation.
pub fn check_chrome_trace(doc: &str) -> Result<usize, String> {
    let root = Parser::new(doc).parse_document()?;
    let Some(Json::Arr(events)) = root.get("traceEvents") else {
        return Err("top-level \"traceEvents\" array missing".to_string());
    };
    for (i, event) in events.iter().enumerate() {
        let fail = |what: &str| Err(format!("traceEvents[{i}]: {what}"));
        let Json::Obj(_) = event else { return fail("not an object") };
        if event.get("name").and_then(Json::as_str).is_none() {
            return fail("missing string \"name\"");
        }
        let Some(ph) = event.get("ph").and_then(Json::as_str) else {
            return fail("missing string \"ph\"");
        };
        if !matches!(ph, "M" | "C" | "i" | "I" | "B" | "E" | "X") {
            return fail(&format!("unknown phase {ph:?}"));
        }
        let Some(Json::Num(pid)) = event.get("pid") else {
            return fail("missing numeric \"pid\"");
        };
        if pid.fract() != 0.0 {
            return fail("\"pid\" must be an integer");
        }
        if ph != "M" && !matches!(event.get("ts"), Some(Json::Num(ts)) if *ts >= 0.0) {
            return fail("missing non-negative \"ts\"");
        }
        if ph == "i"
            && !matches!(event.get("s"), Some(Json::Str(s)) if matches!(s.as_str(), "g" | "p" | "t"))
        {
            return fail("instant without a valid \"s\" scope");
        }
        if !matches!(event.get("args"), None | Some(Json::Obj(_))) {
            return fail("\"args\" must be an object");
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_accepts_and_rejects() {
        assert!(Parser::new("{\"a\": [1, -2.5e3, true, null, \"x\\n\"]}").parse_document().is_ok());
        for bad in ["{", "[1,]", "{\"a\" 1}", "1 2", "{\"a\": NaN}", ""] {
            assert!(Parser::new(bad).parse_document().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn check_rejects_malformed_traces() {
        assert!(check_chrome_trace("{}").is_err(), "no traceEvents");
        assert!(
            check_chrome_trace("{\"traceEvents\": [{\"name\": \"x\"}]}").is_err(),
            "event without ph/pid"
        );
        assert!(
            check_chrome_trace(
                "{\"traceEvents\": [{\"name\": \"x\", \"ph\": \"i\", \"pid\": 0, \"ts\": 1}]}"
            )
            .is_err(),
            "instant without scope"
        );
        let ok = "{\"traceEvents\": [{\"name\": \"x\", \"ph\": \"i\", \"pid\": 0, \
                  \"ts\": 1, \"s\": \"t\"}]}";
        assert_eq!(check_chrome_trace(ok), Ok(1));
    }

    #[test]
    fn exported_scenario_passes_the_schema_check() {
        let doc = export_scenario("smk_pair");
        let events = check_chrome_trace(&doc).expect("exported trace must be valid");
        assert!(events > 10, "a busy scenario must export real events, got {events}");
        assert!(doc.contains("\"ph\": \"C\""), "counter samples present");
        assert!(doc.contains("\"ph\": \"i\""), "instants present");
    }

    #[test]
    fn exported_fleet_trace_passes_the_schema_check() {
        let mut f = fleet::Fleet::new(fleet::scenarios::steady(3));
        f.run_to_completion();
        let doc = render_fleet_trace(&f, "steady");
        let events = check_chrome_trace(&doc).expect("fleet trace must be valid");
        assert!(events > 10, "per-tick tenant samples must be present, got {events}");
        assert!(doc.contains("tenant/latency"), "tenant tracks are named");
        assert!(doc.contains("\"slo_met\""), "SLO series present");
        assert!(doc.contains("\"shed\""), "shed series present");
        assert!(doc.contains("tenant[0]/slo_met"), "registry rides along");
    }

    #[test]
    fn fleet_trace_carries_migration_spans() {
        let mut f = fleet::Fleet::new(fleet::scenarios::chaos(fleet::scenarios::DEFAULT_SEED));
        f.run_to_completion();
        assert!(f.migrated_requests() > 0, "chaos must migrate work for this test to bite");
        let doc = render_fleet_trace(&f, "chaos");
        check_chrome_trace(&doc).expect("fleet trace with migrations must stay valid");
        assert!(doc.contains("\"ph\": \"X\""), "migration spans are complete events");
        assert!(doc.contains("migration/device-"), "spans are named by reason");
        assert!(doc.contains("\"from_device\""), "span args carry the route");
        assert!(doc.contains("\"pending_migrations\""), "machine track gauges the queue");
    }
}
