//! # gpu-sim — a cycle-level multitasking GPU simulator
//!
//! This crate is the substrate for reproducing *"Quality of Service Support
//! for Fine-Grained Sharing on GPUs"* (ISCA 2017). It models a GPU at the
//! warp-instruction level — the same abstraction the paper's QoS mechanisms
//! act upon:
//!
//! * streaming multiprocessors ([`sm::Sm`]) with per-SM register / shared
//!   memory / thread / thread-block occupancy limits,
//! * greedy-then-oldest warp schedulers ([`warp_sched`]) with per-kernel
//!   instruction-quota gating (the paper's *Enhanced Warp Scheduler*),
//! * a two-level cache hierarchy with coalescing, crossbar and per-channel
//!   DRAM bandwidth queueing ([`cache`], [`memsys`], [`dram`]),
//! * a thread-block scheduler supporting exclusive, **SMK fine-grained** and
//!   **spatially partitioned** sharing ([`tb_sched`]),
//! * a partial-context-switch preemption engine ([`preempt`]),
//! * a GPUWattch-style event-energy power model ([`power`]),
//! * per-SM execution domains behind a typed interconnect boundary
//!   ([`icn`]), steppable serially or concurrently
//!   (`GpuConfig::intra_parallel`) with bit-identical results.
//!
//! Policy code (the QoS manager, the `Spart` hill-climbing baseline, …) lives
//! in the `qos-core` crate and drives the simulator through the
//! [`Controller`] trait, invoked once per epoch and at sampling points.
//!
//! # Example
//!
//! ```
//! use gpu_sim::{Gpu, GpuConfig, KernelDesc, Op, AccessPattern, NullController};
//!
//! let mut gpu = Gpu::new(GpuConfig::paper_table1());
//! let k = KernelDesc::builder("saxpy")
//!     .threads_per_tb(256)
//!     .regs_per_thread(32)
//!     .body(vec![
//!         Op::mem_load(AccessPattern::stream()),
//!         Op::alu(4, 8),
//!         Op::mem_store(AccessPattern::stream()),
//!     ])
//!     .iterations(64)
//!     .grid_tbs(512)
//!     .build();
//! let kid = gpu.launch(k);
//! gpu.run(10_000, &mut NullController);
//! assert!(gpu.stats().kernel(kid).thread_insts > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod config;
pub mod dram;
pub mod gpu;
pub mod health;
pub mod icn;
pub mod kernel;
pub mod memsys;
pub mod observe;
pub mod power;
pub mod preempt;
pub mod rng;
pub mod sm;
pub mod snap;
pub mod stats;
pub mod tb;
pub mod tb_sched;
pub mod telemetry;
pub mod trace;
pub mod types;
pub mod warp;
pub mod warp_sched;

pub use config::{GpuConfig, InvalidConfig, MemConfig, PowerConfig, SmConfig};
pub use gpu::{
    Controller, Gpu, NullController, SmQuotaView, SnapshotBlob, SnapshotError,
    SNAPSHOT_SCHEMA_VERSION,
};
pub use health::{
    AuditKind, AuditViolation, FaultKind, FaultPlan, FaultSpec, HealthConfig, HealthReport,
    KernelHealth, SimError, SmHealth, WarpStallCounts,
};
pub use icn::{IcnPort, IcnRequest, IcnResponse};
pub use kernel::{AccessPattern, KernelDesc, KernelDescBuilder, MemSpace, Op};
pub use observe::{
    CounterEntry, CounterKind, CounterScope, EventRing, TbLifecycle, TbLogError, TraceConfig,
    TraceEvent, TraceEventKind, TraceLevel,
};
pub use snap::{Snap, SnapError, SnapReader};
pub use stats::{EpochSnapshot, GpuStats, KernelStats};
pub use tb_sched::SharingMode;
pub use telemetry::{HostProfiler, LatencyHistogram, PhaseTotal, ProfPhase, SeriesRow, TimeSeries};
pub use trace::Tracer;
pub use types::{Cycle, KernelId, SmId};
pub use warp_sched::SchedPolicy;

/// Number of concurrently resident kernels the simulator supports.
///
/// The paper evaluates pairs and trios; a fixed small bound lets hot
/// per-kernel state live in arrays instead of heap maps.
pub const MAX_KERNELS: usize = 4;

/// SIMD width of a warp (threads per warp).
pub const WARP_SIZE: u32 = 32;
