//! Parameterized synthetic kernels for tests, examples and ablations.
//!
//! These generators span the same behavioural axes as the Parboil models but
//! with a single tunable knob each, which makes them convenient for
//! controlled experiments (e.g. sweeping memory intensity to find the
//! crossover where quota gating stops helping).

use gpu_sim::{AccessPattern, KernelDesc, Op};

/// A purely compute-bound kernel; `alu_burst` scales arithmetic density.
pub fn compute_bound(name: &str, alu_burst: u16) -> KernelDesc {
    KernelDesc::builder(name)
        .threads_per_tb(256)
        .regs_per_thread(32)
        .grid_tbs(1024)
        .iterations(32)
        .seed(hash_name(name))
        .body(vec![Op::mem_load(AccessPattern::tile(8 * 1024)), Op::alu(4, alu_burst.max(1))])
        .build()
}

/// A bandwidth-bound streaming kernel; `loads` scales traffic per iteration.
pub fn memory_bound(name: &str, loads: u16) -> KernelDesc {
    let mut body = Vec::new();
    for _ in 0..loads.max(1) {
        body.push(Op::mem_load(AccessPattern::stream()));
    }
    body.push(Op::alu(4, 2));
    KernelDesc::builder(name)
        .threads_per_tb(256)
        .regs_per_thread(24)
        .grid_tbs(1024)
        .iterations(24)
        .seed(hash_name(name))
        .memory_intensive(true)
        .body(body)
        .build()
}

/// A kernel with a tunable compute-to-memory ratio.
///
/// `mem_fraction` in `[0, 1]`: 0 is pure compute, 1 is pure streaming.
///
/// # Panics
///
/// Panics if `mem_fraction` is outside `[0, 1]`.
pub fn mixed(name: &str, mem_fraction: f64) -> KernelDesc {
    assert!((0.0..=1.0).contains(&mem_fraction), "mem_fraction must be in [0, 1]");
    let total_slots = 16.0;
    let mem_ops = (total_slots * mem_fraction).round() as u16;
    let alu_ops = (total_slots as u16 - mem_ops).max(1);
    let mut body = vec![Op::alu(4, alu_ops)];
    for _ in 0..mem_ops {
        body.push(Op::mem_load(AccessPattern::stream()));
    }
    KernelDesc::builder(name)
        .threads_per_tb(256)
        .regs_per_thread(32)
        .grid_tbs(1024)
        .iterations(24)
        .seed(hash_name(name))
        .memory_intensive(mem_fraction >= 0.5)
        .body(body)
        .build()
}

/// A latency-sensitive kernel with small TBs and barriers, standing in for a
/// frame-processing workload (one grid execution ≈ one frame).
pub fn frame_kernel(name: &str, tbs_per_frame: u32) -> KernelDesc {
    KernelDesc::builder(name)
        .threads_per_tb(128)
        .regs_per_thread(32)
        .smem_per_tb(4 * 1024)
        .grid_tbs(tbs_per_frame.max(1))
        .iterations(12)
        .seed(hash_name(name))
        .body(vec![
            Op::mem_load(AccessPattern::tile(16 * 1024)),
            Op::alu(4, 8),
            Op::Bar,
            Op::smem(),
            Op::alu(4, 6),
            Op::mem_store(AccessPattern::stream()),
        ])
        .build()
}

/// Deterministic seed derived from a kernel name.
fn hash_name(name: &str) -> u64 {
    // FNV-1a; any stable hash works — it only decorrelates address streams.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Gpu, GpuConfig, NullController};

    fn isolated_ipc(desc: KernelDesc) -> f64 {
        let mut gpu = Gpu::new(GpuConfig::tiny());
        let k = gpu.launch(desc);
        gpu.run(20_000, &mut NullController);
        gpu.stats().ipc(k)
    }

    #[test]
    fn compute_beats_memory() {
        assert!(isolated_ipc(compute_bound("c", 16)) > isolated_ipc(memory_bound("m", 3)));
    }

    #[test]
    fn mixed_interpolates_monotonically_at_extremes() {
        let pure_c = isolated_ipc(mixed("m0", 0.0));
        let half = isolated_ipc(mixed("m5", 0.5));
        let pure_m = isolated_ipc(mixed("m1", 1.0));
        assert!(pure_c > half, "{pure_c} > {half}");
        assert!(half > pure_m, "{half} > {pure_m}");
    }

    #[test]
    fn mixed_classifies_by_fraction() {
        assert!(!mixed("a", 0.2).memory_intensive());
        assert!(mixed("b", 0.8).memory_intensive());
    }

    #[test]
    #[should_panic(expected = "mem_fraction")]
    fn mixed_rejects_out_of_range() {
        let _ = mixed("x", 1.5);
    }

    #[test]
    fn names_decorrelate_seeds() {
        assert_ne!(compute_bound("a", 8).seed(), compute_bound("b", 8).seed());
    }

    #[test]
    fn frame_kernel_runs() {
        assert!(isolated_ipc(frame_kernel("f", 64)) > 0.5);
    }
}
