//! One regenerator per table and figure of the paper's evaluation.
//!
//! Every function returns the report as a `String` (and is exercised by the
//! `repro` binary, the Criterion benches, and integration tests). Reports
//! lead with the paper's headline number for the experiment so measured and
//! published values sit side by side; `EXPERIMENTS.md` records a full run.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use qos_core::goals::{paper_dual_goal_fractions, paper_goal_fractions};
use qos_core::QuotaScheme;

use crate::cases::{pair_sweep, trio_sweep, Ablations, CaseSpec, ConfigKind, Policy};
use crate::error::{CaseError, FailedCase};
use crate::metrics::{mean, miss_bucket, qos_reach, CaseResult, MISS_BUCKETS};
use crate::report::{goal_label, pct, preamble, ratio, Table};
use crate::runner::{run_cases, IsolatedCache};
use crate::scale::RunScale;

/// Memoization key for a pair sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SweepKey {
    policy: Policy,
    ablations: Ablations,
    config: ConfigKind,
}

/// An experiment session: shared isolated-IPC cache and memoized sweeps so
/// `repro all` never simulates the same case twice.
///
/// Failed cases never abort a sweep: each sweep keeps its surviving results
/// and the failures accumulate here for the end-of-run
/// [`failure digest`](Session::failure_digest).
#[derive(Debug)]
pub struct Session {
    scale: RunScale,
    iso: IsolatedCache,
    pair_cache: Mutex<HashMap<SweepKey, Arc<Vec<CaseResult>>>>,
    trio_cache: Mutex<HashMap<usize, Arc<Vec<CaseResult>>>>,
    failures: Mutex<Vec<FailedCase>>,
}

impl Session {
    /// Creates a session at the given scale.
    pub fn new(scale: RunScale) -> Self {
        Session {
            scale,
            iso: IsolatedCache::new(),
            pair_cache: Mutex::new(HashMap::new()),
            trio_cache: Mutex::new(HashMap::new()),
            failures: Mutex::new(Vec::new()),
        }
    }

    /// The session's scale.
    pub fn scale(&self) -> RunScale {
        self.scale
    }

    /// Runs a sweep, keeping the surviving results and logging every failed
    /// case (with its position and spec) for the failure digest.
    fn run_sweep(&self, specs: &[CaseSpec]) -> Vec<CaseResult> {
        let outcomes = run_cases(specs, &self.iso);
        self.collect(specs, outcomes)
    }

    fn collect(
        &self,
        specs: &[CaseSpec],
        outcomes: Vec<Result<CaseResult, CaseError>>,
    ) -> Vec<CaseResult> {
        let mut ok = Vec::with_capacity(outcomes.len());
        let mut failures = self.failures.lock().expect("failure log lock");
        for (index, (outcome, spec)) in outcomes.into_iter().zip(specs).enumerate() {
            match outcome {
                Ok(r) => ok.push(r),
                Err(error) => failures.push(FailedCase { index, spec: spec.clone(), error }),
            }
        }
        ok
    }

    /// The cases that failed so far in this session.
    pub fn failures(&self) -> Vec<FailedCase> {
        self.failures.lock().expect("failure log lock").clone()
    }

    /// Renders the end-of-run failure digest for every case that failed in
    /// this session (or an all-clear line).
    pub fn failure_digest(&self) -> String {
        crate::error::failure_digest(&self.failures.lock().expect("failure log lock"))
    }

    fn goals(&self) -> Vec<f64> {
        paper_goal_fractions().into_iter().step_by(self.scale.goal_stride()).collect()
    }

    fn dual_goals(&self) -> Vec<f64> {
        paper_dual_goal_fractions().into_iter().step_by(self.scale.goal_stride()).collect()
    }

    /// Runs (or returns the memoized) trio sweep for Spart + Rollover with
    /// `num_qos` QoS kernels.
    fn trio_results(&self, num_qos: usize, goals: &[f64]) -> Arc<Vec<CaseResult>> {
        if let Some(hit) = self.trio_cache.lock().expect("trio cache lock").get(&num_qos) {
            return hit.clone();
        }
        let policies = [Policy::Spart, Policy::Quota(QuotaScheme::Rollover)];
        let specs =
            trio_sweep(&policies, goals, num_qos, self.scale.cycles(), self.scale.case_stride());
        let results = Arc::new(self.run_sweep(&specs));
        self.trio_cache.lock().expect("trio cache lock").insert(num_qos, results.clone());
        results
    }

    /// Runs (or returns the memoized) 90-pair sweep for one policy.
    fn pairs(&self, policy: Policy) -> Arc<Vec<CaseResult>> {
        self.pairs_with(policy, Ablations::default(), ConfigKind::Table1, 1)
    }

    fn pairs_with(
        &self,
        policy: Policy,
        ablations: Ablations,
        config: ConfigKind,
        extra_stride: usize,
    ) -> Arc<Vec<CaseResult>> {
        let key = SweepKey { policy, ablations, config };
        if let Some(hit) = self.pair_cache.lock().expect("pair cache lock").get(&key) {
            return hit.clone();
        }
        let mut specs = pair_sweep(
            &[policy],
            &self.goals(),
            self.scale.cycles(),
            self.scale.case_stride() * extra_stride,
        );
        for s in &mut specs {
            s.ablations = ablations;
            s.config = config;
        }
        let results = Arc::new(self.run_sweep(&specs));
        self.pair_cache.lock().expect("pair cache lock").insert(key, results.clone());
        results
    }

    // ------------------------------------------------------------------
    // Tables
    // ------------------------------------------------------------------

    /// Table 1: the simulation parameters.
    pub fn table1(&self) -> String {
        let cfg = gpu_sim::GpuConfig::paper_table1();
        let mut out = preamble(
            "Table 1 — simulation parameters",
            "GTX-class GPU: 16 SMs, 4 MCs, GTO, 4 warp schedulers/SM",
            "configuration is static; scale-independent",
        );
        let mut t = Table::new(["parameter", "paper", "ours"]);
        t.row(["Core Freq.", "1216 MHz", &format!("{} MHz", cfg.core_mhz)]);
        t.row(["# of SMs", "16", &cfg.num_sms.to_string()]);
        t.row(["# of MC", "4", &cfg.mem.num_mcs.to_string()]);
        t.row(["Sched. Policy", "GTO", &format!("{:?}", cfg.sm.sched_policy)]);
        t.row(["Registers", "256KB", &format!("{}KB", cfg.sm.register_file_bytes / 1024)]);
        t.row(["Shared Memory", "96KB", &format!("{}KB", cfg.sm.shared_mem_bytes / 1024)]);
        t.row(["Threads", "2048", &cfg.sm.max_threads.to_string()]);
        t.row(["TB Limit", "32", &cfg.sm.max_tbs.to_string()]);
        t.row(["Warp Scheduler", "4", &cfg.sm.warp_schedulers.to_string()]);
        t.row(["Epoch", "10K cycles", &format!("{} cycles", cfg.epoch_cycles)]);
        out.push_str(&t.render());
        out
    }

    /// Table 2: qualitative comparison with prior work (documentation-only).
    pub fn table2(&self) -> String {
        let mut out = preamble(
            "Table 2 — comparison with prior work",
            "fine-grained QoS is the only hardware scheme with QoS awareness, \
             intra-SM sharing, fine performance control and adaptive TLP",
            "qualitative; reproduced from the paper's taxonomy",
        );
        let mut t = Table::new([
            "capability",
            "CPU QoS",
            "KernelFusion",
            "SMK",
            "SpatialQoS",
            "WarpedSlicer",
            "Baymax",
            "FineGrainQoS",
        ]);
        t.row(["hardware scheme", "no", "no", "yes", "yes", "yes", "no", "yes"]);
        t.row(["QoS awareness", "yes", "no", "no", "yes", "no", "yes", "yes"]);
        t.row(["works on GPUs", "no", "yes", "yes", "yes", "yes", "yes", "yes"]);
        t.row(["preemption", "yes", "no", "yes", "yes", "no", "no", "yes"]);
        t.row(["active GPU sharing", "no", "yes", "yes", "yes", "yes", "no", "yes"]);
        t.row(["sharing within SMs", "no", "yes", "yes", "no", "yes", "no", "yes"]);
        t.row(["fine perf. control", "yes", "no", "no", "no", "no", "no", "yes"]);
        t.row(["adaptive TLP", "no", "no", "yes", "no", "no", "no", "yes"]);
        out.push_str(&t.render());
        out
    }

    // ------------------------------------------------------------------
    // Figures
    // ------------------------------------------------------------------

    /// Fig. 5: how far Naïve+History misses QoS goals.
    pub fn fig5(&self) -> String {
        let results = self.pairs(Policy::Quota(QuotaScheme::NaiveHistory));
        let mut buckets = [0usize; 5];
        let mut successes = 0usize;
        let mut overshoot_sum = 0.0;
        for r in results.iter() {
            match miss_bucket(r) {
                Some(b) => buckets[b] += 1,
                None => {
                    successes += 1;
                    overshoot_sum += r.qos_overshoot() - 1.0;
                }
            }
        }
        let mut out = preamble(
            "Fig. 5 — Naive+History miss distances (pairs)",
            ">700 of 900 cases miss, most within 5% of goal; successes \
             overshoot by 1.3% on average",
            &self.scale.describe(),
        );
        let mut t = Table::new(["bucket", "cases"]);
        for (b, label) in MISS_BUCKETS.iter().enumerate() {
            t.row([label.to_string(), buckets[b].to_string()]);
        }
        out.push_str(&t.render());
        let total_missed: usize = buckets.iter().sum();
        out.push_str(&format!(
            "\nmissed {total_missed} / {} cases; successes {successes}, mean overshoot {}\n",
            results.len(),
            pct(if successes == 0 { 0.0 } else { overshoot_sum / successes as f64 }),
        ));
        out
    }

    /// Fig. 6a: QoSreach vs goal for pairs, four policies.
    pub fn fig6a(&self) -> String {
        let mut out = preamble(
            "Fig. 6a — QoSreach vs QoS goals (pairs)",
            "avg QoSreach: Naive 20.6%, Spart 78.8%, Rollover 88.4% \
             (Rollover +12.2% over Spart)",
            &self.scale.describe(),
        );
        out.push_str(&self.reach_by_goal_table(&Policy::FIG6A, |p| self.pairs(*p), &self.goals()));
        out
    }

    /// Fig. 6b: QoSreach for trios with one QoS kernel.
    pub fn fig6b(&self) -> String {
        self.trio_reach(
            "Fig. 6b — QoSreach, trios with one QoS kernel",
            "Rollover reaches QoS goals 18.8% more often than Spart",
            1,
            &self.goals(),
        )
    }

    /// Fig. 6c: QoSreach for trios with two QoS kernels.
    pub fn fig6c(&self) -> String {
        self.trio_reach(
            "Fig. 6c — QoSreach, trios with two QoS kernels",
            "Rollover +43.8% over Spart; Spart reaches no goal at (70%,70%)",
            2,
            &self.dual_goals(),
        )
    }

    fn trio_reach(&self, title: &str, claim: &str, num_qos: usize, goals: &[f64]) -> String {
        let policies = [Policy::Spart, Policy::Quota(QuotaScheme::Rollover)];
        let results = self.trio_results(num_qos, goals);
        let mut out = preamble(title, claim, &self.scale.describe());
        let mut t = Table::new(
            std::iter::once("goal".to_string())
                .chain(policies.iter().map(|p| p.label().to_string())),
        );
        for &g in goals {
            let mut row =
                vec![if num_qos == 2 { format!("2x{}", goal_label(g)) } else { goal_label(g) }];
            for &p in &policies {
                let subset = results
                    .iter()
                    .filter(|r| r.spec.policy == p && r.spec.goal_fracs[0] == Some(g));
                row.push(pct(qos_reach(subset)));
            }
            t.row(row);
        }
        let mut avg = vec!["AVG".to_string()];
        for &p in &policies {
            avg.push(pct(qos_reach(results.iter().filter(|r| r.spec.policy == p))));
        }
        t.row(avg);
        out.push_str(&t.render());
        out
    }

    /// Fig. 7: QoSreach per QoS benchmark, plus C+C / C+M / M+M summaries.
    pub fn fig7(&self) -> String {
        let policies = [Policy::Spart, Policy::Quota(QuotaScheme::Rollover)];
        let mut out = preamble(
            "Fig. 7 — QoSreach per QoS kernel (pairs)",
            "C+C pairs always reach goals; Spart trails Rollover on M+M \
             (no bandwidth control); histo is hard for both",
            &self.scale.describe(),
        );
        let mut t = Table::new(["QoS kernel", "Spart", "Rollover"]);
        for &name in &workloads::NAMES {
            let mut row = vec![name.to_string()];
            for &p in &policies {
                let results = self.pairs(p);
                let subset = results.iter().filter(|r| r.spec.kernels[0] == name);
                row.push(pct(qos_reach(subset)));
            }
            t.row(row);
        }
        let class_of = |n: &str| workloads::by_name(n).expect("known").memory_intensive();
        for (label, qos_mem, other_mem) in
            [("C+C", false, false), ("C+M", false, true), ("M+M", true, true)]
        {
            let mut row = vec![label.to_string()];
            for &p in &policies {
                let results = self.pairs(p);
                let subset = results.iter().filter(|r| {
                    let qm = class_of(&r.spec.kernels[0]);
                    let bm = class_of(&r.spec.kernels[1]);
                    if label == "C+M" {
                        qm != bm
                    } else {
                        qm == qos_mem && bm == other_mem
                    }
                });
                row.push(pct(qos_reach(subset)));
            }
            t.row(row);
        }
        out.push_str(&t.render());
        out
    }

    /// Fig. 8a: non-QoS throughput (normalized to isolated), pairs.
    pub fn fig8a(&self) -> String {
        let mut out = preamble(
            "Fig. 8a — non-QoS kernel throughput, pairs (successful cases)",
            "Rollover beats Spart at every goal, +15.9% on average",
            &self.scale.describe(),
        );
        out.push_str(&self.throughput_by_goal_table(
            &[Policy::Spart, Policy::Quota(QuotaScheme::Rollover)],
            |p| self.pairs(*p),
            &self.goals(),
        ));
        out
    }

    /// Fig. 8b/8c: non-QoS throughput for trios (1 or 2 QoS kernels).
    pub fn fig8bc(&self, num_qos: usize) -> String {
        let (title, claim, goals) = if num_qos == 1 {
            (
                "Fig. 8b — non-QoS throughput, trios with one QoS kernel",
                "Rollover +19.9% over Spart; largest gain 75.5% at the 95% goal",
                self.goals(),
            )
        } else {
            (
                "Fig. 8c — non-QoS throughput, trios with two QoS kernels",
                "Rollover +20.5% over Spart; >10x at the hardest goals",
                self.dual_goals(),
            )
        };
        let policies = [Policy::Spart, Policy::Quota(QuotaScheme::Rollover)];
        let results = self.trio_results(num_qos, &goals);
        let mut out = preamble(title, claim, &self.scale.describe());
        let mut t = Table::new(
            std::iter::once("goal".to_string())
                .chain(policies.iter().map(|p| p.label().to_string())),
        );
        for &g in &goals {
            let mut row = vec![goal_label(g)];
            for &p in &policies {
                let subset: Vec<&CaseResult> = results
                    .iter()
                    .filter(|r| {
                        r.spec.policy == p && r.spec.goal_fracs[0] == Some(g) && r.success()
                    })
                    .collect();
                row.push(if subset.is_empty() {
                    "-".to_string()
                } else {
                    ratio(mean(subset.iter().copied(), CaseResult::nonqos_normalized))
                });
            }
            t.row(row);
        }
        out.push_str(&t.render());
        out
    }

    /// Fig. 9: QoS-kernel throughput normalized to its goal.
    pub fn fig9(&self) -> String {
        let policies = [Policy::Spart, Policy::Quota(QuotaScheme::Rollover)];
        let mut out = preamble(
            "Fig. 9 — QoS kernel throughput / goal (pairs, successful cases)",
            "Spart overshoots goals by 11.6% on average, Rollover by only 2.8%",
            &self.scale.describe(),
        );
        let goals = self.goals();
        let mut t = Table::new(
            std::iter::once("goal".to_string())
                .chain(policies.iter().map(|p| p.label().to_string())),
        );
        for &g in &goals {
            let mut row = vec![goal_label(g)];
            for &p in &policies {
                let results = self.pairs(p);
                let subset: Vec<&CaseResult> = results
                    .iter()
                    .filter(|r| r.spec.goal_fracs[0] == Some(g) && r.success())
                    .collect();
                row.push(if subset.is_empty() {
                    "-".to_string()
                } else {
                    ratio(mean(subset.iter().copied(), CaseResult::qos_overshoot))
                });
            }
            t.row(row);
        }
        let mut avg = vec!["AVG".to_string()];
        for &p in &policies {
            let results = self.pairs(p);
            let subset: Vec<&CaseResult> = results.iter().filter(|r| r.success()).collect();
            avg.push(ratio(mean(subset.iter().copied(), CaseResult::qos_overshoot)));
        }
        t.row(avg);
        out.push_str(&t.render());
        out
    }

    /// Fig. 10: QoSreach, Rollover vs Rollover-Time.
    pub fn fig10(&self) -> String {
        let policies =
            [Policy::Quota(QuotaScheme::Rollover), Policy::Quota(QuotaScheme::RolloverTime)];
        let mut out = preamble(
            "Fig. 10 — QoSreach: Rollover vs Rollover-Time (pairs)",
            "both schemes reach similar numbers of goals (within ~3%)",
            &self.scale.describe(),
        );
        out.push_str(&self.reach_by_goal_table(&policies, |p| self.pairs(*p), &self.goals()));
        out
    }

    /// Fig. 11: non-QoS throughput, Rollover vs Rollover-Time.
    pub fn fig11(&self) -> String {
        let mut out = preamble(
            "Fig. 11 — non-QoS throughput: Rollover vs Rollover-Time (pairs)",
            "CPU-style prioritisation degrades non-QoS throughput by 1.47x",
            &self.scale.describe(),
        );
        out.push_str(&self.throughput_by_goal_table(
            &[Policy::Quota(QuotaScheme::Rollover), Policy::Quota(QuotaScheme::RolloverTime)],
            |p| self.pairs(*p),
            &self.goals(),
        ));
        out
    }

    /// Fig. 12: QoSreach on the 56-SM configuration.
    pub fn fig12(&self) -> String {
        let policies = [Policy::Spart, Policy::Quota(QuotaScheme::Rollover)];
        let mut out = preamble(
            "Fig. 12 — QoSreach with 56 SMs (pairs)",
            "more SMs help Spart (finer spatial granularity) but it still \
             trails Rollover by 4.76%",
            &self.scale.describe(),
        );
        out.push_str(&self.reach_by_goal_table(
            &policies,
            |p| self.pairs_with(*p, Ablations::default(), ConfigKind::Sm56, self.sm56_stride()),
            &self.goals(),
        ));
        out
    }

    /// Fig. 13: non-QoS throughput on the 56-SM configuration.
    pub fn fig13(&self) -> String {
        let mut out = preamble(
            "Fig. 13 — non-QoS throughput with 56 SMs (pairs)",
            "Rollover +30.65% over Spart on average",
            &self.scale.describe(),
        );
        out.push_str(&self.throughput_by_goal_table(
            &[Policy::Spart, Policy::Quota(QuotaScheme::Rollover)],
            |p| self.pairs_with(*p, Ablations::default(), ConfigKind::Sm56, self.sm56_stride()),
            &self.goals(),
        ));
        out
    }

    /// Extra pair-subsampling for the 3.5x-slower 56-SM runs below Paper scale.
    fn sm56_stride(&self) -> usize {
        match self.scale {
            RunScale::Paper => 1,
            _ => 3,
        }
    }

    /// Fig. 14: energy-efficiency improvement of Rollover over Spart.
    pub fn fig14(&self) -> String {
        let goals = self.goals();
        let mut out = preamble(
            "Fig. 14 — instructions/Watt improvement over Spart (pairs)",
            "Rollover improves energy efficiency by 9.3% on average",
            &self.scale.describe(),
        );
        let mut t = Table::new(["goal", "improvement"]);
        let mut improvements = Vec::new();
        for &g in &goals {
            let eff = |p: Policy| {
                let results = self.pairs(p);
                let subset: Vec<&CaseResult> =
                    results.iter().filter(|r| r.spec.goal_fracs[0] == Some(g)).collect();
                mean(subset.iter().copied(), |r| r.insts_per_energy)
            };
            let spart = eff(Policy::Spart);
            let rollover = eff(Policy::Quota(QuotaScheme::Rollover));
            let improvement = if spart <= 0.0 { 0.0 } else { rollover / spart - 1.0 };
            improvements.push(improvement);
            t.row([goal_label(g), pct(improvement)]);
        }
        let avg = improvements.iter().sum::<f64>() / improvements.len().max(1) as f64;
        t.row(["AVG".to_string(), pct(avg)]);
        out.push_str(&t.render());
        out
    }

    // ------------------------------------------------------------------
    // §4.8 ablations
    // ------------------------------------------------------------------

    /// §4.8: preemption overhead on non-QoS throughput.
    pub fn ablation_preemption(&self) -> String {
        let real = self.pairs(Policy::Quota(QuotaScheme::Rollover));
        let free = self.pairs_with(
            Policy::Quota(QuotaScheme::Rollover),
            Ablations { free_preemption: true, ..Ablations::default() },
            ConfigKind::Table1,
            1,
        );
        let tput = |rs: &[CaseResult]| {
            let ok: Vec<&CaseResult> = rs.iter().filter(|r| r.success()).collect();
            mean(ok.iter().copied(), CaseResult::nonqos_normalized)
        };
        let (with_cost, without) = (tput(&real), tput(&free));
        let saves = mean(real.iter(), |r| r.preemption_saves as f64);
        let overhead = if without <= 0.0 { 0.0 } else { 1.0 - with_cost / without };
        let mut out = preamble(
            "§4.8 — preemption overhead",
            "1.93% on non-QoS throughput (context moves overlap execution)",
            &self.scale.describe(),
        );
        out.push_str(&format!(
            "non-QoS normalized throughput: {} with real preemption cost, {} with free \
             preemption\noverhead {} ({saves:.1} context saves per case)\n",
            ratio(with_cost),
            ratio(without),
            pct(overhead),
        ));
        out
    }

    /// §4.8: effect of history-based quota adjustment.
    pub fn ablation_history(&self) -> String {
        let on = self.pairs(Policy::Quota(QuotaScheme::Rollover));
        let off = self.pairs_with(
            Policy::Quota(QuotaScheme::Rollover),
            Ablations { history_adjust: Some(false), ..Ablations::default() },
            ConfigKind::Table1,
            1,
        );
        let (reach_on, reach_off) = (qos_reach(on.iter()), qos_reach(off.iter()));
        let gain = if reach_off <= 0.0 { f64::INFINITY } else { reach_on / reach_off - 1.0 };
        let mut out = preamble(
            "§4.8 — history-based quota adjustment",
            "enabling history adjustment covers 86.4% more cases",
            &self.scale.describe(),
        );
        out.push_str(&format!(
            "QoSreach: {} with history adjustment, {} without ({} more cases covered)\n",
            pct(reach_on),
            pct(reach_off),
            pct(gain),
        ));
        out
    }

    /// §4.8: effect of static resource management on M+M pairs.
    pub fn ablation_static(&self) -> String {
        let on = self.pairs(Policy::Quota(QuotaScheme::Rollover));
        let off = self.pairs_with(
            Policy::Quota(QuotaScheme::Rollover),
            Ablations { static_adjust: false, ..Ablations::default() },
            ConfigKind::Table1,
            1,
        );
        let mm = |rs: &[CaseResult]| {
            let subset: Vec<&CaseResult> = rs
                .iter()
                .filter(|r| {
                    r.success()
                        && r.spec
                            .kernels
                            .iter()
                            .all(|n| workloads::by_name(n).expect("known").memory_intensive())
                })
                .collect();
            mean(subset.iter().copied(), CaseResult::nonqos_normalized)
        };
        let (with_mgmt, without) = (mm(&on), mm(&off));
        let gain = if without <= 0.0 { 0.0 } else { with_mgmt / without - 1.0 };
        let mut out = preamble(
            "§4.8 — static resource management (M+M pairs)",
            "TB re-allocation improves M+M non-QoS throughput by 13.3%",
            &self.scale.describe(),
        );
        out.push_str(&format!(
            "M+M non-QoS normalized throughput: {} with TB adjustment, {} without \
             ({} improvement)\n",
            ratio(with_mgmt),
            ratio(without),
            pct(gain),
        ));
        out
    }

    /// Epoch-length sensitivity (the paper fixes 10K cycles per [17]; this
    /// ablation shows the choice is robust). Not part of `repro all`.
    pub fn ablation_epoch_length(&self) -> String {
        let mut out = preamble(
            "ablation — epoch length sensitivity",
            "10K-cycle epochs are 'sufficiently good' (section 4.1, following [17])",
            &self.scale.describe(),
        );
        let mut t = Table::new(["epoch cycles", "QoSreach", "non-QoS tput"]);
        for epoch_cycles in [2_500u64, 5_000, 10_000, 20_000] {
            let mut specs = pair_sweep(
                &[Policy::Quota(QuotaScheme::Rollover)],
                &[0.55, 0.75],
                self.scale.cycles(),
                self.scale.case_stride() * 3,
            );
            for s in &mut specs {
                s.epoch_cycles = Some(epoch_cycles);
            }
            let results = self.run_sweep(&specs);
            let ok: Vec<&CaseResult> = results.iter().filter(|r| r.success()).collect();
            t.row([
                epoch_cycles.to_string(),
                pct(qos_reach(results.iter())),
                if ok.is_empty() {
                    "-".to_string()
                } else {
                    ratio(mean(ok.iter().copied(), CaseResult::nonqos_normalized))
                },
            ]);
        }
        out.push_str(&t.render());
        out
    }

    // ------------------------------------------------------------------
    // Shared table builders
    // ------------------------------------------------------------------

    fn reach_by_goal_table<F>(&self, policies: &[Policy], fetch: F, goals: &[f64]) -> String
    where
        F: Fn(&Policy) -> Arc<Vec<CaseResult>>,
    {
        let mut t = Table::new(
            std::iter::once("goal".to_string())
                .chain(policies.iter().map(|p| p.label().to_string())),
        );
        for &g in goals {
            let mut row = vec![goal_label(g)];
            for p in policies {
                let results = fetch(p);
                let subset = results.iter().filter(|r| r.spec.goal_fracs[0] == Some(g));
                row.push(pct(qos_reach(subset)));
            }
            t.row(row);
        }
        let mut avg = vec!["AVG".to_string()];
        for p in policies {
            avg.push(pct(qos_reach(fetch(p).iter())));
        }
        t.row(avg);
        t.render()
    }

    fn throughput_by_goal_table<F>(&self, policies: &[Policy], fetch: F, goals: &[f64]) -> String
    where
        F: Fn(&Policy) -> Arc<Vec<CaseResult>>,
    {
        let mut t = Table::new(
            std::iter::once("goal".to_string())
                .chain(policies.iter().map(|p| p.label().to_string())),
        );
        for &g in goals {
            let mut row = vec![goal_label(g)];
            for p in policies {
                let results = fetch(p);
                let subset: Vec<&CaseResult> = results
                    .iter()
                    .filter(|r| r.spec.goal_fracs[0] == Some(g) && r.success())
                    .collect();
                row.push(if subset.is_empty() {
                    "-".to_string()
                } else {
                    ratio(mean(subset.iter().copied(), CaseResult::nonqos_normalized))
                });
            }
            t.row(row);
        }
        let mut avg = vec!["AVG".to_string()];
        for p in policies {
            let results = fetch(p);
            let subset: Vec<&CaseResult> = results.iter().filter(|r| r.success()).collect();
            avg.push(ratio(mean(subset.iter().copied(), CaseResult::nonqos_normalized)));
        }
        t.row(avg);
        t.render()
    }
}

// ----------------------------------------------------------------------
// One-shot helpers (used by benches and doc examples)
// ----------------------------------------------------------------------

/// Regenerates Fig. 5 in a fresh session.
pub fn fig5(scale: RunScale) -> String {
    Session::new(scale).fig5()
}

/// Regenerates Fig. 6a in a fresh session.
pub fn fig6a(scale: RunScale) -> String {
    Session::new(scale).fig6a()
}

/// Regenerates Fig. 9 in a fresh session.
pub fn fig9(scale: RunScale) -> String {
    Session::new(scale).fig9()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_session() -> Session {
        Session::new(RunScale::Bench)
    }

    #[test]
    fn table1_lists_paper_parameters() {
        let s = tiny_session().table1();
        for needle in ["1216", "16", "GTO", "256KB", "96KB", "2048", "32"] {
            assert!(s.contains(needle), "table1 missing {needle}:\n{s}");
        }
    }

    #[test]
    fn table2_has_all_schemes() {
        let s = tiny_session().table2();
        for needle in ["SMK", "Baymax", "FineGrainQoS", "adaptive TLP"] {
            assert!(s.contains(needle), "table2 missing {needle}");
        }
    }

    #[test]
    fn fig6a_reports_all_policies() {
        let s = tiny_session().fig6a();
        for needle in ["Spart", "Naive", "Elastic", "Rollover", "AVG"] {
            assert!(s.contains(needle), "fig6a missing {needle}:\n{s}");
        }
    }

    #[test]
    fn fig5_buckets_cover_all_cases() {
        let session = tiny_session();
        let s = session.fig5();
        assert!(s.contains("0-1%") && s.contains("20+%"), "{s}");
        assert!(s.contains("missed"));
    }

    #[test]
    fn sessions_memoize_pair_sweeps() {
        let session = tiny_session();
        let a = session.pairs(Policy::Quota(QuotaScheme::Rollover));
        let b = session.pairs(Policy::Quota(QuotaScheme::Rollover));
        assert!(Arc::ptr_eq(&a, &b), "second fetch must hit the memo");
    }

    #[test]
    fn sessions_log_failures_for_the_digest() {
        let session = tiny_session();
        assert!(session.failure_digest().contains("all cases completed"));
        let specs = vec![CaseSpec::new(&["nope", "lbm"], &[Some(0.5), None], Policy::Spart, 1_000)];
        let results = session.run_sweep(&specs);
        assert!(results.is_empty(), "the failing case yields no result");
        let digest = session.failure_digest();
        assert!(digest.contains("[unknown-benchmark]"), "{digest}");
        assert!(digest.contains("nope"), "{digest}");
        assert_eq!(session.failures().len(), 1);
    }
}
