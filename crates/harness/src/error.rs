//! Typed case failures and the end-of-run failure digest.
//!
//! `run_case` returns `Result<CaseResult, CaseError>` so a sweep survives
//! individual cases that are misconfigured, wedge the simulator, or panic:
//! the failures are collected here and summarized in a digest instead of
//! aborting the whole `repro` run.

use std::fmt;

use gpu_sim::SimError;

use crate::cases::CaseSpec;

/// Why one case failed to produce a [`crate::CaseResult`].
#[derive(Debug, Clone, PartialEq)]
pub enum CaseError {
    /// The spec names a benchmark the workload table does not know.
    UnknownBenchmark {
        /// The unrecognized benchmark name.
        name: String,
    },
    /// The simulator's health layer reported a typed failure (watchdog
    /// trip with its health snapshot, or an audit violation).
    Sim(SimError),
    /// The case panicked — on the first attempt *and* on its one bounded
    /// retry — and was isolated by `catch_unwind`.
    Panicked {
        /// The panic payload of the final attempt, if it was a string.
        payload: String,
        /// Total attempts made before giving up (the policy allows two:
        /// the initial run plus one retry).
        attempts: u32,
    },
}

impl CaseError {
    /// Short machine-readable error kind for digests: one of
    /// `unknown-benchmark`, `watchdog`, `audit-violation`, `panic`.
    pub fn kind(&self) -> &'static str {
        match self {
            CaseError::UnknownBenchmark { .. } => "unknown-benchmark",
            CaseError::Sim(err) => err.kind(),
            CaseError::Panicked { .. } => "panic",
        }
    }
}

impl fmt::Display for CaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaseError::UnknownBenchmark { name } => write!(f, "unknown benchmark {name:?}"),
            CaseError::Sim(err) => err.fmt(f),
            CaseError::Panicked { payload, attempts } => {
                write!(f, "panicked on all {attempts} attempt(s): {payload}")
            }
        }
    }
}

impl std::error::Error for CaseError {}

impl From<SimError> for CaseError {
    fn from(err: SimError) -> Self {
        CaseError::Sim(err)
    }
}

impl gpu_sim::Snap for CaseError {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            CaseError::UnknownBenchmark { name } => {
                out.push(0);
                gpu_sim::Snap::encode(name, out);
            }
            CaseError::Sim(err) => {
                out.push(1);
                gpu_sim::Snap::encode(err, out);
            }
            CaseError::Panicked { payload, attempts } => {
                out.push(2);
                gpu_sim::Snap::encode(payload, out);
                gpu_sim::Snap::encode(attempts, out);
            }
        }
    }
    fn decode(r: &mut gpu_sim::SnapReader<'_>) -> Result<Self, gpu_sim::SnapError> {
        match <u8 as gpu_sim::Snap>::decode(r)? {
            0 => Ok(CaseError::UnknownBenchmark { name: <String as gpu_sim::Snap>::decode(r)? }),
            1 => Ok(CaseError::Sim(<SimError as gpu_sim::Snap>::decode(r)?)),
            2 => Ok(CaseError::Panicked {
                payload: <String as gpu_sim::Snap>::decode(r)?,
                attempts: <u32 as gpu_sim::Snap>::decode(r)?,
            }),
            _ => Err(gpu_sim::SnapError::Invalid("CaseError")),
        }
    }
}

/// One failed case of a sweep, recorded for the failure digest.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedCase {
    /// Position of the case in its sweep.
    pub index: usize,
    /// The case that failed.
    pub spec: CaseSpec,
    /// Why it failed.
    pub error: CaseError,
}

/// Renders the end-of-run failure digest: one line per failed case (its
/// label, error kind, and message — including the watchdog's health
/// snapshot summary), or an all-clear line when nothing failed.
pub fn failure_digest(failures: &[FailedCase]) -> String {
    if failures.is_empty() {
        return "failure digest: all cases completed".to_string();
    }
    let mut out = format!("failure digest: {} case(s) failed\n", failures.len());
    for failure in failures {
        out.push_str(&format!(
            "  [{}] case {}: {} — {}\n",
            failure.error.kind(),
            failure.index,
            failure.spec.label(),
            failure.error
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::Policy;
    use qos_core::QuotaScheme;

    fn spec() -> CaseSpec {
        CaseSpec::new(
            &["sgemm", "lbm"],
            &[Some(0.5), None],
            Policy::Quota(QuotaScheme::Rollover),
            1_000,
        )
    }

    #[test]
    fn error_kinds_are_stable() {
        assert_eq!(CaseError::UnknownBenchmark { name: "x".into() }.kind(), "unknown-benchmark");
        assert_eq!(CaseError::Panicked { payload: "boom".into(), attempts: 2 }.kind(), "panic");
    }

    #[test]
    fn digest_reports_all_clear_when_empty() {
        assert!(failure_digest(&[]).contains("all cases completed"));
    }

    #[test]
    fn digest_names_case_and_kind() {
        let failures = vec![FailedCase {
            index: 3,
            spec: spec(),
            error: CaseError::Panicked { payload: "boom".into(), attempts: 2 },
        }];
        let digest = failure_digest(&failures);
        assert!(digest.contains("[panic]"), "{digest}");
        assert!(digest.contains("sgemm@0.50+lbm"), "{digest}");
        assert!(digest.contains("case 3"), "{digest}");
    }
}
