//! Struct-of-arrays warp state for one SM.
//!
//! The per-cycle issue loop used to walk a `Vec<Option<WarpState>>`,
//! dereferencing every slot every cycle. This table stores the same state
//! as parallel flat vecs (one per field) plus packed `u64` bitmasks, so
//! ready-warp selection is a trailing-zeros scan over a handful of words
//! and the cold per-warp fields are only touched for live candidates.
//!
//! ## Bitmask invariants
//!
//! - `occupied`: slot hosts a warp. All other masks are subsets of it.
//! - `done`: the warp has retired its last instruction.
//! - `at_barrier`: the warp is parked at a barrier.
//! - `tb_active` / `tb_loading`: mirrors of the owning TB's phase, bit set
//!   for every warp of a TB whose phase is `Active` / `Loading(_)`. They are
//!   maintained at every phase transition (dispatch, load completion,
//!   preempt start/finish, TB drain) so the scheduler can test "TB issuable"
//!   without chasing `tb_slot` per warp. A warp of a `Saving` TB has
//!   neither bit set.
//! - `kernel_mask[k]`: warps owned by kernel `k` (subset of `occupied`).
//!
//! ## Snapshot canonicality
//!
//! Freed slots are reset to canonical values (kernel 0, zeroed scalars,
//! `SplitMix64::new(0)`), so machines that reach the same architectural
//! state through different dispatch/free histories — e.g. a live run versus
//! a kill-and-resume run — encode byte-identical snapshots. The free-slot
//! stack itself is encoded, and both histories produce the same stack
//! because free-order is architecturally determined.

use crate::rng::SplitMix64;
use crate::types::{Cycle, KernelId, PerKernel};
use crate::warp::{AddrStream, WarpProgress};

/// Sets bit `slot` in a packed mask.
#[inline]
pub(crate) fn mask_set(mask: &mut [u64], slot: u16) {
    mask[usize::from(slot) / 64] |= 1 << (usize::from(slot) % 64);
}

/// Clears bit `slot` in a packed mask.
#[inline]
pub(crate) fn mask_clear(mask: &mut [u64], slot: u16) {
    mask[usize::from(slot) / 64] &= !(1 << (usize::from(slot) % 64));
}

/// Reads bit `slot` of a packed mask.
#[inline]
pub(crate) fn mask_get(mask: &[u64], slot: u16) -> bool {
    mask[usize::from(slot) / 64] >> (usize::from(slot) % 64) & 1 == 1
}

/// Struct-of-arrays storage for every warp slot of one SM.
#[derive(Debug)]
pub struct WarpTable {
    // --- per-slot attribute arrays (indexed by warp slot) ---
    /// Owning kernel.
    pub(crate) kernel: Vec<KernelId>,
    /// Owning TB's slot in the SM's TB slab.
    pub(crate) tb_slot: Vec<u16>,
    /// Warp position within its TB.
    pub(crate) warp_in_tb: Vec<u16>,
    /// Globally unique warp number within the kernel (survives preemption);
    /// derives the deterministic address stream.
    pub(crate) warp_uid: Vec<u64>,
    /// Index of the current op in the kernel body.
    pub(crate) pc: Vec<u16>,
    /// Remaining repeats of the current op (0 = not yet started).
    pub(crate) rem: Vec<u16>,
    /// Remaining body iterations.
    pub(crate) iter: Vec<u32>,
    /// Cycle at which the warp's previous instruction completes
    /// (`icn::PENDING` while a memory response is outstanding).
    pub(crate) ready_at: Vec<Cycle>,
    /// Memory-access sequence number.
    pub(crate) seq: Vec<u64>,
    /// Deterministic per-warp RNG for randomized patterns.
    pub(crate) rng: Vec<SplitMix64>,
    /// Dispatch age: smaller = older (GTO tie-break).
    pub(crate) age: Vec<u64>,
    // --- packed bitmasks (bit = warp slot) ---
    pub(crate) occupied: Vec<u64>,
    pub(crate) done: Vec<u64>,
    pub(crate) at_barrier: Vec<u64>,
    pub(crate) tb_active: Vec<u64>,
    pub(crate) tb_loading: Vec<u64>,
    /// Per-kernel occupancy masks.
    pub(crate) kernel_mask: PerKernel<Vec<u64>>,
    /// Free-slot stack; built in reverse so slot 0 pops first, matching the
    /// allocation order of the previous per-slot `Option` layout.
    pub(crate) free: Vec<u16>,
}

impl WarpTable {
    /// Creates an empty table with `max_warps` slots.
    pub fn new(max_warps: u16) -> Self {
        let n = usize::from(max_warps);
        let words = n.div_ceil(64);
        WarpTable {
            kernel: vec![KernelId::new(0); n],
            tb_slot: vec![0; n],
            warp_in_tb: vec![0; n],
            warp_uid: vec![0; n],
            pc: vec![0; n],
            rem: vec![0; n],
            iter: vec![0; n],
            ready_at: vec![0; n],
            seq: vec![0; n],
            rng: vec![SplitMix64::new(0); n],
            age: vec![0; n],
            occupied: vec![0; words],
            done: vec![0; words],
            at_barrier: vec![0; words],
            tb_active: vec![0; words],
            tb_loading: vec![0; words],
            kernel_mask: crate::types::per_kernel(|_| vec![0; words]),
            free: (0..max_warps).rev().collect(),
        }
    }

    /// Number of slots in the table.
    pub fn capacity(&self) -> usize {
        self.kernel.len()
    }

    /// Number of mask words covering the table.
    #[inline]
    pub(crate) fn words(&self) -> usize {
        self.occupied.len()
    }

    /// Number of currently free slots.
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Whether `slot` currently hosts a warp.
    #[inline]
    pub fn is_occupied(&self, slot: u16) -> bool {
        mask_get(&self.occupied, slot)
    }

    /// Claims a free slot for a warp of `kernel`, writing every per-slot
    /// field and updating the occupancy masks. The warp starts neither done
    /// nor at a barrier; the TB-phase bits are set by the caller once the
    /// owning TB's phase is known. Returns `None` when the table is full.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn alloc(
        &mut self,
        kernel: KernelId,
        tb_slot: u16,
        warp_in_tb: u16,
        warp_uid: u64,
        progress: &WarpProgress,
        ready_at: Cycle,
        age: u64,
    ) -> Option<u16> {
        let slot = self.free.pop()?;
        let i = usize::from(slot);
        self.kernel[i] = kernel;
        self.tb_slot[i] = tb_slot;
        self.warp_in_tb[i] = warp_in_tb;
        self.warp_uid[i] = warp_uid;
        self.pc[i] = progress.pc;
        self.rem[i] = progress.rem;
        self.iter[i] = progress.iter;
        self.ready_at[i] = ready_at;
        self.seq[i] = progress.seq;
        self.rng[i] = progress.rng.clone();
        self.age[i] = age;
        mask_set(&mut self.occupied, slot);
        if progress.done {
            mask_set(&mut self.done, slot);
        }
        mask_set(&mut self.kernel_mask[kernel.index()], slot);
        Some(slot)
    }

    /// Releases `slot` back to the free stack, resetting every field to its
    /// canonical cleared value and clearing all mask bits.
    pub(crate) fn free_slot(&mut self, slot: u16) {
        let i = usize::from(slot);
        debug_assert!(self.is_occupied(slot));
        let k = self.kernel[i].index();
        self.kernel[i] = KernelId::new(0);
        self.tb_slot[i] = 0;
        self.warp_in_tb[i] = 0;
        self.warp_uid[i] = 0;
        self.pc[i] = 0;
        self.rem[i] = 0;
        self.iter[i] = 0;
        self.ready_at[i] = 0;
        self.seq[i] = 0;
        self.rng[i] = SplitMix64::new(0);
        self.age[i] = 0;
        mask_clear(&mut self.occupied, slot);
        mask_clear(&mut self.done, slot);
        mask_clear(&mut self.at_barrier, slot);
        mask_clear(&mut self.tb_active, slot);
        mask_clear(&mut self.tb_loading, slot);
        mask_clear(&mut self.kernel_mask[k], slot);
        self.free.push(slot);
    }

    /// Captures the architectural progress of the warp in `slot` for a
    /// partial context save.
    pub(crate) fn capture_progress(&self, slot: u16) -> WarpProgress {
        let i = usize::from(slot);
        WarpProgress {
            pc: self.pc[i],
            rem: self.rem[i],
            iter: self.iter[i],
            seq: self.seq[i],
            done: mask_get(&self.done, slot),
            rng: self.rng[i].clone(),
        }
    }

    /// Borrows the address-stream state of the warp in `slot`.
    pub(crate) fn addr_stream(&mut self, slot: u16) -> AddrStream<'_> {
        let i = usize::from(slot);
        AddrStream {
            warp_uid: self.warp_uid[i],
            warp_in_tb: self.warp_in_tb[i],
            seq: &mut self.seq[i],
            rng: &mut self.rng[i],
        }
    }

    /// Sets or clears the TB-phase mirror bits of `slot` to reflect the
    /// owning TB's phase: `(active, loading)`.
    #[inline]
    pub(crate) fn set_tb_phase_bits(&mut self, slot: u16, active: bool, loading: bool) {
        if active {
            mask_set(&mut self.tb_active, slot);
        } else {
            mask_clear(&mut self.tb_active, slot);
        }
        if loading {
            mask_set(&mut self.tb_loading, slot);
        } else {
            mask_clear(&mut self.tb_loading, slot);
        }
    }
}

crate::impl_snap_struct!(WarpTable {
    kernel,
    tb_slot,
    warp_in_tb,
    warp_uid,
    pc,
    rem,
    iter,
    ready_at,
    seq,
    rng,
    age,
    occupied,
    done,
    at_barrier,
    tb_active,
    tb_loading,
    kernel_mask,
    free,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_progress() -> WarpProgress {
        WarpProgress { pc: 0, rem: 0, iter: 3, seq: 0, done: false, rng: SplitMix64::new(7) }
    }

    #[test]
    fn alloc_claims_increasing_slots_and_sets_masks() {
        let mut t = WarpTable::new(70);
        let a = t.alloc(KernelId::new(0), 0, 0, 0, &fresh_progress(), 5, 1).unwrap();
        let b = t.alloc(KernelId::new(1), 1, 0, 0, &fresh_progress(), 5, 2).unwrap();
        assert_eq!((a, b), (0, 1));
        assert!(t.is_occupied(0) && t.is_occupied(1) && !t.is_occupied(2));
        assert!(mask_get(&t.kernel_mask[0], 0) && mask_get(&t.kernel_mask[1], 1));
        assert!(!mask_get(&t.done, 0) && !mask_get(&t.at_barrier, 0));
        assert_eq!(t.ready_at[0], 5);
        // Slot 64 lives in the second mask word.
        for _ in 2..64 {
            t.alloc(KernelId::new(0), 0, 0, 0, &fresh_progress(), 0, 0).unwrap();
        }
        let hi = t.alloc(KernelId::new(2), 0, 0, 0, &fresh_progress(), 0, 0).unwrap();
        assert_eq!(hi, 64);
        assert!(t.is_occupied(64) && mask_get(&t.kernel_mask[2], 64));
    }

    #[test]
    fn free_slot_restores_canonical_snapshot() {
        use crate::snap::Snap;
        let mut t = WarpTable::new(16);
        let mut p = fresh_progress();
        p.pc = 4;
        p.seq = 99;
        let s = t.alloc(KernelId::new(2), 3, 1, 42, &p, 17, 9).unwrap();
        mask_set(&mut t.at_barrier, s);
        t.set_tb_phase_bits(s, true, false);
        t.free_slot(s);
        let fresh = WarpTable::new(16);
        let mut a = Vec::new();
        let mut b = Vec::new();
        t.encode(&mut a);
        fresh.encode(&mut b);
        assert_eq!(a, b, "freed table snapshots identically to a fresh one");
    }

    #[test]
    fn capture_progress_round_trips_through_alloc() {
        let mut t = WarpTable::new(4);
        let mut p = fresh_progress();
        p.pc = 2;
        p.rem = 1;
        p.iter = 7;
        p.seq = 13;
        let s = t.alloc(KernelId::new(1), 0, 2, 5, &p, 0, 0).unwrap();
        let got = t.capture_progress(s);
        assert_eq!(
            (got.pc, got.rem, got.iter, got.seq, got.done),
            (p.pc, p.rem, p.iter, p.seq, p.done)
        );
    }

    #[test]
    fn done_bit_survives_alloc_of_saved_retired_warp() {
        let mut t = WarpTable::new(4);
        let mut p = fresh_progress();
        p.done = true;
        let s = t.alloc(KernelId::new(0), 0, 0, 0, &p, 0, 0).unwrap();
        assert!(mask_get(&t.done, s), "resumed retired warp keeps its done bit");
    }
}
