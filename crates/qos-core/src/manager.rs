//! The QoS manager: the paper's architecture extension (Fig. 3) driving the
//! enhanced TB scheduler and enhanced warp scheduler once per epoch.

use gpu_sim::sm::QuotaCarry;
use gpu_sim::{Controller, CounterEntry, CounterKind, CounterScope, Gpu, KernelId, SmId};

use crate::goals::QosSpec;
use crate::nonqos::{artificial_goal, QosStanding, INITIAL_NONQOS_IPC};
use crate::scheme::{alpha, distribute_quota, epoch_quota, QuotaScheme};
use crate::static_alloc::{
    initial_plan, select_victim, select_victim_for_nonqos, targets_feasible, VictimCandidate,
};

/// Default cap on the history multiplier `α` (guards the first epochs, when
/// the measured history is still tiny).
pub const DEFAULT_ALPHA_CAP: f64 = 8.0;

/// Epoch-driven QoS manager for fine-grained (SMK) sharing.
///
/// Build with [`QosManager::new`] and [`QosManager::with_kernel`], then pass
/// as the controller to [`Gpu::run`]. See the crate docs for an example.
#[derive(Debug, Clone)]
pub struct QosManager {
    scheme: QuotaScheme,
    specs: Vec<QosSpec>,
    alpha_cap: f64,
    static_adjust: bool,
    history_override: Option<bool>,

    initialized: bool,
    cum_insts: Vec<u64>,
    cum_cycles: u64,
    nonqos_prev_ipc: Vec<f64>,
    alphas: Vec<f64>,

    // Counter registry (DESIGN.md §12): the manager's own view of quota
    // traffic, per kernel. `throttled_warp_cycles` is the per-epoch delta of
    // the SMs' cumulative quota-blocked counters, folded in at epoch
    // boundaries, so it only covers epochs this manager actually managed.
    quota_grants: Vec<u64>,
    quota_granted_insts: Vec<u64>,
    exhausted_sm_epochs: Vec<u64>,
    throttled_warp_cycles: Vec<u64>,
    prev_blocked: Vec<u64>,
}

impl QosManager {
    /// Creates a manager running the given quota scheme.
    pub fn new(scheme: QuotaScheme) -> Self {
        QosManager {
            scheme,
            specs: Vec::new(),
            alpha_cap: DEFAULT_ALPHA_CAP,
            static_adjust: true,
            history_override: None,
            initialized: false,
            cum_insts: Vec::new(),
            cum_cycles: 0,
            nonqos_prev_ipc: Vec::new(),
            alphas: Vec::new(),
            quota_grants: Vec::new(),
            quota_granted_insts: Vec::new(),
            exhausted_sm_epochs: Vec::new(),
            throttled_warp_cycles: Vec::new(),
            prev_blocked: Vec::new(),
        }
    }

    /// Declares the QoS spec of kernel `k`. Kernels without a spec default
    /// to best-effort.
    pub fn with_kernel(mut self, k: KernelId, spec: QosSpec) -> Self {
        if self.specs.len() <= k.index() {
            self.specs.resize(k.index() + 1, QosSpec::best_effort());
        }
        self.specs[k.index()] = spec;
        self
    }

    /// Disables (or re-enables) run-time static TB adjustment — the §4.8
    /// ablation knob.
    pub fn with_static_adjust(mut self, on: bool) -> Self {
        self.static_adjust = on;
        self
    }

    /// Overrides whether history-based `α` adjustment is applied, regardless
    /// of the scheme default — the §4.8 history ablation knob.
    pub fn with_history_adjust(mut self, on: bool) -> Self {
        self.history_override = Some(on);
        self
    }

    /// Changes the `α` cap (rarely needed).
    pub fn with_alpha_cap(mut self, cap: f64) -> Self {
        assert!(cap >= 1.0, "alpha cap below 1 would shrink quotas");
        self.alpha_cap = cap;
        self
    }

    /// The scheme this manager runs.
    pub fn scheme(&self) -> QuotaScheme {
        self.scheme
    }

    /// The kernel's cumulative IPC as tracked by the manager.
    pub fn history_ipc(&self, k: KernelId) -> f64 {
        if self.cum_cycles == 0 {
            0.0
        } else {
            self.cum_insts.get(k.index()).copied().unwrap_or(0) as f64 / self.cum_cycles as f64
        }
    }

    /// The latest `α` multiplier computed for kernel `k`.
    pub fn alpha_of(&self, k: KernelId) -> f64 {
        self.alphas.get(k.index()).copied().unwrap_or(1.0)
    }

    fn history_enabled(&self) -> bool {
        self.history_override.unwrap_or(self.scheme.history_adjusted())
    }

    fn init(&mut self, gpu: &mut Gpu) {
        let nk = gpu.num_kernels();
        if self.specs.len() < nk {
            self.specs.resize(nk, QosSpec::best_effort());
        }
        self.cum_insts = vec![0; nk];
        self.nonqos_prev_ipc = vec![INITIAL_NONQOS_IPC; nk];
        self.alphas = vec![1.0; nk];
        self.quota_grants = vec![0; nk];
        self.quota_granted_insts = vec![0; nk];
        self.exhausted_sm_epochs = vec![0; nk];
        self.throttled_warp_cycles = vec![0; nk];
        self.prev_blocked = vec![0; nk];

        gpu.set_sharing_mode(gpu_sim::SharingMode::Smk);
        initial_plan(gpu, &self.specs[..nk]).apply(gpu);
        let elastic = self.scheme.elastic();
        let priority = self.scheme.priority_block();
        for sm in gpu.sm_ids().collect::<Vec<_>>() {
            for k in 0..nk {
                let kid = KernelId::new(k);
                let mut view = gpu.sm_quota(sm);
                view.set_gated(kid, true);
                view.set_qos_kernel(kid, self.specs[k].is_qos());
                view.set_elastic(elastic);
                view.set_priority_block(priority);
            }
        }
        self.initialized = true;
    }

    fn update_history(&mut self, gpu: &Gpu) {
        let snap = gpu.epoch_snapshot();
        self.cum_cycles += snap.cycles;
        for (k, cum) in self.cum_insts.iter_mut().enumerate() {
            *cum += snap.thread_insts[k];
        }
    }

    /// Folds the SMs' quota counters into the manager's registry view at an
    /// epoch boundary, *before* fresh quotas are granted: an SM whose quota
    /// for `k` is non-positive here exhausted its grant during the epoch that
    /// just ended.
    fn harvest_counters(&mut self, gpu: &Gpu) {
        for k in 0..self.quota_grants.len() {
            let kid = KernelId::new(k);
            let blocked: u64 = gpu.sms().iter().map(|sm| sm.quota_blocked_cycles(kid)).sum();
            self.throttled_warp_cycles[k] += blocked.saturating_sub(self.prev_blocked[k]);
            self.prev_blocked[k] = blocked;
            self.exhausted_sm_epochs[k] +=
                gpu.sms().iter().filter(|sm| sm.quota(kid) <= 0).count() as u64;
        }
    }

    /// Named counters for the unified registry (DESIGN.md §12): the
    /// manager-side view of quota traffic, one block per kernel.
    pub fn counter_registry(&self) -> Vec<CounterEntry> {
        let mut out = Vec::new();
        for k in 0..self.quota_grants.len() {
            let scope = CounterScope::Kernel(k);
            let mut push = |name: &'static str, value: u64| {
                out.push(CounterEntry {
                    name,
                    scope,
                    kind: CounterKind::Counter,
                    value: value as i64,
                });
            };
            push("qos_quota_grants", self.quota_grants[k]);
            push("qos_quota_granted_insts", self.quota_granted_insts[k]);
            push("qos_exhausted_sm_epochs", self.exhausted_sm_epochs[k]);
            push("qos_throttled_warp_cycles", self.throttled_warp_cycles[k]);
        }
        out
    }

    /// Hosted TBs of kernel `k` on each SM, falling back to the configured
    /// targets before anything has been dispatched (epoch 0).
    fn tb_shares(&self, gpu: &Gpu, k: KernelId) -> Vec<u32> {
        let hosted: Vec<u32> = gpu.sms().iter().map(|sm| sm.hosted_tbs(k)).collect();
        if hosted.iter().any(|&h| h > 0) {
            hosted
        } else {
            gpu.sm_ids().map(|sm| u32::from(gpu.tb_target(sm, k))).collect()
        }
    }

    fn assign_quotas(&mut self, gpu: &mut Gpu, epoch: u64) {
        let nk = gpu.num_kernels();
        let epoch_cycles = gpu.config().epoch_cycles;
        let snap_ipc: Vec<f64> =
            (0..nk).map(|k| gpu.epoch_snapshot().ipc(KernelId::new(k))).collect();
        let history_on = self.history_enabled();

        // 1. α and quotas for QoS kernels.
        let mut standings = Vec::new();
        for (k, &epoch_ipc) in snap_ipc.iter().enumerate() {
            let Some(goal) = self.specs[k].goal_ipc() else { continue };
            let kid = KernelId::new(k);
            let a = if history_on && epoch > 0 {
                alpha(goal, self.history_ipc(kid), self.alpha_cap)
            } else {
                1.0
            };
            self.alphas[k] = a;
            standings.push(QosStanding { epoch_ipc, alpha: a, goal_ipc: goal });
            let quota = epoch_quota(goal, a, epoch_cycles);
            let refill = self.scheme.elastic();
            self.spread_quota(gpu, kid, quota, self.scheme.qos_carry(), refill);
        }

        // 2. Artificial goals and quotas for non-QoS kernels (§3.5).
        for (k, &epoch_ipc) in snap_ipc.iter().enumerate() {
            if self.specs[k].is_qos() {
                continue;
            }
            let kid = KernelId::new(k);
            let goal = artificial_goal(self.nonqos_prev_ipc[k], &standings);
            self.nonqos_prev_ipc[k] = epoch_ipc;
            let quota = epoch_quota(goal, 1.0, epoch_cycles);
            self.spread_quota(gpu, kid, quota, QuotaCarry::Reset, true);
        }
    }

    fn spread_quota(
        &mut self,
        gpu: &mut Gpu,
        k: KernelId,
        quota: u64,
        carry: QuotaCarry,
        refillable: bool,
    ) {
        let shares = self.tb_shares(gpu, k);
        let parts = distribute_quota(quota, &shares);
        self.quota_grants[k.index()] += parts.len() as u64;
        self.quota_granted_insts[k.index()] += quota;
        for (i, part) in parts.into_iter().enumerate() {
            let part = part as i64;
            let refill = if refillable { part } else { 0 };
            gpu.sm_quota(SmId::new(i)).set_epoch_quota(k, part, carry, refill);
        }
    }

    /// Run-time static TB adjustment (§3.6): lagging QoS kernels gain one TB
    /// per starved SM per epoch (evicting victims per the paper's rules);
    /// non-QoS kernels then reclaim capacity that QoS kernels demonstrably
    /// no longer need (idle TBs or IPC margin), which is what keeps
    /// best-effort throughput high once the QoS goals are met.
    fn adjust_tbs(&mut self, gpu: &mut Gpu, epoch: u64) {
        // "Swapping only happens if there are no pending preemption requests."
        if gpu.context_switch_in_flight() {
            return;
        }
        let nk = gpu.num_kernels();
        let total_tbs: Vec<u32> = (0..nk)
            .map(|k| gpu.sms().iter().map(|sm| sm.hosted_tbs(KernelId::new(k))).sum())
            .collect();

        for k in 0..nk {
            let kid = KernelId::new(k);
            match self.specs[k].goal_ipc() {
                Some(goal) => {
                    // More TLP only helps while the kernel is behind *and*
                    // its current rate is below goal; a kernel already
                    // running at goal-rate catches up through its rolled-over
                    // quota, and stealing TLP for it would only thrash. A
                    // kernel far below goal ramps two TBs per SM per epoch.
                    let epoch_ipc = gpu.epoch_snapshot().ipc(kid);
                    if self.history_ipc(kid) < goal && epoch_ipc < goal {
                        self.grow_kernel(gpu, k, &total_tbs, false, 0, usize::MAX);
                        if epoch_ipc < 0.7 * goal {
                            self.grow_kernel(gpu, k, &total_tbs, false, 0, usize::MAX);
                        }
                    }
                }
                None => {
                    // Best-effort kernels reclaim slack gradually (a quarter
                    // of the SMs per epoch, rotating) so a transient QoS dip
                    // is never amplified into a GPU-wide preemption storm.
                    let sms = gpu.sms().len().max(1);
                    let start = (epoch as usize * 7) % sms;
                    self.grow_kernel(gpu, k, &total_tbs, true, start, sms.div_ceil(4));
                }
            }
        }
    }

    /// Tries to add one TB of kernel `k` on SMs where it is TLP-starved
    /// (≤ 1 idle TB), beginning at `start_sm` and applying at most
    /// `max_adjust` changes. `strict_victims` applies the non-QoS-grower
    /// rules.
    fn grow_kernel(
        &self,
        gpu: &mut Gpu,
        k: usize,
        total_tbs: &[u32],
        strict_victims: bool,
        start_sm: usize,
        max_adjust: usize,
    ) {
        let nk = gpu.num_kernels();
        let kid = KernelId::new(k);
        let warps_per_tb = gpu.kernel_desc(kid).warps_per_tb().max(1);
        let cap = gpu.max_resident_tbs(kid) as u16;
        let sm_count = gpu.sms().len();
        let mut adjusted = 0usize;
        for off in 0..sm_count {
            if adjusted >= max_adjust {
                break;
            }
            let si = (start_sm + off) % sm_count;
            let sm_id = SmId::new(si);
            let idle_tbs = (gpu.sms()[si].idle_warp_avg(kid) / f64::from(warps_per_tb)) as u32;
            if idle_tbs > 1 {
                continue;
            }
            let target = gpu.tb_target(sm_id, kid);
            if target >= cap {
                continue;
            }
            let mut targets: Vec<u16> =
                (0..nk).map(|v| gpu.tb_target(sm_id, KernelId::new(v))).collect();
            targets[k] += 1;
            if targets_feasible(gpu, &targets) {
                gpu.set_tb_target(sm_id, kid, target + 1);
                adjusted += 1;
                continue;
            }
            // The SM allocation is full: pick a victim to shed TBs.
            let candidates: Vec<VictimCandidate> = (0..nk)
                .filter(|&v| v != k)
                .map(|v| {
                    let vid = KernelId::new(v);
                    let v_warps = gpu.kernel_desc(vid).warps_per_tb().max(1);
                    VictimCandidate {
                        kernel: v,
                        is_qos: self.specs[v].is_qos(),
                        idle_tbs: (gpu.sms()[si].idle_warp_avg(vid) / f64::from(v_warps)) as u32,
                        history_ipc: self.history_ipc(vid),
                        goal_ipc: self.specs[v].goal_ipc(),
                        total_tbs: total_tbs[v],
                        hosted_here: gpu.sms()[si].hosted_tbs(vid),
                    }
                })
                .collect();
            let victim = if strict_victims {
                select_victim_for_nonqos(&candidates, 1)
            } else {
                select_victim(&candidates, 1)
            };
            let Some(victim) = victim else { continue };
            // Shrink the victim just enough for the set to fit again.
            let mut shed = 0u32;
            while targets[victim] > 0 && shed < 4 && !targets_feasible(gpu, &targets) {
                targets[victim] -= 1;
                shed += 1;
            }
            let cand = candidates
                .iter()
                .find(|c| c.kernel == victim)
                .expect("victim came from candidates");
            let allowed = if strict_victims {
                cand.eligible_for_nonqos_growth(shed)
            } else {
                cand.eligible(shed)
            };
            if shed > 0 && targets_feasible(gpu, &targets) && allowed {
                let vid = KernelId::new(victim);
                gpu.set_tb_target(sm_id, vid, targets[victim]);
                gpu.set_tb_target(sm_id, kid, target + 1);
                adjusted += 1;
            }
        }
    }
}

impl Controller for QosManager {
    fn on_epoch(&mut self, gpu: &mut Gpu, epoch: u64) {
        if !self.initialized {
            self.init(gpu);
        }
        if epoch > 0 {
            self.update_history(gpu);
            self.harvest_counters(gpu);
        }
        self.assign_quotas(gpu, epoch);
        if self.static_adjust && epoch > 0 {
            self.adjust_tbs(gpu, epoch);
        }
    }
}

gpu_sim::impl_snap_struct!(QosManager {
    scheme,
    specs,
    alpha_cap,
    static_adjust,
    history_override,
    initialized,
    cum_insts,
    cum_cycles,
    nonqos_prev_ipc,
    alphas,
    quota_grants,
    quota_granted_insts,
    exhausted_sm_epochs,
    throttled_warp_cycles,
    prev_blocked,
});

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;

    fn pair(qos_name: &str, be_name: &str) -> (Gpu, KernelId, KernelId) {
        let mut gpu = Gpu::new(GpuConfig::paper_table1());
        let q = gpu.launch(workloads::by_name(qos_name).expect("known"));
        let b = gpu.launch(workloads::by_name(be_name).expect("known"));
        (gpu, q, b)
    }

    fn isolated_ipc(name: &str, cycles: u64) -> f64 {
        let mut gpu = Gpu::new(GpuConfig::paper_table1());
        let k = gpu.launch(workloads::by_name(name).expect("known"));
        gpu.run(cycles, &mut gpu_sim::NullController);
        gpu.stats().ipc(k)
    }

    #[test]
    fn rollover_holds_qos_kernel_near_goal() {
        let iso = isolated_ipc("sgemm", 60_000);
        let goal = 0.7 * iso;
        let (mut gpu, q, b) = pair("sgemm", "lbm");
        let mut mgr = QosManager::new(QuotaScheme::Rollover)
            .with_kernel(q, QosSpec::qos(goal))
            .with_kernel(b, QosSpec::best_effort());
        gpu.run(60_000, &mut mgr);
        let got = gpu.stats().ipc(q);
        assert!(got >= goal * 0.95, "QoS kernel must be close to goal: got {got}, goal {goal}");
        assert!(
            got <= goal * 1.25,
            "quota gating must stop well-resourced kernels from overshooting \
             far past the goal: got {got}, goal {goal}"
        );
        assert!(gpu.stats().ipc(b) > 0.0, "non-QoS kernel must still progress");
    }

    #[test]
    fn nonqos_kernel_receives_leftover_throughput() {
        let iso = isolated_ipc("sgemm", 60_000);
        let (mut gpu, q, b) = pair("sgemm", "mri-q");
        let mut mgr = QosManager::new(QuotaScheme::Rollover)
            .with_kernel(q, QosSpec::qos(0.5 * iso))
            .with_kernel(b, QosSpec::best_effort());
        gpu.run(60_000, &mut mgr);
        // With the QoS kernel capped at half speed, a compute-bound
        // best-effort kernel must claim substantial throughput.
        let b_ipc = gpu.stats().ipc(b);
        assert!(b_ipc > 100.0, "best-effort IPC {b_ipc} too low");
    }

    #[test]
    fn naive_undershoots_more_than_rollover() {
        // The core claim behind Fig. 6a: Rollover reaches goals Naive misses.
        let iso = isolated_ipc("tpacf", 60_000);
        let goal = 0.85 * iso;
        let run = |scheme| {
            let (mut gpu, q, b) = pair("tpacf", "lbm");
            let mut mgr = QosManager::new(scheme)
                .with_kernel(q, QosSpec::qos(goal))
                .with_kernel(b, QosSpec::best_effort());
            gpu.run(60_000, &mut mgr);
            gpu.stats().ipc(q)
        };
        let naive = run(QuotaScheme::Naive);
        let rollover = run(QuotaScheme::Rollover);
        assert!(rollover >= naive * 0.999, "rollover ({rollover}) must not trail naive ({naive})");
    }

    #[test]
    fn rollover_time_blocks_nonqos_harder() {
        let iso = isolated_ipc("sgemm", 40_000);
        let run = |scheme| {
            let (mut gpu, q, b) = pair("sgemm", "mri-q");
            let mut mgr = QosManager::new(scheme)
                .with_kernel(q, QosSpec::qos(0.7 * iso))
                .with_kernel(b, QosSpec::best_effort());
            gpu.run(40_000, &mut mgr);
            gpu.stats().ipc(b)
        };
        let overlapped = run(QuotaScheme::Rollover);
        let serialized = run(QuotaScheme::RolloverTime);
        assert!(
            overlapped > serialized,
            "time-multiplexed QoS ({serialized}) must hurt non-QoS throughput \
             vs overlapped ({overlapped}) — the §4.5 result"
        );
    }

    #[test]
    fn alpha_rises_when_history_lags() {
        let (mut gpu, q, b) = pair("spmv", "lbm");
        // An aggressive goal a bandwidth-bound kernel cannot reach while
        // sharing: α must grow above 1.
        let mut mgr = QosManager::new(QuotaScheme::Rollover)
            .with_kernel(q, QosSpec::qos(isolated_ipc("spmv", 30_000) * 0.95))
            .with_kernel(b, QosSpec::best_effort());
        gpu.run(30_000, &mut mgr);
        assert!(mgr.alpha_of(q) > 1.0);
        assert_eq!(mgr.alpha_of(b), 1.0, "non-QoS kernels have no α");
    }

    #[test]
    fn manager_tracks_history_ipc() {
        let (mut gpu, q, b) = pair("sgemm", "lbm");
        let mut mgr = QosManager::new(QuotaScheme::Rollover)
            .with_kernel(q, QosSpec::qos(100.0))
            .with_kernel(b, QosSpec::best_effort());
        gpu.run(30_000, &mut mgr);
        // The manager's view lags the live stats by less than one epoch.
        let live = gpu.stats().ipc(q);
        let tracked = mgr.history_ipc(q);
        assert!(tracked > 0.0);
        assert!((tracked - live).abs() / live < 0.5, "tracked {tracked} vs live {live}");
    }

    #[test]
    fn elastic_scheme_replenishes_early() {
        // Elastic epochs must not fall behind fixed epochs when quotas are
        // consumed quickly.
        let iso = isolated_ipc("mri-q", 40_000);
        let run = |scheme| {
            let (mut gpu, q, b) = pair("mri-q", "stencil");
            let mut mgr = QosManager::new(scheme)
                .with_kernel(q, QosSpec::qos(0.8 * iso))
                .with_kernel(b, QosSpec::best_effort());
            gpu.run(40_000, &mut mgr);
            gpu.stats().ipc(q)
        };
        let naive = run(QuotaScheme::Naive);
        let elastic = run(QuotaScheme::Elastic);
        assert!(elastic >= naive * 0.99, "elastic ({elastic}) must not trail naive ({naive})");
    }

    #[test]
    fn history_override_disables_alpha() {
        let (mut gpu, q, b) = pair("spmv", "lbm");
        let mut mgr = QosManager::new(QuotaScheme::Rollover)
            .with_history_adjust(false)
            .with_kernel(q, QosSpec::qos(10_000.0)) // unreachable goal
            .with_kernel(b, QosSpec::best_effort());
        gpu.run(30_000, &mut mgr);
        assert_eq!(mgr.alpha_of(q), 1.0, "history off => alpha pinned at 1");
    }

    #[test]
    fn static_adjust_off_freezes_targets() {
        let (mut gpu, q, b) = pair("sgemm", "lbm");
        let mut mgr = QosManager::new(QuotaScheme::Rollover)
            .with_static_adjust(false)
            .with_kernel(q, QosSpec::qos(1_400.0))
            .with_kernel(b, QosSpec::best_effort());
        gpu.run(1, &mut mgr); // initialize
        let before: Vec<u16> = gpu.sm_ids().map(|sm| gpu.tb_target(sm, q)).collect();
        gpu.run(50_000, &mut mgr);
        let after: Vec<u16> = gpu.sm_ids().map(|sm| gpu.tb_target(sm, q)).collect();
        assert_eq!(before, after, "targets must stay at the initial plan");
    }

    #[test]
    #[should_panic(expected = "alpha cap")]
    fn alpha_cap_below_one_rejected() {
        let _ = QosManager::new(QuotaScheme::Rollover).with_alpha_cap(0.5);
    }

    #[test]
    fn counter_registry_tracks_quota_traffic() {
        let (mut gpu, q, b) = pair("sgemm", "lbm");
        let mut mgr = QosManager::new(QuotaScheme::Rollover)
            .with_kernel(q, QosSpec::qos(200.0))
            .with_kernel(b, QosSpec::best_effort());
        gpu.run(30_000, &mut mgr);
        let reg = mgr.counter_registry();
        assert_eq!(reg.len(), 4 * gpu.num_kernels(), "four counters per kernel");
        let value = |name: &str, k: KernelId| {
            reg.iter()
                .find(|e| e.name == name && e.scope == CounterScope::Kernel(k.index()))
                .expect("registry entry present")
                .value
        };
        // Every kernel gets a grant per SM per epoch; a tight goal means the
        // QoS kernel drains quota somewhere and best-effort warps throttle.
        assert!(value("qos_quota_grants", q) > 0);
        assert!(value("qos_quota_granted_insts", q) > 0);
        assert!(
            value("qos_exhausted_sm_epochs", q) + value("qos_exhausted_sm_epochs", b) > 0,
            "some SM-epoch must exhaust its grant under a tight goal"
        );
        assert!(
            value("qos_throttled_warp_cycles", b) > 0,
            "the gated best-effort kernel must accumulate throttled cycles"
        );
    }
}
