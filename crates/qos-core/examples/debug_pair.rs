//! Diagnostic: per-epoch view of a QoS pair under a chosen scheme.
//!
//! `cargo run --release -p qos-core --example debug_pair -- sgemm lbm 0.7 rollover`

use gpu_sim::{Controller, Gpu, GpuConfig, KernelId, NullController, SmId};
use qos_core::{QosManager, QosSpec, QuotaScheme};

struct Tracer {
    inner: QosManager,
    q: KernelId,
    b: KernelId,
}

impl Controller for Tracer {
    fn on_epoch(&mut self, gpu: &mut Gpu, epoch: u64) {
        self.inner.on_epoch(gpu, epoch);
        let snap = gpu.epoch_snapshot();
        let sm0 = SmId::new(0);
        println!(
            "ep {:>3} | q: ipc {:>7.1} hist {:>7.1} a {:>4.2} tgt {:>2} host {:>2} quota {:>8} idle {:>5.1} | b: ipc {:>7.1} tgt {:>2} host {:>2} quota {:>8} | csw {} pre {}",
            epoch,
            snap.ipc(self.q),
            self.inner.history_ipc(self.q),
            self.inner.alpha_of(self.q),
            gpu.tb_target(sm0, self.q),
            gpu.sms()[0].hosted_tbs(self.q),
            gpu.sms()[0].quota(self.q),
            gpu.sms()[0].idle_warp_avg(self.q),
            snap.ipc(self.b),
            gpu.tb_target(sm0, self.b),
            gpu.sms()[0].hosted_tbs(self.b),
            gpu.sms()[0].quota(self.b),
            gpu.context_switch_in_flight(),
            gpu.preempt_stats().saves,
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let qname = args.get(1).map(String::as_str).unwrap_or("sgemm");
    let bname = args.get(2).map(String::as_str).unwrap_or("lbm");
    let frac: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(0.7);
    let scheme = match args.get(4).map(String::as_str).unwrap_or("rollover") {
        "naive" => QuotaScheme::Naive,
        "history" => QuotaScheme::NaiveHistory,
        "elastic" => QuotaScheme::Elastic,
        "rtime" => QuotaScheme::RolloverTime,
        _ => QuotaScheme::Rollover,
    };
    let cycles: u64 = args.get(5).and_then(|s| s.parse().ok()).unwrap_or(60_000);

    let mut iso = Gpu::new(GpuConfig::paper_table1());
    let ki = iso.launch(workloads::by_name(qname).expect("known"));
    iso.run(cycles, &mut NullController);
    let iso_ipc = iso.stats().ipc(ki);
    let goal = frac * iso_ipc;
    println!("{qname} isolated {iso_ipc:.1}, goal {goal:.1} ({frac}), scheme {scheme:?}\n");

    let mut gpu = Gpu::new(GpuConfig::paper_table1());
    let q = gpu.launch(workloads::by_name(qname).expect("known"));
    let b = gpu.launch(workloads::by_name(bname).expect("known"));
    let mgr = QosManager::new(scheme)
        .with_kernel(q, QosSpec::qos(goal))
        .with_kernel(b, QosSpec::best_effort());
    let mut tracer = Tracer { inner: mgr, q, b };
    gpu.run(cycles, &mut tracer);
    let s = gpu.stats();
    println!(
        "\nfinal: q ipc {:.1} ({:.1}% of goal), b ipc {:.1}, saves {}",
        s.ipc(q),
        100.0 * s.ipc(q) / goal,
        s.ipc(b),
        gpu.preempt_stats().saves
    );
}
