//! Enumerating the evaluation's cases: 90 pairs, 60 trios, goal sweeps and
//! policies (§4.1).

use gpu_sim::rng::SplitMix64;
use qos_core::QuotaScheme;
use serde::{Deserialize, Serialize};

/// Which GPU configuration a case runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConfigKind {
    /// The paper's main Table 1 configuration (16 SMs).
    Table1,
    /// The §4.6 scalability configuration (56 SMs, 2 schedulers).
    Sm56,
}

impl ConfigKind {
    /// Builds the corresponding simulator configuration.
    pub fn build(self) -> gpu_sim::GpuConfig {
        match self {
            ConfigKind::Table1 => gpu_sim::GpuConfig::paper_table1(),
            ConfigKind::Sm56 => gpu_sim::GpuConfig::paper_56sm(),
        }
    }
}

/// The QoS management policy a case runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// Spatial partitioning with hill climbing (the coarse-grained baseline).
    Spart,
    /// Fine-grained quota management with the given scheme.
    Quota(QuotaScheme),
}

impl Policy {
    /// The policies of Fig. 6a, in legend order.
    pub const FIG6A: [Policy; 4] = [
        Policy::Spart,
        Policy::Quota(QuotaScheme::Naive),
        Policy::Quota(QuotaScheme::Elastic),
        Policy::Quota(QuotaScheme::Rollover),
    ];

    /// Report label (matches the paper's legends).
    pub fn label(self) -> &'static str {
        match self {
            Policy::Spart => "Spart",
            Policy::Quota(s) => s.label(),
        }
    }
}

/// Ablation switches (§4.8) applied on top of a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ablations {
    /// Force history-based quota adjustment on/off (`None` = scheme default).
    pub history_adjust: Option<bool>,
    /// Disable run-time static TB adjustment.
    pub static_adjust: bool,
    /// Make preemption free (zero save/restore cost and traffic).
    pub free_preemption: bool,
}

impl Default for Ablations {
    fn default() -> Self {
        Ablations { history_adjust: None, static_adjust: true, free_preemption: false }
    }
}

/// One simulation case: a set of co-running kernels, their goals, a policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseSpec {
    /// Benchmark names, in kernel-slot order.
    pub kernels: Vec<String>,
    /// Per-kernel QoS goal as a fraction of isolated IPC (`None` =
    /// best-effort). QoS kernels come first by convention.
    pub goal_fracs: Vec<Option<f64>>,
    /// The management policy.
    pub policy: Policy,
    /// GPU configuration.
    pub config: ConfigKind,
    /// Simulated cycles.
    pub cycles: u64,
    /// Override of the controller epoch length (`None` = Table 1's 10K).
    pub epoch_cycles: Option<u64>,
    /// Ablation switches.
    pub ablations: Ablations,
    /// Deterministic fault-injection schedule forwarded to the simulator.
    /// Empty for every real experiment; robustness tests use it to wedge or
    /// crash selected cases.
    pub faults: gpu_sim::FaultPlan,
}

impl CaseSpec {
    /// Builds a standard pair/trio case at Table 1 configuration.
    pub fn new(kernels: &[&str], goal_fracs: &[Option<f64>], policy: Policy, cycles: u64) -> Self {
        assert_eq!(kernels.len(), goal_fracs.len(), "one goal entry per kernel");
        CaseSpec {
            kernels: kernels.iter().map(|s| s.to_string()).collect(),
            goal_fracs: goal_fracs.to_vec(),
            policy,
            config: ConfigKind::Table1,
            cycles,
            epoch_cycles: None,
            ablations: Ablations::default(),
            faults: gpu_sim::FaultPlan::default(),
        }
    }

    /// Number of QoS kernels in the case.
    pub fn num_qos(&self) -> usize {
        self.goal_fracs.iter().filter(|g| g.is_some()).count()
    }

    /// Compact case identifier for digests and logs, e.g.
    /// `sgemm@0.50+lbm Rollover/Table1`.
    pub fn label(&self) -> String {
        let kernels: Vec<String> = self
            .kernels
            .iter()
            .zip(&self.goal_fracs)
            .map(|(name, goal)| match goal {
                Some(f) => format!("{name}@{f:.2}"),
                None => name.clone(),
            })
            .collect();
        format!("{} {}/{:?}", kernels.join("+"), self.policy.label(), self.config)
    }
}

/// All ordered (QoS, non-QoS) pairs of distinct benchmarks: 10 × 9 = 90.
pub fn pairs() -> Vec<(&'static str, &'static str)> {
    let mut out = Vec::with_capacity(90);
    for &q in &workloads::NAMES {
        for &b in &workloads::NAMES {
            if q != b {
                out.push((q, b));
            }
        }
    }
    out
}

/// The 60 kernel trios of §4.1.
///
/// The paper tests "60 trios of all possible combinations" without listing
/// them; we sample 60 of the 120 unordered 3-subsets deterministically
/// (seeded shuffle), ordered so that slot 0 (and slot 1 in the 2-QoS
/// experiments) carries the QoS goal.
pub fn trios() -> Vec<(&'static str, &'static str, &'static str)> {
    let names = workloads::NAMES;
    let mut all = Vec::new();
    for i in 0..names.len() {
        for j in i + 1..names.len() {
            for k in j + 1..names.len() {
                all.push((names[i], names[j], names[k]));
            }
        }
    }
    // Deterministic Fisher-Yates with a fixed seed, then take 60.
    let mut rng = SplitMix64::new(0x7210_2017);
    for i in (1..all.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        all.swap(i, j);
    }
    all.truncate(60);
    all
}

/// Builds the Fig. 6a-style pair sweep: `pairs × goals × policies`.
pub fn pair_sweep(
    policies: &[Policy],
    goal_fracs: &[f64],
    cycles: u64,
    case_stride: usize,
) -> Vec<CaseSpec> {
    let mut out = Vec::new();
    for (q, b) in pairs().into_iter().step_by(case_stride.max(1)) {
        for &frac in goal_fracs {
            for &policy in policies {
                out.push(CaseSpec::new(&[q, b], &[Some(frac), None], policy, cycles));
            }
        }
    }
    out
}

/// Builds the trio sweep with `num_qos` ∈ {1, 2} QoS kernels.
///
/// # Panics
///
/// Panics if `num_qos` is not 1 or 2.
pub fn trio_sweep(
    policies: &[Policy],
    goal_fracs: &[f64],
    num_qos: usize,
    cycles: u64,
    case_stride: usize,
) -> Vec<CaseSpec> {
    assert!((1..=2).contains(&num_qos), "the paper evaluates 1 or 2 QoS kernels per trio");
    let mut out = Vec::new();
    for (a, b, c) in trios().into_iter().step_by(case_stride.max(1)) {
        for &frac in goal_fracs {
            for &policy in policies {
                let goals: Vec<Option<f64>> = match num_qos {
                    1 => vec![Some(frac), None, None],
                    _ => vec![Some(frac), Some(frac), None],
                };
                out.push(CaseSpec::new(&[a, b, c], &goals, policy, cycles));
            }
        }
    }
    out
}

gpu_sim::impl_snap_enum!(ConfigKind { Table1 = 0, Sm56 = 1 });

impl gpu_sim::Snap for Policy {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Policy::Spart => out.push(0),
            Policy::Quota(scheme) => {
                out.push(1);
                gpu_sim::Snap::encode(scheme, out);
            }
        }
    }
    fn decode(r: &mut gpu_sim::SnapReader<'_>) -> Result<Self, gpu_sim::SnapError> {
        match <u8 as gpu_sim::Snap>::decode(r)? {
            0 => Ok(Policy::Spart),
            1 => Ok(Policy::Quota(<QuotaScheme as gpu_sim::Snap>::decode(r)?)),
            _ => Err(gpu_sim::SnapError::Invalid("Policy")),
        }
    }
}

gpu_sim::impl_snap_struct!(Ablations { history_adjust, static_adjust, free_preemption });

gpu_sim::impl_snap_struct!(CaseSpec {
    kernels,
    goal_fracs,
    policy,
    config,
    cycles,
    epoch_cycles,
    ablations,
    faults,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ninety_ordered_pairs() {
        let p = pairs();
        assert_eq!(p.len(), 90);
        let distinct: std::collections::HashSet<_> = p.iter().collect();
        assert_eq!(distinct.len(), 90);
        assert!(p.iter().all(|(a, b)| a != b));
    }

    #[test]
    fn sixty_distinct_trios() {
        let t = trios();
        assert_eq!(t.len(), 60);
        let distinct: std::collections::HashSet<_> = t.iter().collect();
        assert_eq!(distinct.len(), 60);
        for (a, b, c) in &t {
            assert!(a != b && b != c && a != c);
        }
    }

    #[test]
    fn trios_are_deterministic() {
        assert_eq!(trios(), trios());
    }

    #[test]
    fn pair_sweep_size_matches_methodology() {
        // 90 pairs × 10 goals × 1 policy = 900 cases (§4.1).
        let sweep = pair_sweep(
            &[Policy::Quota(QuotaScheme::Rollover)],
            &qos_core::goals::paper_goal_fractions(),
            1_000,
            1,
        );
        assert_eq!(sweep.len(), 900);
        assert!(sweep.iter().all(|c| c.num_qos() == 1));
    }

    #[test]
    fn trio_sweep_roles() {
        let goals = [0.5];
        let one = trio_sweep(&[Policy::Spart], &goals, 1, 1_000, 1);
        assert_eq!(one.len(), 60);
        assert!(one.iter().all(|c| c.num_qos() == 1));
        let two = trio_sweep(&[Policy::Spart], &goals, 2, 1_000, 1);
        assert!(two.iter().all(|c| c.num_qos() == 2));
    }

    #[test]
    #[should_panic(expected = "1 or 2 QoS kernels")]
    fn trio_sweep_rejects_bad_role_count() {
        let _ = trio_sweep(&[Policy::Spart], &[0.5], 3, 1_000, 1);
    }

    #[test]
    fn stride_subsamples() {
        let sweep = pair_sweep(&[Policy::Spart], &[0.5], 1_000, 9);
        assert_eq!(sweep.len(), 10);
    }

    #[test]
    fn policy_labels() {
        assert_eq!(Policy::Spart.label(), "Spart");
        assert_eq!(Policy::Quota(QuotaScheme::Rollover).label(), "Rollover");
    }

    #[test]
    fn case_labels_identify_kernels_goals_and_policy() {
        let spec = CaseSpec::new(
            &["sgemm", "lbm"],
            &[Some(0.5), None],
            Policy::Quota(QuotaScheme::Rollover),
            1_000,
        );
        assert_eq!(spec.label(), "sgemm@0.50+lbm Rollover/Table1");
        assert!(spec.faults.is_empty(), "real cases never inject faults");
    }
}
