//! Kernel descriptions: the static shape of a SIMT program.
//!
//! A [`KernelDesc`] describes one GPU kernel the way the thread-block
//! scheduler sees it: per-TB resource demands, grid size, and a per-warp
//! *body* — a loop over a sequence of [`Op`]s (ALU bursts, SFU bursts,
//! memory accesses with an [`AccessPattern`], barriers). Real ISA semantics
//! are not modeled; what matters for the paper's mechanisms is instruction
//! *count*, *latency class* and *memory behaviour*.

use serde::{Deserialize, Serialize};

use crate::types::Addr;

/// Which address space a memory operation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemSpace {
    /// Device (global) memory: goes through L1 → L2 → DRAM.
    Global,
    /// On-chip shared memory (scratchpad): fixed latency, no traffic.
    Shared,
}

/// How a warp's 32 lanes touch global memory, and with what locality.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessPattern {
    /// Locality class of the generated address stream.
    pub kind: PatternKind,
    /// Working-set size in bytes the address stream cycles through.
    ///
    /// For [`PatternKind::Tile`] this is per-TB; for the other kinds it is
    /// kernel-wide. Small footprints hit in cache; large ones stream.
    pub footprint_bytes: u64,
    /// Number of 32-byte memory transactions one warp access coalesces into
    /// (1 = perfectly coalesced 8-bit,
    /// 4 = coalesced 32-bit, 32 = fully divergent).
    pub transactions: u8,
}

/// Locality classes for global-memory address streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PatternKind {
    /// Sequential streaming: every warp walks fresh cache lines. Minimal
    /// reuse; bandwidth-bound (e.g. `lbm`, stream phases of `sgemm`).
    Stream,
    /// Per-TB tile with heavy reuse: hits in L1 after warm-up (e.g. blocked
    /// matrix multiply working tiles).
    Tile,
    /// Uniform random within the kernel footprint: poor coalescing and poor
    /// locality (e.g. `spmv` row gathers, `histo` bin updates).
    Random,
    /// Neighbourhood access over a kernel-wide grid: misses L1, reuses L2
    /// across TBs (e.g. `stencil`).
    Stencil,
}

impl AccessPattern {
    /// Perfectly coalesced streaming loads over a large footprint.
    pub fn stream() -> Self {
        AccessPattern { kind: PatternKind::Stream, footprint_bytes: 256 << 20, transactions: 4 }
    }

    /// A small per-TB tile that becomes L1-resident.
    pub fn tile(footprint_bytes: u64) -> Self {
        AccessPattern { kind: PatternKind::Tile, footprint_bytes, transactions: 4 }
    }

    /// Random accesses within `footprint_bytes`, `transactions` per warp access.
    pub fn random(footprint_bytes: u64, transactions: u8) -> Self {
        AccessPattern { kind: PatternKind::Random, footprint_bytes, transactions }
    }

    /// Stencil-style neighbourhood access over a kernel-wide footprint.
    pub fn stencil(footprint_bytes: u64) -> Self {
        AccessPattern { kind: PatternKind::Stencil, footprint_bytes, transactions: 4 }
    }
}

/// One step of a warp's instruction stream.
///
/// `repeat` expresses bursts compactly: `Op::alu(4, 10)` is ten back-to-back
/// 4-cycle ALU instructions. `active_lanes` models branch divergence — the
/// paper's quota counters decrement by the number of *active threads* in each
/// warp instruction (≤ 32), so divergence directly affects quota consumption.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// An arithmetic burst: `repeat` instructions of `latency` cycles each.
    Alu {
        /// Completion latency of each instruction in cycles.
        latency: u16,
        /// Number of back-to-back instructions.
        repeat: u16,
        /// Active lanes per instruction (1..=32).
        active_lanes: u8,
    },
    /// A special-function burst (transcendental, etc.): longer latency.
    Sfu {
        /// Completion latency of each instruction in cycles.
        latency: u16,
        /// Number of back-to-back instructions.
        repeat: u16,
        /// Active lanes per instruction (1..=32).
        active_lanes: u8,
    },
    /// One memory instruction per warp.
    Mem {
        /// Address space accessed.
        space: MemSpace,
        /// Whether this is a store (stores still allocate; flag is for stats).
        store: bool,
        /// Address pattern (ignored for [`MemSpace::Shared`]).
        pattern: AccessPattern,
        /// Active lanes (1..=32).
        active_lanes: u8,
    },
    /// TB-wide barrier: warps wait until all warps of the TB arrive.
    Bar,
}

impl Op {
    /// A full-warp ALU burst.
    pub fn alu(latency: u16, repeat: u16) -> Self {
        Op::Alu { latency, repeat, active_lanes: 32 }
    }

    /// A full-warp SFU burst.
    pub fn sfu(latency: u16, repeat: u16) -> Self {
        Op::Sfu { latency, repeat, active_lanes: 32 }
    }

    /// A divergent ALU burst with the given number of active lanes.
    ///
    /// # Panics
    ///
    /// Panics if `active_lanes` is 0 or exceeds the warp size.
    pub fn alu_divergent(latency: u16, repeat: u16, active_lanes: u8) -> Self {
        assert!(
            (1..=crate::WARP_SIZE as u8).contains(&active_lanes),
            "active_lanes must be in 1..=32"
        );
        Op::Alu { latency, repeat, active_lanes }
    }

    /// A full-warp global load with the given pattern.
    pub fn mem_load(pattern: AccessPattern) -> Self {
        Op::Mem { space: MemSpace::Global, store: false, pattern, active_lanes: 32 }
    }

    /// A full-warp global store with the given pattern.
    pub fn mem_store(pattern: AccessPattern) -> Self {
        Op::Mem { space: MemSpace::Global, store: true, pattern, active_lanes: 32 }
    }

    /// A full-warp shared-memory access.
    pub fn smem() -> Self {
        Op::Mem {
            space: MemSpace::Shared,
            store: false,
            pattern: AccessPattern::tile(0),
            active_lanes: 32,
        }
    }

    /// Number of dynamic warp instructions this op expands to.
    pub fn dynamic_insts(&self) -> u64 {
        match *self {
            Op::Alu { repeat, .. } | Op::Sfu { repeat, .. } => u64::from(repeat.max(1)),
            Op::Mem { .. } | Op::Bar => 1,
        }
    }

    /// Number of dynamic *thread* instructions this op expands to.
    pub fn dynamic_thread_insts(&self) -> u64 {
        match *self {
            Op::Alu { repeat, active_lanes, .. } | Op::Sfu { repeat, active_lanes, .. } => {
                u64::from(repeat.max(1)) * u64::from(active_lanes)
            }
            Op::Mem { active_lanes, .. } => u64::from(active_lanes),
            Op::Bar => u64::from(crate::WARP_SIZE),
        }
    }
}

/// Static description of a kernel.
///
/// Construct with [`KernelDesc::builder`]. The description is immutable once
/// built; launching it on a [`crate::Gpu`] creates per-launch runtime state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelDesc {
    name: String,
    threads_per_tb: u32,
    regs_per_thread: u32,
    smem_per_tb: u64,
    grid_tbs: u32,
    iterations: u32,
    body: Vec<Op>,
    seed: u64,
    memory_intensive: bool,
}

impl KernelDesc {
    /// Starts building a kernel description.
    pub fn builder(name: impl Into<String>) -> KernelDescBuilder {
        KernelDescBuilder::new(name)
    }

    /// Kernel name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Threads per thread block.
    pub fn threads_per_tb(&self) -> u32 {
        self.threads_per_tb
    }

    /// Warps per thread block.
    pub fn warps_per_tb(&self) -> u32 {
        self.threads_per_tb.div_ceil(crate::WARP_SIZE)
    }

    /// Registers per thread.
    pub fn regs_per_thread(&self) -> u32 {
        self.regs_per_thread
    }

    /// Shared memory per TB in bytes.
    pub fn smem_per_tb(&self) -> u64 {
        self.smem_per_tb
    }

    /// Number of TBs in the grid (one kernel execution).
    pub fn grid_tbs(&self) -> u32 {
        self.grid_tbs
    }

    /// Loop iterations of the body each warp executes.
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// The per-warp instruction body.
    pub fn body(&self) -> &[Op] {
        &self.body
    }

    /// Base RNG seed for this kernel's address streams.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the kernel is classified memory-intensive ("M" in Fig. 7).
    pub fn memory_intensive(&self) -> bool {
        self.memory_intensive
    }

    /// Register-file bytes one TB occupies (4 bytes per register).
    pub fn regfile_bytes_per_tb(&self) -> u64 {
        u64::from(self.regs_per_thread) * 4 * u64::from(self.threads_per_tb)
    }

    /// Bytes of context (registers + shared memory) saved on preemption.
    pub fn context_bytes_per_tb(&self) -> u64 {
        self.regfile_bytes_per_tb() + self.smem_per_tb
    }

    /// Total dynamic thread instructions one warp retires per TB execution.
    pub fn thread_insts_per_warp(&self) -> u64 {
        let per_pass: u64 = self.body.iter().map(Op::dynamic_thread_insts).sum();
        per_pass * u64::from(self.iterations)
    }

    /// Total dynamic thread instructions one TB retires.
    pub fn thread_insts_per_tb(&self) -> u64 {
        self.thread_insts_per_warp() * u64::from(self.warps_per_tb())
    }

    /// Returns a copy with a different seed (used to decorrelate co-runners).
    pub fn with_seed(&self, seed: u64) -> Self {
        let mut k = self.clone();
        k.seed = seed;
        k
    }

    /// Base address of this kernel's slice of the device address space.
    ///
    /// Each resident kernel gets a disjoint 16 GiB region so co-runners never
    /// share cache lines, only capacity and bandwidth — matching distinct
    /// applications sharing a GPU.
    pub(crate) fn base_addr(kernel_slot: usize) -> Addr {
        (kernel_slot as Addr) << 34
    }
}

/// Builder for [`KernelDesc`].
#[derive(Debug, Clone)]
pub struct KernelDescBuilder {
    desc: KernelDesc,
}

impl KernelDescBuilder {
    fn new(name: impl Into<String>) -> Self {
        KernelDescBuilder {
            desc: KernelDesc {
                name: name.into(),
                threads_per_tb: 256,
                regs_per_thread: 32,
                smem_per_tb: 0,
                grid_tbs: 1024,
                iterations: 32,
                body: Vec::new(),
                seed: 0,
                memory_intensive: false,
            },
        }
    }

    /// Sets threads per TB (must be a positive multiple of the warp size).
    pub fn threads_per_tb(mut self, n: u32) -> Self {
        self.desc.threads_per_tb = n;
        self
    }

    /// Sets registers per thread.
    pub fn regs_per_thread(mut self, n: u32) -> Self {
        self.desc.regs_per_thread = n;
        self
    }

    /// Sets shared memory per TB in bytes.
    pub fn smem_per_tb(mut self, bytes: u64) -> Self {
        self.desc.smem_per_tb = bytes;
        self
    }

    /// Sets the grid size in TBs.
    pub fn grid_tbs(mut self, n: u32) -> Self {
        self.desc.grid_tbs = n;
        self
    }

    /// Sets how many times each warp loops over the body.
    pub fn iterations(mut self, n: u32) -> Self {
        self.desc.iterations = n;
        self
    }

    /// Sets the per-warp body.
    pub fn body(mut self, ops: Vec<Op>) -> Self {
        self.desc.body = ops;
        self
    }

    /// Sets the base RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.desc.seed = seed;
        self
    }

    /// Marks the kernel memory-intensive (the "M" class of Fig. 7).
    pub fn memory_intensive(mut self, yes: bool) -> Self {
        self.desc.memory_intensive = yes;
        self
    }

    /// Finishes the build.
    ///
    /// # Panics
    ///
    /// Panics if the description is internally inconsistent (empty body,
    /// zero iterations/grid, thread count not a positive multiple of 32, or
    /// an op with zero or more than 32 active lanes).
    pub fn build(self) -> KernelDesc {
        let d = &self.desc;
        assert!(!d.body.is_empty(), "kernel body must not be empty");
        assert!(
            !matches!(d.body.last(), Some(Op::Bar)),
            "a barrier must not be the last op of the body (retiring warps \
             cannot release waiters)"
        );
        assert!(d.iterations > 0, "iterations must be positive");
        assert!(d.grid_tbs > 0, "grid must contain at least one TB");
        assert!(
            d.threads_per_tb > 0 && d.threads_per_tb.is_multiple_of(crate::WARP_SIZE),
            "threads_per_tb must be a positive multiple of {}",
            crate::WARP_SIZE
        );
        for op in &d.body {
            let lanes = match *op {
                Op::Alu { active_lanes, .. }
                | Op::Sfu { active_lanes, .. }
                | Op::Mem { active_lanes, .. } => active_lanes,
                Op::Bar => 32,
            };
            assert!(
                (1..=crate::WARP_SIZE as u8).contains(&lanes),
                "active_lanes must be in 1..=32"
            );
            if let Op::Mem { space: MemSpace::Global, pattern, .. } = op {
                assert!(
                    (1..=crate::WARP_SIZE as u8).contains(&pattern.transactions),
                    "transactions must be in 1..=32"
                );
                assert!(pattern.footprint_bytes > 0, "footprint must be positive");
            }
        }
        self.desc
    }
}

use crate::snap::{Snap, SnapError, SnapReader};

crate::impl_snap_enum!(MemSpace { Global = 0, Shared = 1 });

crate::impl_snap_enum!(PatternKind { Stream = 0, Tile = 1, Random = 2, Stencil = 3 });

crate::impl_snap_struct!(AccessPattern { kind, footprint_bytes, transactions });

impl Snap for Op {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            Op::Alu { latency, repeat, active_lanes } => {
                out.push(0);
                latency.encode(out);
                repeat.encode(out);
                active_lanes.encode(out);
            }
            Op::Sfu { latency, repeat, active_lanes } => {
                out.push(1);
                latency.encode(out);
                repeat.encode(out);
                active_lanes.encode(out);
            }
            Op::Mem { space, store, pattern, active_lanes } => {
                out.push(2);
                space.encode(out);
                store.encode(out);
                pattern.encode(out);
                active_lanes.encode(out);
            }
            Op::Bar => out.push(3),
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match u8::decode(r)? {
            0 => Ok(Op::Alu {
                latency: u16::decode(r)?,
                repeat: u16::decode(r)?,
                active_lanes: u8::decode(r)?,
            }),
            1 => Ok(Op::Sfu {
                latency: u16::decode(r)?,
                repeat: u16::decode(r)?,
                active_lanes: u8::decode(r)?,
            }),
            2 => Ok(Op::Mem {
                space: MemSpace::decode(r)?,
                store: bool::decode(r)?,
                pattern: AccessPattern::decode(r)?,
                active_lanes: u8::decode(r)?,
            }),
            3 => Ok(Op::Bar),
            _ => Err(SnapError::Invalid("Op")),
        }
    }
}

crate::impl_snap_struct!(KernelDesc {
    name,
    threads_per_tb,
    regs_per_thread,
    smem_per_tb,
    grid_tbs,
    iterations,
    body,
    seed,
    memory_intensive,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> KernelDesc {
        KernelDesc::builder("k")
            .threads_per_tb(128)
            .regs_per_thread(40)
            .smem_per_tb(4096)
            .grid_tbs(64)
            .iterations(10)
            .body(vec![Op::alu(4, 3), Op::Bar, Op::mem_load(AccessPattern::stream())])
            .build()
    }

    #[test]
    fn derived_resources() {
        let k = simple();
        assert_eq!(k.warps_per_tb(), 4);
        assert_eq!(k.regfile_bytes_per_tb(), 40 * 4 * 128);
        assert_eq!(k.context_bytes_per_tb(), 40 * 4 * 128 + 4096);
    }

    #[test]
    fn instruction_accounting() {
        let k = simple();
        // per pass: 3 ALU * 32 lanes + 1 mem * 32 + 1 bar * 32 = 160
        assert_eq!(k.thread_insts_per_warp(), 160 * 10);
        assert_eq!(k.thread_insts_per_tb(), 160 * 10 * 4);
    }

    #[test]
    fn op_dynamic_counts() {
        assert_eq!(Op::alu(4, 5).dynamic_insts(), 5);
        assert_eq!(Op::alu(4, 5).dynamic_thread_insts(), 160);
        assert_eq!(Op::alu_divergent(4, 2, 8).dynamic_thread_insts(), 16);
        assert_eq!(Op::Bar.dynamic_insts(), 1);
    }

    #[test]
    #[should_panic(expected = "body must not be empty")]
    fn build_rejects_empty_body() {
        let _ = KernelDesc::builder("k").build();
    }

    #[test]
    #[should_panic(expected = "multiple of 32")]
    fn build_rejects_unaligned_threads() {
        let _ = KernelDesc::builder("k").threads_per_tb(100).body(vec![Op::alu(1, 1)]).build();
    }

    #[test]
    #[should_panic(expected = "active_lanes")]
    fn divergent_rejects_zero_lanes() {
        let _ = Op::alu_divergent(4, 1, 0);
    }

    #[test]
    fn kernel_base_addresses_are_disjoint() {
        let spacing = KernelDesc::base_addr(1) - KernelDesc::base_addr(0);
        assert!(spacing >= (16 << 30));
    }

    #[test]
    fn with_seed_changes_only_seed() {
        let k = simple();
        let k2 = k.with_seed(77);
        assert_eq!(k2.seed(), 77);
        assert_eq!(k2.name(), k.name());
        assert_eq!(k2.body(), k.body());
    }
}
