//! Case execution: isolated-IPC caching and a fault-tolerant parallel case
//! runner.
//!
//! Every case runs with the simulator's forward-progress watchdog enabled
//! (the watchdog is observation-only, so results are bit-identical to an
//! unwatched run) and inside a `catch_unwind` boundary with one bounded
//! retry, so a single wedged or crashing case cannot take down a sweep.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use exec::parallel_for_each;
use gpu_sim::trace::{records_hash, Tracer};
use gpu_sim::{Controller, Gpu, GpuConfig, KernelId, NullController, TraceLevel};
use qos_core::{QosManager, QosSpec, SpartController};

use crate::cases::{Ablations, CaseSpec, ConfigKind, Policy};
use crate::error::CaseError;
use crate::metrics::CaseResult;

/// Watchdog window used for every harness-driven simulation, in epochs: a
/// wedged case is detected after at most two controller epochs with zero
/// machine-wide progress, instead of burning the rest of its cycle budget.
///
/// Kept a multiple of the epoch length on purpose: the watchdog trips at a
/// multiple of its window, so every failure (and every chunk boundary the
/// checkpointed runner uses) lands on an epoch boundary — the only cycles at
/// which [`Gpu::snapshot`] is legal.
pub const WATCHDOG_EPOCHS: u64 = 2;

/// Shared cache of isolated-IPC measurements, keyed by
/// `(benchmark, config, cycles)`.
///
/// Every QoS goal in the evaluation is a fraction of the kernel's isolated
/// IPC, so each benchmark is first run alone on the same configuration and
/// cycle budget. The cache makes that a once-per-sweep cost: concurrent
/// misses on the same key are deduplicated through a per-key `OnceLock`, so
/// the measurement runs exactly once and other threads block on it instead
/// of racing to redo it. Failed measurements (e.g. an unknown benchmark)
/// are cached too, as errors.
#[derive(Debug, Default)]
pub struct IsolatedCache {
    map: Mutex<HashMap<IsoKey, IsoCell>>,
    misses: AtomicUsize,
}

/// Cache key: `(benchmark, config, cycles)`.
type IsoKey = (String, ConfigKind, u64);
/// Per-key measurement slot; concurrent misses block on the same cell.
type IsoCell = Arc<OnceLock<Result<f64, CaseError>>>;

impl IsolatedCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        IsolatedCache::default()
    }

    /// Isolated IPC of `name` under `config` over `cycles`, measuring on a
    /// cache miss.
    ///
    /// # Errors
    ///
    /// Returns the (cached) [`CaseError`] when the measurement failed.
    pub fn ipc(&self, name: &str, config: ConfigKind, cycles: u64) -> Result<f64, CaseError> {
        let key = (name.to_string(), config, cycles);
        let cell = {
            let mut map = self.map.lock().expect("isolated cache lock");
            map.entry(key).or_default().clone()
        };
        cell.get_or_init(|| {
            self.misses.fetch_add(1, Ordering::Relaxed);
            measure_isolated(name, config, cycles)
        })
        .clone()
    }

    /// Number of cache misses (actual measurements performed).
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached measurements.
    pub fn len(&self) -> usize {
        self.map.lock().expect("isolated cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn measure_isolated(name: &str, config: ConfigKind, cycles: u64) -> Result<f64, CaseError> {
    let mut cfg = config.build();
    cfg.health.watchdog_window = WATCHDOG_EPOCHS * cfg.epoch_cycles;
    let mut gpu = Gpu::new(cfg);
    let desc = workloads::by_name(name)
        .ok_or_else(|| CaseError::UnknownBenchmark { name: name.to_string() })?;
    let k = gpu.launch(desc);
    gpu.try_run(cycles, &mut NullController)?;
    Ok(gpu.stats().ipc(k))
}

fn apply_ablations(cfg: &mut GpuConfig, ab: &Ablations) {
    if ab.free_preemption {
        cfg.preempt.context_bytes_per_cycle = u32::MAX;
        cfg.preempt.drain_cycles = 0;
    }
}

/// The exact simulator configuration a case runs under (ablations, epoch
/// override, watchdog, fault plan applied). `repro inspect` rebuilds a
/// machine from this to restore a persisted failure snapshot into.
pub fn case_config(spec: &CaseSpec) -> GpuConfig {
    let mut cfg = spec.config.build();
    apply_ablations(&mut cfg, &spec.ablations);
    if let Some(epoch) = spec.epoch_cycles {
        cfg.epoch_cycles = epoch;
        cfg.samples_per_epoch = cfg.samples_per_epoch.min(epoch as u32);
    }
    cfg.health.watchdog_window = WATCHDOG_EPOCHS * cfg.epoch_cycles;
    cfg.faults = spec.faults.clone();
    // Harness cases always fly with the recorder on: event recording never
    // perturbs simulated behaviour, and a watchdog report (or persisted
    // failure snapshot) then carries the last moments before the hang.
    cfg.trace.level = TraceLevel::Events;
    cfg
}

/// The concrete controller a harness case runs under: one of the two policy
/// families of [`Policy`].
///
/// An enum (not `Box<dyn Controller>`) so a mid-case checkpoint can encode
/// the controller's epoch state alongside the [`Gpu`] snapshot and rebuild
/// it bit-exactly on resume.
#[derive(Debug, Clone)]
pub enum CaseController {
    /// Spatial-partitioning baseline.
    Spart(SpartController),
    /// Fine-grained quota management.
    Quota(QosManager),
}

impl Controller for CaseController {
    fn on_epoch(&mut self, gpu: &mut Gpu, epoch: u64) {
        match self {
            CaseController::Spart(c) => c.on_epoch(gpu, epoch),
            CaseController::Quota(m) => m.on_epoch(gpu, epoch),
        }
    }
}

impl gpu_sim::Snap for CaseController {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            CaseController::Spart(c) => {
                out.push(0);
                gpu_sim::Snap::encode(c, out);
            }
            CaseController::Quota(m) => {
                out.push(1);
                gpu_sim::Snap::encode(m, out);
            }
        }
    }
    fn decode(r: &mut gpu_sim::SnapReader<'_>) -> Result<Self, gpu_sim::SnapError> {
        match <u8 as gpu_sim::Snap>::decode(r)? {
            0 => Ok(CaseController::Spart(<SpartController as gpu_sim::Snap>::decode(r)?)),
            1 => Ok(CaseController::Quota(<QosManager as gpu_sim::Snap>::decode(r)?)),
            _ => Err(gpu_sim::SnapError::Invalid("CaseController")),
        }
    }
}

/// A case's simulation state right after construction, before any cycle has
/// run: the machine, the launched kernel ids, and the per-kernel isolated /
/// goal IPCs. Shared between the one-shot [`run_case`] path and the chunked
/// checkpointed path in [`crate::checkpoint`].
#[derive(Debug)]
pub struct PreparedCase {
    /// The configured machine with every kernel launched.
    pub gpu: Gpu,
    /// Kernel ids in spec slot order.
    pub kids: Vec<KernelId>,
    /// Per-kernel isolated IPC (same config and cycle budget).
    pub isolated: Vec<f64>,
    /// Per-kernel absolute IPC goal (`None` = best-effort).
    pub goal_ipc: Vec<Option<f64>>,
}

/// Builds the machine for one case: config + ablations + watchdog, kernels
/// launched with decorrelated seeds, isolated IPCs measured (cached).
///
/// # Errors
///
/// [`CaseError::UnknownBenchmark`] for an unknown benchmark name, or the
/// cached error of a failed isolated measurement.
pub fn prepare_case(spec: &CaseSpec, iso: &IsolatedCache) -> Result<PreparedCase, CaseError> {
    let mut gpu = Gpu::new(case_config(spec));

    let mut kids = Vec::new();
    let mut goal_ipc = Vec::new();
    let mut isolated = Vec::new();
    for (slot, name) in spec.kernels.iter().enumerate() {
        let desc = workloads::by_name(name)
            .ok_or_else(|| CaseError::UnknownBenchmark { name: name.clone() })?;
        // Decorrelate co-runners of the same benchmark.
        let desc = desc.with_seed(desc.seed() ^ (slot as u64).wrapping_mul(0x9e37_79b9));
        kids.push(gpu.launch(desc));
        let iso_ipc = iso.ipc(name, spec.config, spec.cycles)?;
        isolated.push(iso_ipc);
        goal_ipc.push(spec.goal_fracs[slot].map(|f| f * iso_ipc));
    }
    Ok(PreparedCase { gpu, kids, isolated, goal_ipc })
}

/// Computes the [`CaseResult`] of a finished case from its machine and
/// telemetry.
pub fn finish_case(
    spec: &CaseSpec,
    prepared: &PreparedCase,
    records: &[gpu_sim::trace::EpochRecord],
) -> CaseResult {
    let stats = prepared.gpu.stats();
    CaseResult {
        ipc: prepared.kids.iter().map(|&k| stats.ipc(k)).collect(),
        isolated_ipc: prepared.isolated.clone(),
        goal_ipc: prepared.goal_ipc.clone(),
        insts_per_energy: gpu_sim::power::insts_per_energy(&prepared.gpu),
        preemption_saves: prepared.gpu.preempt_stats().saves,
        trace_hash: records_hash(records),
        spec: spec.clone(),
    }
}

/// Runs one case and computes its result.
///
/// # Errors
///
/// [`CaseError::UnknownBenchmark`] when the spec names a benchmark the
/// workload table does not know; [`CaseError::Sim`] when the watchdog trips
/// (e.g. under an injected livelock) or an audit fails. Panics are *not*
/// caught here — [`run_cases`] adds the `catch_unwind` + retry boundary.
pub fn run_case(spec: &CaseSpec, iso: &IsolatedCache) -> Result<CaseResult, CaseError> {
    let mut prepared = prepare_case(spec, iso)?;

    // Every case runs under a Tracer so its full epoch telemetry is
    // fingerprinted; the hash lets sweeps prove run-to-run determinism
    // without retaining the records themselves.
    let mut ctrl = Tracer::new(build_controller(spec, &prepared.kids, &prepared.goal_ipc));
    prepared.gpu.try_run(spec.cycles, &mut ctrl)?;
    Ok(finish_case(spec, &prepared, ctrl.records()))
}

/// Builds the policy controller a case's spec asks for.
pub fn build_controller(
    spec: &CaseSpec,
    kids: &[KernelId],
    goal_ipc: &[Option<f64>],
) -> CaseController {
    let spec_of = |k: usize| match goal_ipc[k] {
        Some(g) => QosSpec::qos(g),
        None => QosSpec::best_effort(),
    };
    match spec.policy {
        Policy::Spart => {
            let mut ctrl = SpartController::new();
            for (i, &kid) in kids.iter().enumerate() {
                ctrl = ctrl.with_kernel(kid, spec_of(i));
            }
            CaseController::Spart(ctrl)
        }
        Policy::Quota(scheme) => {
            let mut mgr = QosManager::new(scheme).with_static_adjust(spec.ablations.static_adjust);
            if let Some(h) = spec.ablations.history_adjust {
                mgr = mgr.with_history_adjust(h);
            }
            for (i, &kid) in kids.iter().enumerate() {
                mgr = mgr.with_kernel(kid, spec_of(i));
            }
            CaseController::Quota(mgr)
        }
    }
}

/// Runs one case inside a panic-isolation boundary with one bounded retry.
///
/// A panicking case (a simulator bug, or an injected [`gpu_sim::FaultKind::
/// Panic`]) is retried once — covering transient environmental failures —
/// and then reported as [`CaseError::Panicked`] instead of unwinding into
/// the sweep.
pub fn run_case_isolated(spec: &CaseSpec, iso: &IsolatedCache) -> Result<CaseResult, CaseError> {
    let attempt = || catch_unwind(AssertUnwindSafe(|| run_case(spec, iso)));
    match attempt() {
        Ok(result) => result,
        Err(_) => match attempt() {
            Ok(result) => result,
            Err(payload) => {
                Err(CaseError::Panicked { payload: panic_message(payload.as_ref()), attempts: 2 })
            }
        },
    }
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `specs` in parallel across all cores, preserving input order.
///
/// Isolated IPCs are measured first (deduplicated), also in parallel. Each
/// case is panic-isolated and watchdog-protected, so the sweep always
/// completes: failed cases come back as `Err` entries in their input
/// positions while every other case still produces its result.
pub fn run_cases(specs: &[CaseSpec], iso: &IsolatedCache) -> Vec<Result<CaseResult, CaseError>> {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);

    // Warm the isolated cache in parallel (unique keys only). Failures are
    // ignored here; the per-case path observes the cached error.
    let unique: Vec<(String, ConfigKind, u64)> = {
        let mut set = std::collections::HashSet::new();
        specs
            .iter()
            .flat_map(|s| s.kernels.iter().map(move |k| (k.clone(), s.config, s.cycles)))
            .filter(|key| set.insert(key.clone()))
            .collect()
    };
    parallel_for_each(&unique, threads, |(name, config, cycles)| {
        let _ = catch_unwind(AssertUnwindSafe(|| iso.ipc(name, *config, *cycles)));
    });

    let results: Vec<Mutex<Option<Result<CaseResult, CaseError>>>> =
        specs.iter().map(|_| Mutex::new(None)).collect();
    let indices: Vec<usize> = (0..specs.len()).collect();
    parallel_for_each(&indices, threads, |&i| {
        let r = run_case_isolated(&specs[i], iso);
        *results[i].lock().expect("result slot lock") = Some(r);
    });
    results
        .into_iter()
        .map(|cell| cell.into_inner().expect("result slot lock").expect("every case ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{FaultKind, FaultPlan};
    use qos_core::QuotaScheme;

    #[test]
    fn isolated_cache_measures_once() {
        let cache = IsolatedCache::new();
        let a = cache.ipc("sgemm", ConfigKind::Table1, 20_000).expect("sgemm measures");
        let b = cache.ipc("sgemm", ConfigKind::Table1, 20_000).expect("cached");
        assert_eq!(a, b);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.misses(), 1);
        assert!(a > 100.0, "sgemm isolated IPC {a} looks wrong");
    }

    #[test]
    fn concurrent_misses_on_one_key_measure_exactly_once() {
        let cache = IsolatedCache::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    cache.ipc("sgemm", ConfigKind::Table1, 20_000).expect("measures");
                });
            }
        });
        assert_eq!(cache.misses(), 1, "in-flight dedup must collapse concurrent misses");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn run_case_produces_consistent_result() {
        let cache = IsolatedCache::new();
        let spec = CaseSpec::new(
            &["sgemm", "lbm"],
            &[Some(0.5), None],
            Policy::Quota(QuotaScheme::Rollover),
            40_000,
        );
        let r = run_case(&spec, &cache).expect("healthy case");
        assert_eq!(r.ipc.len(), 2);
        assert!(r.ipc[0] > 0.0);
        assert_eq!(r.goal_ipc[1], None);
        let goal = r.goal_ipc[0].expect("QoS kernel has a goal");
        assert!((goal - 0.5 * r.isolated_ipc[0]).abs() < 1e-9);
        assert!(r.insts_per_energy > 0.0);
    }

    #[test]
    fn run_cases_preserves_order_and_parallelism_is_deterministic() {
        let cache = IsolatedCache::new();
        let specs: Vec<CaseSpec> = [("sgemm", "lbm"), ("lbm", "sgemm"), ("sgemm", "spmv")]
            .iter()
            .map(|(q, b)| {
                CaseSpec::new(
                    &[q, b],
                    &[Some(0.5), None],
                    Policy::Quota(QuotaScheme::Rollover),
                    30_000,
                )
            })
            .collect();
        let first = run_cases(&specs, &cache);
        let second = run_cases(&specs, &cache);
        assert_eq!(first.len(), 3);
        for (a, b) in first.iter().zip(&second) {
            let (a, b) = (a.as_ref().expect("ok"), b.as_ref().expect("ok"));
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.ipc, b.ipc, "parallel execution must stay deterministic");
            assert_eq!(
                a.trace_hash, b.trace_hash,
                "epoch telemetry must be bit-identical across parallel runs"
            );
        }
        assert_eq!(first[0].as_ref().expect("ok").spec.kernels[0], "sgemm");
        assert_eq!(first[1].as_ref().expect("ok").spec.kernels[0], "lbm");
    }

    #[test]
    fn spart_policy_builds_and_runs() {
        let cache = IsolatedCache::new();
        let spec = CaseSpec::new(&["sgemm", "lbm"], &[Some(0.5), None], Policy::Spart, 30_000);
        let r = run_case(&spec, &cache).expect("healthy case");
        assert!(r.ipc[0] > 0.0 && r.ipc[1] > 0.0);
    }

    #[test]
    fn unknown_benchmark_is_a_typed_error_not_a_panic() {
        let cache = IsolatedCache::new();
        let spec = CaseSpec::new(&["nope", "lbm"], &[Some(0.5), None], Policy::Spart, 1_000);
        let err = run_case(&spec, &cache).expect_err("unknown benchmark must fail");
        assert_eq!(err.kind(), "unknown-benchmark");
        match err {
            CaseError::UnknownBenchmark { name } => assert_eq!(name, "nope"),
            other => panic!("expected UnknownBenchmark, got {other:?}"),
        }
    }

    #[test]
    fn injected_panic_is_isolated_and_reported() {
        let cache = IsolatedCache::new();
        let mut spec = CaseSpec::new(
            &["sgemm", "lbm"],
            &[Some(0.5), None],
            Policy::Quota(QuotaScheme::Rollover),
            30_000,
        );
        spec.faults = FaultPlan::one(5_000, FaultKind::Panic);
        let err = run_case_isolated(&spec, &cache).expect_err("injected panic must surface");
        match err {
            CaseError::Panicked { payload, attempts } => {
                assert_eq!(attempts, 2, "the policy allows the initial run plus one retry");
                assert!(payload.contains("injected fault"), "{payload}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn injected_livelock_trips_the_watchdog_within_the_case() {
        let cache = IsolatedCache::new();
        let mut spec = CaseSpec::new(
            &["sgemm", "lbm"],
            &[Some(0.5), None],
            Policy::Quota(QuotaScheme::Rollover),
            100_000,
        );
        spec.faults = FaultPlan::one(15_000, FaultKind::StarveQuota);
        let err = run_case(&spec, &cache).expect_err("livelock must be detected");
        assert_eq!(err.kind(), "watchdog");
        let CaseError::Sim(gpu_sim::SimError::Watchdog(report)) = err else {
            panic!("expected a watchdog report");
        };
        assert!(report.cycle < 100_000, "watchdog saves the rest of the budget");
        assert!(report.starved_kernels().count() > 0, "report names the culprits");
    }
}
