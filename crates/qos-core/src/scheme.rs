//! The quota-allocation schemes of §3.4 and their carry-over semantics.

use gpu_sim::sm::QuotaCarry;
use serde::{Deserialize, Serialize};

/// Which quota-allocation scheme the [`crate::QosManager`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QuotaScheme {
    /// §3.4.1 — fixed quota each epoch, surplus discarded, no history
    /// adjustment.
    Naive,
    /// §3.4.2 — Naïve plus the history-based multiplier `α`.
    NaiveHistory,
    /// §3.4.3 — elastic epochs: a new epoch starts early once all kernels
    /// exhaust their quotas (with history adjustment).
    Elastic,
    /// §3.4.4 — unused QoS quota rolls over to the next epoch (with history
    /// adjustment). The paper's best scheme.
    Rollover,
    /// §4.5 — Rollover quotas with CPU-style prioritisation: non-QoS kernels
    /// are blocked while QoS kernels still hold quota.
    RolloverTime,
}

impl QuotaScheme {
    /// All schemes, in presentation order.
    pub const ALL: [QuotaScheme; 5] = [
        QuotaScheme::Naive,
        QuotaScheme::NaiveHistory,
        QuotaScheme::Elastic,
        QuotaScheme::Rollover,
        QuotaScheme::RolloverTime,
    ];

    /// Display name used in reports (matches the paper's figure legends).
    pub fn label(self) -> &'static str {
        match self {
            QuotaScheme::Naive => "Naive",
            QuotaScheme::NaiveHistory => "Naive+History",
            QuotaScheme::Elastic => "Elastic",
            QuotaScheme::Rollover => "Rollover",
            QuotaScheme::RolloverTime => "Rollover-Time",
        }
    }

    /// Whether the history-based `α` adjustment applies.
    pub fn history_adjusted(self) -> bool {
        !matches!(self, QuotaScheme::Naive)
    }

    /// Carry-over rule for QoS kernels' quota counters.
    pub fn qos_carry(self) -> QuotaCarry {
        match self {
            QuotaScheme::Rollover | QuotaScheme::RolloverTime => QuotaCarry::Full,
            _ => QuotaCarry::DiscardSurplus,
        }
    }

    /// Whether SMs run in elastic-epoch mode.
    pub fn elastic(self) -> bool {
        matches!(self, QuotaScheme::Elastic)
    }

    /// Whether non-QoS kernels are blocked while QoS quota remains.
    pub fn priority_block(self) -> bool {
        matches!(self, QuotaScheme::RolloverTime)
    }
}

/// The history-based quota multiplier (§3.4.2):
/// `α = max(IPC_goal / IPC_history, 1)`, clamped to `alpha_cap` to keep the
/// first epochs (tiny history) from handing a kernel the whole machine.
pub fn alpha(goal_ipc: f64, history_ipc: f64, alpha_cap: f64) -> f64 {
    if history_ipc <= 0.0 {
        return alpha_cap;
    }
    (goal_ipc / history_ipc).max(1.0).min(alpha_cap)
}

/// Per-epoch quota in thread-instructions (§3.4.1, eq. 1):
/// `Quota = α × IPC_goal × T_epoch`.
pub fn epoch_quota(goal_ipc: f64, alpha: f64, epoch_cycles: u64) -> u64 {
    (alpha * goal_ipc * epoch_cycles as f64).round().max(0.0) as u64
}

/// Splits a GPU-wide quota across SMs proportionally to the TBs each hosts
/// (§3.4.1): SM *i* receives `quota × tbs_i / total`.
///
/// Rounding keeps the invariant `Σ parts = quota` (remainders go to the
/// SMs with the largest fractional share) so no quota is created or lost.
pub fn distribute_quota(quota: u64, hosted_tbs: &[u32]) -> Vec<u64> {
    let total: u64 = hosted_tbs.iter().map(|&t| u64::from(t)).sum();
    if total == 0 {
        return vec![0; hosted_tbs.len()];
    }
    let mut parts: Vec<u64> = Vec::with_capacity(hosted_tbs.len());
    let mut fractions: Vec<(usize, u64)> = Vec::with_capacity(hosted_tbs.len());
    let mut assigned = 0u64;
    for (i, &tbs) in hosted_tbs.iter().enumerate() {
        let exact = quota as u128 * u128::from(tbs);
        let floor = (exact / u128::from(total)) as u64;
        let rem = (exact % u128::from(total)) as u64;
        parts.push(floor);
        fractions.push((i, rem));
        assigned += floor;
    }
    let mut leftover = quota - assigned;
    fractions.sort_by_key(|&(_, rem)| std::cmp::Reverse(rem));
    for (i, _) in fractions {
        if leftover == 0 {
            break;
        }
        parts[i] += 1;
        leftover -= 1;
    }
    parts
}

gpu_sim::impl_snap_enum!(QuotaScheme {
    Naive = 0,
    NaiveHistory = 1,
    Elastic = 2,
    Rollover = 3,
    RolloverTime = 4,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<&str> =
            QuotaScheme::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), QuotaScheme::ALL.len());
    }

    #[test]
    fn scheme_flags_match_paper() {
        assert!(!QuotaScheme::Naive.history_adjusted());
        assert!(QuotaScheme::Rollover.history_adjusted());
        assert_eq!(QuotaScheme::Rollover.qos_carry(), QuotaCarry::Full);
        assert_eq!(QuotaScheme::Naive.qos_carry(), QuotaCarry::DiscardSurplus);
        assert_eq!(QuotaScheme::Elastic.qos_carry(), QuotaCarry::DiscardSurplus);
        assert!(QuotaScheme::Elastic.elastic());
        assert!(!QuotaScheme::Rollover.elastic());
        assert!(QuotaScheme::RolloverTime.priority_block());
        assert!(!QuotaScheme::Rollover.priority_block());
    }

    #[test]
    fn alpha_matches_paper_example() {
        // §3.4.2: goal 125, history 100 -> α = 1.25.
        assert!((alpha(125.0, 100.0, 8.0) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn alpha_never_below_one_and_capped() {
        assert_eq!(alpha(100.0, 200.0, 8.0), 1.0, "ahead of goal: no scaling");
        assert_eq!(alpha(100.0, 1.0, 8.0), 8.0, "cap limits early blow-up");
        assert_eq!(alpha(100.0, 0.0, 8.0), 8.0, "zero history hits the cap");
    }

    #[test]
    fn epoch_quota_formula() {
        assert_eq!(epoch_quota(100.0, 1.0, 10_000), 1_000_000);
        assert_eq!(epoch_quota(100.0, 1.25, 10_000), 1_250_000);
        assert_eq!(epoch_quota(0.0, 1.0, 10_000), 0);
    }

    #[test]
    fn distribution_is_proportional_and_conserving() {
        let parts = distribute_quota(1_000, &[2, 2, 4]);
        assert_eq!(parts, vec![250, 250, 500]);
        let parts = distribute_quota(1_000, &[3, 3, 3]);
        assert_eq!(parts.iter().sum::<u64>(), 1_000, "rounding must conserve");
        for &p in &parts {
            assert!((333..=334).contains(&p));
        }
    }

    #[test]
    fn distribution_with_no_tbs_is_zero() {
        assert_eq!(distribute_quota(1_000, &[0, 0]), vec![0, 0]);
    }

    #[test]
    fn distribution_skips_empty_sms() {
        let parts = distribute_quota(900, &[3, 0, 6]);
        assert_eq!(parts[1], 0);
        assert_eq!(parts[0], 300);
        assert_eq!(parts[2], 600);
    }
}
