//! Datacenter consolidation: three tenants on one GPU, two with SLAs.
//!
//! The paper's headline scenario (§1, Fig. 6c): the GPU is shared by three
//! kernels, two of which have QoS goals. Fine-grained quota management
//! reaches both goals while the best-effort tenant runs on the slack;
//! compare with the coarse-grained spatial-partitioning baseline, which has
//! only whole SMs to hand out.
//!
//! Run with: `cargo run --release --example datacenter_trio`

use fgqos::{Gpu, GpuConfig, NullController, QosManager, QosSpec, QuotaScheme, SpartController};

fn isolated_ipc(name: &str, cycles: u64) -> f64 {
    let mut gpu = Gpu::new(GpuConfig::paper_table1());
    let k = gpu.launch(fgqos::workloads::by_name(name).expect("bundled"));
    gpu.run(cycles, &mut NullController);
    gpu.stats().ipc(k)
}

fn main() {
    let cycles = 200_000;
    let tenants = ["mri-q", "stencil", "lbm"];
    let goal_frac = [Some(0.40), Some(0.40), None];

    let goals: Vec<Option<f64>> = tenants
        .iter()
        .zip(goal_frac)
        .map(|(name, f)| f.map(|f| f * isolated_ipc(name, cycles)))
        .collect();
    println!("tenants: {tenants:?}");
    for (name, goal) in tenants.iter().zip(&goals) {
        match goal {
            Some(g) => println!("  {name}: SLA at {g:.1} IPC (40% of isolated)"),
            None => println!("  {name}: best effort"),
        }
    }

    for fine_grained in [true, false] {
        let mut gpu = Gpu::new(GpuConfig::paper_table1());
        let kids: Vec<_> = tenants
            .iter()
            .map(|n| gpu.launch(fgqos::workloads::by_name(n).expect("bundled")))
            .collect();
        let spec = |i: usize| match goals[i] {
            Some(g) => QosSpec::qos(g),
            None => QosSpec::best_effort(),
        };
        println!(
            "\n--- {} ---",
            if fine_grained { "fine-grained QoS (Rollover)" } else { "Spart baseline" }
        );
        if fine_grained {
            let mut mgr = QosManager::new(QuotaScheme::Rollover);
            for (i, &k) in kids.iter().enumerate() {
                mgr = mgr.with_kernel(k, spec(i));
            }
            gpu.run(cycles, &mut mgr);
        } else {
            let mut ctrl = SpartController::new();
            for (i, &k) in kids.iter().enumerate() {
                ctrl = ctrl.with_kernel(k, spec(i));
            }
            gpu.run(cycles, &mut ctrl);
        }
        let stats = gpu.stats();
        for (i, (&k, name)) in kids.iter().zip(tenants).enumerate() {
            let ipc = stats.ipc(k);
            match goals[i] {
                Some(g) => println!(
                    "  {name:<8} {ipc:>8.1} IPC  ({:>5.1}% of SLA) {}",
                    100.0 * ipc / g,
                    if ipc >= g { "MET" } else { "VIOLATED" }
                ),
                None => println!("  {name:<8} {ipc:>8.1} IPC  (best effort)"),
            }
        }
    }
}
