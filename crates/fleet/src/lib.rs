//! Fault-tolerant fleet serving layer over many simulated GPUs.
//!
//! The paper's QoS machinery ([`qos-core`](../qos_core/index.html)) protects
//! latency-sensitive kernels *inside* one GPU. This crate scales that
//! contract out to a cluster: many [`gpu_sim::Gpu`] instances stepped in
//! parallel behind a single scheduler that keeps tenant-level guarantees
//! while devices fail underneath it.
//!
//! The robustness core, in the order a request experiences it:
//!
//! * **Admission control** ([`Fleet`]): best-effort requests are rejected at
//!   the door when projected occupancy would push queue drain past the
//!   guaranteed tenants' SLO horizon.
//! * **Bounded retry with exponential backoff**: per-request timeouts and
//!   device failures re-queue the request with `base << attempt` backoff
//!   plus deterministic, seed-derived jitter — at most
//!   [`FleetConfig::max_retries`] times, after which the request is shed
//!   with an explicit reason.
//! * **Device-loss handling**: [`gpu_sim::FaultKind::DeviceLoss`] and
//!   [`gpu_sim::FaultKind::DeviceWedge`] faults kill or wedge a device
//!   mid-run; the fleet classifies the typed failure (wedges via the
//!   device's own watchdog), retires the device, and re-places the evicted
//!   requests on healthy ones.
//! * **Graceful degradation**: under overload, best-effort work is shed
//!   first — never guaranteed work — behind a hysteresis band so shedding
//!   does not flap.
//! * **Live migration** ([`migrate`]): batches on devices leaving service —
//!   lost, wedged, drained for maintenance, or preempted under shed
//!   pressure — resume from their last epoch-boundary checkpoint on a spare
//!   of the same migration class, with retry budgets untouched.
//! * **Working-set-aware admission**: per-tenant device-memory demand is
//!   measured from kernel footprints (not declarations) and feeds a second
//!   admission gate alongside the cycle-occupancy horizon.
//!
//! Everything is deterministic: the same config and seed produce a
//! byte-identical [`Fleet::report`], whether the run was uninterrupted or
//! SIGKILLed and resumed through [`Fleet::snapshot`] / [`Fleet::restore`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod fleet;
pub mod migrate;
pub mod placement;
pub mod request;
pub mod scenarios;

pub use config::{
    DeviceClass, FleetConfig, FleetConfigError, FleetFault, MigrationConfig, Placement,
    PlannedDrain, TenantSpec,
};
pub use fleet::{
    DeviceFate, Fleet, TenantCounters, TenantSample, TickSample, FLEET_SNAPSHOT_VERSION,
};
pub use migrate::{MigrationReason, MigrationRecord, PendingMigration};
pub use placement::{register_policy, DeviceView, PlacementCtx, PlacementPolicy, RequestView};
pub use request::{Request, RequestState, ShedReason};
