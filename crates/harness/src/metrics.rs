//! Result records and the paper's evaluation metrics.

use serde::{Deserialize, Serialize};

use crate::cases::CaseSpec;

/// Outcome of one simulated case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseResult {
    /// The case that was run.
    pub spec: CaseSpec,
    /// Per-kernel achieved thread-level IPC.
    pub ipc: Vec<f64>,
    /// Per-kernel isolated IPC (same config and cycle budget).
    pub isolated_ipc: Vec<f64>,
    /// Per-kernel absolute IPC goal (`None` = best-effort).
    pub goal_ipc: Vec<Option<f64>>,
    /// Total thread instructions per unit energy (Fig. 14 metric).
    pub insts_per_energy: f64,
    /// Number of TB context saves performed.
    pub preemption_saves: u64,
    /// [`gpu_sim::trace::records_hash`] over the case's epoch-record stream:
    /// a bit-exact fingerprint of its entire telemetry, used by the
    /// determinism tests to prove parallel sweeps reproduce serial ones.
    pub trace_hash: u64,
}

impl CaseResult {
    /// Whether kernel `k` met its goal (best-effort kernels trivially do).
    pub fn kernel_reached(&self, k: usize) -> bool {
        match self.goal_ipc[k] {
            Some(goal) => self.ipc[k] >= goal,
            None => true,
        }
    }

    /// Whether every QoS kernel met its goal — the unit of `QoSreach`.
    pub fn success(&self) -> bool {
        (0..self.ipc.len()).all(|k| self.kernel_reached(k))
    }

    /// Relative miss distance of the worst QoS kernel: `(goal − ipc)/goal`,
    /// negative when all goals are met.
    pub fn worst_miss(&self) -> f64 {
        self.goal_ipc
            .iter()
            .zip(&self.ipc)
            .filter_map(|(goal, &ipc)| goal.map(|g| (g - ipc) / g))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean overshoot of QoS kernels relative to their goals (Fig. 9
    /// metric): `ipc / goal`, averaged.
    pub fn qos_overshoot(&self) -> f64 {
        let ratios: Vec<f64> = self
            .goal_ipc
            .iter()
            .zip(&self.ipc)
            .filter_map(|(goal, &ipc)| goal.map(|g| ipc / g))
            .collect();
        if ratios.is_empty() {
            0.0
        } else {
            ratios.iter().sum::<f64>() / ratios.len() as f64
        }
    }

    /// Mean throughput of non-QoS kernels normalized to isolated execution
    /// (Fig. 8 metric).
    pub fn nonqos_normalized(&self) -> f64 {
        let ratios: Vec<f64> = self
            .goal_ipc
            .iter()
            .enumerate()
            .filter(|(_, g)| g.is_none())
            .map(|(k, _)| self.ipc[k] / self.isolated_ipc[k].max(1e-9))
            .collect();
        if ratios.is_empty() {
            0.0
        } else {
            ratios.iter().sum::<f64>() / ratios.len() as f64
        }
    }
}

/// `QoSreach`: fraction of cases whose QoS goals were all reached (§4.1).
pub fn qos_reach<'a, I: IntoIterator<Item = &'a CaseResult>>(results: I) -> f64 {
    let mut total = 0usize;
    let mut ok = 0usize;
    for r in results {
        total += 1;
        ok += usize::from(r.success());
    }
    if total == 0 {
        0.0
    } else {
        ok as f64 / total as f64
    }
}

/// Mean of a metric over a result set; 0 for an empty set.
pub fn mean<'a, I, F>(results: I, f: F) -> f64
where
    I: IntoIterator<Item = &'a CaseResult>,
    F: Fn(&CaseResult) -> f64,
{
    let mut sum = 0.0;
    let mut n = 0usize;
    for r in results {
        sum += f(r);
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Fig. 5's miss-distance buckets: 0-1%, 1-5%, 5-10%, 10-20%, 20+%.
pub const MISS_BUCKETS: [&str; 5] = ["0-1%", "1-5%", "5-10%", "10-20%", "20+%"];

/// Classifies a failed case into its Fig. 5 bucket; `None` if the case met
/// its goals.
pub fn miss_bucket(result: &CaseResult) -> Option<usize> {
    if result.success() {
        return None;
    }
    let miss = result.worst_miss();
    Some(match miss {
        m if m <= 0.01 => 0,
        m if m <= 0.05 => 1,
        m if m <= 0.10 => 2,
        m if m <= 0.20 => 3,
        _ => 4,
    })
}

gpu_sim::impl_snap_struct!(CaseResult {
    spec,
    ipc,
    isolated_ipc,
    goal_ipc,
    insts_per_energy,
    preemption_saves,
    trace_hash,
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::{CaseSpec, Policy};
    use qos_core::QuotaScheme;

    fn result(ipc: Vec<f64>, goals: Vec<Option<f64>>, iso: Vec<f64>) -> CaseResult {
        let n = ipc.len();
        CaseResult {
            spec: CaseSpec::new(
                &vec!["sgemm"; n],
                &goals,
                Policy::Quota(QuotaScheme::Rollover),
                1_000,
            ),
            ipc,
            isolated_ipc: iso,
            goal_ipc: goals,
            insts_per_energy: 1.0,
            preemption_saves: 0,
            trace_hash: 0,
        }
    }

    #[test]
    fn success_requires_every_qos_kernel() {
        let ok = result(vec![100.0, 50.0], vec![Some(90.0), None], vec![120.0, 100.0]);
        assert!(ok.success());
        let miss = result(vec![80.0, 50.0], vec![Some(90.0), None], vec![120.0, 100.0]);
        assert!(!miss.success());
        assert!(miss.kernel_reached(1), "best-effort kernels always count as reached");
    }

    #[test]
    fn qos_reach_is_a_fraction() {
        let a = result(vec![100.0], vec![Some(90.0)], vec![120.0]);
        let b = result(vec![80.0], vec![Some(90.0)], vec![120.0]);
        let reach = qos_reach([&a, &b]);
        assert!((reach - 0.5).abs() < 1e-12);
        assert_eq!(qos_reach([]), 0.0);
    }

    #[test]
    fn worst_miss_and_buckets() {
        let m3 = result(vec![87.0], vec![Some(90.0)], vec![120.0]);
        assert!((m3.worst_miss() - 3.0 / 90.0).abs() < 1e-12);
        assert_eq!(miss_bucket(&m3), Some(1), "3.3% miss lands in 1-5%");
        let big = result(vec![50.0], vec![Some(90.0)], vec![120.0]);
        assert_eq!(miss_bucket(&big), Some(4));
        let ok = result(vec![95.0], vec![Some(90.0)], vec![120.0]);
        assert_eq!(miss_bucket(&ok), None);
    }

    #[test]
    fn overshoot_ratio() {
        let r = result(vec![99.0, 10.0], vec![Some(90.0), None], vec![120.0, 100.0]);
        assert!((r.qos_overshoot() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn nonqos_normalization() {
        let r = result(vec![100.0, 40.0], vec![Some(90.0), None], vec![120.0, 80.0]);
        assert!((r.nonqos_normalized() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_helper() {
        let a = result(vec![100.0], vec![Some(90.0)], vec![120.0]);
        let b = result(vec![80.0], vec![Some(90.0)], vec![120.0]);
        let m = mean([&a, &b], |r| r.ipc[0]);
        assert!((m - 90.0).abs() < 1e-12);
    }

    #[test]
    fn two_qos_kernel_case_uses_worst() {
        let r = result(
            vec![95.0, 80.0, 10.0],
            vec![Some(90.0), Some(90.0), None],
            vec![120.0, 120.0, 100.0],
        );
        assert!(!r.success());
        assert!((r.worst_miss() - 10.0 / 90.0).abs() < 1e-12);
    }
}
