//! # trace — the FGTR kernel-trace subsystem
//!
//! Scenario diversity beyond the synthetic Parboil models (ROADMAP item 3):
//! a compact, versioned binary format for kernel traces, capture from the
//! `gpu-sim` observe layer, and reconstruction into a
//! [`gpu_sim::KernelDesc`] so traced kernels drop into every existing
//! scenario, sweep, and fleet tenant unchanged.
//!
//! Three modules:
//!
//! * [`format`] — the trace content: provenance metadata, the traced
//!   kernel's static shape, its per-warp instruction-mix/locality events,
//!   and the observed per-TB lifecycle records;
//! * [`frame`] — the `FGTR` file framing (magic, schema version, `Snap`
//!   payload, FNV-1a checksum — the same discipline as the snapshot and
//!   checkpoint codecs) with a strict reader that rejects truncation,
//!   corruption, and version mismatches with a typed [`TraceError`];
//! * [`capture`] — recording a trace by running a kernel on a [`gpu_sim`]
//!   machine with the flight recorder on and pairing its TB dispatch/drain
//!   events. No CUDA anywhere: the synthetic models bootstrap the corpus.
//!
//! The round trip is exact by construction: replaying a captured trace
//! rebuilds the *identical* `KernelDesc`, and the simulator is
//! deterministic, so a replayed kernel reproduces the original run's epoch
//! records and counter registry bit-for-bit (`tests/trace_replay.rs`).
//!
//! # Example
//!
//! ```
//! use gpu_sim::{GpuConfig, KernelDesc, Op};
//!
//! let desc = KernelDesc::builder("saxpy")
//!     .threads_per_tb(128)
//!     .grid_tbs(16)
//!     .iterations(4)
//!     .body(vec![Op::alu(4, 8)])
//!     .build();
//! let kt = trace::capture(&desc, &GpuConfig::tiny(), 4_000).expect("capture");
//! let bytes = trace::to_bytes(&kt);
//! let back = trace::from_bytes(&bytes).expect("strict reader");
//! assert_eq!(back.kernel(), desc, "replay rebuilds the identical kernel");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod capture;
pub mod format;
pub mod frame;

pub use capture::{
    capture, CaptureError, CAPTURE_RING_CAPACITY, CAPTURE_SOURCE, DEFAULT_CAPTURE_CYCLES,
};
pub use format::{KernelTrace, TbRecord, TbShape, TraceMeta};
pub use frame::{
    from_bytes, load, peek_version, save_atomic, to_bytes, TraceError, TRACE_MAGIC,
    TRACE_SCHEMA_VERSION,
};
