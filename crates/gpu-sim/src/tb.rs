//! Per-thread-block residency state, arena-allocated per SM.

use crate::types::{Cycle, KernelId, TbIndex};

/// Lifecycle phase of a resident thread block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TbPhase {
    /// Context is being loaded (fresh dispatch or resume after preemption);
    /// warps may not issue until the given cycle.
    Loading(Cycle),
    /// Normal execution.
    Active,
    /// Context is being saved for preemption; warps are frozen and the slot
    /// is released at the given cycle.
    Saving(Cycle),
}

/// Slab of thread-block bookkeeping, indexed by TB slot id.
///
/// Struct-of-arrays layout: each field is a flat vec of `max_tbs` entries,
/// one per slot, plus a packed `occupied` bitmask and an explicit free-slot
/// stack. The per-slot `warp_slots` vecs are retained (only `.clear()`ed)
/// when a slot is released, so steady-state dispatch allocates nothing.
///
/// Freed slots are reset to canonical values (kernel 0, index 0, empty warp
/// list, `Active` phase) so that two machines reaching the same architectural
/// state through different dispatch histories encode identical snapshots.
#[derive(Debug)]
pub struct TbSlab {
    /// Owning kernel per slot.
    pub(crate) kernel: Vec<KernelId>,
    /// Grid-wide TB index per slot.
    pub(crate) tb_index: Vec<TbIndex>,
    /// Warp slot indices (into the SM's warp table) belonging to each TB.
    pub(crate) warp_slots: Vec<Vec<u16>>,
    /// Number of warps that have retired, per slot.
    pub(crate) warps_done: Vec<u16>,
    /// Number of warps currently parked at the active barrier, per slot.
    pub(crate) barrier_arrived: Vec<u16>,
    /// Current lifecycle phase per slot.
    pub(crate) phase: Vec<TbPhase>,
    /// Packed occupancy bitmask (bit = slot).
    pub(crate) occupied: Vec<u64>,
    /// Free-slot stack; built in reverse so slot 0 pops first, matching the
    /// dispatch order of the previous per-slot `Option` layout.
    pub(crate) free: Vec<u16>,
}

impl TbSlab {
    /// Creates an empty slab with `max_tbs` slots.
    pub fn new(max_tbs: u16) -> Self {
        let n = usize::from(max_tbs);
        TbSlab {
            kernel: vec![KernelId::new(0); n],
            tb_index: vec![TbIndex(0); n],
            warp_slots: vec![Vec::new(); n],
            warps_done: vec![0; n],
            barrier_arrived: vec![0; n],
            phase: vec![TbPhase::Active; n],
            occupied: vec![0; n.div_ceil(64)],
            free: (0..max_tbs).rev().collect(),
        }
    }

    /// Number of slots in the slab.
    pub fn capacity(&self) -> usize {
        self.kernel.len()
    }

    /// Number of currently free slots.
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Whether `slot` currently hosts a TB.
    #[inline]
    pub fn is_occupied(&self, slot: u16) -> bool {
        self.occupied[usize::from(slot) / 64] >> (usize::from(slot) % 64) & 1 == 1
    }

    /// Claims a free slot for a freshly dispatched TB and initialises its
    /// bookkeeping (the caller then pushes warp slot ids into `warp_slots`).
    /// Returns `None` when the slab is full.
    pub fn alloc(
        &mut self,
        kernel: KernelId,
        tb_index: TbIndex,
        warps_done: u16,
        phase: TbPhase,
    ) -> Option<u16> {
        let slot = self.free.pop()?;
        let i = usize::from(slot);
        self.kernel[i] = kernel;
        self.tb_index[i] = tb_index;
        debug_assert!(self.warp_slots[i].is_empty());
        self.warps_done[i] = warps_done;
        self.barrier_arrived[i] = 0;
        self.phase[i] = phase;
        self.occupied[i / 64] |= 1 << (i % 64);
        Some(slot)
    }

    /// Releases `slot` back to the free stack, resetting every field to its
    /// canonical cleared value. The `warp_slots` vec keeps its capacity.
    pub fn release(&mut self, slot: u16) {
        let i = usize::from(slot);
        debug_assert!(self.is_occupied(slot));
        self.kernel[i] = KernelId::new(0);
        self.tb_index[i] = TbIndex(0);
        self.warp_slots[i].clear();
        self.warps_done[i] = 0;
        self.barrier_arrived[i] = 0;
        self.phase[i] = TbPhase::Active;
        self.occupied[i / 64] &= !(1 << (i % 64));
        self.free.push(slot);
    }

    /// Whether all warps of the TB in `slot` have retired.
    pub fn finished(&self, slot: u16) -> bool {
        let i = usize::from(slot);
        usize::from(self.warps_done[i]) == self.warp_slots[i].len()
    }

    /// Whether warps of the TB in `slot` may issue at `now`.
    pub fn issuable(&self, slot: u16, now: Cycle) -> bool {
        match self.phase[usize::from(slot)] {
            TbPhase::Active => true,
            TbPhase::Loading(until) => now >= until,
            TbPhase::Saving(_) => false,
        }
    }

    /// The cycle at which an in-flight context transition (load or save) of
    /// the TB in `slot` completes, if one is pending.
    pub fn transition_done_at(&self, slot: u16) -> Option<Cycle> {
        match self.phase[usize::from(slot)] {
            TbPhase::Active => None,
            TbPhase::Loading(until) | TbPhase::Saving(until) => Some(until),
        }
    }

    /// Iterates the slot ids of all occupied slots in increasing order.
    pub fn iter_occupied(&self) -> impl Iterator<Item = u16> + '_ {
        self.occupied.iter().enumerate().flat_map(|(wi, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros();
                bits &= bits - 1;
                Some((wi * 64) as u16 + b as u16)
            })
        })
    }
}

use crate::snap::Snap;

impl Snap for TbPhase {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            TbPhase::Loading(until) => {
                out.push(0);
                until.encode(out);
            }
            TbPhase::Active => out.push(1),
            TbPhase::Saving(until) => {
                out.push(2);
                until.encode(out);
            }
        }
    }
    fn decode(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        match u8::decode(r)? {
            0 => Ok(TbPhase::Loading(Cycle::decode(r)?)),
            1 => Ok(TbPhase::Active),
            2 => Ok(TbPhase::Saving(Cycle::decode(r)?)),
            _ => Err(crate::snap::SnapError::Invalid("TbPhase")),
        }
    }
}

crate::impl_snap_struct!(TbSlab {
    kernel,
    tb_index,
    warp_slots,
    warps_done,
    barrier_arrived,
    phase,
    occupied,
    free,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn slab_with_one(phase: TbPhase) -> (TbSlab, u16) {
        let mut s = TbSlab::new(4);
        let slot = s.alloc(KernelId::new(0), TbIndex(3), 0, phase).unwrap();
        for w in 0..4 {
            s.warp_slots[usize::from(slot)].push(w);
        }
        (s, slot)
    }

    #[test]
    fn finished_requires_all_warps() {
        let (mut s, slot) = slab_with_one(TbPhase::Active);
        assert!(!s.finished(slot));
        s.warps_done[usize::from(slot)] = 4;
        assert!(s.finished(slot));
    }

    #[test]
    fn issuable_by_phase() {
        assert!(slab_with_one(TbPhase::Active).0.issuable(0, 0));
        assert!(!slab_with_one(TbPhase::Loading(10)).0.issuable(0, 9));
        assert!(slab_with_one(TbPhase::Loading(10)).0.issuable(0, 10));
        assert!(!slab_with_one(TbPhase::Saving(10)).0.issuable(0, 100));
    }

    #[test]
    fn alloc_pops_lowest_slot_first_and_release_recycles() {
        let mut s = TbSlab::new(3);
        let a = s.alloc(KernelId::new(0), TbIndex(0), 0, TbPhase::Active).unwrap();
        let b = s.alloc(KernelId::new(1), TbIndex(1), 0, TbPhase::Active).unwrap();
        assert_eq!((a, b), (0, 1), "slots are claimed in increasing order");
        assert!(s.is_occupied(a) && s.is_occupied(b) && !s.is_occupied(2));
        s.release(a);
        assert!(!s.is_occupied(a));
        let c = s.alloc(KernelId::new(2), TbIndex(2), 0, TbPhase::Active).unwrap();
        assert_eq!(c, a, "released slot is reused next");
        assert_eq!(s.iter_occupied().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn release_resets_slot_to_canonical_state() {
        let (mut s, slot) = slab_with_one(TbPhase::Loading(7));
        s.warps_done[usize::from(slot)] = 2;
        s.barrier_arrived[usize::from(slot)] = 1;
        s.release(slot);
        let fresh = TbSlab::new(4);
        let mut a = Vec::new();
        let mut b = Vec::new();
        s.encode(&mut a);
        fresh.encode(&mut b);
        assert_eq!(a, b, "released slab snapshots identically to a fresh one");
    }
}
