//! End-to-end crash-recovery and chaos-soak tests for `repro fleet`.
//!
//! The fast test SIGKILLs a checkpointing fleet run mid-flight and asserts
//! the resumed run's report is byte-identical to an uninterrupted one's.
//! The `--ignored` soak (run in CI's fleet-chaos job) replays the chaos
//! scenario across seeds and asserts the serving contract: every guaranteed
//! tenant meets its SLO floor and no request is ever lost.

use std::path::PathBuf;
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro")).args(args).output().expect("repro spawns")
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fgqos-fleet-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sigkilled_fleet_run_resumes_to_an_identical_report() {
    let dir = tmp_dir("sigkill");
    let baseline = repro(&["fleet", "chaos"]);
    assert!(
        baseline.status.success(),
        "baseline run failed: {}",
        String::from_utf8_lossy(&baseline.stderr)
    );

    let mut victim = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["fleet", "chaos", "--checkpoint-dir"])
        .arg(&dir)
        .args(["--checkpoint-every", "1"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("victim spawns");

    // Kill as soon as a checkpoint lands. write_atomic renames the file
    // into place, so existence implies a complete frame. The chaos run is
    // fast, so tolerate the victim finishing first: the final checkpoint
    // then makes resume a pure reprint, which must still match.
    let ckpt = dir.join("fleet-ckpt.bin");
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut victim_finished = false;
    loop {
        if ckpt.exists() {
            break;
        }
        if victim.try_wait().expect("try_wait works").is_some() {
            victim_finished = true;
            break;
        }
        assert!(Instant::now() < deadline, "victim produced no checkpoint within the deadline");
        std::thread::sleep(Duration::from_millis(2));
    }
    if !victim_finished {
        victim.kill().expect("SIGKILL delivered");
    }
    let _ = victim.wait();

    let resumed = repro(&["fleet", "resume", dir.to_str().expect("utf8 dir")]);
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&resumed.stdout),
        String::from_utf8_lossy(&baseline.stdout),
        "resumed report must be byte-identical to the uninterrupted run's"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fleet_trace_export_writes_a_schema_clean_document() {
    let dir = tmp_dir("trace");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("fleet.json");
    let out = repro(&["fleet", "steady", "--trace", path.to_str().expect("utf8 path")]);
    assert!(out.status.success(), "traced run failed: {}", String::from_utf8_lossy(&out.stderr));
    let doc = std::fs::read_to_string(&path).expect("trace written");
    harness::perfetto::check_chrome_trace(&doc).expect("exported trace passes the schema check");
    assert!(doc.contains("tenant/latency"), "per-tenant track present");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_fleet_scenario_exits_nonzero() {
    let out = repro(&["fleet", "definitely-not-a-scenario"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown scenario"),
        "stderr names the problem"
    );
}

#[test]
#[ignore = "chaos soak: several full fleet runs; exercised by CI's fleet-chaos job"]
fn chaos_soak_is_deterministic_and_loses_nothing() {
    // Determinism: two runs with the same seed agree byte-for-byte.
    let a = repro(&["fleet", "chaos", "--seed", "20260807"]);
    let b = repro(&["fleet", "chaos", "--seed", "20260807"]);
    assert!(a.status.success(), "chaos run failed: {}", String::from_utf8_lossy(&a.stderr));
    assert_eq!(a.stdout, b.stdout, "same seed must yield the same report");
    let report = String::from_utf8_lossy(&a.stdout);
    assert!(report.contains("guaranteed SLOs: MET"), "{report}");
    assert!(report.contains(", 0 lost"), "{report}");

    // Accounting invariant across seeds: device loss, wedges, timeouts and
    // shedding may reshuffle work, but no request is ever silently dropped —
    // every arrival completes, is retried to completion, or is shed with a
    // recorded reason.
    for seed in ["1", "2", "3"] {
        let out = repro(&["fleet", "chaos", "--seed", seed]);
        let report = String::from_utf8_lossy(&out.stdout);
        assert!(report.contains(", 0 lost"), "seed {seed} lost requests:\n{report}");
    }
}
