//! # fgqos — fine-grained QoS for multitasking GPUs
//!
//! A full-system reproduction of *"Quality of Service Support for
//! Fine-Grained Sharing on GPUs"* (ISCA 2017): a cycle-level GPU simulator
//! with SMK fine-grained sharing and partial-context-switch preemption
//! ([`sim`]), Parboil-like workload models ([`workloads`]), the paper's
//! quota-based QoS manager and its baselines ([`qos`]), and the experiment
//! harness that regenerates every table and figure ([`bench`]).
//!
//! This crate is a facade: each component is its own crate under `crates/`
//! and is re-exported here so applications can depend on one name.
//!
//! # Quickstart
//!
//! ```
//! use fgqos::{Gpu, GpuConfig, QosManager, QosSpec, QuotaScheme};
//!
//! let mut gpu = Gpu::new(GpuConfig::paper_table1());
//! let latency_job = gpu.launch(fgqos::workloads::by_name("sgemm").unwrap());
//! let batch_job = gpu.launch(fgqos::workloads::by_name("lbm").unwrap());
//!
//! let mut manager = QosManager::new(QuotaScheme::Rollover)
//!     .with_kernel(latency_job, QosSpec::qos(800.0))
//!     .with_kernel(batch_job, QosSpec::best_effort());
//! gpu.run(50_000, &mut manager);
//!
//! let stats = gpu.stats();
//! assert!(stats.ipc(latency_job) > 0.0 && stats.ipc(batch_job) >= 0.0);
//! ```

#![warn(missing_docs)]

/// The cycle-level GPU simulator substrate (re-export of `gpu-sim`).
pub mod sim {
    pub use gpu_sim::*;
}

/// Parboil-like synthetic workload models (re-export of `workloads`).
pub mod workloads {
    pub use workloads::*;
}

/// The paper's QoS algorithms and baselines (re-export of `qos-core`).
pub mod qos {
    pub use qos_core::*;
}

/// The experiment harness regenerating the paper's evaluation
/// (re-export of `harness`).
pub mod bench {
    pub use harness::*;
}

pub use gpu_sim::{Controller, Gpu, GpuConfig, KernelDesc, KernelId, NullController, SmId};
pub use qos_core::{QosManager, QosSpec, QuotaScheme, SpartController};
