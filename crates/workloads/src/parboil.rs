//! Synthetic models of the ten Parboil benchmarks used in the paper.
//!
//! Classification into compute-intensive ("C") and memory-intensive ("M")
//! follows the standard Parboil characterisation the paper's Fig. 7 relies
//! on: `cutcp`, `mri-q`, `sad`, `sgemm`, `tpacf` are compute-bound;
//! `histo`, `lbm`, `mri-gm`, `spmv`, `stencil` are memory-bound.

use gpu_sim::{AccessPattern, KernelDesc, Op};

/// KiB shorthand for footprints.
const KIB: u64 = 1024;
/// MiB shorthand for footprints.
const MIB: u64 = 1024 * 1024;

/// The benchmark names, in the order of the paper's Fig. 7.
pub const NAMES: [&str; 10] =
    ["cutcp", "histo", "lbm", "mri-gm", "mri-q", "sad", "sgemm", "spmv", "stencil", "tpacf"];

/// Builds all ten benchmark kernels.
pub fn all() -> Vec<KernelDesc> {
    NAMES.iter().map(|n| by_name(n).expect("listed benchmark exists")).collect()
}

/// Builds one benchmark kernel by name; `None` for unknown names.
pub fn by_name(name: &str) -> Option<KernelDesc> {
    Some(match name {
        "cutcp" => cutcp(),
        "histo" => histo(),
        "lbm" => lbm(),
        "mri-gm" => mri_gm(),
        "mri-q" => mri_q(),
        "sad" => sad(),
        "sgemm" => sgemm(),
        "spmv" => spmv(),
        "stencil" => stencil(),
        "tpacf" => tpacf(),
        _ => return None,
    })
}

/// Cut-off Coulombic potential: compute-bound lattice sums with a shared-
/// memory atom tile and transcendental math.
pub fn cutcp() -> KernelDesc {
    KernelDesc::builder("cutcp")
        .threads_per_tb(128)
        .regs_per_thread(40)
        .smem_per_tb(8 * KIB)
        .grid_tbs(1024)
        .iterations(20)
        .seed(0xC07C_0001)
        .body(vec![
            Op::mem_load(AccessPattern::tile(2 * KIB)),
            Op::smem(),
            Op::alu(4, 18),
            Op::sfu(16, 2),
            Op::alu(4, 10),
            Op::Bar,
            Op::alu(4, 4),
        ])
        .build()
}

/// Histogramming: short-running kernels with randomized, poorly coalesced
/// bin updates. The short grid models the paper's observation that `histo`'s
/// kernels finish too quickly for epoch-grained QoS to act on.
pub fn histo() -> KernelDesc {
    KernelDesc::builder("histo")
        .threads_per_tb(256)
        .regs_per_thread(24)
        .smem_per_tb(4 * KIB)
        .grid_tbs(96)
        .iterations(6)
        .seed(0xC07C_0002)
        .memory_intensive(true)
        .body(vec![
            Op::mem_load(AccessPattern::stream()),
            Op::alu(4, 2),
            Op::Mem {
                space: gpu_sim::MemSpace::Global,
                store: true,
                pattern: AccessPattern::random(2 * MIB, 16),
                active_lanes: 32,
            },
            Op::alu(4, 1),
        ])
        .build()
}

/// Lattice-Boltzmann method: the classic bandwidth-bound streaming kernel —
/// large loads and stores, little arithmetic per byte.
pub fn lbm() -> KernelDesc {
    KernelDesc::builder("lbm")
        .threads_per_tb(128)
        .regs_per_thread(48)
        .grid_tbs(1024)
        .iterations(16)
        .seed(0xC07C_0003)
        .memory_intensive(true)
        .body(vec![
            Op::mem_load(AccessPattern::stream()),
            Op::mem_load(AccessPattern::stream()),
            Op::alu(4, 6),
            Op::mem_store(AccessPattern::stream()),
            Op::alu(4, 2),
        ])
        .build()
}

/// MRI gridding: scattered sample accumulation — divergent random accesses
/// with moderate arithmetic.
pub fn mri_gm() -> KernelDesc {
    KernelDesc::builder("mri-gm")
        .threads_per_tb(256)
        .regs_per_thread(32)
        .grid_tbs(768)
        .iterations(8)
        .seed(0xC07C_0004)
        .memory_intensive(true)
        .body(vec![
            Op::mem_load(AccessPattern::random(32 * MIB, 12)),
            Op::alu_divergent(4, 6, 24),
            Op::alu(4, 4),
            Op::mem_store(AccessPattern::random(32 * MIB, 12)),
        ])
        .build()
}

/// MRI Q-matrix: compute-bound with heavy trigonometric (SFU) work over a
/// small, cache-resident sample table.
pub fn mri_q() -> KernelDesc {
    KernelDesc::builder("mri-q")
        .threads_per_tb(256)
        .regs_per_thread(28)
        .grid_tbs(1024)
        .iterations(24)
        .seed(0xC07C_0005)
        .body(vec![
            Op::mem_load(AccessPattern::tile(2 * KIB)),
            Op::alu(4, 10),
            Op::sfu(16, 4),
            Op::alu(4, 8),
        ])
        .build()
}

/// Sum of absolute differences (video encoding): streaming reads with dense
/// short-latency arithmetic.
pub fn sad() -> KernelDesc {
    KernelDesc::builder("sad")
        .threads_per_tb(192)
        .regs_per_thread(36)
        .grid_tbs(1024)
        .iterations(20)
        .seed(0xC07C_0006)
        .body(vec![
            Op::mem_load(AccessPattern::tile(3 * KIB)),
            Op::alu(2, 24),
            Op::mem_load(AccessPattern::tile(3 * KIB)),
            Op::alu(2, 16),
        ])
        .build()
}

/// Dense matrix multiply: shared-memory tiles, barriers, long ALU bursts —
/// the canonical compute-bound GPU kernel.
pub fn sgemm() -> KernelDesc {
    KernelDesc::builder("sgemm")
        .threads_per_tb(256)
        .regs_per_thread(48)
        .smem_per_tb(16 * KIB)
        .grid_tbs(1024)
        .iterations(16)
        .seed(0xC07C_0007)
        .body(vec![
            Op::mem_load(AccessPattern::tile(4 * KIB)),
            Op::Bar,
            Op::smem(),
            Op::alu(4, 28),
            Op::smem(),
            Op::alu(4, 12),
            Op::Bar,
            Op::alu(4, 2),
        ])
        .build()
}

/// Sparse matrix-vector multiply: random gathers through the column index
/// array; little arithmetic, poor coalescing.
pub fn spmv() -> KernelDesc {
    KernelDesc::builder("spmv")
        .threads_per_tb(128)
        .regs_per_thread(20)
        .grid_tbs(1024)
        .iterations(16)
        .seed(0xC07C_0008)
        .memory_intensive(true)
        .body(vec![
            Op::mem_load(AccessPattern::stream()),
            Op::mem_load(AccessPattern::random(64 * MIB, 24)),
            Op::alu(4, 4),
        ])
        .build()
}

/// 7-point 3-D stencil: neighbourhood loads with cross-TB reuse in L2 and a
/// streaming store.
pub fn stencil() -> KernelDesc {
    KernelDesc::builder("stencil")
        .threads_per_tb(256)
        .regs_per_thread(32)
        .grid_tbs(1024)
        .iterations(16)
        .seed(0xC07C_0009)
        .memory_intensive(true)
        .body(vec![
            Op::mem_load(AccessPattern::stencil(48 * MIB)),
            Op::mem_load(AccessPattern::stencil(48 * MIB)),
            Op::alu(4, 8),
            Op::mem_store(AccessPattern::stream()),
        ])
        .build()
}

/// Two-point angular correlation: compute-bound histogramming of angular
/// separations with divergent control flow.
pub fn tpacf() -> KernelDesc {
    KernelDesc::builder("tpacf")
        .threads_per_tb(256)
        .regs_per_thread(44)
        .smem_per_tb(12 * KIB)
        .grid_tbs(768)
        .iterations(20)
        .seed(0xC07C_000A)
        .body(vec![
            Op::mem_load(AccessPattern::tile(2 * KIB)),
            Op::alu(4, 14),
            Op::sfu(16, 2),
            Op::alu_divergent(4, 8, 20),
            Op::smem(),
            Op::alu(4, 6),
        ])
        .build()
}

/// Names of the compute-intensive ("C") benchmarks.
pub fn compute_names() -> Vec<&'static str> {
    NAMES.iter().copied().filter(|n| !by_name(n).expect("known").memory_intensive()).collect()
}

/// Names of the memory-intensive ("M") benchmarks.
pub fn memory_names() -> Vec<&'static str> {
    NAMES.iter().copied().filter(|n| by_name(n).expect("known").memory_intensive()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Gpu, GpuConfig, NullController};

    #[test]
    fn all_ten_build() {
        let ks = all();
        assert_eq!(ks.len(), 10);
        for (k, name) in ks.iter().zip(NAMES) {
            assert_eq!(k.name(), name);
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("bfs").is_none(), "bfs is excluded in the paper");
        assert!(by_name("nonsense").is_none());
    }

    #[test]
    fn class_split_is_five_five() {
        assert_eq!(compute_names(), vec!["cutcp", "mri-q", "sad", "sgemm", "tpacf"]);
        assert_eq!(memory_names(), vec!["histo", "lbm", "mri-gm", "spmv", "stencil"]);
    }

    #[test]
    fn seeds_are_distinct() {
        let ks = all();
        let seeds: std::collections::HashSet<u64> = ks.iter().map(|k| k.seed()).collect();
        assert_eq!(seeds.len(), ks.len());
    }

    #[test]
    fn every_kernel_fits_at_least_two_tbs_per_sm() {
        let gpu = Gpu::new(GpuConfig::paper_table1());
        drop(gpu);
        let cfg = GpuConfig::paper_table1();
        for k in all() {
            let mut gpu = Gpu::new(cfg.clone());
            let kid = gpu.launch(k.clone());
            let max = gpu.max_resident_tbs(kid);
            assert!((2..=32).contains(&max), "{} occupancy {} outside sane range", k.name(), max);
        }
    }

    #[test]
    fn every_kernel_makes_progress_in_isolation() {
        for k in all() {
            let name = k.name().to_string();
            let mut gpu = Gpu::new(GpuConfig::paper_table1());
            let kid = gpu.launch(k);
            gpu.run(20_000, &mut NullController);
            let ipc = gpu.stats().ipc(kid);
            assert!(ipc > 1.0, "{name} isolated IPC {ipc} too low");
        }
    }

    #[test]
    fn memory_kernels_have_lower_ipc_than_compute_kernels() {
        let ipc_of = |name: &str| {
            let mut gpu = Gpu::new(GpuConfig::paper_table1());
            let kid = gpu.launch(by_name(name).expect("known"));
            gpu.run(30_000, &mut NullController);
            gpu.stats().ipc(kid)
        };
        let avg = |names: Vec<&str>| {
            let sum: f64 = names.iter().map(|n| ipc_of(n)).sum();
            sum / names.len() as f64
        };
        let c = avg(compute_names());
        let m = avg(memory_names());
        assert!(c > m, "compute class IPC {c} must exceed memory class IPC {m}");
    }

    #[test]
    fn histo_is_short_running() {
        let histo = histo();
        let sgemm = sgemm();
        assert!(
            histo.grid_tbs() * histo.iterations() < sgemm.grid_tbs() * sgemm.iterations() / 10,
            "histo must be an order of magnitude shorter"
        );
    }
}
