//! Fleet configuration: tenants, devices, scheduler policy knobs, and the
//! fleet-level fault schedule.

use gpu_sim::{FaultKind, FaultPlan, GpuConfig};
use qos_core::TenantClass;
use serde::{Deserialize, Serialize};
use workloads::arrival::ArrivalModel;

/// Where queued requests land when several devices could take them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Fill one device to its kernel/memory limits before using the next:
    /// maximizes idle (power-gateable) devices, worst tail latency.
    Binpack,
    /// Round-robin one request per idle device: spreads interference and
    /// blast radius, keeps every device warm.
    Spread,
}

gpu_sim::impl_snap_enum!(Placement { Binpack = 0, Spread = 1 });

/// One tenant's request stream and contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Tenant name; also labels its request kernels and RNG stream.
    pub name: String,
    /// Guaranteed (SLO-protected) or best-effort.
    pub class: TenantClass,
    /// Open- or closed-loop arrival model.
    pub arrival: ArrivalModel,
    /// Total requests the tenant will issue over the run.
    pub requests: u64,
    /// Grid size of each request kernel (thread blocks).
    pub grid_tbs: u32,
    /// Device memory held while a request is resident, in bytes.
    pub mem_bytes: u64,
}

gpu_sim::impl_snap_struct!(TenantSpec { name, class, arrival, requests, grid_tbs, mem_bytes });

/// One scheduled fleet-level fault: at `at_cycle`, `device` suffers `kind`.
///
/// Faults are injected into the device's *next* simulated batch (translated
/// to device-relative cycles), so a fault aimed at an idle device is
/// discovered on first use — the way real device loss is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetFault {
    /// Fleet cycle at which the fault is due.
    pub at_cycle: u64,
    /// Device index it strikes.
    pub device: u32,
    /// What breaks (typically [`FaultKind::DeviceLoss`] or
    /// [`FaultKind::DeviceWedge`]).
    pub kind: FaultKind,
}

gpu_sim::impl_snap_struct!(FleetFault { at_cycle, device, kind });

/// Top-level fleet configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of simulated GPUs in the fleet.
    pub devices: u32,
    /// Device memory capacity, in bytes, limiting co-resident requests.
    pub device_mem_bytes: u64,
    /// Placement policy for queued requests.
    pub placement: Placement,
    /// Master seed; every stream/jitter seed derives from it.
    pub seed: u64,
    /// Device epoch length; the per-device watchdog window is two epochs.
    pub epoch_cycles: u64,
    /// Fleet scheduler tick, in cycles. Must be a multiple of the watchdog
    /// window (`2 * epoch_cycles`) so every busy device sits at an epoch
    /// boundary — and is therefore snapshottable — at tick boundaries, and
    /// at least two windows long: the device watchdog re-arms on every
    /// `try_run` call, so a call must span a full window *beyond* the first
    /// check point for a stalled device to ever be classified (the same
    /// floor the harness applies to its sweep chunks).
    pub tick_cycles: u64,
    /// Per-request timeout while running on a device, in fleet cycles.
    pub timeout_cycles: u64,
    /// Bounded retry budget per request (timeouts and device failures).
    pub max_retries: u32,
    /// Exponential backoff base, in cycles; retry `n` waits
    /// `base << (n-1)` plus deterministic jitter in `[0, base)`.
    pub backoff_base: u64,
    /// Scheduler-visible runtime estimate per request, in device cycles —
    /// the online structural runtime prediction admission control projects
    /// occupancy with.
    pub est_service_cycles: u64,
    /// Load shedding engages when projected load exceeds this (permille).
    pub shed_enter_permille: u32,
    /// Load shedding disengages when projected load drops below this
    /// (permille); must be below `shed_enter_permille` — the hysteresis
    /// band that keeps shedding from flapping.
    pub shed_exit_permille: u32,
    /// Safety net: after this many ticks the fleet sheds whatever is still
    /// queued (with an explicit reason) and finishes.
    pub max_ticks: u64,
    /// The tenants served by this fleet.
    pub tenants: Vec<TenantSpec>,
    /// Scheduled device faults.
    pub faults: Vec<FleetFault>,
}

gpu_sim::impl_snap_struct!(FleetConfig {
    devices,
    device_mem_bytes,
    placement,
    seed,
    epoch_cycles,
    tick_cycles,
    timeout_cycles,
    max_retries,
    backoff_base,
    est_service_cycles,
    shed_enter_permille,
    shed_exit_permille,
    max_ticks,
    tenants,
    faults,
});

impl FleetConfig {
    /// The watchdog window each device runs with (two epochs, matching the
    /// harness's sweep configuration).
    pub fn watchdog_window(&self) -> u64 {
        2 * self.epoch_cycles
    }

    /// Builds the [`GpuConfig`] for one device batch carrying `faults`
    /// (already translated to device-relative cycles).
    pub fn device_config(&self, faults: FaultPlan) -> GpuConfig {
        let mut cfg = GpuConfig::tiny();
        cfg.epoch_cycles = self.epoch_cycles;
        cfg.samples_per_epoch = 10;
        cfg.health.watchdog_window = self.watchdog_window();
        cfg.faults = faults;
        cfg
    }

    /// Validates internal consistency; returns the first violated
    /// constraint.
    ///
    /// # Errors
    ///
    /// A human-readable description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.devices == 0 {
            return Err("a fleet needs at least one device".into());
        }
        if self.epoch_cycles == 0 {
            return Err("epoch_cycles must be positive".into());
        }
        if !self.tick_cycles.is_multiple_of(self.watchdog_window())
            || self.tick_cycles < 2 * self.watchdog_window()
        {
            return Err(format!(
                "tick_cycles ({}) must be a multiple of the watchdog window ({}) and at \
                 least two windows long, or wedged devices are never classified",
                self.tick_cycles,
                self.watchdog_window()
            ));
        }
        if self.timeout_cycles == 0 || self.est_service_cycles == 0 || self.backoff_base == 0 {
            return Err("timeout, service estimate and backoff base must be positive".into());
        }
        if self.shed_exit_permille >= self.shed_enter_permille {
            return Err(format!(
                "hysteresis band is inverted: exit {}‰ must be below enter {}‰",
                self.shed_exit_permille, self.shed_enter_permille
            ));
        }
        if self.tenants.is_empty() {
            return Err("a fleet needs at least one tenant".into());
        }
        for t in &self.tenants {
            if t.mem_bytes > self.device_mem_bytes {
                return Err(format!(
                    "tenant {} requests {} bytes, more than a whole device ({})",
                    t.name, t.mem_bytes, self.device_mem_bytes
                ));
            }
        }
        for f in &self.faults {
            if f.device >= self.devices {
                return Err(format!("fault targets nonexistent device {}", f.device));
            }
        }
        self.device_config(FaultPlan::none()).validate().map_err(|e| e.to_string())?;
        Ok(())
    }

    /// Stable 64-bit fingerprint of the configuration, for checkpoint
    /// compatibility checks.
    pub fn fingerprint(&self) -> u64 {
        gpu_sim::snap::fnv1a(&gpu_sim::snap::encode_to_vec(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_core::SloTarget;

    fn base() -> FleetConfig {
        FleetConfig {
            devices: 2,
            device_mem_bytes: 1 << 30,
            placement: Placement::Spread,
            seed: 1,
            epoch_cycles: 1_000,
            tick_cycles: 4_000,
            timeout_cycles: 40_000,
            max_retries: 3,
            backoff_base: 2_000,
            est_service_cycles: 10_000,
            shed_enter_permille: 900,
            shed_exit_permille: 600,
            max_ticks: 1_000,
            tenants: vec![TenantSpec {
                name: "t".into(),
                class: TenantClass::guaranteed(SloTarget::new(60_000, 900_000)),
                arrival: ArrivalModel::Open { mean_gap: 4_000 },
                requests: 10,
                grid_tbs: 8,
                mem_bytes: 1 << 20,
            }],
            faults: Vec::new(),
        }
    }

    #[test]
    fn base_config_validates() {
        base().validate().expect("base config is sound");
    }

    #[test]
    fn tick_must_span_two_watchdog_windows() {
        let mut cfg = base();
        cfg.tick_cycles = 1_000; // one epoch: not even a full window
        assert!(cfg.validate().is_err());
        cfg.tick_cycles = 2_000; // exactly one window: the per-call watchdog
        assert!(cfg.validate().is_err()); // check point is never reached
        cfg.tick_cycles = 6_000; // three windows: fine
        cfg.validate().expect("two or more windows are legal");
    }

    #[test]
    fn inverted_hysteresis_band_is_rejected() {
        let mut cfg = base();
        cfg.shed_exit_permille = cfg.shed_enter_permille;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn fault_on_missing_device_is_rejected() {
        let mut cfg = base();
        cfg.faults.push(FleetFault { at_cycle: 10, device: 9, kind: FaultKind::DeviceLoss });
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = base();
        let mut b = base();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.seed = 2;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
