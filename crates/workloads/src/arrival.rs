//! Tenant request-stream generators for the fleet serving layer.
//!
//! A fleet tenant is a stream of small kernel invocations, not one long
//! grid: each request is one grid execution of a [`request_kernel`], sized
//! so that a request completes within a handful of scheduler ticks. Streams
//! come in the two classic flavours:
//!
//! * **open** — arrivals are exogenous (a public endpoint): inter-arrival
//!   gaps are drawn around a mean regardless of completions, so overload is
//!   possible and load shedding matters;
//! * **closed** — a fixed client population with think time: a new request
//!   is issued only after a previous one completes, so the stream
//!   self-throttles.
//!
//! All randomness flows through per-stream [`SplitMix64`] generators seeded
//! from a tenant label, which keeps every arrival schedule deterministic and
//! byte-reproducible — the property the fleet's chaos soak and
//! kill-and-resume tests assert end to end.

use gpu_sim::rng::{derive_seed, SplitMix64};
use gpu_sim::snap::{Snap, SnapError, SnapReader};
use gpu_sim::{AccessPattern, KernelDesc, Op};

/// How a tenant's requests arrive at the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalModel {
    /// Open loop: gaps are uniform in `[1, 2 * mean_gap]` cycles (mean
    /// `mean_gap + 1/2`), independent of completions.
    Open {
        /// Mean inter-arrival gap in fleet cycles; must be positive.
        mean_gap: u64,
    },
    /// Closed loop: at most `population` requests outstanding; each
    /// completion schedules the next request `think` cycles later.
    Closed {
        /// Think time between a completion and the next request.
        think: u64,
        /// Concurrent client population (maximum outstanding requests).
        population: u32,
    },
    /// Open loop with a diurnal load curve: gaps are drawn as in
    /// [`ArrivalModel::Open`], but the mean swings along an integer
    /// triangle wave with the given period — trough (longest gaps) at the
    /// period edges, peak (shortest gaps) mid-period. Everything is integer
    /// arithmetic, so the curve is exactly reproducible across runs and
    /// checkpoint resumes.
    Diurnal {
        /// Baseline mean inter-arrival gap in fleet cycles; must be positive.
        mean_gap: u64,
        /// Length of one full "day" in fleet cycles; must be positive.
        period: u64,
        /// Swing amplitude in permille of `mean_gap` (`0..=999`): at peak
        /// the effective mean gap is `mean_gap - swing`, at trough
        /// `mean_gap + swing`.
        swing_permille: u32,
    },
}

/// The effective mean gap of a [`ArrivalModel::Diurnal`] stream at cycle
/// `at`: a triangle wave from `mean_gap + swing` (cycle 0, trough) down to
/// `mean_gap - swing` (half period, peak) and back, clamped to ≥ 1.
pub fn diurnal_mean_gap(mean_gap: u64, period: u64, swing_permille: u32, at: u64) -> u64 {
    let phase = at % period.max(1);
    let half = (period / 2).max(1);
    // Triangle in [-1000, 1000]: -1000 at phase 0, +1000 at `half`.
    let tri: i64 = if phase <= half {
        -1000 + (2000 * phase / half) as i64
    } else {
        1000 - (2000 * (phase - half) / half) as i64
    };
    let swing = (mean_gap.saturating_mul(u64::from(swing_permille)) / 1000) as i64;
    (mean_gap as i64 - tri * swing / 1000).max(1) as u64
}

impl Snap for ArrivalModel {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            ArrivalModel::Open { mean_gap } => {
                out.push(0);
                mean_gap.encode(out);
            }
            ArrivalModel::Closed { think, population } => {
                out.push(1);
                think.encode(out);
                population.encode(out);
            }
            ArrivalModel::Diurnal { mean_gap, period, swing_permille } => {
                out.push(2);
                mean_gap.encode(out);
                period.encode(out);
                swing_permille.encode(out);
            }
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match u8::decode(r)? {
            0 => Ok(ArrivalModel::Open { mean_gap: u64::decode(r)? }),
            1 => Ok(ArrivalModel::Closed { think: u64::decode(r)?, population: u32::decode(r)? }),
            2 => Ok(ArrivalModel::Diurnal {
                mean_gap: u64::decode(r)?,
                period: u64::decode(r)?,
                swing_permille: u32::decode(r)?,
            }),
            _ => Err(SnapError::Invalid("ArrivalModel")),
        }
    }
}

/// A deterministic per-tenant arrival stream: emits the arrival cycle of
/// each of `total` requests, driven by the tenant's private RNG.
///
/// The stream itself only decides *when* requests arrive; the fleet decides
/// what happens to them. For closed-loop models the fleet feeds completions
/// back via [`ArrivalStream::on_completion`].
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalStream {
    model: ArrivalModel,
    rng: SplitMix64,
    /// Requests emitted so far (also the next request's sequence number).
    emitted: u64,
    /// Total requests this stream will emit.
    total: u64,
    /// Arrival cycles that are already decided but not yet collected.
    ready: Vec<u64>,
    /// Next open-loop arrival cycle (open model only).
    next_open: u64,
}

impl ArrivalStream {
    /// Creates the stream for one tenant. `seed` should be derived from the
    /// fleet seed and a tenant label (see [`gpu_sim::rng::derive_seed`]).
    ///
    /// # Panics
    ///
    /// Panics on a zero open-loop gap or a zero closed-loop population.
    pub fn new(model: ArrivalModel, seed: u64, total: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut ready = Vec::new();
        let mut next_open = 0;
        match model {
            ArrivalModel::Open { mean_gap } => {
                assert!(mean_gap > 0, "open-loop mean gap must be positive");
                next_open = 1 + rng.next_below(2 * mean_gap);
            }
            ArrivalModel::Closed { population, .. } => {
                assert!(population > 0, "closed-loop population must be positive");
                // The whole population issues its first request at cycle 0.
                let first = u64::from(population).min(total);
                ready.extend(std::iter::repeat_n(0u64, first as usize));
            }
            ArrivalModel::Diurnal { mean_gap, period, swing_permille } => {
                assert!(mean_gap > 0, "diurnal mean gap must be positive");
                assert!(period > 0, "diurnal period must be positive");
                assert!(swing_permille < 1000, "diurnal swing must be < 1000 permille");
                let gap = diurnal_mean_gap(mean_gap, period, swing_permille, 0);
                next_open = 1 + rng.next_below(2 * gap);
            }
        }
        ArrivalStream { model, rng, emitted: 0, total, ready, next_open }
    }

    /// The model this stream follows.
    pub fn model(&self) -> ArrivalModel {
        self.model
    }

    /// Total requests the stream will emit over its lifetime.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Requests emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Whether every request has been emitted.
    pub fn exhausted(&self) -> bool {
        self.emitted >= self.total
    }

    /// Collects the sequence numbers and arrival cycles of every request
    /// arriving strictly before `horizon`, advancing the stream.
    pub fn arrivals_before(&mut self, horizon: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        // Closed-loop arrivals already scheduled by completions.
        self.ready.sort_unstable();
        while let Some(&at) = self.ready.first() {
            if at >= horizon || self.exhausted() {
                break;
            }
            self.ready.remove(0);
            out.push((self.emitted, at));
            self.emitted += 1;
        }
        // Open-loop arrivals drawn on demand (the diurnal model is an open
        // loop whose mean tracks the load curve at the drawing instant).
        loop {
            let mean = match self.model {
                ArrivalModel::Open { mean_gap } => mean_gap,
                ArrivalModel::Diurnal { mean_gap, period, swing_permille } => {
                    diurnal_mean_gap(mean_gap, period, swing_permille, self.next_open)
                }
                ArrivalModel::Closed { .. } => break,
            };
            if self.exhausted() || self.next_open >= horizon {
                break;
            }
            out.push((self.emitted, self.next_open));
            self.emitted += 1;
            self.next_open += 1 + self.rng.next_below(2 * mean);
        }
        out
    }

    /// Feeds a completion back into a closed-loop stream: the freed client
    /// thinks for `think` cycles and then issues its next request. No-op
    /// for open-loop streams.
    pub fn on_completion(&mut self, done_at: u64) {
        if let ArrivalModel::Closed { think, .. } = self.model {
            if self.emitted + (self.ready.len() as u64) < self.total {
                self.ready.push(done_at + think);
            }
        }
    }
}

gpu_sim::impl_snap_struct!(ArrivalStream { model, rng, emitted, total, ready, next_open });

/// Builds the kernel for one serving request.
///
/// One grid execution is one request. The grid is deliberately small — a
/// few TBs of the latency-sensitive [`crate::synth::frame_kernel`] shape —
/// so a request completes within a few fleet ticks and per-request deadlines
/// are meaningful. The seed mixes the tenant label and the request sequence
/// number so address streams decorrelate across requests without breaking
/// determinism.
pub fn request_kernel(tenant: &str, seq: u64, grid_tbs: u32) -> KernelDesc {
    KernelDesc::builder(tenant)
        .threads_per_tb(128)
        .regs_per_thread(32)
        .smem_per_tb(4 * 1024)
        .grid_tbs(grid_tbs.max(1))
        .iterations(6)
        .seed(derive_seed(hash_label(tenant), seq))
        .body(vec![
            Op::mem_load(AccessPattern::tile(16 * 1024)),
            Op::alu(4, 8),
            Op::Bar,
            Op::smem(),
            Op::alu(4, 6),
            Op::mem_store(AccessPattern::stream()),
        ])
        .build()
}

/// Deterministic 64-bit label from a tenant name (FNV-1a).
pub fn hash_label(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::snap::{decode_from_slice, encode_to_vec};
    use gpu_sim::{Gpu, GpuConfig, NullController};

    #[test]
    fn open_stream_is_deterministic_and_ordered() {
        let drain = |mut s: ArrivalStream| {
            let mut all = Vec::new();
            let mut horizon = 1_000;
            while !s.exhausted() {
                all.extend(s.arrivals_before(horizon));
                horizon += 1_000;
            }
            all
        };
        let a = drain(ArrivalStream::new(ArrivalModel::Open { mean_gap: 500 }, 7, 40));
        let b = drain(ArrivalStream::new(ArrivalModel::Open { mean_gap: 500 }, 7, 40));
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.len(), 40);
        assert!(a.windows(2).all(|w| w[0].1 <= w[1].1), "arrivals are time-ordered");
        assert!(a.windows(2).all(|w| w[0].0 + 1 == w[1].0), "sequence numbers are dense");
        let c = drain(ArrivalStream::new(ArrivalModel::Open { mean_gap: 500 }, 8, 40));
        assert_ne!(a, c, "different seeds decorrelate");
    }

    #[test]
    fn open_gaps_are_near_the_mean() {
        let mut s = ArrivalStream::new(ArrivalModel::Open { mean_gap: 100 }, 3, 1_000);
        let arrivals = s.arrivals_before(u64::MAX);
        let span = arrivals.last().unwrap().1 - arrivals[0].1;
        let mean = span as f64 / (arrivals.len() - 1) as f64;
        assert!((80.0..=120.0).contains(&mean), "empirical mean gap {mean} far from 100");
    }

    #[test]
    fn closed_stream_waits_for_completions() {
        let model = ArrivalModel::Closed { think: 50, population: 2 };
        let mut s = ArrivalStream::new(model, 1, 5);
        let first = s.arrivals_before(1_000);
        assert_eq!(first, vec![(0, 0), (1, 0)], "the population arrives at once");
        assert!(s.arrivals_before(1_000).is_empty(), "no arrivals without completions");
        s.on_completion(200);
        assert_eq!(s.arrivals_before(1_000), vec![(2, 250)], "think time after completion");
        s.on_completion(300);
        s.on_completion(400);
        s.on_completion(500); // population exhausted; total caps at 5
        let rest = s.arrivals_before(10_000);
        assert_eq!(rest, vec![(3, 350), (4, 450)]);
        assert!(s.exhausted());
    }

    #[test]
    fn streams_round_trip_through_the_codec_mid_flight() {
        let mut s = ArrivalStream::new(ArrivalModel::Open { mean_gap: 200 }, 11, 30);
        let _ = s.arrivals_before(2_000);
        let mut back: ArrivalStream = decode_from_slice(&encode_to_vec(&s)).expect("codec");
        assert_eq!(back, s);
        assert_eq!(back.arrivals_before(20_000), s.arrivals_before(20_000));
    }

    #[test]
    fn diurnal_curve_peaks_mid_period_and_is_deterministic() {
        // The triangle wave: trough at the edges, peak at half period.
        assert_eq!(diurnal_mean_gap(1_000, 10_000, 500, 0), 1_500);
        assert_eq!(diurnal_mean_gap(1_000, 10_000, 500, 5_000), 500);
        assert_eq!(diurnal_mean_gap(1_000, 10_000, 500, 10_000), 1_500);
        assert!(diurnal_mean_gap(4, 100, 999, 50) >= 1, "gap is clamped positive");

        let model = ArrivalModel::Diurnal { mean_gap: 200, period: 40_000, swing_permille: 600 };
        let drain = |seed: u64| {
            let mut s = ArrivalStream::new(model, seed, 400);
            s.arrivals_before(u64::MAX)
        };
        assert_eq!(drain(5), drain(5), "same seed, same schedule");
        assert_ne!(drain(5), drain(6), "different seeds decorrelate");

        // Arrival density over the first full period: the middle third of
        // the period (peak) must see strictly more arrivals than the first
        // third (trough).
        let arrivals = drain(5);
        let count_in = |lo: u64, hi: u64| arrivals.iter().filter(|a| a.1 >= lo && a.1 < hi).count();
        let trough = count_in(0, 13_333);
        let peak = count_in(13_333, 26_666);
        assert!(
            peak > trough,
            "diurnal peak must be denser than the trough (peak {peak}, trough {trough})"
        );
    }

    #[test]
    fn diurnal_streams_round_trip_through_the_codec_mid_flight() {
        let model = ArrivalModel::Diurnal { mean_gap: 150, period: 20_000, swing_permille: 400 };
        let mut s = ArrivalStream::new(model, 21, 60);
        let _ = s.arrivals_before(5_000);
        let mut back: ArrivalStream = decode_from_slice(&encode_to_vec(&s)).expect("codec");
        assert_eq!(back, s);
        assert_eq!(back.arrivals_before(u64::MAX), s.arrivals_before(u64::MAX));
    }

    #[test]
    fn request_kernels_are_small_and_deterministic() {
        let k = request_kernel("tenant-a", 3, 8);
        assert_eq!(k.grid_tbs(), 8);
        assert_eq!(k.seed(), request_kernel("tenant-a", 3, 8).seed());
        assert_ne!(k.seed(), request_kernel("tenant-a", 4, 8).seed());
        assert_ne!(k.seed(), request_kernel("tenant-b", 3, 8).seed());
    }

    #[test]
    fn zero_rate_tenants_emit_nothing_and_stay_inert() {
        // A tenant provisioned with total = 0 is a valid degenerate stream:
        // born exhausted, never emits, and completion feedback is a no-op.
        for model in [
            ArrivalModel::Open { mean_gap: 100 },
            ArrivalModel::Closed { think: 50, population: 4 },
        ] {
            let mut s = ArrivalStream::new(model, 9, 0);
            assert!(s.exhausted(), "a zero-request stream is exhausted at birth");
            assert_eq!(s.emitted(), 0);
            assert!(s.arrivals_before(u64::MAX).is_empty());
            s.on_completion(123);
            s.on_completion(456);
            assert!(s.arrivals_before(u64::MAX).is_empty(), "completions cannot revive it");
            assert!(s.exhausted());
            assert_eq!(s.emitted(), 0);
        }
    }

    #[test]
    fn closed_loop_population_one_alternates_strictly() {
        // With a single client, every request is gated on the previous
        // completion: exactly one arrival per completion, never two in
        // flight, and the arrival cycle is completion + think exactly.
        let mut s = ArrivalStream::new(ArrivalModel::Closed { think: 25, population: 1 }, 4, 4);
        assert_eq!(s.arrivals_before(u64::MAX), vec![(0, 0)], "the lone client starts at 0");
        assert!(s.arrivals_before(u64::MAX).is_empty(), "nothing until the completion");
        let mut done_at = 100;
        for seq in 1..4u64 {
            s.on_completion(done_at);
            let batch = s.arrivals_before(u64::MAX);
            assert_eq!(batch, vec![(seq, done_at + 25)], "one completion, one arrival");
            done_at += 100;
        }
        assert!(s.exhausted());
        s.on_completion(done_at);
        assert!(s.arrivals_before(u64::MAX).is_empty(), "total caps the stream");
    }

    #[test]
    fn per_tenant_streams_are_seed_stable_across_construction_orders() {
        // Each tenant's schedule depends only on its own derived seed, so
        // building the fleet's streams in a different order (or alone) must
        // reproduce identical per-tenant schedules.
        let fleet_seed = 0xF1EE7;
        let schedule = |tenant: &str| {
            let seed = derive_seed(fleet_seed, hash_label(tenant));
            let mut s = ArrivalStream::new(ArrivalModel::Open { mean_gap: 300 }, seed, 20);
            s.arrivals_before(u64::MAX)
        };
        let tenants = ["alpha", "bravo", "charlie"];
        let forward: Vec<_> = tenants.iter().map(|t| schedule(t)).collect();
        let mut reverse: Vec<_> = tenants.iter().rev().map(|t| schedule(t)).collect();
        reverse.reverse();
        assert_eq!(forward, reverse, "construction order must not leak into schedules");
        assert_ne!(forward[0], forward[1], "distinct tenants decorrelate");
        assert_ne!(forward[1], forward[2], "distinct tenants decorrelate");
    }

    #[test]
    fn one_request_grid_completes_quickly_on_a_tiny_device() {
        let mut gpu = Gpu::new(GpuConfig::tiny());
        let k = gpu.launch(request_kernel("t", 0, 8));
        gpu.run(20_000, &mut NullController);
        assert!(
            gpu.stats().kernel(k).launches_completed >= 1,
            "an 8-TB request must finish one grid well inside 20k cycles \
             (completed {} TBs)",
            gpu.stats().kernel(k).tbs_completed
        );
    }
}
