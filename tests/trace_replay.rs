//! Differential test: trace replay is bit-identical to the traced kernel.
//!
//! For every synthetic Parboil model: capture an FGTR trace, round-trip it
//! through the codec, rebuild the kernel, and run original vs replayed
//! side by side across the stepping matrix (serial and `intra_parallel`,
//! fast-forward on and off). The epoch-record stream hash and the *entire*
//! counter registry must agree exactly — replay is the same kernel, and the
//! simulator is deterministic, so any divergence is a codec or rebuild bug.

use gpu_sim::trace::{records_hash, Tracer};
use gpu_sim::{Gpu, GpuConfig, KernelDesc, NullController};

const RUN_CYCLES: u64 = 6_000;

fn run_fingerprint(desc: &KernelDesc, cfg: &GpuConfig) -> (u64, Vec<gpu_sim::CounterEntry>) {
    let mut gpu = Gpu::new(cfg.clone());
    gpu.launch(desc.clone());
    let mut ctrl = Tracer::new(NullController);
    gpu.run(RUN_CYCLES, &mut ctrl);
    (records_hash(&ctrl.into_parts().1), gpu.counter_registry())
}

#[test]
fn replayed_traces_match_their_kernels_across_the_stepping_matrix() {
    for name in workloads::NAMES {
        let desc = workloads::by_name(name).expect("known workload");
        let kt = trace::capture(&desc, &GpuConfig::tiny(), trace::DEFAULT_CAPTURE_CYCLES)
            .expect("every Parboil model captures within the default window");
        // Round-trip through the on-disk codec before replaying, so the
        // differential covers the full capture -> encode -> decode -> rebuild
        // pipeline, not just the in-memory struct.
        let replayed = trace::from_bytes(&trace::to_bytes(&kt))
            .expect("strict reader accepts its own writer")
            .kernel();
        assert_eq!(replayed, desc, "{name}: rebuild must be the identical kernel");

        for intra_parallel in [false, true] {
            for fast_forward in [false, true] {
                let mut cfg = GpuConfig::tiny();
                cfg.intra_parallel = intra_parallel;
                cfg.fast_forward = fast_forward;
                let (orig_hash, orig_counters) = run_fingerprint(&desc, &cfg);
                let (replay_hash, replay_counters) = run_fingerprint(&replayed, &cfg);
                assert_eq!(
                    orig_hash, replay_hash,
                    "{name}: records_hash diverged \
                     (intra_parallel={intra_parallel}, fast_forward={fast_forward})"
                );
                assert_eq!(
                    orig_counters, replay_counters,
                    "{name}: counter registry diverged \
                     (intra_parallel={intra_parallel}, fast_forward={fast_forward})"
                );
            }
        }
    }
}

#[test]
fn capture_metadata_pins_the_capture_machine() {
    let desc = workloads::by_name("sgemm").expect("known workload");
    let cfg = GpuConfig::tiny();
    let kt = trace::capture(&desc, &cfg, trace::DEFAULT_CAPTURE_CYCLES).expect("capture");
    assert_eq!(kt.meta.name, "sgemm");
    assert_eq!(kt.meta.seed, desc.seed());
    assert_eq!(kt.meta.capture_cycles, trace::DEFAULT_CAPTURE_CYCLES);
    assert_eq!(kt.meta.source, trace::CAPTURE_SOURCE);
    // The fingerprint pins the *capture machine*, which runs with the
    // flight recorder forced on and rings sized for lossless recording.
    let mut capture_cfg = cfg;
    capture_cfg.trace.level = gpu_sim::TraceLevel::Events;
    capture_cfg.trace.ring_capacity = trace::CAPTURE_RING_CAPACITY;
    assert_eq!(
        kt.meta.config_fingerprint,
        Gpu::new(capture_cfg).config_fingerprint(),
        "the fingerprint identifies the capture configuration"
    );
    assert!(!kt.tbs.is_empty());
}
