//! Bandwidth-limited service queues for L2 slices and DRAM channels.
//!
//! Each memory controller owns two [`ServiceQueue`]s — one modelling the L2
//! slice's service port and one the DRAM channel behind it. A queue serves
//! one transaction every `service_cycles`; requests arriving while the queue
//! is busy wait, which is how bandwidth contention between co-running kernels
//! emerges (the effect Fig. 7's M+M results hinge on).

use crate::types::Cycle;

/// A single-server queue with fixed service time and bounded backlog.
#[derive(Debug, Clone)]
pub struct ServiceQueue {
    next_free: Cycle,
    service_cycles: u32,
    max_backlog: u64,
    served: u64,
    total_wait: u64,
    peak_wait: u64,
}

impl ServiceQueue {
    /// Creates a queue serving one transaction every `service_cycles`,
    /// saturating once the backlog exceeds `max_backlog` cycles.
    pub fn new(service_cycles: u32, max_backlog: u32) -> Self {
        ServiceQueue {
            next_free: 0,
            service_cycles: service_cycles.max(1),
            max_backlog: u64::from(max_backlog),
            served: 0,
            total_wait: 0,
            peak_wait: 0,
        }
    }

    /// Enqueues one transaction arriving at `now`; returns its completion time.
    ///
    /// The returned cycle is `>= now + service_cycles`; the difference beyond
    /// that is queueing delay.
    pub fn serve(&mut self, now: Cycle) -> Cycle {
        let mut start = self.next_free.max(now);
        // Saturate: past the backlog cap the queue stops growing and every
        // new request sees the capped delay. This bounds worst-case warp
        // stall times without changing steady-state throughput.
        if start - now > self.max_backlog {
            start = now + self.max_backlog;
        } else {
            self.next_free = start + Cycle::from(self.service_cycles);
        }
        self.served += 1;
        self.total_wait += start - now;
        self.peak_wait = self.peak_wait.max(start - now);
        start + Cycle::from(self.service_cycles)
    }

    /// Number of transactions served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Mean queueing delay per transaction, in cycles.
    pub fn mean_wait(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.total_wait as f64 / self.served as f64
        }
    }

    /// Total queueing delay accumulated across all served transactions.
    pub fn total_wait(&self) -> u64 {
        self.total_wait
    }

    /// Worst queueing delay any single transaction has seen, in cycles.
    pub fn peak_wait(&self) -> u64 {
        self.peak_wait
    }

    /// Current backlog depth in cycles: how long a request arriving at `now`
    /// would wait before service begins.
    pub fn backlog_at(&self, now: Cycle) -> u64 {
        self.next_free.saturating_sub(now)
    }

    /// Whether the queue would delay a request arriving at `now`.
    pub fn busy_at(&self, now: Cycle) -> bool {
        self.next_free > now
    }

    /// The cycle at which the queue's current backlog drains, or `None` if it
    /// is already idle at `now`.
    ///
    /// This is a *drain horizon*, not a wake-up: every request's completion
    /// time was already computed eagerly by [`ServiceQueue::serve`] and folded
    /// into the issuing warp's `ready_at`, so the queue never needs to be
    /// ticked. Fast-forward therefore does not clamp to this cycle; it exists
    /// for introspection and symmetry with the other `next_event` providers.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        (self.next_free > now).then_some(self.next_free)
    }

    /// Resets counters (the busy horizon is kept).
    pub fn reset_stats(&mut self) {
        self.served = 0;
        self.total_wait = 0;
    }
}

crate::impl_snap_struct!(ServiceQueue {
    next_free,
    service_cycles,
    max_backlog,
    served,
    total_wait,
    peak_wait,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_queue_serves_at_service_time() {
        let mut q = ServiceQueue::new(3, 100);
        assert_eq!(q.serve(10), 13);
        assert!(!q.busy_at(13));
        assert!(q.busy_at(12));
    }

    #[test]
    fn back_to_back_requests_queue_up() {
        let mut q = ServiceQueue::new(2, 100);
        assert_eq!(q.serve(0), 2);
        assert_eq!(q.serve(0), 4);
        assert_eq!(q.serve(0), 6);
        assert_eq!(q.served(), 3);
        // waits: 0, 2, 4 -> mean 2
        assert!((q.mean_wait() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gap_lets_queue_drain() {
        let mut q = ServiceQueue::new(2, 100);
        q.serve(0);
        assert_eq!(q.serve(50), 52, "queue drained by cycle 50");
    }

    #[test]
    fn backlog_saturates() {
        let mut q = ServiceQueue::new(10, 20);
        // Flood the queue at cycle 0.
        let mut worst = 0;
        for _ in 0..100 {
            worst = worst.max(q.serve(0));
        }
        // Completion never exceeds now + max_backlog + service.
        assert!(worst <= 30, "worst completion {worst} exceeds saturation bound");
    }

    #[test]
    fn throughput_matches_service_rate() {
        let mut q = ServiceQueue::new(4, 1_000);
        let mut completions = Vec::new();
        // One arrival per cycle: faster than the 4-cycle service rate.
        for now in 0..10 {
            completions.push(q.serve(now));
        }
        // Steady-state completions are exactly 4 cycles apart.
        for w in completions.windows(2) {
            assert_eq!(w[1] - w[0], 4);
        }
    }

    #[test]
    fn zero_service_clamped_to_one() {
        let mut q = ServiceQueue::new(0, 10);
        assert_eq!(q.serve(0), 1);
    }
}
