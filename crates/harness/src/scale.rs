//! Run scales: trading evaluation fidelity for wall-clock time.
//!
//! The paper simulates 2 M cycles per case (§4.1, accurate past 1 M cycles
//! per [1]); with 900 pair-cases per policy that is hours of wall-clock even
//! parallelised. The reduced scales keep the full methodology — same case
//! enumeration, same goal sweeps — but shorten runs and (for `Smoke` /
//! `Bench`) subsample the pair/trio sets.

use serde::{Deserialize, Serialize};

/// How big an experiment run should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunScale {
    /// Criterion-bench scale: a handful of cases, tiny cycle budget.
    Bench,
    /// CI / smoke scale: small subsets, minutes of wall-clock.
    Smoke,
    /// Default for `repro`: all cases, reduced cycles (tens of minutes).
    Quick,
    /// The paper's methodology: all cases, 2 M cycles each.
    Paper,
}

impl RunScale {
    /// Parses a scale name (`bench` / `smoke` / `quick` / `paper`).
    pub fn parse(s: &str) -> Option<RunScale> {
        match s.to_ascii_lowercase().as_str() {
            "bench" => Some(RunScale::Bench),
            "smoke" => Some(RunScale::Smoke),
            "quick" => Some(RunScale::Quick),
            "paper" => Some(RunScale::Paper),
            _ => None,
        }
    }

    /// Simulated cycles per case.
    pub fn cycles(self) -> u64 {
        match self {
            RunScale::Bench => 20_000,
            RunScale::Smoke => 120_000,
            RunScale::Quick => 150_000,
            RunScale::Paper => 2_000_000,
        }
    }

    /// Keep every n-th pair/trio of the enumeration (1 = all).
    pub fn case_stride(self) -> usize {
        match self {
            RunScale::Bench => 30,
            RunScale::Smoke => 9,
            RunScale::Quick => 5,
            RunScale::Paper => 1,
        }
    }

    /// Keep every n-th goal of the sweep (1 = all).
    pub fn goal_stride(self) -> usize {
        match self {
            RunScale::Bench => 5,
            RunScale::Smoke => 3,
            RunScale::Quick | RunScale::Paper => 1,
        }
    }

    /// Human-readable description printed on every report.
    pub fn describe(self) -> String {
        format!(
            "{self:?} scale: {} cycles/case, every {} case(s), every {} goal(s)",
            self.cycles(),
            self.case_stride(),
            self.goal_stride()
        )
    }
}

gpu_sim::impl_snap_enum!(RunScale {
    Bench = 0,
    Smoke = 1,
    Quick = 2,
    Paper = 3,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for (name, scale) in [
            ("bench", RunScale::Bench),
            ("smoke", RunScale::Smoke),
            ("quick", RunScale::Quick),
            ("PAPER", RunScale::Paper),
        ] {
            assert_eq!(RunScale::parse(name), Some(scale));
        }
        assert_eq!(RunScale::parse("huge"), None);
    }

    #[test]
    fn paper_scale_matches_methodology() {
        assert_eq!(RunScale::Paper.cycles(), 2_000_000);
        assert_eq!(RunScale::Paper.case_stride(), 1);
        assert_eq!(RunScale::Paper.goal_stride(), 1);
    }

    #[test]
    fn scales_are_ordered_by_cost() {
        assert!(RunScale::Bench.cycles() < RunScale::Smoke.cycles());
        assert!(RunScale::Smoke.cycles() < RunScale::Quick.cycles());
        assert!(RunScale::Quick.cycles() < RunScale::Paper.cycles());
    }

    #[test]
    fn describe_mentions_scale() {
        assert!(RunScale::Quick.describe().contains("Quick"));
    }
}
