//! # workloads — Parboil-like synthetic kernel models
//!
//! The paper evaluates on ten Parboil benchmarks (`bfs` excluded as too
//! short). We cannot execute CUDA binaries, so each benchmark is replaced by
//! a synthetic [`gpu_sim::KernelDesc`] calibrated to the published
//! characteristics that the evaluation actually exploits:
//!
//! * **compute vs memory intensity** (the C/M classes of Fig. 7),
//! * **occupancy limits** (registers / shared memory / threads per TB),
//! * **instruction mix** (ALU / SFU / memory / barrier),
//! * **memory access locality** (streaming, tiled, random, stencil),
//! * **kernel length** (`histo` is deliberately short-running, the property
//!   behind its poor QoS behaviour in the paper).
//!
//! See `DESIGN.md` §4 for the substitution rationale.
//!
//! # Example
//!
//! ```
//! use workloads::parboil;
//!
//! let kernels = parboil::all();
//! assert_eq!(kernels.len(), 10);
//! let sgemm = parboil::by_name("sgemm").expect("sgemm is a Parboil benchmark");
//! assert!(!sgemm.memory_intensive());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arrival;
pub mod parboil;
pub mod replay;
pub mod synth;

pub use parboil::{all, by_name, NAMES};
pub use replay::TraceLibrary;
