//! Case execution: isolated-IPC caching and a parallel case runner.

use std::collections::HashMap;

use gpu_sim::{Controller, Gpu, GpuConfig, KernelId, NullController};
use parking_lot::RwLock;
use qos_core::{QosManager, QosSpec, SpartController};

use crate::cases::{Ablations, CaseSpec, ConfigKind, Policy};
use crate::metrics::CaseResult;

/// Shared cache of isolated-IPC measurements, keyed by
/// `(benchmark, config, cycles)`.
///
/// Every QoS goal in the evaluation is a fraction of the kernel's isolated
/// IPC, so each benchmark is first run alone on the same configuration and
/// cycle budget. The cache makes that a once-per-sweep cost.
#[derive(Debug, Default)]
pub struct IsolatedCache {
    map: RwLock<HashMap<(String, ConfigKind, u64), f64>>,
}

impl IsolatedCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        IsolatedCache::default()
    }

    /// Isolated IPC of `name` under `config` over `cycles`, measuring on a
    /// cache miss.
    pub fn ipc(&self, name: &str, config: ConfigKind, cycles: u64) -> f64 {
        let key = (name.to_string(), config, cycles);
        if let Some(&v) = self.map.read().get(&key) {
            return v;
        }
        let v = measure_isolated(name, config, cycles);
        self.map.write().insert(key, v);
        v
    }

    /// Number of cached measurements.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }
}

fn measure_isolated(name: &str, config: ConfigKind, cycles: u64) -> f64 {
    let mut gpu = Gpu::new(config.build());
    let desc = workloads::by_name(name)
        .unwrap_or_else(|| panic!("unknown benchmark {name:?}"));
    let k = gpu.launch(desc);
    gpu.run(cycles, &mut NullController);
    gpu.stats().ipc(k)
}

fn apply_ablations(cfg: &mut GpuConfig, ab: &Ablations) {
    if ab.free_preemption {
        cfg.preempt.context_bytes_per_cycle = u32::MAX;
        cfg.preempt.drain_cycles = 0;
    }
}

/// Runs one case and computes its result.
pub fn run_case(spec: &CaseSpec, iso: &IsolatedCache) -> CaseResult {
    let mut cfg = spec.config.build();
    apply_ablations(&mut cfg, &spec.ablations);
    if let Some(epoch) = spec.epoch_cycles {
        cfg.epoch_cycles = epoch;
        cfg.samples_per_epoch = cfg.samples_per_epoch.min(epoch as u32);
    }
    let mut gpu = Gpu::new(cfg);

    let mut kids = Vec::new();
    let mut goal_ipc = Vec::new();
    let mut isolated = Vec::new();
    for (slot, name) in spec.kernels.iter().enumerate() {
        let desc = workloads::by_name(name)
            .unwrap_or_else(|| panic!("unknown benchmark {name:?}"));
        // Decorrelate co-runners of the same benchmark.
        let desc = desc.with_seed(desc.seed() ^ (slot as u64).wrapping_mul(0x9e37_79b9));
        kids.push(gpu.launch(desc));
        let iso_ipc = iso.ipc(name, spec.config, spec.cycles);
        isolated.push(iso_ipc);
        goal_ipc.push(spec.goal_fracs[slot].map(|f| f * iso_ipc));
    }

    let mut ctrl = build_controller(spec, &kids, &goal_ipc);
    gpu.run(spec.cycles, ctrl.as_mut());

    let stats = gpu.stats();
    CaseResult {
        ipc: kids.iter().map(|&k| stats.ipc(k)).collect(),
        isolated_ipc: isolated,
        goal_ipc,
        insts_per_energy: gpu_sim::power::insts_per_energy(&gpu),
        preemption_saves: gpu.preempt_stats().saves,
        spec: spec.clone(),
    }
}

fn build_controller(
    spec: &CaseSpec,
    kids: &[KernelId],
    goal_ipc: &[Option<f64>],
) -> Box<dyn Controller> {
    let spec_of = |k: usize| match goal_ipc[k] {
        Some(g) => QosSpec::qos(g),
        None => QosSpec::best_effort(),
    };
    match spec.policy {
        Policy::Spart => {
            let mut ctrl = SpartController::new();
            for (i, &kid) in kids.iter().enumerate() {
                ctrl = ctrl.with_kernel(kid, spec_of(i));
            }
            Box::new(ctrl)
        }
        Policy::Quota(scheme) => {
            let mut mgr =
                QosManager::new(scheme).with_static_adjust(spec.ablations.static_adjust);
            if let Some(h) = spec.ablations.history_adjust {
                mgr = mgr.with_history_adjust(h);
            }
            for (i, &kid) in kids.iter().enumerate() {
                mgr = mgr.with_kernel(kid, spec_of(i));
            }
            Box::new(mgr)
        }
    }
}

/// Runs `specs` in parallel across all cores, preserving input order.
///
/// Isolated IPCs are measured first (deduplicated), also in parallel.
pub fn run_cases(specs: &[CaseSpec], iso: &IsolatedCache) -> Vec<CaseResult> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    // Warm the isolated cache in parallel (unique keys only).
    let unique: Vec<(String, ConfigKind, u64)> = {
        let mut set = std::collections::HashSet::new();
        specs
            .iter()
            .flat_map(|s| {
                s.kernels
                    .iter()
                    .map(move |k| (k.clone(), s.config, s.cycles))
            })
            .filter(|key| set.insert(key.clone()))
            .collect()
    };
    parallel_for_each(&unique, threads, |(name, config, cycles)| {
        iso.ipc(name, *config, *cycles);
    });

    let results: Vec<RwLock<Option<CaseResult>>> =
        specs.iter().map(|_| RwLock::new(None)).collect();
    let indices: Vec<usize> = (0..specs.len()).collect();
    parallel_for_each(&indices, threads, |&i| {
        let r = run_case(&specs[i], iso);
        *results[i].write() = Some(r);
    });
    results
        .into_iter()
        .map(|cell| cell.into_inner().expect("every case ran"))
        .collect()
}

/// Simple work-stealing-free parallel for-each over a slice.
fn parallel_for_each<T: Sync, F: Fn(&T) + Sync>(items: &[T], threads: usize, f: F) {
    if items.is_empty() {
        return;
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let workers = threads.min(items.len()).max(1);
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                f(&items[i]);
            });
        }
    })
    .expect("worker threads must not panic");
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_core::QuotaScheme;

    #[test]
    fn isolated_cache_measures_once() {
        let cache = IsolatedCache::new();
        let a = cache.ipc("sgemm", ConfigKind::Table1, 20_000);
        let b = cache.ipc("sgemm", ConfigKind::Table1, 20_000);
        assert_eq!(a, b);
        assert_eq!(cache.len(), 1);
        assert!(a > 100.0, "sgemm isolated IPC {a} looks wrong");
    }

    #[test]
    fn run_case_produces_consistent_result() {
        let cache = IsolatedCache::new();
        let spec = CaseSpec::new(
            &["sgemm", "lbm"],
            &[Some(0.5), None],
            Policy::Quota(QuotaScheme::Rollover),
            40_000,
        );
        let r = run_case(&spec, &cache);
        assert_eq!(r.ipc.len(), 2);
        assert!(r.ipc[0] > 0.0);
        assert_eq!(r.goal_ipc[1], None);
        let goal = r.goal_ipc[0].expect("QoS kernel has a goal");
        assert!((goal - 0.5 * r.isolated_ipc[0]).abs() < 1e-9);
        assert!(r.insts_per_energy > 0.0);
    }

    #[test]
    fn run_cases_preserves_order_and_parallelism_is_deterministic() {
        let cache = IsolatedCache::new();
        let specs: Vec<CaseSpec> = [("sgemm", "lbm"), ("lbm", "sgemm"), ("sgemm", "spmv")]
            .iter()
            .map(|(q, b)| {
                CaseSpec::new(
                    &[q, b],
                    &[Some(0.5), None],
                    Policy::Quota(QuotaScheme::Rollover),
                    30_000,
                )
            })
            .collect();
        let first = run_cases(&specs, &cache);
        let second = run_cases(&specs, &cache);
        assert_eq!(first.len(), 3);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.ipc, b.ipc, "parallel execution must stay deterministic");
        }
        assert_eq!(first[0].spec.kernels[0], "sgemm");
        assert_eq!(first[1].spec.kernels[0], "lbm");
    }

    #[test]
    fn spart_policy_builds_and_runs() {
        let cache = IsolatedCache::new();
        let spec = CaseSpec::new(&["sgemm", "lbm"], &[Some(0.5), None], Policy::Spart, 30_000);
        let r = run_case(&spec, &cache);
        assert!(r.ipc[0] > 0.0 && r.ipc[1] > 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_benchmark_panics() {
        let cache = IsolatedCache::new();
        let spec = CaseSpec::new(&["nope", "lbm"], &[Some(0.5), None], Policy::Spart, 1_000);
        let _ = run_case(&spec, &cache);
    }
}
