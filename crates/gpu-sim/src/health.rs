//! Simulator health: forward-progress watchdog, invariant audits, and
//! deterministic fault injection.
//!
//! All three facilities are **off by default** and cost nothing when
//! disabled, so the plain [`Gpu::run`](crate::Gpu::run) path stays
//! bit-identical to a build without this module.
//!
//! * The **watchdog** observes machine-wide forward progress (warp
//!   instructions issued) once every
//!   [`watchdog_window`](HealthConfig::watchdog_window) cycles. If a full
//!   window elapses with kernels resident and not a single instruction
//!   issued anywhere, the machine is wedged — quota starvation, a barrier
//!   deadlock, a frozen scheduler — and
//!   [`Gpu::try_run`](crate::Gpu::try_run) returns [`SimError::Watchdog`]
//!   carrying a [`HealthReport`] instead of spinning to the end of the
//!   cycle budget.
//! * **Audit mode** ([`HealthConfig::audit`]) re-derives SM bookkeeping —
//!   occupancy against hardware limits, warp/TB slot free lists, the quota
//!   double-entry ledger, the machine-wide issue bound — at every epoch
//!   boundary and fails fast with a typed [`AuditViolation`] when a
//!   conservation law is broken.
//! * A [`FaultPlan`] injects deterministic faults at fixed cycles; this is
//!   how the watchdog, the audits, and the harness recovery paths are
//!   exercised in tests without depending on real bugs.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::observe::TraceEvent;
use crate::types::Cycle;

/// Health-layer knobs. The default disables everything (zero overhead,
/// behavior identical to a simulator without the health layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HealthConfig {
    /// Forward-progress window in cycles; `0` disables the watchdog.
    ///
    /// The watchdog samples the machine-wide issued-instruction total at
    /// every multiple of this window. One full window with kernels
    /// resident and zero issues trips it.
    pub watchdog_window: Cycle,
    /// Check simulator invariants at every epoch boundary
    /// (see [`AuditKind`] for the list). Intended for tests.
    pub audit: bool,
}

/// One scheduled fault in a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Cycle at which the fault fires (clamped to the next simulated cycle
    /// if the plan is installed after `at_cycle` has passed).
    pub at_cycle: Cycle,
    /// What breaks.
    pub kind: FaultKind,
}

/// The kinds of deterministic faults a plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Gate every kernel with zero quota on every SM and freeze all further
    /// quota writes and refills, producing a machine-wide quota-starvation
    /// livelock that no controller can undo.
    StarveQuota,
    /// Freeze the warp schedulers of one SM: it keeps retiring in-flight
    /// context transfers but never issues another instruction.
    FreezeScheduler {
        /// Index of the SM to freeze.
        sm: usize,
    },
    /// Stall the preemption engine on every SM: `start_preempt` refuses
    /// new context saves, so TB targets can no longer be enforced.
    StallPreemption,
    /// Panic inside the simulation loop (exercises the harness's
    /// panic-isolation and retry policy).
    Panic,
    /// Kill the device outright: the run loop stops mid-epoch and returns
    /// [`SimError::DeviceLost`] with a final [`HealthReport`]. Models a
    /// fallen-off-the-bus GPU; everything resident on it is lost and a
    /// fleet must re-place the work elsewhere.
    DeviceLoss,
    /// Wedge the device: every SM's warp schedulers freeze at once, so the
    /// machine stops issuing but keeps consuming cycles. Unlike
    /// [`FaultKind::DeviceLoss`] the failure is *silent* — only the
    /// forward-progress watchdog can classify it, within one window.
    DeviceWedge,
}

/// A deterministic schedule of injected faults, carried on
/// [`GpuConfig`](crate::GpuConfig). Empty by default.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled faults. Order does not matter; the simulator applies
    /// them in `at_cycle` order.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan with a single fault.
    pub fn one(at_cycle: Cycle, kind: FaultKind) -> Self {
        Self { faults: vec![FaultSpec { at_cycle, kind }] }
    }

    /// Add a fault to the plan (builder style).
    #[must_use]
    pub fn with(mut self, at_cycle: Cycle, kind: FaultKind) -> Self {
        self.faults.push(FaultSpec { at_cycle, kind });
        self
    }

    /// Whether the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Census of one SM's warp slots at report time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WarpStallCounts {
    /// Warps that could issue this cycle (modulo quota gating).
    pub ready: u32,
    /// Warps stalled on an operation latency or an outstanding memory
    /// access (`ready_at` in the future).
    pub waiting: u32,
    /// Warps parked at a TB-wide barrier.
    pub at_barrier: u32,
    /// Warps that have retired all their work.
    pub done: u32,
}

impl WarpStallCounts {
    /// Total resident warps counted.
    pub fn total(&self) -> u32 {
        self.ready + self.waiting + self.at_barrier + self.done
    }
}

/// Per-kernel slice of a [`HealthReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelHealth {
    /// Kernel id (launch order).
    pub kernel: usize,
    /// Benchmark name from the kernel descriptor.
    pub name: String,
    /// TBs currently resident across all SMs.
    pub resident_tbs: u32,
    /// TBs sitting in the preempted-context pool.
    pub preempted_tbs: usize,
    /// Remaining epoch quota summed across SMs (meaningful while gated).
    pub quota: i64,
    /// Number of SMs on which this kernel is quota-gated.
    pub gated_sms: u32,
    /// Number of SMs on which this kernel is gated **and** out of quota.
    pub exhausted_sms: u32,
    /// Thread instructions retired so far, machine-wide.
    pub thread_insts: u64,
}

impl KernelHealth {
    /// Whether this kernel is quota-starved: gated everywhere it is gated,
    /// with no quota left anywhere.
    pub fn quota_starved(&self) -> bool {
        self.gated_sms > 0 && self.exhausted_sms == self.gated_sms
    }
}

/// Per-SM slice of a [`HealthReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmHealth {
    /// SM index.
    pub sm: usize,
    /// Resident TBs (all kernels).
    pub resident_tbs: u32,
    /// Warp stall census.
    pub warps: WarpStallCounts,
    /// Whether a context save/load is still in flight on this SM.
    pub transfer_in_flight: bool,
}

/// Structured snapshot of machine health, produced when the watchdog trips
/// (or on demand via [`Gpu::health_report`](crate::Gpu::health_report)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Cycle at which the snapshot was taken.
    pub cycle: Cycle,
    /// The configured watchdog window (0 when taken on demand).
    pub window: Cycle,
    /// Last watchdog checkpoint at which forward progress was observed.
    /// Granularity is one window.
    pub last_progress_cycle: Cycle,
    /// Machine-wide warp instructions issued since construction.
    pub total_issued: u64,
    /// Per-kernel health, indexed by launch order.
    pub kernels: Vec<KernelHealth>,
    /// Per-SM health.
    pub sms: Vec<SmHealth>,
    /// Flight-recorder tail: the most recent trace events machine-wide,
    /// oldest first. Empty when tracing is disabled.
    pub events: Vec<TraceEvent>,
}

impl HealthReport {
    /// Kernels that are quota-starved (the usual livelock culprits).
    pub fn starved_kernels(&self) -> impl Iterator<Item = &KernelHealth> {
        self.kernels.iter().filter(|k| k.quota_starved())
    }

    /// One-line summary naming the offending kernels, for digests.
    pub fn summary(&self) -> String {
        let starved: Vec<&str> = self.starved_kernels().map(|k| k.name.as_str()).collect();
        if starved.is_empty() {
            format!(
                "no progress since cycle {} (no kernel is quota-starved; \
                 suspect a frozen scheduler or barrier deadlock)",
                self.last_progress_cycle
            )
        } else {
            format!(
                "no progress since cycle {}; quota-starved: {}",
                self.last_progress_cycle,
                starved.join(", ")
            )
        }
    }
}

impl fmt::Display for HealthReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "health: cycle {} window {} last-progress {} issued {}",
            self.cycle, self.window, self.last_progress_cycle, self.total_issued
        )?;
        for k in &self.kernels {
            writeln!(
                f,
                "  kernel {} ({}): {} resident TBs, {} preempted, \
                 quota {} on {} gated SMs ({} exhausted), {} thread insts{}",
                k.kernel,
                k.name,
                k.resident_tbs,
                k.preempted_tbs,
                k.quota,
                k.gated_sms,
                k.exhausted_sms,
                k.thread_insts,
                if k.quota_starved() { " [STARVED]" } else { "" }
            )?;
        }
        for s in &self.sms {
            writeln!(
                f,
                "  sm {}: {} TBs, warps ready {} waiting {} barrier {} done {}{}",
                s.sm,
                s.resident_tbs,
                s.warps.ready,
                s.warps.waiting,
                s.warps.at_barrier,
                s.warps.done,
                if s.transfer_in_flight { ", transfer in flight" } else { "" }
            )?;
        }
        Ok(())
    }
}

/// The invariant families checked in audit mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuditKind {
    /// Resident threads/registers/shared memory exceed the SM's limits, or
    /// do not match the sum over resident TBs.
    Occupancy,
    /// Warp/TB slot free lists disagree with the occupied slots, or a TB
    /// points at a slot owned by someone else.
    SlotAccounting,
    /// The quota double-entry ledger is violated: remaining quota differs
    /// from credits (epoch grants + refills) minus debits (issued lanes).
    QuotaLedger,
    /// An epoch retired more thread instructions than the hardware could
    /// possibly issue (`sms x schedulers x warp width x cycles`).
    IssueBound,
}

impl fmt::Display for AuditKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AuditKind::Occupancy => "occupancy",
            AuditKind::SlotAccounting => "slot-accounting",
            AuditKind::QuotaLedger => "quota-ledger",
            AuditKind::IssueBound => "issue-bound",
        };
        f.write_str(s)
    }
}

/// A failed invariant check, reported by audit mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditViolation {
    /// Cycle of the epoch boundary at which the audit ran.
    pub cycle: Cycle,
    /// SM on which the violation was found (`None` for machine-wide
    /// invariants such as the issue bound).
    pub sm: Option<usize>,
    /// Which invariant family failed.
    pub kind: AuditKind,
    /// Human-readable description with the numbers involved.
    pub detail: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.sm {
            Some(sm) => write!(
                f,
                "audit violation [{}] at cycle {} on sm {}: {}",
                self.kind, self.cycle, sm, self.detail
            ),
            None => write!(
                f,
                "audit violation [{}] at cycle {}: {}",
                self.kind, self.cycle, self.detail
            ),
        }
    }
}

/// Typed simulator failure, returned by
/// [`Gpu::try_run`](crate::Gpu::try_run).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SimError {
    /// The forward-progress watchdog tripped; the report says why.
    Watchdog(Box<HealthReport>),
    /// An audit-mode invariant check failed.
    Audit(AuditViolation),
    /// The device was lost (a [`FaultKind::DeviceLoss`] fault fired): the
    /// run loop stopped mid-epoch and nothing resident survives. The report
    /// is the machine's final state, for post-mortems.
    DeviceLost(Box<HealthReport>),
}

impl SimError {
    /// Short machine-readable kind, for digests.
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::Watchdog(_) => "watchdog",
            SimError::Audit(_) => "audit-violation",
            SimError::DeviceLost(_) => "device-lost",
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Watchdog(report) => {
                write!(f, "watchdog tripped at cycle {}: {}", report.cycle, report.summary())
            }
            SimError::Audit(v) => v.fmt(f),
            SimError::DeviceLost(report) => {
                write!(f, "device lost at cycle {}", report.cycle)
            }
        }
    }
}

impl std::error::Error for SimError {}

use crate::snap::{Snap, SnapError, SnapReader};

crate::impl_snap_struct!(HealthConfig { watchdog_window, audit });

impl Snap for FaultKind {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            FaultKind::StarveQuota => out.push(0),
            FaultKind::FreezeScheduler { sm } => {
                out.push(1);
                sm.encode(out);
            }
            FaultKind::StallPreemption => out.push(2),
            FaultKind::Panic => out.push(3),
            FaultKind::DeviceLoss => out.push(4),
            FaultKind::DeviceWedge => out.push(5),
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match u8::decode(r)? {
            0 => Ok(FaultKind::StarveQuota),
            1 => Ok(FaultKind::FreezeScheduler { sm: usize::decode(r)? }),
            2 => Ok(FaultKind::StallPreemption),
            3 => Ok(FaultKind::Panic),
            4 => Ok(FaultKind::DeviceLoss),
            5 => Ok(FaultKind::DeviceWedge),
            _ => Err(SnapError::Invalid("FaultKind")),
        }
    }
}

crate::impl_snap_struct!(FaultSpec { at_cycle, kind });

crate::impl_snap_struct!(FaultPlan { faults });

crate::impl_snap_struct!(WarpStallCounts { ready, waiting, at_barrier, done });

crate::impl_snap_struct!(KernelHealth {
    kernel,
    name,
    resident_tbs,
    preempted_tbs,
    quota,
    gated_sms,
    exhausted_sms,
    thread_insts,
});

crate::impl_snap_struct!(SmHealth { sm, resident_tbs, warps, transfer_in_flight });

crate::impl_snap_struct!(HealthReport {
    cycle,
    window,
    last_progress_cycle,
    total_issued,
    kernels,
    sms,
    events,
});

crate::impl_snap_enum!(AuditKind {
    Occupancy = 0,
    SlotAccounting = 1,
    QuotaLedger = 2,
    IssueBound = 3,
});

crate::impl_snap_struct!(AuditViolation { cycle, sm, kind, detail });

impl Snap for SimError {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            SimError::Watchdog(report) => {
                out.push(0);
                (**report).encode(out);
            }
            SimError::Audit(v) => {
                out.push(1);
                v.encode(out);
            }
            SimError::DeviceLost(report) => {
                out.push(2);
                (**report).encode(out);
            }
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match u8::decode(r)? {
            0 => Ok(SimError::Watchdog(Box::new(HealthReport::decode(r)?))),
            1 => Ok(SimError::Audit(AuditViolation::decode(r)?)),
            2 => Ok(SimError::DeviceLost(Box::new(HealthReport::decode(r)?))),
            _ => Err(SnapError::Invalid("SimError")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_disable_everything() {
        let h = HealthConfig::default();
        assert_eq!(h.watchdog_window, 0);
        assert!(!h.audit);
        assert!(FaultPlan::default().is_empty());
    }

    #[test]
    fn fault_plan_builder() {
        let plan = FaultPlan::one(10, FaultKind::StarveQuota).with(5, FaultKind::Panic);
        assert_eq!(plan.faults.len(), 2);
        assert!(!plan.is_empty());
    }

    #[test]
    fn report_summary_names_starved_kernels() {
        let report = HealthReport {
            cycle: 4_000,
            window: 2_000,
            last_progress_cycle: 2_000,
            total_issued: 17,
            kernels: vec![
                KernelHealth {
                    kernel: 0,
                    name: "sgemm".into(),
                    resident_tbs: 4,
                    preempted_tbs: 0,
                    quota: 0,
                    gated_sms: 2,
                    exhausted_sms: 2,
                    thread_insts: 544,
                },
                KernelHealth {
                    kernel: 1,
                    name: "lbm".into(),
                    resident_tbs: 4,
                    preempted_tbs: 1,
                    quota: 12,
                    gated_sms: 2,
                    exhausted_sms: 1,
                    thread_insts: 320,
                },
            ],
            sms: vec![SmHealth {
                sm: 0,
                resident_tbs: 8,
                warps: WarpStallCounts { ready: 6, waiting: 1, at_barrier: 1, done: 0 },
                transfer_in_flight: false,
            }],
            events: vec![],
        };
        assert!(report.kernels[0].quota_starved());
        assert!(!report.kernels[1].quota_starved());
        let summary = report.summary();
        assert!(summary.contains("sgemm"), "summary must name the starved kernel: {summary}");
        assert!(!summary.contains("lbm"), "non-starved kernels are not culprits: {summary}");
        let display = format!("{report}");
        assert!(display.contains("[STARVED]"));
        let err = SimError::Watchdog(Box::new(report));
        assert_eq!(err.kind(), "watchdog");
        assert!(format!("{err}").contains("sgemm"));
    }

    #[test]
    fn audit_violation_display() {
        let v = AuditViolation {
            cycle: 10_000,
            sm: Some(3),
            kind: AuditKind::QuotaLedger,
            detail: "kernel 1: quota 5 != credits 40 - debits 32".into(),
        };
        let s = format!("{}", SimError::Audit(v));
        assert!(s.contains("quota-ledger") && s.contains("sm 3"), "{s}");
    }
}
