//! # harness — regenerating every table and figure of the paper
//!
//! The evaluation methodology of §4.1, reproduced end to end:
//!
//! * [`cases`] — enumerating the 90 kernel pairs and 60 trios, the QoS-goal
//!   sweeps, and the policies under comparison,
//! * [`scale`] — run scales (cycles per case, case subsampling): `Paper`
//!   matches the 2 M-cycle methodology; `Quick` and `Smoke` trade fidelity
//!   for wall-clock time,
//! * [`runner`] — isolated-IPC measurement (cached, with per-key in-flight
//!   dedup) and parallel, panic-isolated case execution,
//! * [`error`] — typed per-case failures ([`error::CaseError`]) and the
//!   end-of-run failure digest,
//! * [`metrics`] — `QoSreach`, normalized throughput, miss-distance
//!   buckets, energy efficiency,
//! * [`experiments`] — one entry point per table/figure (`fig5` … `fig14`,
//!   `table1`, `table2`, ablations),
//! * [`report`] — plain-text table rendering shared by the `repro` binary
//!   and the Criterion benches,
//! * [`export`] — CSV serialization of raw case results for external
//!   plotting,
//! * [`golden`] — the golden-trace corpus under `tests/golden/`: canonical
//!   scenarios whose per-epoch telemetry is snapshotted byte-exactly
//!   (regenerate with `repro golden --bless`),
//! * [`perfetto`] — Chrome-trace / Perfetto JSON export of a traced run
//!   (`repro trace <scenario> --out trace.json`), with a strict schema
//!   checker,
//! * [`checkpoint`] — crash-resumable sweeps: a checksummed, rotated journal
//!   of completed cases plus periodic mid-case machine snapshots, driven by
//!   `repro run --checkpoint-dir` / `repro resume` / `repro inspect`,
//! * [`fleet_cli`] — `repro fleet <scenario>`: checkpointed, crash-resumable
//!   runs of the multi-GPU serving scenarios from the `fleet` crate, with
//!   per-tenant Perfetto export,
//! * [`telemetry`] — metrics export (`repro metrics`, `repro fleet …
//!   --metrics-out`): deterministic JSON + Prometheus text documents carrying
//!   the counter time series, per-tenant latency histograms, and SLO burn
//!   tracks; and the host-time self-profile (`repro profile <scenario>`),
//! * [`validate`] — `repro validate`: replay the committed FGTR trace corpus
//!   (`tests/golden/validate/`) and correlate IPC, residency, quota grants,
//!   and cache hit rates against committed expectations (Pearson ≥ 0.99 plus
//!   a relative-error gate); `--bless` re-pins expectations, `--recapture`
//!   re-records the traces.
//!
//! # Example
//!
//! ```no_run
//! use harness::{cases::Policy, experiments, scale::RunScale};
//!
//! // Regenerate Fig. 6a at reduced scale and print it.
//! let report = experiments::fig6a(RunScale::Smoke);
//! println!("{report}");
//! assert!(report.contains("Rollover"));
//! let _ = Policy::Spart;
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cases;
pub mod checkpoint;
pub mod error;
pub mod experiments;
pub mod export;
pub mod fleet_cli;
pub mod golden;
pub mod metrics;
pub mod perfetto;
pub mod report;
pub mod runner;
pub mod scale;
pub mod telemetry;
pub mod validate;

pub use cases::{CaseSpec, ConfigKind, Policy};
pub use checkpoint::{
    resume_sweep, run_sweep_checkpointed, CheckpointDir, CheckpointError, FailureSnapshot,
    SweepCheckpoint, SweepOutcome,
};
pub use error::{failure_digest, CaseError, FailedCase};
pub use metrics::CaseResult;
pub use runner::{run_case, run_case_isolated, run_cases, IsolatedCache};
pub use scale::RunScale;
