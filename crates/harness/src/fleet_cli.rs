//! CLI driver for `repro fleet`: checkpointed, crash-resumable runs of the
//! named fleet scenarios.
//!
//! The fleet serializes its own state ([`fleet::Fleet::snapshot`]); this
//! module wraps those bytes in a small framed file — magic, frame version,
//! scenario name, seed, checkpoint cadence, payload, FNV-1a checksum — and
//! persists it through [`crate::export::write_atomic`], so a SIGKILL at any
//! moment leaves either the previous complete checkpoint or the new one,
//! never a torn file. `repro fleet resume <DIR>` rebuilds the scenario
//! config from the frame header and continues; because every scheduler
//! decision is a pure function of config, seed, and tick, the resumed run's
//! final report is byte-identical to an uninterrupted run's.

use std::path::{Path, PathBuf};
use std::time::Instant;

use fleet::{scenarios, Fleet};
use gpu_sim::snap::{fnv1a, Snap, SnapReader};
use gpu_sim::telemetry::ProfPhase;

use crate::export::write_atomic;

/// File name of the fleet checkpoint inside a checkpoint directory. A
/// single rolling generation: [`write_atomic`] makes each save all-or-
/// nothing, and the fleet snapshot is self-validating (version + config
/// fingerprint) on top of the frame checksum.
pub const FLEET_CHECKPOINT_FILE: &str = "fleet-ckpt.bin";

/// Default checkpoint cadence, in fleet ticks.
pub const DEFAULT_FLEET_EVERY: u64 = 5;

const MAGIC: &[u8; 4] = b"FGFL";
const FRAME_VERSION: u32 = 1;

/// A framed fleet checkpoint: everything needed to resume a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetCheckpoint {
    /// Scenario name (must be in [`fleet::scenarios::SCENARIOS`]).
    pub scenario: String,
    /// Master seed the run was started with.
    pub seed: u64,
    /// Checkpoint cadence the run was started with, in ticks.
    pub every_ticks: u64,
    /// Opaque [`fleet::Fleet::snapshot`] bytes.
    pub state: Vec<u8>,
}

fn frame(ckpt: &FleetCheckpoint) -> Vec<u8> {
    let mut out = Vec::with_capacity(ckpt.state.len() + 64);
    out.extend_from_slice(MAGIC);
    FRAME_VERSION.encode(&mut out);
    ckpt.scenario.encode(&mut out);
    ckpt.seed.encode(&mut out);
    ckpt.every_ticks.encode(&mut out);
    ckpt.state.encode(&mut out);
    let sum = fnv1a(&out);
    sum.encode(&mut out);
    out
}

/// Parses a framed fleet checkpoint, verifying magic, version and checksum.
///
/// # Errors
///
/// A description of the first structural problem.
pub fn unframe(bytes: &[u8]) -> Result<FleetCheckpoint, String> {
    if bytes.len() < MAGIC.len() + 12 || &bytes[..MAGIC.len()] != MAGIC {
        return Err("not a fleet checkpoint (bad magic)".to_string());
    }
    let body_len = bytes.len() - 8;
    let mut tail = SnapReader::new(&bytes[body_len..]);
    let stored = u64::decode(&mut tail).map_err(|e| format!("checksum field: {e}"))?;
    if fnv1a(&bytes[..body_len]) != stored {
        return Err("fleet checkpoint is corrupt (checksum mismatch)".to_string());
    }
    let mut r = SnapReader::new(&bytes[MAGIC.len()..body_len]);
    let fail = |e: gpu_sim::snap::SnapError| format!("fleet checkpoint frame: {e}");
    let version = u32::decode(&mut r).map_err(fail)?;
    if version != FRAME_VERSION {
        return Err(format!(
            "fleet checkpoint frame version {version}, this build expects {FRAME_VERSION}"
        ));
    }
    let scenario = String::decode(&mut r).map_err(fail)?;
    let seed = u64::decode(&mut r).map_err(fail)?;
    let every_ticks = u64::decode(&mut r).map_err(fail)?;
    let state = Vec::<u8>::decode(&mut r).map_err(fail)?;
    if !r.is_exhausted() {
        return Err("fleet checkpoint frame has trailing bytes".to_string());
    }
    Ok(FleetCheckpoint { scenario, seed, every_ticks, state })
}

/// Atomically persists `ckpt` into `dir` (creating it if needed) and
/// returns the file path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_checkpoint(dir: &Path, ckpt: &FleetCheckpoint) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(FLEET_CHECKPOINT_FILE);
    write_atomic(&path, &frame(ckpt))?;
    Ok(path)
}

/// Loads and verifies the checkpoint in `dir`.
///
/// # Errors
///
/// A description of what failed: missing file, corrupt frame, or a frame
/// from a different build.
pub fn load_checkpoint(dir: &Path) -> Result<FleetCheckpoint, String> {
    let path = dir.join(FLEET_CHECKPOINT_FILE);
    let bytes = std::fs::read(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    unframe(&bytes)
}

/// Outcome of a fleet run: the rendered report plus whether the run held
/// its contract (every guaranteed tenant met its floor, no request lost).
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// The deterministic fleet report (the command's only stdout).
    pub report: String,
    /// Whether every guaranteed SLO was met and no request was lost.
    pub ok: bool,
    /// Host-time hotspot table when profiling was requested; printed to
    /// stderr so it never perturbs the deterministic report stream.
    pub profile: Option<String>,
}

/// Optional outputs of a fleet run. The default runs nothing extra:
/// checkpointing off, cadence [`DEFAULT_FLEET_EVERY`], no trace, no
/// metrics export, profiler disarmed.
#[derive(Debug, Clone, Copy)]
pub struct FleetRunOpts<'a> {
    /// Checkpoint directory; `None` disables checkpointing.
    pub checkpoint_dir: Option<&'a Path>,
    /// Checkpoint cadence in ticks (clamped to ≥ 1).
    pub every_ticks: u64,
    /// Perfetto trace output path, written after the run completes.
    pub trace: Option<&'a Path>,
    /// Metrics export path: JSON at this path, Prometheus text at the
    /// same path with a `.prom` extension.
    pub metrics_out: Option<&'a Path>,
    /// Arm the host profiler and render a hotspot table into
    /// [`FleetOutcome::profile`].
    pub profile: bool,
}

impl Default for FleetRunOpts<'_> {
    fn default() -> Self {
        Self {
            checkpoint_dir: None,
            every_ticks: DEFAULT_FLEET_EVERY,
            trace: None,
            metrics_out: None,
            profile: false,
        }
    }
}

/// Runs scenario `name` from the start with the outputs selected in
/// `opts`: checkpoints every `every_ticks` into `checkpoint_dir` when
/// given, then a Perfetto trace and/or a metrics export (JSON +
/// Prometheus) after the run completes.
///
/// # Errors
///
/// Unknown scenario names, filesystem errors, or an export document
/// failing its own schema check.
pub fn run_scenario(name: &str, seed: u64, opts: &FleetRunOpts) -> Result<FleetOutcome, String> {
    let cfg = scenarios::by_name(name, seed).ok_or_else(|| {
        format!("unknown scenario {name:?} (known: {})", scenarios::SCENARIOS.join(", "))
    })?;
    let fleet = Fleet::new(cfg);
    drive(fleet, name, seed, opts)
}

/// Resumes the run checkpointed in `dir` and finishes it, continuing the
/// checkpoint cadence recorded in the frame. `metrics_out`, when given,
/// exports the finished run's metrics exactly as a `--metrics-out` run
/// would — the export is a pure function of snapshotted state, so it is
/// byte-identical to the uninterrupted run's.
///
/// # Errors
///
/// Checkpoint loading/validation failures, or errors from the continued
/// run.
pub fn resume(dir: &Path, metrics_out: Option<&Path>) -> Result<FleetOutcome, String> {
    let ckpt = load_checkpoint(dir)?;
    let cfg = scenarios::by_name(&ckpt.scenario, ckpt.seed).ok_or_else(|| {
        format!("checkpointed scenario {:?} is unknown to this build", ckpt.scenario)
    })?;
    let fleet = Fleet::restore(cfg, &ckpt.state)?;
    let opts = FleetRunOpts {
        checkpoint_dir: Some(dir),
        every_ticks: ckpt.every_ticks,
        metrics_out,
        ..FleetRunOpts::default()
    };
    drive(fleet, &ckpt.scenario, ckpt.seed, &opts)
}

fn drive(
    mut fleet: Fleet,
    scenario: &str,
    seed: u64,
    opts: &FleetRunOpts,
) -> Result<FleetOutcome, String> {
    if opts.profile {
        fleet.set_profiling(true);
    }
    let every = opts.every_ticks.max(1);
    let started = Instant::now();
    while !fleet.finished() {
        if let Some(dir) = opts.checkpoint_dir {
            if fleet.ticks().is_multiple_of(every) {
                let ckpt = FleetCheckpoint {
                    scenario: scenario.to_string(),
                    seed,
                    every_ticks: every,
                    state: fleet.snapshot(),
                };
                save_timed(&mut fleet, dir, &ckpt)?;
            }
        }
        fleet.step();
    }
    if let Some(dir) = opts.checkpoint_dir {
        // Final checkpoint: a resume of a finished run just reprints the
        // report instead of re-simulating anything.
        let ckpt = FleetCheckpoint {
            scenario: scenario.to_string(),
            seed,
            every_ticks: every,
            state: fleet.snapshot(),
        };
        save_timed(&mut fleet, dir, &ckpt)?;
    }
    let profile = opts.profile.then(|| {
        let wall = started.elapsed().as_nanos() as u64;
        crate::telemetry::render_hotspot_table(scenario, fleet.profiler(), wall)
    });
    if let Some(path) = opts.trace {
        let doc = crate::perfetto::render_fleet_trace(&fleet, scenario);
        crate::perfetto::check_chrome_trace(&doc)
            .map_err(|e| format!("internal error: fleet trace fails its own schema check: {e}"))?;
        write_atomic(path, doc.as_bytes())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    if let Some(path) = opts.metrics_out {
        write_metrics(&fleet, scenario, path)?;
    }
    let ok = fleet.all_guaranteed_met() && fleet.lost_requests() == 0;
    Ok(FleetOutcome { report: fleet.report(scenario), ok, profile })
}

/// Saves a checkpoint, attributing the write's wall time to
/// [`ProfPhase::CheckpointWrite`] when the profiler is armed.
fn save_timed(fleet: &mut Fleet, dir: &Path, ckpt: &FleetCheckpoint) -> Result<(), String> {
    let t = fleet.profiler().is_enabled().then(Instant::now);
    save_checkpoint(dir, ckpt).map_err(|e| format!("cannot save fleet checkpoint: {e}"))?;
    if let Some(t) = t {
        fleet.profiler_mut().add(ProfPhase::CheckpointWrite, t.elapsed().as_nanos() as u64);
    }
    Ok(())
}

/// Writes the metrics pair: self-checked JSON at `path`, Prometheus text
/// at `path` with a `.prom` extension.
fn write_metrics(fleet: &Fleet, scenario: &str, path: &Path) -> Result<(), String> {
    let (json, prom) = crate::telemetry::fleet_metrics_docs(fleet, scenario)?;
    write_atomic(path, json.as_bytes())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    let prom_path = path.with_extension("prom");
    write_atomic(&prom_path, prom.as_bytes())
        .map_err(|e| format!("cannot write {}: {e}", prom_path.display()))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fgqos-fleet-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn checkpoint_frame_round_trips() {
        let ckpt = FleetCheckpoint {
            scenario: "chaos".to_string(),
            seed: 42,
            every_ticks: 5,
            state: vec![1, 2, 3, 4, 5],
        };
        let back = unframe(&frame(&ckpt)).expect("round trip");
        assert_eq!(back, ckpt);
    }

    #[test]
    fn corrupt_frame_is_rejected_by_checksum() {
        let ckpt = FleetCheckpoint {
            scenario: "steady".to_string(),
            seed: 1,
            every_ticks: 1,
            state: vec![9; 64],
        };
        let mut bytes = frame(&ckpt);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        let err = unframe(&bytes).expect_err("must reject");
        assert!(err.contains("checksum"), "{err}");
        assert!(unframe(b"nope").is_err(), "bad magic");
    }

    #[test]
    fn run_save_and_resume_report_identically() {
        let dir = tmp_dir("resume");
        let opts = FleetRunOpts { every_ticks: 1, ..FleetRunOpts::default() };
        let full = run_scenario("steady", 7, &opts).expect("full run");
        // Simulate a crash: run the same scenario but snapshot mid-run,
        // then resume from the persisted state only.
        let cfg = scenarios::by_name("steady", 7).expect("known");
        let mut partial = Fleet::new(cfg);
        for _ in 0..4 {
            partial.step();
        }
        save_checkpoint(
            &dir,
            &FleetCheckpoint {
                scenario: "steady".to_string(),
                seed: 7,
                every_ticks: 1,
                state: partial.snapshot(),
            },
        )
        .expect("save");
        drop(partial);
        let resumed = resume(&dir, None).expect("resume");
        assert_eq!(resumed.report, full.report, "resume converges byte-identically");
        assert_eq!(resumed.ok, full.ok);
        // Resuming the now-finished checkpoint reprints the same report.
        let again = resume(&dir, None).expect("resume finished");
        assert_eq!(again.report, full.report);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_scenario_is_an_error() {
        let err = run_scenario("nope", 1, &FleetRunOpts::default()).expect_err("unknown");
        assert!(err.contains("unknown scenario"), "{err}");
    }
}
