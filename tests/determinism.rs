//! Determinism tests: the simulator is a pure function of its seeded
//! configuration. The same config run twice — serially, through the
//! thread-parallel harness, or with idle fast-forward toggled — must produce
//! a bit-identical epoch-record stream, witnessed by
//! [`fgqos::sim::trace::records_hash`].

use fgqos::bench::{run_cases, CaseSpec, IsolatedCache, Policy};
use fgqos::qos::QuotaScheme;
use fgqos::sim::trace::{records_hash, Tracer};
use fgqos::{Gpu, GpuConfig, QosManager, QosSpec};

/// A managed pair with preemption and gating active: plenty of state to
/// diverge if anything in the pipeline were order- or time-dependent.
fn traced_run(fast_forward: bool) -> u64 {
    let mut cfg = GpuConfig::tiny();
    cfg.fast_forward = fast_forward;
    let mut gpu = Gpu::new(cfg);
    let q = gpu.launch(fgqos::workloads::by_name("mri-q").expect("known"));
    let be = gpu.launch(fgqos::workloads::by_name("lbm").expect("known"));
    let mut ctrl = Tracer::new(
        QosManager::new(QuotaScheme::Rollover)
            .with_kernel(q, QosSpec::qos(40.0))
            .with_kernel(be, QosSpec::best_effort()),
    );
    gpu.run(20_000, &mut ctrl);
    records_hash(ctrl.records())
}

#[test]
fn identical_configs_hash_identically() {
    assert_eq!(traced_run(true), traced_run(true));
}

#[test]
fn fast_forward_does_not_change_the_record_stream() {
    assert_eq!(traced_run(true), traced_run(false));
}

#[test]
fn parallel_sweeps_reproduce_their_trace_hashes() {
    let specs: Vec<CaseSpec> = [("sgemm", "lbm"), ("mri-q", "spmv"), ("sad", "sgemm")]
        .iter()
        .map(|(q, be)| {
            CaseSpec::new(
                &[q, be],
                &[Some(0.5), None],
                Policy::Quota(QuotaScheme::Rollover),
                30_000,
            )
        })
        .collect();
    // Separate caches: the second sweep must redo its isolated measurements
    // and still land on the same hashes.
    let first = run_cases(&specs, &IsolatedCache::new());
    let second = run_cases(&specs, &IsolatedCache::new());
    for (label, (a, b)) in specs.iter().zip(first.iter().zip(&second)) {
        let a = a.as_ref().expect("case runs");
        let b = b.as_ref().expect("case runs");
        assert_ne!(a.trace_hash, 0, "{}: trace hash was never computed", label.label());
        assert_eq!(
            a.trace_hash,
            b.trace_hash,
            "{}: thread-parallel sweep diverged between runs",
            label.label()
        );
    }
}
