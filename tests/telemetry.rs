//! Determinism tests for the telemetry layer (DESIGN.md §17).
//!
//! The contract under test: latency histograms and the counter time series
//! are simulated state, not measurement noise — their `Snap` encodings are
//! byte-identical across serial vs. concurrent SM-domain stepping
//! (`intra_parallel`), across idle fast-forward on vs. off, and across a
//! snapshot → process-death → restore cut at any epoch boundary. The host
//! profiler is the deliberate exception (wall-clock, host-only) and is
//! asserted to stay *out* of snapshots.

use fgqos::sim::SharingMode;
use fgqos::{Gpu, GpuConfig, NullController, QosManager, QosSpec, QuotaScheme};
use gpu_sim::snap::encode_to_vec;
use gpu_sim::telemetry::LatencyHistogram;

const SERIES_CAP: usize = 1024;

/// Serializes everything the telemetry layer owns on a machine: the
/// sampled counter series plus the per-kernel preemption-save histograms.
fn telemetry_bytes(gpu: &Gpu) -> Vec<u8> {
    let mut out = encode_to_vec(gpu.metrics_series());
    for k in gpu.kernel_ids() {
        out.extend(encode_to_vec(&gpu.preempt_save_histogram(k)));
    }
    out
}

/// An SMK pair whose thread-block targets are squeezed mid-run, forcing
/// deterministic preemptions (and thus non-empty save-latency histograms),
/// with the counter series sampling every epoch.
fn squeezed_pair(fast_forward: bool, intra_parallel: bool) -> Gpu {
    let mut cfg = GpuConfig::tiny();
    cfg.fast_forward = fast_forward;
    cfg.intra_parallel = intra_parallel;
    let mut gpu = Gpu::new(cfg);
    let a = gpu.launch(fgqos::workloads::by_name("lbm").expect("known"));
    let b = gpu.launch(fgqos::workloads::by_name("spmv").expect("known"));
    gpu.set_sharing_mode(SharingMode::Smk);
    gpu.enable_metrics_series(SERIES_CAP);
    for sm in gpu.sm_ids().collect::<Vec<_>>() {
        gpu.set_tb_target(sm, a, 4);
        gpu.set_tb_target(sm, b, 4);
    }
    gpu.run(10_000, &mut NullController);
    // Squeeze kernel a down: its over-target thread blocks are preempted,
    // each save landing in the preempt-save histogram.
    for sm in gpu.sm_ids().collect::<Vec<_>>() {
        gpu.set_tb_target(sm, a, 1);
        gpu.set_tb_target(sm, b, 7);
    }
    gpu.run(10_000, &mut NullController);
    gpu
}

#[test]
fn histograms_and_series_are_identical_across_stepping_modes() {
    let base = telemetry_bytes(&squeezed_pair(true, false));
    assert_eq!(
        base,
        telemetry_bytes(&squeezed_pair(true, true)),
        "intra_parallel stepping changed telemetry bytes"
    );
    assert_eq!(
        base,
        telemetry_bytes(&squeezed_pair(false, false)),
        "fast-forward changed telemetry bytes"
    );
    let gpu = squeezed_pair(true, false);
    let recorded: u64 = gpu.kernel_ids().map(|k| gpu.preempt_save_histogram(k).count()).sum();
    assert!(recorded > 0, "squeeze produced no preemption saves — test lost its teeth");
    assert!(!gpu.metrics_series().rows().is_empty(), "series never sampled");
}

#[test]
fn telemetry_survives_snapshot_and_restore_byte_identically() {
    // Straight run.
    let straight = squeezed_pair(true, false);
    // Same run cut at the squeeze point: snapshot, "die", restore into a
    // fresh machine, continue.
    let mut cfg = GpuConfig::tiny();
    cfg.fast_forward = true;
    let mut gpu = Gpu::new(cfg.clone());
    let a = gpu.launch(fgqos::workloads::by_name("lbm").expect("known"));
    let b = gpu.launch(fgqos::workloads::by_name("spmv").expect("known"));
    gpu.set_sharing_mode(SharingMode::Smk);
    gpu.enable_metrics_series(SERIES_CAP);
    for sm in gpu.sm_ids().collect::<Vec<_>>() {
        gpu.set_tb_target(sm, a, 4);
        gpu.set_tb_target(sm, b, 4);
    }
    gpu.run(10_000, &mut NullController);
    let blob = gpu.snapshot().expect("10_000 is epoch-aligned for tiny");
    drop(gpu);
    let mut resumed = Gpu::new(cfg);
    resumed.restore(&blob).expect("same config restores");
    for sm in resumed.sm_ids().collect::<Vec<_>>() {
        resumed.set_tb_target(sm, a, 1);
        resumed.set_tb_target(sm, b, 7);
    }
    resumed.run(10_000, &mut NullController);
    assert_eq!(
        telemetry_bytes(&straight),
        telemetry_bytes(&resumed),
        "telemetry diverged across snapshot/restore"
    );
}

#[test]
fn profiler_state_never_rides_a_snapshot() {
    let mut cfg = GpuConfig::tiny();
    cfg.fast_forward = true;
    let mut gpu = Gpu::new(cfg.clone());
    let q = gpu.launch(fgqos::workloads::by_name("mri-q").expect("known"));
    let be = gpu.launch(fgqos::workloads::by_name("lbm").expect("known"));
    let mut mgr = QosManager::new(QuotaScheme::Rollover)
        .with_kernel(q, QosSpec::qos(40.0))
        .with_kernel(be, QosSpec::best_effort());
    gpu.set_profiling(true);
    gpu.run(10_000, &mut mgr);
    assert!(gpu.profiler().attributed_nanos() > 0, "profiler never attributed anything");
    // A cold run without the profiler must snapshot to the same bytes: the
    // profiler is host-side observation, not simulated state.
    let mut cold = Gpu::new(cfg);
    let q2 = cold.launch(fgqos::workloads::by_name("mri-q").expect("known"));
    let be2 = cold.launch(fgqos::workloads::by_name("lbm").expect("known"));
    assert_eq!((q, be), (q2, be2), "launch order is deterministic");
    let mut mgr2 = QosManager::new(QuotaScheme::Rollover)
        .with_kernel(q2, QosSpec::qos(40.0))
        .with_kernel(be2, QosSpec::best_effort());
    cold.run(10_000, &mut mgr2);
    let blob = gpu.snapshot().expect("aligned");
    assert_eq!(
        blob.to_bytes(),
        cold.snapshot().expect("aligned").to_bytes(),
        "profiling changed snapshot bytes"
    );
    // And a restored machine comes back with a disarmed, empty profiler.
    let mut target = Gpu::new({
        let mut cfg = GpuConfig::tiny();
        cfg.fast_forward = true;
        cfg
    });
    target.restore(&blob).expect("same config restores");
    assert!(!target.profiler().is_enabled(), "restore armed the profiler");
    assert_eq!(target.profiler().attributed_nanos(), 0, "restore resurrected host time");
}

#[test]
fn empty_histogram_quantiles_are_total() {
    let h = LatencyHistogram::new();
    assert_eq!(h.p50(), 0);
    assert_eq!(h.p999(), 0);
    assert_eq!(h.count(), 0);
}
