//! No-op `#[derive(Serialize, Deserialize)]` backing the offline serde
//! stand-in. The stand-in's traits are blanket-implemented for every type, so
//! the derives have nothing to emit; they exist purely so `#[derive(...)]`
//! attributes on workspace types keep compiling unchanged.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` invocation.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` invocation.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
