//! Differential tests for the snapshot/restore subsystem.
//!
//! The contract under test: running to an epoch-aligned cycle `C`, taking a
//! [`Gpu::snapshot`], restoring it into a *fresh* machine (plus a
//! round-tripped controller), and continuing is bit-identical — same stats,
//! same epoch telemetry, same `records_hash`, same health outcome — to
//! never having snapshotted at all. Exercised across all controllers, quota
//! schemes, injected faults, and with the idle-cycle fast-forward both on
//! and off.
//!
//! Comparison rules mirror the fault-tolerance suite: a *healthy* chunked
//! run equals a straight run exactly; a *faulted* chunked run is still
//! deterministic but may trip the watchdog up to one window later than a
//! straight run (the per-call check schedule). So the snapshotted run is
//! always compared against an identically-chunked run, and additionally
//! against the straight run when no fault is injected.

use fgqos::sim::rng::SplitMix64;
use fgqos::sim::snap::{decode_from_slice, encode_to_vec};
use fgqos::sim::trace::{records_hash, EpochRecord, Tracer};
use fgqos::{
    Controller, Gpu, GpuConfig, KernelDesc, QosManager, QosSpec, QuotaScheme, SpartController,
};
use gpu_sim::{AccessPattern, KernelStats, Op, Snap, SnapshotBlob};
use proptest::prelude::*;

// ----------------------------------------------------------------------
// A concrete, snapshottable controller covering every policy under test.
// ----------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Ctrl {
    Null,
    Spart(SpartController),
    Quota(QosManager),
}

impl Controller for Ctrl {
    fn on_epoch(&mut self, gpu: &mut Gpu, epoch: u64) {
        match self {
            Ctrl::Null => {}
            Ctrl::Spart(c) => c.on_epoch(gpu, epoch),
            Ctrl::Quota(m) => m.on_epoch(gpu, epoch),
        }
    }
}

impl Snap for Ctrl {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Ctrl::Null => out.push(0),
            Ctrl::Spart(c) => {
                out.push(1);
                Snap::encode(c, out);
            }
            Ctrl::Quota(m) => {
                out.push(2);
                Snap::encode(m, out);
            }
        }
    }
    fn decode(r: &mut gpu_sim::SnapReader<'_>) -> Result<Self, gpu_sim::SnapError> {
        match <u8 as Snap>::decode(r)? {
            0 => Ok(Ctrl::Null),
            1 => Ok(Ctrl::Spart(<SpartController as Snap>::decode(r)?)),
            2 => Ok(Ctrl::Quota(<QosManager as Snap>::decode(r)?)),
            _ => Err(gpu_sim::SnapError::Invalid("Ctrl")),
        }
    }
}

// ----------------------------------------------------------------------
// Scenario construction (mirrors tests/properties.rs).
// ----------------------------------------------------------------------

fn build_config(
    fast_forward: bool,
    watchdog: bool,
    audit: bool,
    fault: Option<(u64, fgqos::sim::FaultKind)>,
) -> GpuConfig {
    let mut cfg = GpuConfig::tiny();
    cfg.fast_forward = fast_forward;
    // Recorder on: the counter registry and flight-recorder rings are part
    // of the snapshot payload, so every case round-trips them too.
    cfg.trace.level = fgqos::sim::TraceLevel::Events;
    cfg.health.audit = audit;
    cfg.health.watchdog_window = if watchdog { 2 * cfg.epoch_cycles } else { 0 };
    if let Some((at, kind)) = fault {
        cfg.faults = fgqos::sim::FaultPlan::one(at, kind);
    }
    cfg
}

fn build_gpu(cfg: &GpuConfig, descs: &[KernelDesc]) -> (Gpu, Vec<fgqos::KernelId>) {
    let mut gpu = Gpu::new(cfg.clone());
    let kids = descs.iter().map(|d| gpu.launch(d.clone())).collect();
    (gpu, kids)
}

fn build_ctrl(ctrl_sel: usize, kids: &[fgqos::KernelId], goal: f64) -> Ctrl {
    let spec = |slot: usize| {
        if slot == 0 {
            QosSpec::qos(goal)
        } else if slot == 1 && kids.len() == 3 {
            QosSpec::qos(goal * 0.5)
        } else {
            QosSpec::best_effort()
        }
    };
    match ctrl_sel {
        0 => Ctrl::Null,
        5 => {
            let mut c = SpartController::new();
            for (slot, &k) in kids.iter().enumerate() {
                c = c.with_kernel(k, spec(slot));
            }
            Ctrl::Spart(c)
        }
        sel => {
            let scheme = match sel {
                1 => QuotaScheme::Naive,
                2 => QuotaScheme::Rollover,
                3 => QuotaScheme::RolloverTime,
                _ => QuotaScheme::Elastic,
            };
            let mut m = QosManager::new(scheme);
            for (slot, &k) in kids.iter().enumerate() {
                m = m.with_kernel(k, spec(slot));
            }
            Ctrl::Quota(m)
        }
    }
}

/// Everything observable about one run; two runs of the same scenario must
/// compare equal field-for-field.
#[derive(Debug, Clone, PartialEq)]
struct RunSummary {
    outcome: Result<(), fgqos::sim::SimError>,
    cycle: u64,
    kernels: Vec<KernelStats>,
    records: Vec<EpochRecord>,
    records_hash: u64,
    per_sm_busy_issued: Vec<(u64, u64)>,
    l2: (u64, u64),
    preempt: fgqos::sim::preempt::PreemptStats,
    insts_per_energy_bits: u64,
    // Observability surface: the counter registry (including the stepping-
    // dependent ff_skipped_cycles — both runs step identically here) and the
    // merged flight-recorder stream must survive the round trip bit-exactly.
    events: Vec<fgqos::sim::TraceEvent>,
    counters: Vec<fgqos::sim::CounterEntry>,
}

fn summarize(
    outcome: Result<(), fgqos::sim::SimError>,
    gpu: &Gpu,
    kids: &[fgqos::KernelId],
    records: &[EpochRecord],
) -> RunSummary {
    let stats = gpu.stats();
    RunSummary {
        outcome,
        cycle: gpu.cycle(),
        kernels: kids.iter().map(|&k| *stats.kernel(k)).collect(),
        records_hash: records_hash(records),
        records: records.to_vec(),
        per_sm_busy_issued: gpu
            .sms()
            .iter()
            .map(|sm| (sm.busy_cycles(), sm.issued_total()))
            .collect(),
        l2: (gpu.mem().l2_stats().hits, gpu.mem().l2_stats().misses),
        preempt: gpu.preempt_stats(),
        insts_per_energy_bits: fgqos::sim::power::insts_per_energy(gpu).to_bits(),
        events: gpu.recent_events(usize::MAX),
        counters: gpu.counter_registry(),
    }
}

/// One straight run of `total` cycles.
fn run_straight(
    cfg: &GpuConfig,
    descs: &[KernelDesc],
    ctrl_sel: usize,
    goal: f64,
    total: u64,
) -> RunSummary {
    let (mut gpu, kids) = build_gpu(cfg, descs);
    let mut tracer = Tracer::new(build_ctrl(ctrl_sel, &kids, goal));
    let outcome = gpu.try_run(total, &mut tracer);
    summarize(outcome, &gpu, &kids, tracer.records())
}

/// One run chunked at `split`. With `snapshot_restore`, the machine is
/// snapshotted at the split, the snapshot restored into a *freshly built*
/// machine, and the controller + telemetry round-tripped through the binary
/// codec; the second chunk then runs on the restored copy.
fn run_split(
    cfg: &GpuConfig,
    descs: &[KernelDesc],
    ctrl_sel: usize,
    goal: f64,
    split: u64,
    total: u64,
    snapshot_restore: bool,
) -> RunSummary {
    let (mut gpu, kids) = build_gpu(cfg, descs);
    let mut tracer = Tracer::new(build_ctrl(ctrl_sel, &kids, goal));
    if let Err(e) = gpu.try_run(split, &mut tracer) {
        // The first chunk already failed; both chunked variants see the
        // identical prefix, so summarize here.
        return summarize(Err(e), &gpu, &kids, tracer.records());
    }
    if snapshot_restore {
        assert_eq!(gpu.cycle(), split, "healthy try_run advances exactly `cycles`");
        let blob =
            gpu.snapshot().expect("split is a multiple of epoch_cycles, so the snapshot is legal");
        // Round-trip the blob through its wire form, like a checkpoint does.
        let blob = SnapshotBlob::from_bytes(&blob.to_bytes()).expect("wire round-trip");
        let (ctrl, records) = tracer.into_parts();
        let ctrl: Ctrl = decode_from_slice(&encode_to_vec(&ctrl)).expect("controller codec");
        let records: Vec<EpochRecord> =
            decode_from_slice(&encode_to_vec(&records)).expect("records codec");
        let (fresh_gpu, fresh_kids) = build_gpu(cfg, descs);
        assert_eq!(fresh_kids, kids, "kernel ids are deterministic");
        gpu = fresh_gpu;
        gpu.restore(&blob).expect("restore accepts a same-config snapshot");
        assert_eq!(gpu.cycle(), split, "restore lands on the snapshot cycle");
        tracer = Tracer::from_parts(ctrl, records);
    }
    let outcome = gpu.try_run(total - split, &mut tracer);
    summarize(outcome, &gpu, &kids, tracer.records())
}

fn diff_descs(
    nk: usize,
    alu_lat: u16,
    alu_repeat: u16,
    trans: u8,
    lanes: u8,
    iters: u32,
    seed: u64,
) -> Vec<KernelDesc> {
    (0..nk)
        .map(|k| {
            KernelDesc::builder(format!("snap{k}"))
                .threads_per_tb(64)
                .regs_per_thread(16)
                .grid_tbs(4)
                .iterations(iters + k as u32)
                .seed(seed.wrapping_mul(k as u64 + 1))
                .body(vec![
                    Op::alu_divergent(alu_lat + k as u16, alu_repeat, lanes),
                    Op::mem_load(AccessPattern::random(1 << (18 + k), trans)),
                ])
                .build()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole's restore contract: snapshot at an epoch boundary,
    /// restore into a fresh machine, continue — bit-identical to not having
    /// snapshotted, across controllers × schemes × faults × fast-forward.
    #[test]
    fn snapshot_restore_continue_is_bit_identical(
        nk in 1usize..4,
        alu_lat in 1u16..12,
        alu_repeat in 1u16..16,
        trans in 1u8..16,
        lanes in 1u8..32,
        iters in 1u32..6,
        seed in 0u64..10_000,
        split_epochs in 1u64..6,
        extra_epochs in 1u64..6,
        ctrl_sel in 0usize..6,
        goal_frac in 0.1f64..1.5,
        fast_forward in any::<bool>(),
        watchdog in any::<bool>(),
        audit in any::<bool>(),
        fault_sel in 0usize..4,
        fault_cycle in 500u64..6_000,
    ) {
        let fault = match fault_sel {
            1 => Some((fault_cycle, fgqos::sim::FaultKind::StarveQuota)),
            2 => Some((fault_cycle, fgqos::sim::FaultKind::FreezeScheduler { sm: 0 })),
            3 => Some((fault_cycle, fgqos::sim::FaultKind::StallPreemption)),
            _ => None,
        };
        let cfg = build_config(fast_forward, watchdog, audit, fault);
        let split = split_epochs * cfg.epoch_cycles;
        let total = split + extra_epochs * cfg.epoch_cycles;
        let descs = diff_descs(nk, alu_lat, alu_repeat, trans, lanes, iters, seed);
        let goal = goal_frac * 100.0;

        let chunked = run_split(&cfg, &descs, ctrl_sel, goal, split, total, false);
        let restored = run_split(&cfg, &descs, ctrl_sel, goal, split, total, true);
        prop_assert_eq!(&restored, &chunked, "restore must be invisible");

        if fault.is_none() {
            // A healthy chunked run also equals the straight run exactly
            // (the watchdog check schedule aligns to absolute windows).
            let straight = run_straight(&cfg, &descs, ctrl_sel, goal, total);
            prop_assert_eq!(&restored, &straight, "healthy chunking is invisible");
        }
    }

    /// Satellite: `SplitMix64` snapshotted mid-stream reproduces the exact
    /// remaining stream from the restored copy.
    #[test]
    fn splitmix_round_trips_mid_stream(
        seed in any::<u64>(),
        burn in 0usize..200,
        take in 1usize..100,
    ) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..burn {
            rng.next_u64();
        }
        let mut copy: SplitMix64 = decode_from_slice(&encode_to_vec(&rng)).expect("codec");
        for i in 0..take {
            prop_assert_eq!(copy.next_u64(), rng.next_u64(), "divergence at draw {}", i);
        }
    }

    /// Satellite: per-kernel stats counters survive an encode/decode cycle
    /// exactly, at any point in their value space.
    #[test]
    fn kernel_stats_round_trip_exactly(
        thread_insts in any::<u64>(),
        warp_insts in any::<u64>(),
        tbs_completed in any::<u64>(),
        launches_completed in any::<u64>(),
    ) {
        let stats = KernelStats { thread_insts, warp_insts, tbs_completed, launches_completed };
        let back: KernelStats = decode_from_slice(&encode_to_vec(&stats)).expect("codec");
        prop_assert_eq!(back, stats);
    }
}

/// The counter registry and flight-recorder rings restore bit-exactly into
/// a fresh machine: every entry (name, scope, kind, value) and every ring
/// event (cycle, SM, kind) of a busy traced run survives the wire form.
#[test]
fn counter_registry_and_events_survive_snapshot_restore() {
    let mut cfg = GpuConfig::tiny();
    cfg.fast_forward = true;
    cfg.trace.level = fgqos::sim::TraceLevel::Events;
    let descs = diff_descs(3, 4, 8, 6, 17, 3, 42);

    let (mut gpu, kids) = build_gpu(&cfg, &descs);
    let mut tracer = Tracer::new(build_ctrl(2, &kids, 80.0));
    gpu.try_run(6 * cfg.epoch_cycles, &mut tracer).expect("healthy run");

    let registry = gpu.counter_registry();
    assert!(
        registry.iter().any(|e| e.name == "quota_blocked_cycles" && e.value > 0),
        "a gated run must accumulate quota-blocked cycles"
    );
    assert!(!gpu.recent_events(usize::MAX).is_empty(), "a busy run records events");

    let blob = SnapshotBlob::from_bytes(&gpu.snapshot().expect("epoch-aligned").to_bytes())
        .expect("wire round-trip");
    let (mut fresh, _) = build_gpu(&cfg, &descs);
    fresh.restore(&blob).expect("same config");

    assert_eq!(fresh.counter_registry(), registry, "registry restores bit-exactly");
    assert_eq!(
        fresh.recent_events(usize::MAX),
        gpu.recent_events(usize::MAX),
        "flight-recorder rings restore bit-exactly"
    );
    for (sm, fresh_sm) in gpu.sms().iter().zip(fresh.sms()) {
        assert_eq!(
            sm.events().iter().collect::<Vec<_>>(),
            fresh_sm.events().iter().collect::<Vec<_>>(),
            "per-SM ring contents (including wraparound order) restore exactly"
        );
    }
}

/// Restoring mid-scenario reproduces the golden-trace corpus: the
/// datacenter trio run with a snapshot/restore at an interior epoch yields
/// the same record stream as the canonical uninterrupted scenario.
#[test]
fn golden_scenario_survives_snapshot_restore() {
    let golden = harness::golden::run_scenario("datacenter_trio");

    let mut cfg = GpuConfig::tiny();
    cfg.fast_forward = true;
    let build = |gpu: &mut Gpu| {
        let q1 = gpu.launch(workloads::by_name("mri-q").expect("known workload"));
        let q2 = gpu.launch(workloads::by_name("sad").expect("known workload"));
        let be = gpu.launch(workloads::by_name("lbm").expect("known workload"));
        QosManager::new(QuotaScheme::Rollover)
            .with_kernel(q1, QosSpec::qos(40.0))
            .with_kernel(q2, QosSpec::qos(20.0))
            .with_kernel(be, QosSpec::best_effort())
    };

    let total = 15_000u64;
    let split = (total / 2 / cfg.epoch_cycles) * cfg.epoch_cycles;
    assert!(split > 0 && split < total, "interior epoch boundary");

    let mut gpu = Gpu::new(cfg.clone());
    let mut tracer = Tracer::new(build(&mut gpu));
    gpu.try_run(split, &mut tracer).expect("healthy scenario");
    let blob = gpu.snapshot().expect("epoch-aligned");

    let mut gpu2 = Gpu::new(cfg);
    let ctrl2 = build(&mut gpu2);
    gpu2.restore(&blob).expect("same config");
    let (ctrl, records) = tracer.into_parts();
    drop(ctrl2); // the restored run continues with the *traced* controller
    let mut tracer2 = Tracer::from_parts(ctrl, records);
    gpu2.try_run(total - split, &mut tracer2).expect("healthy scenario");

    assert_eq!(
        records_hash(tracer2.records()),
        records_hash(&golden),
        "restored run must reproduce the canonical golden records"
    );
    assert_eq!(tracer2.records(), &golden[..]);
}

// ----------------------------------------------------------------------
// SoA-layout codec round trips (DESIGN.md §18.5).
// ----------------------------------------------------------------------

/// Barrier-heavy kernels so mid-stream snapshots catch warps parked at
/// barriers, TBs mid-transition, and partially consumed op bodies — the
/// states that populate every `WarpTable` column and packed mask, and the
/// `TbSlab` arena columns, with non-default values.
fn barrier_descs(nk: usize, seed: u64) -> Vec<KernelDesc> {
    (0..nk)
        .map(|k| {
            KernelDesc::builder(format!("soa{k}"))
                .grid_tbs(6 + k as u32)
                .threads_per_tb(64)
                .iterations(4)
                .seed(seed.wrapping_add(k as u64))
                .body(vec![
                    Op::mem_load(AccessPattern::tile(2048)),
                    Op::Bar,
                    Op::smem(),
                    Op::alu(3 + k as u16, 6),
                    Op::Bar,
                    Op::alu(2, 3),
                ])
                .build()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The struct-of-arrays warp table and TB slab round-trip bit-exactly
    /// at arbitrary mid-stream states: snapshot, restore into a fresh
    /// machine, snapshot again — the two blobs must be byte-identical
    /// (decode is a perfect left-inverse of encode for every column and
    /// packed mask), and the restored machine must continue to the same
    /// record stream.
    #[test]
    fn warp_table_and_slab_reencode_identically_mid_stream(
        nk in 1usize..4,
        seed in 0u64..10_000,
        split_epochs in 1u64..8,
        extra_epochs in 1u64..4,
        fast_forward in any::<bool>(),
    ) {
        let cfg = build_config(fast_forward, false, false, None);
        let descs = barrier_descs(nk, seed);
        let (mut gpu, _) = build_gpu(&cfg, &descs);
        let mut tracer = Tracer::new(Ctrl::Null);
        gpu.try_run(split_epochs * cfg.epoch_cycles, &mut tracer).expect("healthy");

        let bytes = gpu.snapshot().expect("epoch-aligned").to_bytes();
        let blob = SnapshotBlob::from_bytes(&bytes).expect("wire round-trip");
        let (mut fresh, _) = build_gpu(&cfg, &descs);
        fresh.restore(&blob).expect("same config");
        let rebytes = fresh.snapshot().expect("still epoch-aligned").to_bytes();
        prop_assert_eq!(&rebytes, &bytes, "re-encoded snapshot must be byte-identical");

        // And the restored table drives the machine to the same stream.
        let extra = extra_epochs * cfg.epoch_cycles;
        let mut t1 = Tracer::new(Ctrl::Null);
        let mut t2 = Tracer::new(Ctrl::Null);
        gpu.try_run(extra, &mut t1).expect("healthy");
        fresh.try_run(extra, &mut t2).expect("healthy");
        prop_assert_eq!(
            records_hash(t1.records()),
            records_hash(t2.records()),
            "continuation must be bit-identical"
        );
    }
}

/// Regression pin for the counter registry's enumeration order across the
/// SoA refactor: the exact `(scope, name)` sequence is load-bearing — it
/// fixes Perfetto/metrics export layout and the fold order behind
/// determinism hashes — so it is compared verbatim against a committed
/// golden list. Regenerate deliberately with
/// `BLESS_COUNTER_ORDER=1 cargo test counter_registry_enumeration_order`.
#[test]
fn counter_registry_enumeration_order_is_pinned() {
    let cfg = build_config(true, false, false, None);
    let descs = barrier_descs(2, 7);
    let (mut gpu, _) = build_gpu(&cfg, &descs);
    let mut tracer = Tracer::new(Ctrl::Null);
    gpu.try_run(2 * cfg.epoch_cycles, &mut tracer).expect("healthy");

    let listing: String =
        gpu.counter_registry().iter().map(|e| format!("{:?} {}\n", e.scope, e.name)).collect();
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/counter_registry_order.txt");
    if std::env::var_os("BLESS_COUNTER_ORDER").is_some() {
        std::fs::write(&path, &listing).expect("write golden listing");
        return;
    }
    let golden = std::fs::read_to_string(&path).expect("golden listing readable");
    assert_eq!(
        listing, golden,
        "counter registry enumeration order changed; if intentional, \
         regenerate with BLESS_COUNTER_ORDER=1"
    );
}
