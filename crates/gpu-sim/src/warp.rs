//! Per-warp execution state and address-stream generation.

use crate::kernel::{AccessPattern, PatternKind};
use crate::rng::SplitMix64;
use crate::tb::TbPhase;
use crate::types::{Addr, Cycle, KernelId};

/// Execution progress of one warp, the unit the paper's quota counters and
/// idle-warp sampling reason about.
#[derive(Debug, Clone)]
pub struct WarpState {
    /// Owning kernel.
    pub kernel: KernelId,
    /// Index of the owning TB in the SM's TB slot array.
    pub tb_slot: u16,
    /// Warp position within its TB.
    pub warp_in_tb: u16,
    /// Globally unique warp number within the kernel (survives preemption),
    /// used to derive deterministic address streams.
    pub warp_uid: u64,
    /// Index of the current op in the kernel body.
    pub pc: u16,
    /// Remaining repeats of the current op (0 = not yet started).
    pub rem: u16,
    /// Remaining body iterations (counts down from `KernelDesc::iterations`).
    pub iter: u32,
    /// Cycle at which the warp's previous instruction completes.
    pub ready_at: Cycle,
    /// Whether the warp is parked at a barrier.
    pub at_barrier: bool,
    /// Whether the warp has retired its last instruction.
    pub done: bool,
    /// Memory-access sequence number (drives address streams).
    pub seq: u64,
    /// Deterministic per-warp RNG for randomized patterns.
    pub rng: SplitMix64,
    /// Dispatch age: smaller = older (GTO tie-break).
    pub age: u64,
}

impl WarpState {
    /// The earliest cycle at which this warp could next become issuable,
    /// given the phase of its owning TB, or `None` if only an external event
    /// (barrier release, context-save completion) can wake it.
    ///
    /// Barrier-parked warps return `None` because their release is triggered
    /// by *another* warp's issue — and some warp of the TB is then not at the
    /// barrier and carries the wake-up in its own `ready_at`.
    pub fn next_wake(&self, phase: TbPhase) -> Option<Cycle> {
        if self.done || self.at_barrier {
            return None;
        }
        match phase {
            TbPhase::Active => Some(self.ready_at),
            TbPhase::Loading(until) => Some(self.ready_at.max(until)),
            // A saving TB's warps are frozen; the save completion itself is
            // reported by the SM's transition horizon.
            TbPhase::Saving(_) => None,
        }
    }

    /// Generates the coalesced line addresses for the warp's next memory
    /// access under `pattern`, appending up to `pattern.transactions` line
    /// addresses into `buf` and returning how many were written.
    ///
    /// Streams are fully determined by `(kernel seed, warp_uid, seq)`, so a
    /// preempted-and-resumed warp continues exactly where it left off.
    pub fn gen_lines(
        &mut self,
        pattern: &AccessPattern,
        kernel_base: Addr,
        line_bytes: u32,
        tb_index: u32,
        buf: &mut [Addr; 32],
    ) -> usize {
        let line = u64::from(line_bytes);
        let trans = usize::from(pattern.transactions);
        let fp_lines = (pattern.footprint_bytes / line).max(1);
        let seq = self.seq;
        self.seq += 1;
        match pattern.kind {
            PatternKind::Stream => {
                // Each warp streams through its own region; fresh lines each
                // access until the (large) footprint wraps.
                let start =
                    self.warp_uid.wrapping_mul(2048).wrapping_add(seq * trans as u64) % fp_lines;
                for (t, slot) in buf.iter_mut().take(trans).enumerate() {
                    *slot = kernel_base + ((start + t as u64) % fp_lines) * line;
                }
            }
            PatternKind::Tile => {
                // The whole TB cycles within one tile; after the first pass
                // the tile is cache-resident.
                let tile_base = kernel_base + u64::from(tb_index) % 1024 * pattern.footprint_bytes;
                let start =
                    (u64::from(self.warp_in_tb) * 97 + seq).wrapping_mul(trans as u64) % fp_lines;
                for (t, slot) in buf.iter_mut().take(trans).enumerate() {
                    *slot = tile_base + ((start + t as u64) % fp_lines) * line;
                }
            }
            PatternKind::Random => {
                for slot in buf.iter_mut().take(trans) {
                    *slot = kernel_base + self.rng.next_below(fp_lines) * line;
                }
            }
            PatternKind::Stencil => {
                // Sliding windows that overlap across neighbouring warps and
                // successive accesses: L1 catches same-warp reuse, L2 catches
                // cross-TB reuse.
                let center = (self.warp_uid * trans as u64 + seq * 2) % fp_lines;
                for (t, slot) in buf.iter_mut().take(trans).enumerate() {
                    *slot = kernel_base + ((center + t as u64) % fp_lines) * line;
                }
            }
        }
        trans
    }
}

/// A warp's saved architectural progress (for partial context switch).
#[derive(Debug, Clone)]
pub struct WarpProgress {
    /// Saved op index.
    pub pc: u16,
    /// Saved repeats-remaining.
    pub rem: u16,
    /// Saved loop iterations remaining.
    pub iter: u32,
    /// Saved memory sequence number.
    pub seq: u64,
    /// Whether the warp had already retired.
    pub done: bool,
    /// Saved RNG state (randomized streams resume deterministically).
    pub rng: SplitMix64,
}

impl WarpProgress {
    /// Captures a warp's progress for a context save.
    pub fn capture(w: &WarpState) -> Self {
        WarpProgress {
            pc: w.pc,
            rem: w.rem,
            iter: w.iter,
            seq: w.seq,
            done: w.done,
            rng: w.rng.clone(),
        }
    }
}

crate::impl_snap_struct!(WarpState {
    kernel,
    tb_slot,
    warp_in_tb,
    warp_uid,
    pc,
    rem,
    iter,
    ready_at,
    at_barrier,
    done,
    seq,
    rng,
    age,
});

crate::impl_snap_struct!(WarpProgress { pc, rem, iter, seq, done, rng });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn warp(uid: u64) -> WarpState {
        WarpState {
            kernel: KernelId::new(0),
            tb_slot: 0,
            warp_in_tb: 0,
            warp_uid: uid,
            pc: 0,
            rem: 0,
            iter: 1,
            ready_at: 0,
            at_barrier: false,
            done: false,
            seq: 0,
            rng: SplitMix64::new(uid),
            age: 0,
        }
    }

    #[test]
    fn stream_generates_fresh_consecutive_lines() {
        let mut w = warp(0);
        let mut buf = [0u64; 32];
        let p = AccessPattern::stream();
        let n = w.gen_lines(&p, 0, 32, 0, &mut buf);
        assert_eq!(n, 4);
        for t in 1..n {
            assert_eq!(buf[t] - buf[t - 1], 32, "stream lines are consecutive");
        }
        let first_access = buf[..n].to_vec();
        let n2 = w.gen_lines(&p, 0, 32, 0, &mut buf);
        assert!(
            buf[..n2].iter().all(|a| !first_access.contains(a)),
            "successive stream accesses touch fresh lines"
        );
    }

    #[test]
    fn tile_stays_within_footprint() {
        let mut w = warp(3);
        let mut buf = [0u64; 32];
        let p = AccessPattern::tile(4096);
        for _ in 0..100 {
            let n = w.gen_lines(&p, 0, 32, 7, &mut buf);
            let tile_base = 7 * 4096;
            for &a in &buf[..n] {
                assert!(
                    (tile_base..tile_base + 4096).contains(&a),
                    "tile access {a:#x} outside tile"
                );
            }
        }
    }

    #[test]
    fn random_stays_within_footprint_and_uses_rng() {
        let mut w = warp(5);
        let mut buf = [0u64; 32];
        let p = AccessPattern::random(1 << 20, 32);
        let n = w.gen_lines(&p, 1 << 30, 32, 0, &mut buf);
        assert_eq!(n, 32);
        for &a in &buf[..n] {
            assert!((1 << 30..(1 << 30) + (1 << 20)).contains(&a));
        }
        let distinct: std::collections::HashSet<u64> = buf[..n].iter().copied().collect();
        assert!(distinct.len() > 16, "random pattern should rarely repeat lines");
    }

    #[test]
    fn same_seed_same_stream_across_clones() {
        let mut a = warp(9);
        let mut b = warp(9);
        let mut ba = [0u64; 32];
        let mut bb = [0u64; 32];
        let p = AccessPattern::random(1 << 16, 8);
        for _ in 0..10 {
            a.gen_lines(&p, 0, 32, 0, &mut ba);
            b.gen_lines(&p, 0, 32, 0, &mut bb);
            assert_eq!(ba, bb);
        }
    }

    #[test]
    fn progress_capture_round_trip() {
        let mut w = warp(1);
        w.pc = 3;
        w.rem = 2;
        w.iter = 5;
        w.seq = 42;
        let p = WarpProgress::capture(&w);
        assert_eq!((p.pc, p.rem, p.iter, p.seq, p.done), (3, 2, 5, 42, false));
    }

    #[test]
    fn stencil_windows_overlap_between_neighbour_warps() {
        let mut w0 = warp(0);
        let mut w1 = warp(1);
        let mut b0 = [0u64; 32];
        let mut b1 = [0u64; 32];
        let p = AccessPattern::stencil(1 << 16);
        // Advance warp 0 a little; its window should reach warp 1's start.
        let n0 = w0.gen_lines(&p, 0, 32, 0, &mut b0);
        let n1 = w1.gen_lines(&p, 0, 32, 0, &mut b1);
        let s0: std::collections::HashSet<u64> = b0[..n0].iter().copied().collect();
        let mut overlap = b1[..n1].iter().any(|a| s0.contains(a));
        for _ in 0..4 {
            let n = w0.gen_lines(&p, 0, 32, 0, &mut b0);
            overlap |= b0[..n].iter().any(|a| b1[..n1].contains(a));
        }
        assert!(overlap, "stencil windows should overlap across warps/accesses");
    }
}
