//! End-to-end crash-recovery and chaos-soak tests for `repro fleet`.
//!
//! The fast test SIGKILLs a checkpointing fleet run mid-flight and asserts
//! the resumed run's report is byte-identical to an uninterrupted one's.
//! The `--ignored` soak (run in CI's fleet-chaos job) replays the chaos
//! scenario across seeds and asserts the serving contract: every guaranteed
//! tenant meets its SLO floor and no request is ever lost.

use std::path::PathBuf;
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro")).args(args).output().expect("repro spawns")
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fgqos-fleet-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sigkilled_fleet_run_resumes_to_an_identical_report() {
    let dir = tmp_dir("sigkill");
    let baseline = repro(&["fleet", "chaos"]);
    assert!(
        baseline.status.success(),
        "baseline run failed: {}",
        String::from_utf8_lossy(&baseline.stderr)
    );

    let mut victim = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["fleet", "chaos", "--checkpoint-dir"])
        .arg(&dir)
        .args(["--checkpoint-every", "1"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("victim spawns");

    // Kill as soon as a checkpoint lands. write_atomic renames the file
    // into place, so existence implies a complete frame. The chaos run is
    // fast, so tolerate the victim finishing first: the final checkpoint
    // then makes resume a pure reprint, which must still match.
    let ckpt = dir.join("fleet-ckpt.bin");
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut victim_finished = false;
    loop {
        if ckpt.exists() {
            break;
        }
        if victim.try_wait().expect("try_wait works").is_some() {
            victim_finished = true;
            break;
        }
        assert!(Instant::now() < deadline, "victim produced no checkpoint within the deadline");
        std::thread::sleep(Duration::from_millis(2));
    }
    if !victim_finished {
        victim.kill().expect("SIGKILL delivered");
    }
    let _ = victim.wait();

    let resumed = repro(&["fleet", "resume", dir.to_str().expect("utf8 dir")]);
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&resumed.stdout),
        String::from_utf8_lossy(&baseline.stdout),
        "resumed report must be byte-identical to the uninterrupted run's"
    );
    let report = String::from_utf8_lossy(&baseline.stdout);
    for field in ["latency mean", "p50", "p95", "p99"] {
        assert!(report.contains(field), "per-tenant {field} missing from report:\n{report}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_export_is_identical_across_kill_and_resume() {
    // The telemetry state (histograms, counter series) rides the fleet
    // snapshot, so a run cut at an arbitrary tick and resumed must export
    // byte-identical JSON and Prometheus documents.
    let dir = tmp_dir("metrics-resume");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let full_json = dir.join("full.json");
    let full = repro(&["fleet", "chaos", "--metrics-out", full_json.to_str().expect("utf8 path")]);
    assert!(full.status.success(), "full run failed: {}", String::from_utf8_lossy(&full.stderr));

    let seed = fleet::scenarios::DEFAULT_SEED;
    let cfg = fleet::scenarios::by_name("chaos", seed).expect("known scenario");
    let mut partial = fleet::Fleet::new(cfg);
    for _ in 0..7 {
        partial.step();
    }
    harness::fleet_cli::save_checkpoint(
        &dir,
        &harness::fleet_cli::FleetCheckpoint {
            scenario: "chaos".to_string(),
            seed,
            every_ticks: 1,
            state: partial.snapshot(),
        },
    )
    .expect("mid-run checkpoint saves");
    drop(partial);

    let resumed_json = dir.join("resumed.json");
    let resumed = repro(&[
        "fleet",
        "resume",
        dir.to_str().expect("utf8 dir"),
        "--metrics-out",
        resumed_json.to_str().expect("utf8 path"),
    ]);
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let read = |p: &std::path::Path| std::fs::read(p).expect("export written");
    assert_eq!(read(&full_json), read(&resumed_json), "metrics JSON diverged across kill+resume");
    assert_eq!(
        read(&full_json.with_extension("prom")),
        read(&resumed_json.with_extension("prom")),
        "Prometheus export diverged across kill+resume"
    );
    let json = String::from_utf8(read(&full_json)).expect("utf8 json");
    for key in ["\"p999\"", "\"burn_rate_ppm\"", "fgqos-metrics-v1"] {
        assert!(json.contains(key), "{key} missing from metrics JSON");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fleet_trace_export_writes_a_schema_clean_document() {
    let dir = tmp_dir("trace");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("fleet.json");
    let out = repro(&["fleet", "steady", "--trace", path.to_str().expect("utf8 path")]);
    assert!(out.status.success(), "traced run failed: {}", String::from_utf8_lossy(&out.stderr));
    let doc = std::fs::read_to_string(&path).expect("trace written");
    harness::perfetto::check_chrome_trace(&doc).expect("exported trace passes the schema check");
    assert!(doc.contains("tenant/latency"), "per-tenant track present");
    assert!(doc.contains("\"latency_p99\""), "per-tick latency percentile track present");
    assert!(doc.contains("\"slo_burn_ppm\""), "per-tick SLO burn track present");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_fleet_scenario_exits_nonzero() {
    let out = repro(&["fleet", "definitely-not-a-scenario"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown scenario"),
        "stderr names the problem"
    );
}

#[test]
fn checkpoint_with_a_migration_in_the_journal_resumes_byte_identically() {
    // Step the migration storm in-process until a migration blob is
    // actually sitting in the pending queue, persist that exact state
    // through the CLI's checkpoint frame, then finish the run out of
    // process via `repro fleet resume`. The resumed report must match an
    // uninterrupted run byte for byte and lose nothing.
    let dir = tmp_dir("mid-migration");
    let seed = fleet::scenarios::DEFAULT_SEED;
    let baseline = repro(&["fleet", "migration"]);
    assert!(
        baseline.status.success(),
        "baseline storm failed: {}",
        String::from_utf8_lossy(&baseline.stderr)
    );

    let cfg = fleet::scenarios::by_name("migration", seed).expect("known scenario");
    let mut partial = fleet::Fleet::new(cfg);
    while !partial.step() {
        if partial.pending_migration_count() > 0 {
            break;
        }
    }
    assert!(
        partial.pending_migration_count() > 0,
        "the storm must leave a migration blob in flight at some tick"
    );
    harness::fleet_cli::save_checkpoint(
        &dir,
        &harness::fleet_cli::FleetCheckpoint {
            scenario: "migration".to_string(),
            seed,
            every_ticks: 1,
            state: partial.snapshot(),
        },
    )
    .expect("checkpoint with a pending migration saves");
    drop(partial);

    let resumed = repro(&["fleet", "resume", dir.to_str().expect("utf8 dir")]);
    assert!(
        resumed.status.success(),
        "mid-migration resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&resumed.stdout),
        String::from_utf8_lossy(&baseline.stdout),
        "a checkpoint holding an in-flight migration must resume byte-identically"
    );
    let report = String::from_utf8_lossy(&baseline.stdout);
    assert!(report.contains(", 0 lost"), "{report}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkilled_migration_storm_resumes_to_an_identical_report() {
    // The crash-path variant: SIGKILL the checkpointing storm mid-flight
    // (the storm keeps migrations in motion from cycle 30k on) and assert
    // the resume converges. Migration state rides inside the rolling
    // checkpoint, so whichever tick the kill lands on, nothing is lost.
    let dir = tmp_dir("storm-sigkill");
    let baseline = repro(&["fleet", "migration"]);
    assert!(
        baseline.status.success(),
        "baseline storm failed: {}",
        String::from_utf8_lossy(&baseline.stderr)
    );

    let mut victim = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["fleet", "migration", "--checkpoint-dir"])
        .arg(&dir)
        .args(["--checkpoint-every", "1"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("victim spawns");

    let ckpt = dir.join("fleet-ckpt.bin");
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut victim_finished = false;
    loop {
        if ckpt.exists() {
            break;
        }
        if victim.try_wait().expect("try_wait works").is_some() {
            victim_finished = true;
            break;
        }
        assert!(Instant::now() < deadline, "victim produced no checkpoint within the deadline");
        std::thread::sleep(Duration::from_millis(2));
    }
    if !victim_finished {
        victim.kill().expect("SIGKILL delivered");
    }
    let _ = victim.wait();

    let resumed = repro(&["fleet", "resume", dir.to_str().expect("utf8 dir")]);
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&resumed.stdout),
        String::from_utf8_lossy(&baseline.stdout),
        "resumed storm report must be byte-identical to the uninterrupted run's"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Parses `N migrated`-style fields out of the report's goodput line:
/// `goodput A/B requests, C shed, D evicted, E migrated | ...`.
fn goodput_field(report: &str, field: &str) -> u64 {
    let line = report.lines().find(|l| l.contains("goodput")).expect("goodput line");
    let needle = format!(" {field}");
    let end = line.find(&needle).unwrap_or_else(|| panic!("no {field:?} in {line:?}"));
    line[..end]
        .rsplit([' ', ','])
        .find(|s| !s.is_empty())
        .expect("number precedes the field")
        .parse()
        .unwrap_or_else(|e| panic!("bad {field} count in {line:?}: {e}"))
}

#[test]
#[ignore = "migration-storm soak: full storm runs across a seed matrix; CI's fleet-chaos job"]
fn migration_storm_soak_resumes_batches_instead_of_retrying() {
    // Across the seed matrix: no request lost, every guaranteed SLO met,
    // and at least 90% of the work displaced by device loss/wedge/drain
    // completes via migration rather than eviction + retry-from-scratch.
    for seed in ["20260807", "1", "2", "3", "4"] {
        let out = repro(&["fleet", "migration", "--seed", seed]);
        assert!(
            out.status.success(),
            "storm seed {seed} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let report = String::from_utf8_lossy(&out.stdout);
        assert!(report.contains(", 0 lost"), "seed {seed} lost requests:\n{report}");
        assert!(report.contains("guaranteed SLOs: MET"), "seed {seed}:\n{report}");
        let migrated = goodput_field(&report, "migrated");
        let evicted = goodput_field(&report, "evicted");
        assert!(migrated > 0, "seed {seed}: the storm must migrate work\n{report}");
        assert!(
            migrated * 10 >= (migrated + evicted) * 9,
            "seed {seed}: only {migrated}/{} displaced requests resumed via migration\n{report}",
            migrated + evicted
        );
    }
}

#[test]
#[ignore = "chaos soak: several full fleet runs; exercised by CI's fleet-chaos job"]
fn chaos_soak_is_deterministic_and_loses_nothing() {
    // Determinism: two runs with the same seed agree byte-for-byte.
    let a = repro(&["fleet", "chaos", "--seed", "20260807"]);
    let b = repro(&["fleet", "chaos", "--seed", "20260807"]);
    assert!(a.status.success(), "chaos run failed: {}", String::from_utf8_lossy(&a.stderr));
    assert_eq!(a.stdout, b.stdout, "same seed must yield the same report");
    let report = String::from_utf8_lossy(&a.stdout);
    assert!(report.contains("guaranteed SLOs: MET"), "{report}");
    assert!(report.contains(", 0 lost"), "{report}");

    // Accounting invariant across seeds: device loss, wedges, timeouts and
    // shedding may reshuffle work, but no request is ever silently dropped —
    // every arrival completes, is retried to completion, or is shed with a
    // recorded reason.
    for seed in ["1", "2", "3"] {
        let out = repro(&["fleet", "chaos", "--seed", seed]);
        let report = String::from_utf8_lossy(&out.stdout);
        assert!(report.contains(", 0 lost"), "seed {seed} lost requests:\n{report}");
    }
}
