//! Partial context switch: cost model and saved-TB bookkeeping.
//!
//! SMK's *partial context switch* swaps kernel context in units of single
//! thread blocks, which is what makes fine-grained sharing adjustable at
//! run time. Saving a TB writes its live registers and shared memory to
//! device memory; restoring reads them back. Both occupy the TB's slot for
//! the transfer duration and consume DRAM bandwidth (modeled by
//! [`crate::memsys::MemSystem::inject_context_traffic`]).

use crate::config::PreemptConfig;
use crate::kernel::KernelDesc;
use crate::types::{Cycle, TbIndex};
use crate::warp::WarpProgress;

/// A preempted thread block waiting to be re-dispatched.
#[derive(Debug, Clone)]
pub struct SavedTb {
    /// Grid index of the saved TB.
    pub tb_index: TbIndex,
    /// Per-warp saved progress, in warp-within-TB order.
    pub warps: Vec<WarpProgress>,
}

/// Cycles to drain and save one TB of `desc` under `cfg`.
pub fn save_cycles(desc: &KernelDesc, cfg: &PreemptConfig) -> Cycle {
    Cycle::from(cfg.drain_cycles)
        + desc.context_bytes_per_tb().div_ceil(u64::from(cfg.context_bytes_per_cycle.max(1)))
}

/// Cycles to restore one TB of `desc` under `cfg`.
pub fn load_cycles(desc: &KernelDesc, cfg: &PreemptConfig) -> Cycle {
    desc.context_bytes_per_tb().div_ceil(u64::from(cfg.context_bytes_per_cycle.max(1)))
}

/// Aggregate preemption statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PreemptStats {
    /// Number of TB context saves started.
    pub saves: u64,
    /// Number of saved TBs re-dispatched.
    pub resumes: u64,
    /// Total slot-occupied cycles spent saving or loading contexts.
    pub transfer_cycles: u64,
}

crate::impl_snap_struct!(SavedTb { tb_index, warps });

crate::impl_snap_struct!(PreemptStats { saves, resumes, transfer_cycles });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{KernelDesc, Op};

    fn desc(regs: u32, smem: u64) -> KernelDesc {
        KernelDesc::builder("k")
            .threads_per_tb(256)
            .regs_per_thread(regs)
            .smem_per_tb(smem)
            .body(vec![Op::alu(1, 1)])
            .build()
    }

    #[test]
    fn save_cost_scales_with_context() {
        let cfg = PreemptConfig::default();
        let small = save_cycles(&desc(16, 0), &cfg);
        let big = save_cycles(&desc(64, 32 * 1024), &cfg);
        assert!(big > small);
        // 16 regs * 4 B * 256 thr = 16 KiB at 128 B/cyc = 128 cycles + drain.
        assert_eq!(small, u64::from(cfg.drain_cycles) + 128);
    }

    #[test]
    fn load_has_no_drain() {
        let cfg = PreemptConfig::default();
        assert_eq!(
            save_cycles(&desc(16, 0), &cfg) - load_cycles(&desc(16, 0), &cfg),
            u64::from(cfg.drain_cycles)
        );
    }

    #[test]
    fn zero_bandwidth_is_clamped() {
        let cfg = PreemptConfig { context_bytes_per_cycle: 0, drain_cycles: 0 };
        // Must not divide by zero.
        assert!(load_cycles(&desc(16, 0), &cfg) > 0);
    }
}
