//! Offline stand-in for the `criterion` crate.
//!
//! This build environment has no network access, so the real `criterion`
//! cannot be downloaded. The stub keeps `cargo bench` compiling and useful:
//! every registered benchmark runs its body once (after one untimed warm-up
//! call) and prints the wall-clock time, plus derived throughput when the
//! group declared one. There is no statistical sampling or HTML report.

use std::time::{Duration, Instant};

/// Opaque black box preventing the optimizer from deleting a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Measurement throughput declared by a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration (e.g. simulated cycles).
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Stand-in for `criterion::Criterion`. Builder methods are accepted and
/// ignored; `bench_function` runs the closure immediately.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted and ignored (the stub always runs one iteration).
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Accepted and ignored.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted and ignored.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Run `f` once as a benchmark named `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, None, f);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string(), throughput: None }
    }
}

/// Stand-in for `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration throughput for subsequent benches in the group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run `f` once as a benchmark named `group/id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.throughput, f);
        self
    }

    /// Close the group (no-op).
    pub fn finish(self) {}
}

/// Stand-in for `criterion::Bencher`: `iter` times one call of the routine.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Call `routine` once untimed (warm-up), then once timed.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        black_box(routine());
        let start = Instant::now();
        black_box(routine());
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(id: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher { elapsed: Duration::ZERO };
    f(&mut b);
    let secs = b.elapsed.as_secs_f64();
    match throughput {
        Some(Throughput::Elements(n)) if secs > 0.0 => {
            println!("bench {id}: {:?} ({:.0} elem/s)", b.elapsed, n as f64 / secs);
        }
        Some(Throughput::Bytes(n)) if secs > 0.0 => {
            println!("bench {id}: {:?} ({:.0} B/s)", b.elapsed, n as f64 / secs);
        }
        _ => println!("bench {id}: {:?}", b.elapsed),
    }
}

/// Mirror of `criterion::criterion_group!` (both invocation forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Mirror of `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
