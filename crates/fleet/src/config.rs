//! Fleet configuration: tenants, heterogeneous device classes, scheduler
//! policy knobs, migration policy, and the fleet-level fault/drain schedule.

use std::error::Error;
use std::fmt;

use gpu_sim::snap::{Snap, SnapError, SnapReader};
use gpu_sim::{FaultKind, FaultPlan, GpuConfig};
use qos_core::TenantClass;
use serde::{Deserialize, Serialize};
use workloads::arrival::ArrivalModel;

/// Which placement policy routes queued requests to idle devices.
///
/// The built-in names resolve to the policy objects in
/// [`crate::placement`]; `Custom` resolves through the process-global
/// registry ([`crate::placement::register_policy`]), letting external code
/// plug in new policies the way `gpu_ext` registers policy objects.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Fill one device to its kernel/memory limits before using the next:
    /// maximizes idle (power-gateable) devices, worst tail latency.
    Binpack,
    /// One request per idle device round-robin: spreads interference and
    /// blast radius, keeps every device warm.
    Spread,
    /// Queue-aware: route to the device with the fewest live requests,
    /// breaking ties toward the fewest batches served (coldest device).
    LeastLoaded,
    /// A policy registered at run time under this name.
    Custom(String),
}

impl Snap for Placement {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Placement::Binpack => out.push(0),
            Placement::Spread => out.push(1),
            Placement::LeastLoaded => out.push(2),
            Placement::Custom(name) => {
                out.push(3);
                name.encode(out);
            }
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match u8::decode(r)? {
            0 => Ok(Placement::Binpack),
            1 => Ok(Placement::Spread),
            2 => Ok(Placement::LeastLoaded),
            3 => Ok(Placement::Custom(String::decode(r)?)),
            _ => Err(SnapError::Invalid("Placement")),
        }
    }
}

/// One class of identical devices — the unit of migration compatibility.
///
/// Every device in a class shares the same simulated geometry (SM count, L2
/// sizing) and memory capacity, so a batch snapshot taken on one member
/// restores on any other ([`GpuConfig::compat_fingerprint`]). Devices of
/// *different* classes never exchange snapshots.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceClass {
    /// Class name, for reports and traces.
    pub name: String,
    /// How many devices of this class the fleet holds.
    pub count: u32,
    /// Streaming multiprocessors per device.
    pub num_sms: u32,
    /// L2 capacity per device, in KiB.
    pub l2_kb: u32,
    /// Device memory capacity, in bytes, limiting co-resident requests.
    pub mem_bytes: u64,
}

gpu_sim::impl_snap_struct!(DeviceClass { name, count, num_sms, l2_kb, mem_bytes });

impl DeviceClass {
    /// The standard small class: the tiny test device (2 SMs, 32 KiB L2)
    /// with 1 GiB of memory.
    pub fn small(count: u32) -> Self {
        DeviceClass { name: "small".into(), count, num_sms: 2, l2_kb: 32, mem_bytes: 1 << 30 }
    }

    /// A bigger class: twice the SMs and L2, 2 GiB of memory.
    pub fn big(count: u32) -> Self {
        DeviceClass { name: "big".into(), count, num_sms: 4, l2_kb: 64, mem_bytes: 2 << 30 }
    }
}

/// Live-migration policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationConfig {
    /// Master switch. Off, the fleet falls back to evict + retry (the PR 6
    /// behavior).
    pub enabled: bool,
    /// Refresh every busy batch's migration checkpoint each time this many
    /// ticks divide the tick index (≥ 1). Larger values trade checkpoint
    /// bandwidth for more re-simulated progress after a failure.
    pub checkpoint_every_ticks: u64,
    /// How many ticks a pending migration may wait for a compatible spare
    /// before falling back to bounded retry (≥ 1).
    pub patience_ticks: u64,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig { enabled: true, checkpoint_every_ticks: 1, patience_ticks: 8 }
    }
}

gpu_sim::impl_snap_struct!(MigrationConfig { enabled, checkpoint_every_ticks, patience_ticks });

/// One planned rebalance: at `at_cycle`, `device` drains — its running
/// batch is snapshotted at the tick boundary and migrated to a spare of the
/// same class, and the device stops accepting work (maintenance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannedDrain {
    /// Fleet cycle at which the drain begins.
    pub at_cycle: u64,
    /// Device index to drain.
    pub device: u32,
}

gpu_sim::impl_snap_struct!(PlannedDrain { at_cycle, device });

/// One tenant's request stream and contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Tenant name; also labels its request kernels and RNG stream.
    pub name: String,
    /// Guaranteed (SLO-protected) or best-effort.
    pub class: TenantClass,
    /// Open-, closed-, or diurnal-loop arrival model.
    pub arrival: ArrivalModel,
    /// Total requests the tenant will issue over the run.
    pub requests: u64,
    /// Grid size of each request kernel (thread blocks).
    pub grid_tbs: u32,
    /// Declared device memory per resident request, in bytes. Seeds the
    /// working-set tracker; admission and placement use the *measured*
    /// estimate once completions start reporting footprints.
    pub mem_bytes: u64,
}

gpu_sim::impl_snap_struct!(TenantSpec { name, class, arrival, requests, grid_tbs, mem_bytes });

/// One scheduled fleet-level fault: at `at_cycle`, `device` suffers `kind`.
///
/// Faults are injected into the device's *next* simulated batch (translated
/// to device-relative cycles), so a fault aimed at an idle device is
/// discovered on first use — the way real device loss is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetFault {
    /// Fleet cycle at which the fault is due.
    pub at_cycle: u64,
    /// Device index it strikes.
    pub device: u32,
    /// What breaks (typically [`FaultKind::DeviceLoss`] or
    /// [`FaultKind::DeviceWedge`]).
    pub kind: FaultKind,
}

gpu_sim::impl_snap_struct!(FleetFault { at_cycle, device, kind });

/// Top-level fleet configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// The device classes making up the fleet. Devices are numbered in
    /// class order: class 0's devices first, then class 1's, and so on.
    pub classes: Vec<DeviceClass>,
    /// Placement policy for queued requests.
    pub placement: Placement,
    /// Live-migration policy.
    pub migration: MigrationConfig,
    /// Master seed; every stream/jitter seed derives from it.
    pub seed: u64,
    /// Device epoch length; the per-device watchdog window is two epochs.
    pub epoch_cycles: u64,
    /// Fleet scheduler tick, in cycles. Must be a multiple of the watchdog
    /// window (`2 * epoch_cycles`) so every busy device sits at an epoch
    /// boundary — and is therefore snapshottable — at tick boundaries, and
    /// at least two windows long: the device watchdog re-arms on every
    /// `try_run` call, so a call must span a full window *beyond* the first
    /// check point for a stalled device to ever be classified (the same
    /// floor the harness applies to its sweep chunks).
    pub tick_cycles: u64,
    /// Per-request timeout while running on a device, in fleet cycles.
    pub timeout_cycles: u64,
    /// Bounded retry budget per request (timeouts and device failures).
    pub max_retries: u32,
    /// Exponential backoff base, in cycles; retry `n` waits
    /// `base << (n-1)` plus deterministic jitter in `[0, base)`.
    pub backoff_base: u64,
    /// Scheduler-visible runtime estimate per request, in device cycles —
    /// the online structural runtime prediction admission control projects
    /// occupancy with.
    pub est_service_cycles: u64,
    /// Load shedding engages when projected load exceeds this (permille).
    pub shed_enter_permille: u32,
    /// Load shedding disengages when projected load drops below this
    /// (permille); must be below `shed_enter_permille` — the hysteresis
    /// band that keeps shedding from flapping.
    pub shed_exit_permille: u32,
    /// Safety net: after this many ticks the fleet sheds whatever is still
    /// queued (with an explicit reason) and finishes.
    pub max_ticks: u64,
    /// The tenants served by this fleet.
    pub tenants: Vec<TenantSpec>,
    /// Scheduled device faults.
    pub faults: Vec<FleetFault>,
    /// Scheduled planned drains (rebalances / maintenance windows).
    pub drains: Vec<PlannedDrain>,
}

gpu_sim::impl_snap_struct!(FleetConfig {
    classes,
    placement,
    migration,
    seed,
    epoch_cycles,
    tick_cycles,
    timeout_cycles,
    max_retries,
    backoff_base,
    est_service_cycles,
    shed_enter_permille,
    shed_exit_permille,
    max_ticks,
    tenants,
    faults,
    drains,
});

/// A violated [`FleetConfig`] constraint, carrying the offending field and
/// values so callers (and tests) can react to the *kind* of failure instead
/// of parsing prose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetConfigError {
    /// `classes` is empty or every class has `count == 0`.
    NoDevices,
    /// A class exists with `count == 0` (probably a config typo).
    EmptyClass {
        /// Name of the empty class.
        class: String,
    },
    /// `epoch_cycles == 0`.
    ZeroEpoch,
    /// `tick_cycles` is not a multiple of the watchdog window, or spans
    /// fewer than two windows.
    BadTick {
        /// The offending tick length.
        tick_cycles: u64,
        /// The watchdog window it must align to (two epochs).
        watchdog_window: u64,
    },
    /// A knob that must be positive is zero.
    ZeroKnob {
        /// Which field (`timeout_cycles`, `est_service_cycles`,
        /// `backoff_base`, `checkpoint_every_ticks`, or `patience_ticks`).
        field: &'static str,
    },
    /// `shed_exit_permille >= shed_enter_permille`.
    InvertedHysteresis {
        /// The engage threshold.
        enter_permille: u32,
        /// The (not lower) disengage threshold.
        exit_permille: u32,
    },
    /// `tenants` is empty.
    NoTenants,
    /// A tenant declares more memory than the largest device holds.
    TenantOverMemory {
        /// Tenant name.
        tenant: String,
        /// Its declared per-request memory.
        mem_bytes: u64,
        /// The largest device capacity in the fleet.
        largest_device: u64,
    },
    /// A scheduled fault targets a device index beyond the fleet.
    FaultBeyondFleet {
        /// The targeted device.
        device: u32,
        /// How many devices exist.
        devices: u32,
    },
    /// A planned drain targets a device index beyond the fleet.
    DrainBeyondFleet {
        /// The targeted device.
        device: u32,
        /// How many devices exist.
        devices: u32,
    },
    /// `placement` names a policy that is neither built in nor registered.
    UnknownPlacement {
        /// The unresolved name.
        name: String,
    },
    /// A class expands to a [`GpuConfig`] that fails its own validation.
    BadDeviceConfig {
        /// Name of the offending class.
        class: String,
        /// The underlying error.
        error: String,
    },
}

impl fmt::Display for FleetConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetConfigError::NoDevices => f.write_str("a fleet needs at least one device"),
            FleetConfigError::EmptyClass { class } => {
                write!(f, "device class {class:?} has count 0")
            }
            FleetConfigError::ZeroEpoch => f.write_str("epoch_cycles must be positive"),
            FleetConfigError::BadTick { tick_cycles, watchdog_window } => write!(
                f,
                "tick_cycles ({tick_cycles}) must be a multiple of the watchdog window \
                 ({watchdog_window}) and at least two windows long, or wedged devices are \
                 never classified"
            ),
            FleetConfigError::ZeroKnob { field } => write!(f, "{field} must be positive"),
            FleetConfigError::InvertedHysteresis { enter_permille, exit_permille } => write!(
                f,
                "hysteresis band is inverted: exit {exit_permille}‰ must be below enter \
                 {enter_permille}‰"
            ),
            FleetConfigError::NoTenants => f.write_str("a fleet needs at least one tenant"),
            FleetConfigError::TenantOverMemory { tenant, mem_bytes, largest_device } => write!(
                f,
                "tenant {tenant} requests {mem_bytes} bytes, more than the largest device \
                 ({largest_device})"
            ),
            FleetConfigError::FaultBeyondFleet { device, devices } => {
                write!(f, "fault targets nonexistent device {device} (fleet has {devices})")
            }
            FleetConfigError::DrainBeyondFleet { device, devices } => {
                write!(f, "drain targets nonexistent device {device} (fleet has {devices})")
            }
            FleetConfigError::UnknownPlacement { name } => {
                write!(f, "placement policy {name:?} is neither built in nor registered")
            }
            FleetConfigError::BadDeviceConfig { class, error } => {
                write!(f, "device class {class:?} expands to an invalid GPU config: {error}")
            }
        }
    }
}

impl Error for FleetConfigError {}

impl FleetConfig {
    /// The watchdog window each device runs with (two epochs, matching the
    /// harness's sweep configuration).
    pub fn watchdog_window(&self) -> u64 {
        2 * self.epoch_cycles
    }

    /// Total devices across every class.
    pub fn total_devices(&self) -> u32 {
        self.classes.iter().map(|c| c.count).sum()
    }

    /// The class index of device `device` (devices are numbered in class
    /// order).
    ///
    /// # Panics
    ///
    /// Panics when `device` is beyond the fleet.
    pub fn class_of(&self, device: u32) -> usize {
        let mut cursor = device;
        for (ci, class) in self.classes.iter().enumerate() {
            if cursor < class.count {
                return ci;
            }
            cursor -= class.count;
        }
        panic!("device {device} beyond the fleet ({} devices)", self.total_devices());
    }

    /// Builds the [`GpuConfig`] for one batch on a device of class
    /// `class`, carrying `faults` (already translated to device-relative
    /// cycles).
    pub fn device_config(&self, class: usize, faults: FaultPlan) -> GpuConfig {
        let spec = &self.classes[class];
        let mut cfg = GpuConfig::tiny();
        cfg.num_sms = spec.num_sms;
        cfg.mem.l2_bytes = u64::from(spec.l2_kb) * 1024;
        cfg.epoch_cycles = self.epoch_cycles;
        cfg.samples_per_epoch = 10;
        cfg.health.watchdog_window = self.watchdog_window();
        cfg.faults = faults;
        cfg
    }

    /// The migration-class fingerprint of `class`
    /// ([`GpuConfig::compat_fingerprint`]): snapshots may only move between
    /// devices whose classes fingerprint equal.
    pub fn class_compat_fingerprint(&self, class: usize) -> u64 {
        self.device_config(class, FaultPlan::none()).compat_fingerprint()
    }

    /// Validates internal consistency; returns the first violated
    /// constraint.
    ///
    /// # Errors
    ///
    /// The first violated constraint, as a typed [`FleetConfigError`]
    /// carrying the offending field and values.
    pub fn validate(&self) -> Result<(), FleetConfigError> {
        if self.classes.is_empty() || self.total_devices() == 0 {
            return Err(FleetConfigError::NoDevices);
        }
        for class in &self.classes {
            if class.count == 0 {
                return Err(FleetConfigError::EmptyClass { class: class.name.clone() });
            }
        }
        if self.epoch_cycles == 0 {
            return Err(FleetConfigError::ZeroEpoch);
        }
        if !self.tick_cycles.is_multiple_of(self.watchdog_window())
            || self.tick_cycles < 2 * self.watchdog_window()
        {
            return Err(FleetConfigError::BadTick {
                tick_cycles: self.tick_cycles,
                watchdog_window: self.watchdog_window(),
            });
        }
        for (field, value) in [
            ("timeout_cycles", self.timeout_cycles),
            ("est_service_cycles", self.est_service_cycles),
            ("backoff_base", self.backoff_base),
            ("migration.checkpoint_every_ticks", self.migration.checkpoint_every_ticks),
            ("migration.patience_ticks", self.migration.patience_ticks),
        ] {
            if value == 0 {
                return Err(FleetConfigError::ZeroKnob { field });
            }
        }
        if self.shed_exit_permille >= self.shed_enter_permille {
            return Err(FleetConfigError::InvertedHysteresis {
                enter_permille: self.shed_enter_permille,
                exit_permille: self.shed_exit_permille,
            });
        }
        if self.tenants.is_empty() {
            return Err(FleetConfigError::NoTenants);
        }
        let largest = self.classes.iter().map(|c| c.mem_bytes).max().unwrap_or(0);
        for t in &self.tenants {
            if t.mem_bytes > largest {
                return Err(FleetConfigError::TenantOverMemory {
                    tenant: t.name.clone(),
                    mem_bytes: t.mem_bytes,
                    largest_device: largest,
                });
            }
        }
        let devices = self.total_devices();
        for f in &self.faults {
            if f.device >= devices {
                return Err(FleetConfigError::FaultBeyondFleet { device: f.device, devices });
            }
        }
        for d in &self.drains {
            if d.device >= devices {
                return Err(FleetConfigError::DrainBeyondFleet { device: d.device, devices });
            }
        }
        if crate::placement::resolve(&self.placement).is_none() {
            let name = match &self.placement {
                Placement::Custom(name) => name.clone(),
                other => format!("{other:?}"),
            };
            return Err(FleetConfigError::UnknownPlacement { name });
        }
        for (ci, class) in self.classes.iter().enumerate() {
            self.device_config(ci, FaultPlan::none()).validate().map_err(|e| {
                FleetConfigError::BadDeviceConfig {
                    class: class.name.clone(),
                    error: e.to_string(),
                }
            })?;
        }
        Ok(())
    }

    /// Stable 64-bit fingerprint of the configuration, for checkpoint
    /// compatibility checks.
    pub fn fingerprint(&self) -> u64 {
        gpu_sim::snap::fnv1a(&gpu_sim::snap::encode_to_vec(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_core::SloTarget;

    fn base() -> FleetConfig {
        FleetConfig {
            classes: vec![DeviceClass::small(2)],
            placement: Placement::Spread,
            migration: MigrationConfig::default(),
            seed: 1,
            epoch_cycles: 1_000,
            tick_cycles: 4_000,
            timeout_cycles: 40_000,
            max_retries: 3,
            backoff_base: 2_000,
            est_service_cycles: 10_000,
            shed_enter_permille: 900,
            shed_exit_permille: 600,
            max_ticks: 1_000,
            tenants: vec![TenantSpec {
                name: "t".into(),
                class: TenantClass::guaranteed(SloTarget::new(60_000, 900_000)),
                arrival: ArrivalModel::Open { mean_gap: 4_000 },
                requests: 10,
                grid_tbs: 8,
                mem_bytes: 1 << 20,
            }],
            faults: Vec::new(),
            drains: Vec::new(),
        }
    }

    #[test]
    fn base_config_validates() {
        base().validate().expect("base config is sound");
    }

    #[test]
    fn no_devices_variants() {
        let mut cfg = base();
        cfg.classes.clear();
        assert_eq!(cfg.validate(), Err(FleetConfigError::NoDevices));
        cfg.classes = vec![DeviceClass { count: 0, ..DeviceClass::small(0) }];
        assert_eq!(cfg.validate(), Err(FleetConfigError::NoDevices));
        cfg.classes = vec![DeviceClass::small(1), DeviceClass { count: 0, ..DeviceClass::big(0) }];
        assert_eq!(cfg.validate(), Err(FleetConfigError::EmptyClass { class: "big".into() }));
    }

    #[test]
    fn zero_epoch_is_typed() {
        let mut cfg = base();
        cfg.epoch_cycles = 0;
        assert_eq!(cfg.validate(), Err(FleetConfigError::ZeroEpoch));
    }

    #[test]
    fn tick_must_span_two_watchdog_windows() {
        let mut cfg = base();
        cfg.tick_cycles = 1_000; // one epoch: not even a full window
        assert_eq!(
            cfg.validate(),
            Err(FleetConfigError::BadTick { tick_cycles: 1_000, watchdog_window: 2_000 })
        );
        cfg.tick_cycles = 2_000; // exactly one window: the per-call watchdog
        assert!(cfg.validate().is_err()); // check point is never reached
        cfg.tick_cycles = 6_000; // three windows: fine
        cfg.validate().expect("two or more windows are legal");
    }

    #[test]
    fn zero_knobs_name_their_field() {
        for field in [
            "timeout_cycles",
            "est_service_cycles",
            "backoff_base",
            "migration.checkpoint_every_ticks",
            "migration.patience_ticks",
        ] {
            let mut cfg = base();
            match field {
                "timeout_cycles" => cfg.timeout_cycles = 0,
                "est_service_cycles" => cfg.est_service_cycles = 0,
                "backoff_base" => cfg.backoff_base = 0,
                "migration.checkpoint_every_ticks" => cfg.migration.checkpoint_every_ticks = 0,
                _ => cfg.migration.patience_ticks = 0,
            }
            assert_eq!(cfg.validate(), Err(FleetConfigError::ZeroKnob { field }));
        }
    }

    #[test]
    fn inverted_hysteresis_band_carries_both_thresholds() {
        let mut cfg = base();
        cfg.shed_exit_permille = cfg.shed_enter_permille;
        assert_eq!(
            cfg.validate(),
            Err(FleetConfigError::InvertedHysteresis { enter_permille: 900, exit_permille: 900 })
        );
    }

    #[test]
    fn no_tenants_is_typed() {
        let mut cfg = base();
        cfg.tenants.clear();
        assert_eq!(cfg.validate(), Err(FleetConfigError::NoTenants));
    }

    #[test]
    fn tenant_over_memory_names_the_tenant() {
        let mut cfg = base();
        cfg.tenants[0].mem_bytes = 4 << 30;
        assert_eq!(
            cfg.validate(),
            Err(FleetConfigError::TenantOverMemory {
                tenant: "t".into(),
                mem_bytes: 4 << 30,
                largest_device: 1 << 30,
            })
        );
        // A bigger class absorbs it.
        cfg.classes.push(DeviceClass::big(1));
        cfg.tenants[0].mem_bytes = 2 << 30;
        cfg.validate().expect("fits the big class");
    }

    #[test]
    fn fault_and_drain_bounds_are_typed() {
        let mut cfg = base();
        cfg.faults.push(FleetFault { at_cycle: 10, device: 9, kind: FaultKind::DeviceLoss });
        assert_eq!(
            cfg.validate(),
            Err(FleetConfigError::FaultBeyondFleet { device: 9, devices: 2 })
        );
        cfg.faults.clear();
        cfg.drains.push(PlannedDrain { at_cycle: 10, device: 5 });
        assert_eq!(
            cfg.validate(),
            Err(FleetConfigError::DrainBeyondFleet { device: 5, devices: 2 })
        );
    }

    #[test]
    fn unknown_custom_placement_is_typed() {
        let mut cfg = base();
        cfg.placement = Placement::Custom("no-such-policy".into());
        assert_eq!(
            cfg.validate(),
            Err(FleetConfigError::UnknownPlacement { name: "no-such-policy".into() })
        );
    }

    #[test]
    fn bad_device_class_names_the_class() {
        let mut cfg = base();
        // Zero SMs — the underlying GpuConfig rejects it, and the fleet
        // error says which class caused it.
        cfg.classes = vec![DeviceClass { num_sms: 0, ..DeviceClass::small(1) }];
        match cfg.validate() {
            Err(FleetConfigError::BadDeviceConfig { class, .. }) => assert_eq!(class, "small"),
            other => panic!("expected BadDeviceConfig, got {other:?}"),
        }
    }

    #[test]
    fn class_indexing_walks_class_order() {
        let mut cfg = base();
        cfg.classes = vec![DeviceClass::small(2), DeviceClass::big(3)];
        assert_eq!(cfg.total_devices(), 5);
        assert_eq!(cfg.class_of(0), 0);
        assert_eq!(cfg.class_of(1), 0);
        assert_eq!(cfg.class_of(2), 1);
        assert_eq!(cfg.class_of(4), 1);
    }

    #[test]
    fn compat_classes_are_honest() {
        let mut cfg = base();
        cfg.classes = vec![DeviceClass::small(1), DeviceClass::big(1), DeviceClass::small(1)];
        assert_eq!(
            cfg.class_compat_fingerprint(0),
            cfg.class_compat_fingerprint(2),
            "identical geometry, same migration class"
        );
        assert_ne!(
            cfg.class_compat_fingerprint(0),
            cfg.class_compat_fingerprint(1),
            "different geometry, different migration class"
        );
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = base();
        let mut b = base();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.seed = 2;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = base();
        c.migration.checkpoint_every_ticks = 2;
        assert_ne!(a.fingerprint(), c.fingerprint());
    }
}
