//! Offline stand-in for the `proptest` crate.
//!
//! This build environment has no network access, so the real `proptest`
//! cannot be downloaded. This stub keeps the workspace's property tests
//! running with the same source syntax: the `proptest!` macro expands each
//! test into a loop of deterministically seeded random cases, `Strategy` is
//! implemented for the range/collection strategies the tests use, and
//! `prop_assert*` short-circuits the case with a typed error. There is no
//! shrinking — a failing case reports its inputs via the panic message
//! (inputs are reproducible: the RNG is seeded from the test name alone).

pub mod test_runner {
    //! Config, error, and RNG types used by the expanded tests.

    /// Stand-in for `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Failure raised by `prop_assert*` inside a generated test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Build a failure carrying `msg`.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// SplitMix64: deterministic, seeded from the test name so every run of
    /// a given test replays the identical case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// RNG for the named test.
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self(h)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and the strategies the workspace tests use.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type. Unlike real proptest there is
    /// no value tree / shrinking — `sample` directly yields a value.
    pub trait Strategy {
        /// The produced value type.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let width = (hi - lo + 1) as u64;
                    (lo + rng.below(width) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let v = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                    if v < self.end { v } else { self.start }
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    /// Strategy yielding any value of `T` (`any::<T>()`).
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// Stand-in for `proptest::prelude::any`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any(PhantomData)
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! any_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bound for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { min: r.start, max_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self { min: *r.start(), max_inclusive: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Stand-in for `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Mirror of `proptest::prelude`: everything the test syntax needs.

    pub use crate::strategy::{any, Any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirror of the `prop` module alias from the real prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Expands property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test looping over `config.cases` deterministically sampled
/// cases, with the body run as a closure returning `Result` so that
/// `prop_assert*` (and explicit `return Ok(())`) work as in real proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)+ ""),
                    $(&$arg,)+
                );
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest `{}` failed at case {} [{}]: {}",
                        stringify!($name),
                        __case,
                        __inputs,
                        e
                    );
                }
            }
        }
    )*};
}

/// `assert!` that fails the current proptest case with a typed error.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that fails the current proptest case with a typed error.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// `assert_ne!` counterpart of [`prop_assert_eq`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the rest of the case when the assumption is false. The stub counts
/// a skipped case as passed (no case-count replenishment).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(
            a in 3u64..17,
            b in -5i32..5,
            f in 0.25f64..0.75,
            any_bool in any::<bool>(),
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!(u8::from(any_bool) <= 1);
        }

        /// Vec strategy respects length bounds element-wise.
        #[test]
        fn vec_in_bounds(v in prop::collection::vec(1u32..4, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (1..4).contains(&x)));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = 0u64..1_000_000;
        let once: Vec<u64> =
            (0..64).scan(TestRng::for_test("d"), |r, _| Some(strat.sample(r))).collect();
        let twice: Vec<u64> =
            (0..64).scan(TestRng::for_test("d"), |r, _| Some(strat.sample(r))).collect();
        assert_eq!(once, twice);
    }
}
