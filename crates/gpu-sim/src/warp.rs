//! Warp address-stream generation and saved progress.
//!
//! Per-warp execution state itself lives in the struct-of-arrays
//! [`crate::sm::WarpTable`]; this module holds the pieces that are not
//! layout-sensitive: the deterministic address-stream generator (borrowed
//! view over one table slot) and the architectural progress captured by a
//! partial context switch.

use crate::kernel::{AccessPattern, PatternKind};
use crate::rng::SplitMix64;
use crate::types::Addr;

/// Borrowed view of the address-stream state of one warp-table slot.
///
/// Streams are fully determined by `(kernel seed, warp_uid, seq)`, so a
/// preempted-and-resumed warp continues exactly where it left off.
#[derive(Debug)]
pub struct AddrStream<'a> {
    /// Globally unique warp number within the kernel (survives preemption).
    pub warp_uid: u64,
    /// Warp position within its TB.
    pub warp_in_tb: u16,
    /// Memory-access sequence number (advanced by each generated access).
    pub seq: &'a mut u64,
    /// Deterministic per-warp RNG for randomized patterns.
    pub rng: &'a mut SplitMix64,
}

impl AddrStream<'_> {
    /// Generates the coalesced line addresses for the warp's next memory
    /// access under `pattern`, appending up to `pattern.transactions` line
    /// addresses into `buf` and returning how many were written.
    pub fn gen_lines(
        &mut self,
        pattern: &AccessPattern,
        kernel_base: Addr,
        line_bytes: u32,
        tb_index: u32,
        buf: &mut [Addr; 32],
    ) -> usize {
        let line = u64::from(line_bytes);
        let trans = usize::from(pattern.transactions);
        let fp_lines = (pattern.footprint_bytes / line).max(1);
        let seq = *self.seq;
        *self.seq += 1;
        // Writes `(start + t) % fp_lines` scaled to line addresses for
        // `t = 0..trans`. `start` is already reduced mod `fp_lines`, so the
        // per-line modulo is a wrap-to-zero compare — one u64 division per
        // *access* instead of one per line, which matters on the dense path
        // where every memory issue runs this for a full warp's worth of
        // transactions.
        let fill = |buf: &mut [Addr; 32], base: Addr, start: u64| {
            let mut x = start;
            for slot in buf.iter_mut().take(trans) {
                *slot = base + x * line;
                x += 1;
                if x == fp_lines {
                    x = 0;
                }
            }
        };
        match pattern.kind {
            PatternKind::Stream => {
                // Each warp streams through its own region; fresh lines each
                // access until the (large) footprint wraps.
                let start =
                    self.warp_uid.wrapping_mul(2048).wrapping_add(seq * trans as u64) % fp_lines;
                fill(buf, kernel_base, start);
            }
            PatternKind::Tile => {
                // The whole TB cycles within one tile; after the first pass
                // the tile is cache-resident.
                let tile_base = kernel_base + u64::from(tb_index) % 1024 * pattern.footprint_bytes;
                let start =
                    (u64::from(self.warp_in_tb) * 97 + seq).wrapping_mul(trans as u64) % fp_lines;
                fill(buf, tile_base, start);
            }
            PatternKind::Random => {
                for slot in buf.iter_mut().take(trans) {
                    *slot = kernel_base + self.rng.next_below(fp_lines) * line;
                }
            }
            PatternKind::Stencil => {
                // Sliding windows that overlap across neighbouring warps and
                // successive accesses: L1 catches same-warp reuse, L2 catches
                // cross-TB reuse.
                let center = (self.warp_uid * trans as u64 + seq * 2) % fp_lines;
                fill(buf, kernel_base, center);
            }
        }
        trans
    }
}

/// A warp's saved architectural progress (for partial context switch).
#[derive(Debug, Clone)]
pub struct WarpProgress {
    /// Saved op index.
    pub pc: u16,
    /// Saved repeats-remaining.
    pub rem: u16,
    /// Saved loop iterations remaining.
    pub iter: u32,
    /// Saved memory sequence number.
    pub seq: u64,
    /// Whether the warp had already retired.
    pub done: bool,
    /// Saved RNG state (randomized streams resume deterministically).
    pub rng: SplitMix64,
}

crate::impl_snap_struct!(WarpProgress { pc, rem, iter, seq, done, rng });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    struct OwnedStream {
        warp_uid: u64,
        warp_in_tb: u16,
        seq: u64,
        rng: SplitMix64,
    }

    impl OwnedStream {
        fn gen(
            &mut self,
            pattern: &AccessPattern,
            kernel_base: Addr,
            tb_index: u32,
            buf: &mut [Addr; 32],
        ) -> usize {
            AddrStream {
                warp_uid: self.warp_uid,
                warp_in_tb: self.warp_in_tb,
                seq: &mut self.seq,
                rng: &mut self.rng,
            }
            .gen_lines(pattern, kernel_base, 32, tb_index, buf)
        }
    }

    fn warp(uid: u64) -> OwnedStream {
        OwnedStream { warp_uid: uid, warp_in_tb: 0, seq: 0, rng: SplitMix64::new(uid) }
    }

    #[test]
    fn stream_generates_fresh_consecutive_lines() {
        let mut w = warp(0);
        let mut buf = [0u64; 32];
        let p = AccessPattern::stream();
        let n = w.gen(&p, 0, 0, &mut buf);
        assert_eq!(n, 4);
        for t in 1..n {
            assert_eq!(buf[t] - buf[t - 1], 32, "stream lines are consecutive");
        }
        let first_access = buf[..n].to_vec();
        let n2 = w.gen(&p, 0, 0, &mut buf);
        assert!(
            buf[..n2].iter().all(|a| !first_access.contains(a)),
            "successive stream accesses touch fresh lines"
        );
    }

    #[test]
    fn tile_stays_within_footprint() {
        let mut w = warp(3);
        let mut buf = [0u64; 32];
        let p = AccessPattern::tile(4096);
        for _ in 0..100 {
            let n = w.gen(&p, 0, 7, &mut buf);
            let tile_base = 7 * 4096;
            for &a in &buf[..n] {
                assert!(
                    (tile_base..tile_base + 4096).contains(&a),
                    "tile access {a:#x} outside tile"
                );
            }
        }
    }

    #[test]
    fn random_stays_within_footprint_and_uses_rng() {
        let mut w = warp(5);
        let mut buf = [0u64; 32];
        let p = AccessPattern::random(1 << 20, 32);
        let n = w.gen(&p, 1 << 30, 0, &mut buf);
        assert_eq!(n, 32);
        for &a in &buf[..n] {
            assert!((1 << 30..(1 << 30) + (1 << 20)).contains(&a));
        }
        let distinct: std::collections::HashSet<u64> = buf[..n].iter().copied().collect();
        assert!(distinct.len() > 16, "random pattern should rarely repeat lines");
    }

    #[test]
    fn same_seed_same_stream_across_clones() {
        let mut a = warp(9);
        let mut b = warp(9);
        let mut ba = [0u64; 32];
        let mut bb = [0u64; 32];
        let p = AccessPattern::random(1 << 16, 8);
        for _ in 0..10 {
            a.gen(&p, 0, 0, &mut ba);
            b.gen(&p, 0, 0, &mut bb);
            assert_eq!(ba, bb);
        }
    }

    #[test]
    fn gen_lines_advances_seq_once_per_access() {
        let mut w = warp(1);
        let mut buf = [0u64; 32];
        let p = AccessPattern::stream();
        for expect in 1..=5u64 {
            w.gen(&p, 0, 0, &mut buf);
            assert_eq!(w.seq, expect, "each access advances seq by exactly one");
        }
    }

    #[test]
    fn stencil_windows_overlap_between_neighbour_warps() {
        let mut w0 = warp(0);
        let mut w1 = warp(1);
        let mut b0 = [0u64; 32];
        let mut b1 = [0u64; 32];
        let p = AccessPattern::stencil(1 << 16);
        // Advance warp 0 a little; its window should reach warp 1's start.
        let n0 = w0.gen(&p, 0, 0, &mut b0);
        let n1 = w1.gen(&p, 0, 0, &mut b1);
        let s0: std::collections::HashSet<u64> = b0[..n0].iter().copied().collect();
        let mut overlap = b1[..n1].iter().any(|a| s0.contains(a));
        for _ in 0..4 {
            let n = w0.gen(&p, 0, 0, &mut b0);
            overlap |= b0[..n].iter().any(|a| b1[..n1].contains(a));
        }
        assert!(overlap, "stencil windows should overlap across warps/accesses");
    }
}
