//! Live-migration bookkeeping: pending migrations awaiting a compatible
//! spare, and the record of completed migrations.
//!
//! The mechanism (DESIGN.md §16): every busy batch keeps a device snapshot
//! taken at a tick boundary. When its device leaves service — silently
//! lost, wedged (watchdog-classified), drained for a planned rebalance, or
//! preempted to free capacity for guaranteed work under shed pressure — the
//! surviving requests and the snapshot enter the fleet's pending-migration
//! queue as a [`PendingMigration`]. Placement services that queue first
//! each tick, restoring the blob onto an idle device of the same migration
//! class ([`gpu_sim::Gpu::restore_compat`]); the batch resumes with every
//! retry counter untouched. A migration that cannot find a spare within the
//! configured patience falls back to the bounded-retry path, so the queue
//! can never hold work forever.

use gpu_sim::snap::{Snap, SnapError, SnapReader};

/// Why a batch left its device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationReason {
    /// The device vanished mid-tick ([`gpu_sim::SimError::DeviceLost`]);
    /// the batch resumes from its last checkpoint.
    DeviceLost,
    /// The device wedged and the watchdog classified it; the frozen state
    /// is untrustworthy, so the batch resumes from its last checkpoint.
    DeviceWedged,
    /// A planned drain (maintenance/rebalance); the batch was snapshotted
    /// fresh at the tick boundary, so no progress is lost.
    Drain,
    /// Preempted under shed pressure to free a device for guaranteed work;
    /// snapshotted fresh, no progress lost.
    ShedPressure,
}

impl std::fmt::Display for MigrationReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MigrationReason::DeviceLost => "device-lost",
            MigrationReason::DeviceWedged => "device-wedged",
            MigrationReason::Drain => "drain",
            MigrationReason::ShedPressure => "shed-pressure",
        })
    }
}

impl Snap for MigrationReason {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            MigrationReason::DeviceLost => 0,
            MigrationReason::DeviceWedged => 1,
            MigrationReason::Drain => 2,
            MigrationReason::ShedPressure => 3,
        });
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match u8::decode(r)? {
            0 => Ok(MigrationReason::DeviceLost),
            1 => Ok(MigrationReason::DeviceWedged),
            2 => Ok(MigrationReason::Drain),
            3 => Ok(MigrationReason::ShedPressure),
            _ => Err(SnapError::Invalid("MigrationReason")),
        }
    }
}

/// A batch waiting for a compatible spare, with everything needed to
/// resume it: the slot→request map, the snapshot blob, and the timing
/// context that keeps fault translation and timeout accounting exact.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingMigration {
    /// Request ids per original kernel slot (slot order preserved so the
    /// restored device's kernel slots line up).
    pub slots: Vec<u64>,
    /// Which slots were still live when the batch left its device. Slots
    /// that completed after the checkpoint was taken are inactive here and
    /// get gated on the target so finished work never re-runs.
    pub active: Vec<bool>,
    /// Fleet cycle the batch was originally placed — the timeout base its
    /// requests keep across the migration.
    pub started_at: u64,
    /// Device-relative cycle of the snapshot blob. Fault schedules on the
    /// target translate through it: a fleet-cycle fault at `F`, installed
    /// at fleet cycle `now`, fires at device cycle `gpu_cycle + (F - now)`.
    pub gpu_cycle: u64,
    /// The serialized [`gpu_sim::SnapshotBlob`].
    pub blob: Vec<u8>,
    /// Migration class of the source device: only devices whose class
    /// compat-fingerprint matches may receive the blob.
    pub compat_fingerprint: u64,
    /// Device the batch left.
    pub from_device: u32,
    /// Why it left.
    pub reason: MigrationReason,
    /// Fleet cycle it entered the pending queue (patience clock).
    pub enqueued_at: u64,
}

gpu_sim::impl_snap_struct!(PendingMigration {
    slots,
    active,
    started_at,
    gpu_cycle,
    blob,
    compat_fingerprint,
    from_device,
    reason,
    enqueued_at,
});

impl PendingMigration {
    /// Request ids still live in this migration.
    pub fn live_requests(&self) -> impl Iterator<Item = usize> + '_ {
        self.slots.iter().zip(&self.active).filter(|(_, live)| **live).map(|(id, _)| *id as usize)
    }
}

/// One completed migration, kept for reports and trace export (each live
/// request becomes a migration span on its tenant's Perfetto track).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationRecord {
    /// Device the batch left.
    pub from_device: u32,
    /// Device it resumed on.
    pub to_device: u32,
    /// Why it moved.
    pub reason: MigrationReason,
    /// Live request ids that resumed.
    pub requests: Vec<u64>,
    /// Owning tenant per entry of `requests`.
    pub tenants: Vec<u64>,
    /// Fleet cycle the batch entered the pending queue.
    pub enqueued_at: u64,
    /// Fleet cycle it resumed on the target.
    pub restored_at: u64,
}

gpu_sim::impl_snap_struct!(MigrationRecord {
    from_device,
    to_device,
    reason,
    requests,
    tenants,
    enqueued_at,
    restored_at,
});

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::snap::{decode_from_slice, encode_to_vec};

    #[test]
    fn pending_migration_round_trips_and_filters_live_slots() {
        let pm = PendingMigration {
            slots: vec![4, 9, 11],
            active: vec![true, false, true],
            started_at: 8_000,
            gpu_cycle: 12_000,
            blob: vec![1, 2, 3, 4],
            compat_fingerprint: 0xDEAD_BEEF,
            from_device: 2,
            reason: MigrationReason::DeviceWedged,
            enqueued_at: 20_000,
        };
        assert_eq!(pm.live_requests().collect::<Vec<_>>(), vec![4, 11]);
        let back: PendingMigration =
            decode_from_slice(&encode_to_vec(&pm)).expect("codec round trip");
        assert_eq!(back, pm);
    }

    #[test]
    fn migration_reasons_round_trip_and_render() {
        for (reason, label) in [
            (MigrationReason::DeviceLost, "device-lost"),
            (MigrationReason::DeviceWedged, "device-wedged"),
            (MigrationReason::Drain, "drain"),
            (MigrationReason::ShedPressure, "shed-pressure"),
        ] {
            assert_eq!(reason.to_string(), label);
            let back: MigrationReason =
                decode_from_slice(&encode_to_vec(&reason)).expect("codec round trip");
            assert_eq!(back, reason);
        }
    }
}
