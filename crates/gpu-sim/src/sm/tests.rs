//! Unit tests for the SM domain. Tests drive a lone SM with [`Sm::step`]
//! (tick + immediate port drain), the single-SM equivalent of the machine's
//! tick→barrier→drain sequence.

use std::sync::Arc;

use super::*;
use crate::config::GpuConfig;
use crate::kernel::{AccessPattern, KernelDesc, Op};
use crate::memsys::MemSystem;
use crate::types::{KernelId, SmId, TbIndex};

fn setup(body: Vec<Op>, iters: u32) -> (Sm, MemSystem, Arc<KernelDesc>) {
    let cfg = GpuConfig::tiny();
    let sm = Sm::new(SmId::new(0), &cfg);
    let mem = MemSystem::new(cfg.mem.clone());
    let desc = Arc::new(
        KernelDesc::builder("t")
            .threads_per_tb(64)
            .regs_per_thread(16)
            .iterations(iters)
            .grid_tbs(8)
            .body(body)
            .build(),
    );
    (sm, mem, desc)
}

fn run(sm: &mut Sm, mem: &mut MemSystem, cycles: u64) {
    for now in 0..cycles {
        sm.step(now, mem);
    }
}

#[test]
fn dispatch_occupies_and_completion_frees() {
    let (mut sm, mut mem, desc) = setup(vec![Op::alu(1, 4)], 2);
    let k = KernelId::new(0);
    sm.set_kernel_desc(k, desc.clone());
    sm.dispatch(k, TbIndex(0), None, 0, 0);
    assert_eq!(sm.hosted_tbs(k), 1);
    assert_eq!(sm.used_threads(), 64);
    run(&mut sm, &mut mem, 200);
    assert_eq!(sm.hosted_tbs(k), 0, "TB should complete and free");
    assert_eq!(sm.used_threads(), 0);
    let mut done = Vec::new();
    sm.drain_completed(&mut done);
    assert_eq!(done, vec![(k, TbIndex(0))]);
    // 2 warps * 2 iters * 4 insts * 32 lanes
    assert_eq!(sm.counters(k).thread_insts, 2 * 2 * 4 * 32);
}

#[test]
fn quota_gating_throttles_kernel() {
    let (mut sm, mut mem, desc) = setup(vec![Op::alu(1, 100)], 100);
    let k = KernelId::new(0);
    sm.set_kernel_desc(k, desc);
    sm.dispatch(k, TbIndex(0), None, 0, 0);
    sm.set_gated(k, true);
    sm.set_qos_kernel(k, true);
    sm.set_epoch_quota(k, 320, QuotaCarry::DiscardSurplus, 0);
    run(&mut sm, &mut mem, 1_000);
    // 320 thread-insts = 10 warp instructions; slight overshoot of one
    // warp instruction per scheduler is possible at the boundary.
    let issued = sm.counters(k).thread_insts;
    assert!(issued >= 320, "must consume its quota, got {issued}");
    assert!(issued <= 320 + 32 * 2, "throttled soon after exhaustion, got {issued}");
    assert!(sm.quota(k) <= 0);
}

#[test]
fn nonqos_refill_after_qos_exhausted() {
    let (mut sm, mut mem, desc) = setup(vec![Op::alu(1, 100)], 100);
    let q = KernelId::new(0);
    let n = KernelId::new(1);
    sm.set_kernel_desc(q, desc.clone());
    sm.set_kernel_desc(n, desc);
    sm.dispatch(q, TbIndex(0), None, 0, 0);
    sm.dispatch(n, TbIndex(0), None, 0, 0);
    for (k, qos) in [(q, true), (n, false)] {
        sm.set_gated(k, true);
        sm.set_qos_kernel(k, qos);
    }
    sm.set_epoch_quota(q, 320, QuotaCarry::DiscardSurplus, 0);
    sm.set_epoch_quota(n, 320, QuotaCarry::DiscardSurplus, 320);
    run(&mut sm, &mut mem, 2_000);
    let qi = sm.counters(q).thread_insts;
    let ni = sm.counters(n).thread_insts;
    assert!(qi <= 320 + 64, "QoS kernel stays near quota, got {qi}");
    assert!(ni > 10 * 320, "non-QoS kernel keeps refilling, got {ni}");
}

#[test]
fn elastic_refills_all_when_everyone_exhausted() {
    let (mut sm, mut mem, desc) = setup(vec![Op::alu(1, 100)], 100);
    let k = KernelId::new(0);
    sm.set_kernel_desc(k, desc);
    sm.dispatch(k, TbIndex(0), None, 0, 0);
    sm.set_gated(k, true);
    sm.set_qos_kernel(k, true);
    sm.set_elastic(true);
    sm.set_epoch_quota(k, 320, QuotaCarry::DiscardSurplus, 320);
    run(&mut sm, &mut mem, 2_000);
    assert!(
        sm.counters(k).thread_insts > 10 * 320,
        "elastic epochs keep replenishing, got {}",
        sm.counters(k).thread_insts
    );
}

#[test]
fn priority_block_serializes_kernels() {
    let (mut sm, mut mem, desc) = setup(vec![Op::alu(1, 100)], 100);
    let q = KernelId::new(0);
    let n = KernelId::new(1);
    sm.set_kernel_desc(q, desc.clone());
    sm.set_kernel_desc(n, desc);
    sm.dispatch(q, TbIndex(0), None, 0, 0);
    sm.dispatch(n, TbIndex(0), None, 0, 0);
    sm.set_gated(q, true);
    sm.set_qos_kernel(q, true);
    sm.set_priority_block(true);
    sm.set_epoch_quota(q, 3_200, QuotaCarry::DiscardSurplus, 0);
    // While the QoS kernel has quota, the non-QoS kernel must not issue.
    for now in 0..20 {
        sm.step(now, &mut mem);
    }
    assert!(sm.counters(q).thread_insts > 0);
    assert_eq!(sm.counters(n).thread_insts, 0, "non-QoS blocked by priority gate");
    run(&mut sm, &mut mem, 3_000);
    assert!(sm.counters(n).thread_insts > 0, "non-QoS runs after quota exhausted");
}

#[test]
fn barrier_synchronizes_warps() {
    // Warp 0 of the TB has no extra work; all warps must still wait at
    // the barrier for the slowest one.
    let (mut sm, mut mem, desc) = setup(vec![Op::alu(8, 4), Op::Bar, Op::alu(1, 1)], 1);
    let k = KernelId::new(0);
    sm.set_kernel_desc(k, desc);
    sm.dispatch(k, TbIndex(0), None, 0, 0);
    run(&mut sm, &mut mem, 500);
    assert_eq!(sm.hosted_tbs(k), 0, "TB with barrier completes");
}

#[test]
fn preempt_and_resume_preserves_progress() {
    let (mut sm, mut mem, desc) = setup(vec![Op::alu(1, 10)], 50);
    let k = KernelId::new(0);
    sm.set_kernel_desc(k, desc.clone());
    sm.dispatch(k, TbIndex(3), None, 0, 0);
    run(&mut sm, &mut mem, 100);
    let before = sm.counters(k).thread_insts;
    assert!(before > 0);
    assert!(sm.start_preempt(k, 100, 50));
    for now in 100..200 {
        sm.step(now, &mut mem);
    }
    let mut saved = Vec::new();
    sm.drain_saved(&mut saved);
    assert_eq!(saved.len(), 1);
    assert_eq!(sm.hosted_tbs(k), 0);
    let (_, tb) = saved.pop().expect("one saved TB");
    assert_eq!(tb.tb_index, TbIndex(3));
    // Resume and run to completion.
    sm.dispatch(k, TbIndex(3), Some(tb), 200, 10);
    for now in 200..4_000 {
        sm.step(now, &mut mem);
    }
    let mut done = Vec::new();
    sm.drain_completed(&mut done);
    assert_eq!(done, vec![(k, TbIndex(3))]);
    // Total work equals a full TB execution: 2 warps * 50 iters * 10 * 32.
    assert_eq!(sm.counters(k).thread_insts, 2 * 50 * 10 * 32);
}

#[test]
fn idle_warp_sampling_counts_unissued_ready_warps() {
    let (mut sm, mut mem, desc) = setup(vec![Op::alu(1, 100)], 100);
    let k = KernelId::new(0);
    sm.set_kernel_desc(k, desc.clone());
    // Several TBs worth of warps, only `warp_schedulers` can issue per cycle.
    for i in 0..4 {
        sm.dispatch(k, TbIndex(i), None, 0, 0);
    }
    for now in 0..50 {
        sm.step(now, &mut mem);
        sm.sample_idle_warps(now);
    }
    assert!(sm.idle_warp_avg(k) > 0.0, "with 8 ready warps and 4 issue slots some idle");
    sm.reset_idle_sampling();
    assert_eq!(sm.idle_warp_avg(k), 0.0);
}

#[test]
fn max_resident_tbs_respects_limits() {
    let cfg = GpuConfig::paper_table1();
    let sm = Sm::new(SmId::new(0), &cfg);
    let fat = KernelDesc::builder("fat")
        .threads_per_tb(256)
        .regs_per_thread(64) // 64 KiB regs per TB -> 4 TBs by regfile
        .body(vec![Op::alu(1, 1)])
        .build();
    assert_eq!(sm.max_resident_tbs(&fat), 4);
    let slim = KernelDesc::builder("slim")
        .threads_per_tb(64)
        .regs_per_thread(16)
        .body(vec![Op::alu(1, 1)])
        .build();
    assert_eq!(sm.max_resident_tbs(&slim), 32, "TB-slot limited");
}

#[test]
fn memory_op_goes_through_memsys() {
    let (mut sm, mut mem, desc) =
        setup(vec![Op::mem_load(AccessPattern::stream()), Op::alu(1, 1)], 4);
    let k = KernelId::new(0);
    sm.set_kernel_desc(k, desc);
    sm.dispatch(k, TbIndex(0), None, 0, 0);
    run(&mut sm, &mut mem, 5_000);
    assert!(mem.traffic().l1_accesses[0] > 0);
    assert!(sm.l1_stats().accesses() > 0);
}

#[test]
fn icn_port_is_drained_every_cycle() {
    let (mut sm, mut mem, desc) =
        setup(vec![Op::mem_load(AccessPattern::stream()), Op::alu(1, 1)], 8);
    let k = KernelId::new(0);
    sm.set_kernel_desc(k, desc);
    sm.dispatch(k, TbIndex(0), None, 0, 0);
    for now in 0..2_000 {
        sm.tick(now);
        if sm.icn_in_flight() {
            // Requests may only exist inside the tick→drain window.
            sm.drain_icn(&mut mem, now, &mut crate::telemetry::HostProfiler::new());
        }
        assert!(!sm.icn_in_flight(), "port must be empty at the cycle barrier");
    }
    assert!(mem.traffic().l1_accesses[0] > 0, "traffic flowed through the port");
}

#[test]
fn l1_lookup_count_matches_memory_domain_ledger() {
    // Every coalesced line is looked up in the SM's private L1 exactly once
    // and counted as one L1 access in the memory domain — including lines
    // that hit (the request crosses the port even when it carries no
    // misses). The two domains must agree on the total.
    let (mut sm, mut mem, desc) =
        setup(vec![Op::mem_load(AccessPattern::stream()), Op::alu(1, 1)], 16);
    let k = KernelId::new(0);
    sm.set_kernel_desc(k, desc);
    sm.dispatch(k, TbIndex(0), None, 0, 0);
    run(&mut sm, &mut mem, 8_000);
    assert_eq!(
        sm.l1_stats().accesses(),
        mem.traffic().l1_accesses[0],
        "SM-side L1 lookups and memory-side L1 ledger must agree"
    );
}

#[test]
fn scavenging_lets_exhausted_nonqos_use_idle_slots() {
    // A lone non-QoS kernel with zero quota: no QoS kernel competes for
    // the slots, so scavenging must keep it running.
    let (mut sm, mut mem, desc) = setup(vec![Op::alu(1, 100)], 100);
    let n = KernelId::new(0);
    sm.set_kernel_desc(n, desc);
    sm.dispatch(n, TbIndex(0), None, 0, 0);
    sm.set_gated(n, true);
    sm.set_qos_kernel(n, false);
    sm.set_epoch_quota(n, 0, QuotaCarry::Reset, 0);
    run(&mut sm, &mut mem, 500);
    assert!(
        sm.counters(n).thread_insts > 10_000,
        "scavenging must keep the machine busy, got {}",
        sm.counters(n).thread_insts
    );
}

#[test]
fn scavenging_never_feeds_exhausted_qos_kernels() {
    let (mut sm, mut mem, desc) = setup(vec![Op::alu(1, 100)], 100);
    let q = KernelId::new(0);
    sm.set_kernel_desc(q, desc);
    sm.dispatch(q, TbIndex(0), None, 0, 0);
    sm.set_gated(q, true);
    sm.set_qos_kernel(q, true);
    sm.set_epoch_quota(q, 320, QuotaCarry::DiscardSurplus, 0);
    run(&mut sm, &mut mem, 2_000);
    assert!(
        sm.counters(q).thread_insts <= 320 + 64,
        "QoS kernels stay throttled at their quota, got {}",
        sm.counters(q).thread_insts
    );
}

#[test]
fn reset_carry_drops_debt() {
    let cfg = GpuConfig::tiny();
    let mut sm = Sm::new(SmId::new(0), &cfg);
    let k = KernelId::new(0);
    sm.set_gated(k, true);
    sm.set_epoch_quota(k, 100, QuotaCarry::DiscardSurplus, 0);
    // Simulate deep debt, then a Reset assignment.
    sm.set_epoch_quota(k, -5_000, QuotaCarry::DiscardSurplus, 0);
    assert!(sm.quota(k) < 0);
    sm.set_epoch_quota(k, 100, QuotaCarry::Reset, 0);
    assert_eq!(sm.quota(k), 100, "reset ignores prior debt");
}

mod preemption_properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Preempting and resuming a TB at an arbitrary point never
        /// loses or duplicates work: total retired thread-instructions
        /// equal one uninterrupted TB execution.
        #[test]
        fn preempt_resume_conserves_work(
            preempt_at in 1u64..2_000,
            save_cost in 1u64..500,
            load_cost in 0u64..500,
            iters in 1u32..20,
        ) {
            let (mut sm, mut mem, desc) = setup(vec![Op::alu(1, 10)], iters);
            let k = KernelId::new(0);
            sm.set_kernel_desc(k, desc.clone());
            sm.dispatch(k, TbIndex(0), None, 0, 0);
            for now in 0..preempt_at {
                sm.step(now, &mut mem);
            }
            let expected = desc.thread_insts_per_tb();
            if sm.hosted_tbs(k) == 0 {
                // The TB already finished before the preemption point.
                prop_assert_eq!(sm.counters(k).thread_insts, expected);
                return Ok(());
            }
            prop_assert!(sm.start_preempt(k, preempt_at, save_cost));
            let resume_at = preempt_at + save_cost + 1;
            for now in preempt_at..resume_at {
                sm.step(now, &mut mem);
            }
            let mut saved = Vec::new();
            sm.drain_saved(&mut saved);
            prop_assert_eq!(saved.len(), 1);
            let (_, tb) = saved.pop().expect("one saved TB");
            sm.dispatch(k, TbIndex(0), Some(tb), resume_at, load_cost);
            for now in resume_at..resume_at + 60_000 {
                sm.step(now, &mut mem);
                if sm.hosted_tbs(k) == 0 {
                    break;
                }
            }
            prop_assert_eq!(sm.hosted_tbs(k), 0, "resumed TB must finish");
            prop_assert_eq!(sm.counters(k).thread_insts, expected);
        }
    }
}

#[test]
fn rollover_carry_keeps_surplus_discard_drops_it() {
    let cfg = GpuConfig::tiny();
    let mut sm = Sm::new(SmId::new(0), &cfg);
    let k = KernelId::new(0);
    sm.set_gated(k, true);
    sm.set_epoch_quota(k, 100, QuotaCarry::DiscardSurplus, 0);
    assert_eq!(sm.quota(k), 100);
    sm.set_epoch_quota(k, 100, QuotaCarry::Full, 0);
    assert_eq!(sm.quota(k), 200, "rollover keeps the surplus");
    sm.set_epoch_quota(k, 50, QuotaCarry::Full, 0);
    assert_eq!(sm.quota(k), 100, "carried surplus is capped at one allocation");
    sm.set_epoch_quota(k, 100, QuotaCarry::DiscardSurplus, 0);
    assert_eq!(sm.quota(k), 100, "discard drops the surplus");
}
