//! SMK-style fairness management (the policy the paper's QoS design is
//! "compatible with", §3.3).
//!
//! Fairness — unlike QoS — *equalizes* a metric across all sharers: each
//! kernel should suffer the same relative slowdown versus running alone.
//! The controller reuses the exact quota machinery of the QoS manager: every
//! kernel is capped at `s × IPC_isolated` thread-instructions per epoch,
//! where the common scale `s` adapts multiplicatively — up while everyone
//! keeps pace (the GPU has headroom), down toward the worst laggard's
//! achieved slowdown otherwise. Idle issue slots are still scavenged, so the
//! cap never wastes cycles. Switching a `Gpu` between [`FairnessController`]
//! and [`crate::QosManager`] is exactly the firmware policy swap the paper
//! describes.

use gpu_sim::sm::QuotaCarry;
use gpu_sim::{Controller, Gpu, KernelId, SmId};

use crate::scheme::{distribute_quota, epoch_quota};
use crate::static_alloc::initial_plan;

/// Multiplicative-increase / measured-decrease fairness controller.
#[derive(Debug, Clone)]
pub struct FairnessController {
    isolated_ipc: Vec<f64>,
    scale: f64,
    initialized: bool,
    cum_insts: Vec<u64>,
    cum_cycles: u64,
}

/// How fast the common slowdown scale grows while all kernels keep pace.
const SCALE_GROWTH: f64 = 1.10;

impl FairnessController {
    /// Creates a controller; `isolated_ipc[k]` must be kernel `k`'s measured
    /// isolated IPC (the normalization baseline).
    ///
    /// # Panics
    ///
    /// Panics if any baseline is not finite and positive.
    pub fn new(isolated_ipc: Vec<f64>) -> Self {
        assert!(
            isolated_ipc.iter().all(|v| v.is_finite() && *v > 0.0),
            "isolated IPC baselines must be finite and positive"
        );
        FairnessController {
            isolated_ipc,
            scale: 0.5,
            initialized: false,
            cum_insts: Vec::new(),
            cum_cycles: 0,
        }
    }

    /// The current common slowdown scale `s` (every kernel is held near
    /// `s × isolated IPC`).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Kernel `k`'s cumulative normalized progress (shared IPC / isolated).
    pub fn normalized_progress(&self, k: KernelId) -> f64 {
        if self.cum_cycles == 0 {
            return 0.0;
        }
        let ipc = self.cum_insts[k.index()] as f64 / self.cum_cycles as f64;
        ipc / self.isolated_ipc[k.index()]
    }

    fn init(&mut self, gpu: &mut Gpu) {
        let nk = gpu.num_kernels();
        assert_eq!(self.isolated_ipc.len(), nk, "one isolated-IPC baseline per launched kernel");
        self.cum_insts = vec![0; nk];
        gpu.set_sharing_mode(gpu_sim::SharingMode::Smk);
        // Everybody is "best effort" under fairness: symmetric placement.
        let specs = vec![crate::QosSpec::best_effort(); nk];
        initial_plan(gpu, &specs).apply(gpu);
        for sm in gpu.sm_ids().collect::<Vec<_>>() {
            for k in 0..nk {
                let kid = KernelId::new(k);
                let mut view = gpu.sm_quota(sm);
                view.set_gated(kid, true);
                // Non-QoS classification enables slack scavenging, keeping
                // the fairness caps work-conserving.
                view.set_qos_kernel(kid, false);
            }
        }
        self.initialized = true;
    }

    fn adapt_scale(&mut self, gpu: &Gpu) {
        let nk = gpu.num_kernels();
        let snap = gpu.epoch_snapshot();
        if snap.cycles == 0 {
            return;
        }
        // Worst per-epoch normalized progress across kernels.
        let worst = (0..nk)
            .map(|k| snap.ipc(KernelId::new(k)) / self.isolated_ipc[k])
            .fold(f64::INFINITY, f64::min);
        if worst >= self.scale * 0.95 {
            // Everyone kept pace with the cap: the machine has headroom.
            self.scale = (self.scale * SCALE_GROWTH).min(1.0);
        } else {
            // Someone fell behind: pull the cap toward what is achievable so
            // the faster kernels stop outrunning the laggard.
            self.scale = (self.scale * 0.5 + worst * 0.5).max(0.01);
        }
    }

    fn assign_quotas(&self, gpu: &mut Gpu) {
        let nk = gpu.num_kernels();
        let epoch_cycles = gpu.config().epoch_cycles;
        for k in 0..nk {
            let kid = KernelId::new(k);
            let quota = epoch_quota(self.scale * self.isolated_ipc[k], 1.0, epoch_cycles);
            let shares: Vec<u32> = gpu
                .sm_ids()
                .map(|sm| {
                    let hosted = gpu.sms()[sm.index()].hosted_tbs(kid);
                    if hosted > 0 {
                        hosted
                    } else {
                        u32::from(gpu.tb_target(sm, kid))
                    }
                })
                .collect();
            let parts = distribute_quota(quota, &shares);
            for (i, part) in parts.into_iter().enumerate() {
                let part = part as i64;
                gpu.sm_quota(SmId::new(i)).set_epoch_quota(kid, part, QuotaCarry::Reset, part);
            }
        }
    }
}

impl Controller for FairnessController {
    fn on_epoch(&mut self, gpu: &mut Gpu, epoch: u64) {
        if !self.initialized {
            self.init(gpu);
        }
        if epoch > 0 {
            let snap = gpu.epoch_snapshot();
            self.cum_cycles += snap.cycles;
            for (k, cum) in self.cum_insts.iter_mut().enumerate() {
                *cum += snap.thread_insts[k];
            }
            self.adapt_scale(gpu);
        }
        self.assign_quotas(gpu);
    }
}

/// Jain's fairness index over per-kernel normalized progress:
/// `(Σx)² / (n·Σx²)`, 1.0 = perfectly fair.
pub fn jain_index(normalized: &[f64]) -> f64 {
    if normalized.is_empty() {
        return 1.0;
    }
    let sum: f64 = normalized.iter().sum();
    let sq: f64 = normalized.iter().map(|x| x * x).sum();
    if sq <= 0.0 {
        1.0
    } else {
        sum * sum / (normalized.len() as f64 * sq)
    }
}

gpu_sim::impl_snap_struct!(FairnessController {
    isolated_ipc,
    scale,
    initialized,
    cum_insts,
    cum_cycles,
});

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, NullController, SharingMode};

    fn isolated(name: &str, cycles: u64) -> f64 {
        let mut gpu = Gpu::new(GpuConfig::paper_table1());
        let k = gpu.launch(workloads::by_name(name).expect("known"));
        gpu.run(cycles, &mut NullController);
        gpu.stats().ipc(k)
    }

    #[test]
    fn jain_index_math() {
        assert!((jain_index(&[0.5, 0.5, 0.5]) - 1.0).abs() < 1e-12);
        let skewed = jain_index(&[0.9, 0.1]);
        assert!(skewed < 0.7, "skewed allocation must score poorly: {skewed}");
        assert_eq!(jain_index(&[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn rejects_bad_baselines() {
        let _ = FairnessController::new(vec![100.0, 0.0]);
    }

    #[test]
    fn fairness_beats_unmanaged_sharing_on_jain_index() {
        let cycles = 120_000;
        let names = ["mri-q", "sad"];
        let iso: Vec<f64> = names.iter().map(|n| isolated(n, cycles)).collect();

        // Unmanaged SMK with the asymmetric residency a first-come
        // dispatcher produces: the early kernel hogs the SMs and the late
        // one crawls — the unfairness SMK's management addresses.
        let mut gpu = Gpu::new(GpuConfig::paper_table1());
        let kids: Vec<KernelId> =
            names.iter().map(|n| gpu.launch(workloads::by_name(n).expect("known"))).collect();
        gpu.set_sharing_mode(SharingMode::Smk);
        for sm in gpu.sm_ids().collect::<Vec<_>>() {
            gpu.set_tb_target(sm, kids[0], 6);
            gpu.set_tb_target(sm, kids[1], 1);
        }
        gpu.run(cycles, &mut NullController);
        let unmanaged: Vec<f64> =
            kids.iter().enumerate().map(|(i, &k)| gpu.stats().ipc(k) / iso[i]).collect();

        // Managed fairness.
        let mut gpu = Gpu::new(GpuConfig::paper_table1());
        let kids: Vec<KernelId> =
            names.iter().map(|n| gpu.launch(workloads::by_name(n).expect("known"))).collect();
        let mut ctrl = FairnessController::new(iso.clone());
        gpu.run(cycles, &mut ctrl);
        let managed: Vec<f64> =
            kids.iter().enumerate().map(|(i, &k)| gpu.stats().ipc(k) / iso[i]).collect();

        let (ju, jm) = (jain_index(&unmanaged), jain_index(&managed));
        assert!(
            jm > ju,
            "fairness control must improve Jain index: managed {jm:.3} \
             (progress {managed:?}) vs unmanaged {ju:.3} (progress {unmanaged:?})"
        );
    }

    #[test]
    fn scale_converges_into_unit_interval() {
        let cycles = 60_000;
        let iso: Vec<f64> = ["sad", "spmv"].iter().map(|n| isolated(n, cycles)).collect();
        let mut gpu = Gpu::new(GpuConfig::paper_table1());
        for n in ["sad", "spmv"] {
            gpu.launch(workloads::by_name(n).expect("known"));
        }
        let mut ctrl = FairnessController::new(iso);
        gpu.run(cycles, &mut ctrl);
        let s = ctrl.scale();
        assert!((0.01..=1.0).contains(&s), "scale {s} out of range");
        assert!(ctrl.normalized_progress(KernelId::new(0)) > 0.0);
    }
}
