//! Golden-trace corpus: canonical scenarios with byte-exact epoch telemetry.
//!
//! Three fixed scenarios — an SMK pair, a spatially partitioned pair, and a
//! datacenter-style trio — are run under a [`Tracer`] and their per-epoch
//! IPC/residency/quota series rendered to JSON under `tests/golden/`. The
//! integration test `tests/golden_traces.rs` re-runs each scenario and
//! compares the rendering byte-for-byte, so any change to scheduling,
//! quota accounting, preemption, or the fast-forward path that shifts even
//! one sample by one bit fails loudly. Regenerate after an intentional
//! behaviour change with `cargo run -p harness --bin repro -- golden --bless`.

use std::fmt::Write as _;
use std::path::PathBuf;

use gpu_sim::trace::{records_hash, EpochRecord, Tracer};
use gpu_sim::{Gpu, GpuConfig, NullController, SharingMode, TraceLevel};
use qos_core::{QosManager, QosSpec, QuotaScheme, SpartController};

/// Names of the canonical scenarios, in corpus order.
pub const SCENARIOS: [&str; 3] = ["smk_pair", "spart_pair", "datacenter_trio"];

/// Runs the named scenario and returns its epoch-record stream.
///
/// # Panics
///
/// Panics on a name outside [`SCENARIOS`].
pub fn run_scenario(name: &str) -> Vec<EpochRecord> {
    scenario_records(name, true)
}

/// Like [`run_scenario`] but forcing the naive per-cycle loop; golden
/// snapshots are stepping-independent, so both variants must agree.
pub fn run_scenario_naive(name: &str) -> Vec<EpochRecord> {
    scenario_records(name, false)
}

/// Like [`run_scenario`] but stepping the SM domains concurrently
/// (`GpuConfig::intra_parallel`); the corpus pins one record stream for
/// every stepping mode, so this too must agree byte-for-byte.
///
/// # Panics
///
/// Panics on a name outside [`SCENARIOS`].
pub fn run_scenario_parallel(name: &str) -> Vec<EpochRecord> {
    let mut cfg = config(true);
    cfg.intra_parallel = true;
    scenario_run(name, cfg).1
}

/// Runs the named scenario with the cycle-level flight recorder enabled and
/// returns the finished machine alongside the epoch records — the input to
/// the Perfetto exporter (`repro trace`). Event recording never perturbs
/// simulated behaviour, so the records still match the golden corpus.
///
/// # Panics
///
/// Panics on a name outside [`SCENARIOS`].
#[must_use]
pub fn run_scenario_traced(name: &str) -> (Gpu, Vec<EpochRecord>) {
    let mut cfg = config(true);
    cfg.trace.level = TraceLevel::Events;
    scenario_run(name, cfg)
}

fn config(fast_forward: bool) -> GpuConfig {
    let mut cfg = GpuConfig::tiny();
    cfg.fast_forward = fast_forward;
    cfg
}

fn scenario_records(name: &str, fast_forward: bool) -> Vec<EpochRecord> {
    scenario_run(name, config(fast_forward)).1
}

fn scenario_run(name: &str, cfg: GpuConfig) -> (Gpu, Vec<EpochRecord>) {
    match name {
        // Two memory-intensive kernels sharing every SM fine-grained, fixed
        // residency targets, no management: exercises SMK dispatch and the
        // memory system.
        "smk_pair" => {
            let mut gpu = Gpu::new(cfg);
            let a = gpu.launch(workloads::by_name("lbm").expect("known workload"));
            let b = gpu.launch(workloads::by_name("spmv").expect("known workload"));
            gpu.set_sharing_mode(SharingMode::Smk);
            for sm in gpu.sm_ids().collect::<Vec<_>>() {
                gpu.set_tb_target(sm, a, 2);
                gpu.set_tb_target(sm, b, 2);
            }
            let mut tracer = Tracer::new(NullController);
            gpu.run(12_000, &mut tracer);
            (gpu, tracer.into_parts().1)
        }
        // A QoS kernel isolated on its own SMs by the spatial-partitioning
        // baseline: exercises partition sizing and TB draining.
        "spart_pair" => {
            let mut gpu = Gpu::new(cfg);
            let q = gpu.launch(workloads::by_name("sgemm").expect("known workload"));
            let be = gpu.launch(workloads::by_name("lbm").expect("known workload"));
            let mut ctrl = Tracer::new(
                SpartController::new()
                    .with_kernel(q, QosSpec::qos(40.0))
                    .with_kernel(be, QosSpec::best_effort()),
            );
            gpu.run(12_000, &mut ctrl);
            (gpu, ctrl.into_parts().1)
        }
        // Two QoS kernels plus a best-effort batch job under the rollover
        // quota scheme: exercises quota refills, gating and preemption.
        "datacenter_trio" => {
            let mut gpu = Gpu::new(cfg);
            let q1 = gpu.launch(workloads::by_name("mri-q").expect("known workload"));
            let q2 = gpu.launch(workloads::by_name("sad").expect("known workload"));
            let be = gpu.launch(workloads::by_name("lbm").expect("known workload"));
            let mut ctrl = Tracer::new(
                QosManager::new(QuotaScheme::Rollover)
                    .with_kernel(q1, QosSpec::qos(40.0))
                    .with_kernel(q2, QosSpec::qos(20.0))
                    .with_kernel(be, QosSpec::best_effort()),
            );
            gpu.run(15_000, &mut ctrl);
            (gpu, ctrl.into_parts().1)
        }
        other => panic!("unknown golden scenario {other:?}"),
    }
}

/// Renders a record stream as the canonical golden JSON document.
///
/// One line per epoch keeps diffs readable; `ipc` uses Rust's exact
/// shortest-round-trip float formatting and `ipc_bits` pins the raw IEEE
/// bits, so byte equality of two documents implies bit equality of the
/// underlying series. The whole-stream [`records_hash`] is embedded for a
/// quick cross-check against the determinism tests.
#[must_use]
pub fn render(name: &str, records: &[EpochRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"scenario\": \"{name}\",");
    let _ = writeln!(out, "  \"records_hash\": \"{:#018x}\",", records_hash(records));
    out.push_str("  \"epochs\": [\n");
    for (i, r) in records.iter().enumerate() {
        let kernels = r
            .kernels
            .iter()
            .map(|s| {
                format!(
                    "{{\"ipc\": {}, \"ipc_bits\": {}, \"hosted_tbs\": {}, \
                     \"quota_total\": {}, \"preempted\": {}}}",
                    s.epoch_ipc,
                    s.epoch_ipc.to_bits(),
                    s.hosted_tbs,
                    s.quota_total,
                    s.preempted
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        let comma = if i + 1 == records.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"epoch\": {}, \"cycle\": {}, \"preemption_saves\": {}, \
             \"kernels\": [{kernels}]}}{comma}",
            r.epoch, r.cycle, r.preemption_saves
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// The directory holding the corpus: `tests/golden/` at the repo root.
#[must_use]
pub fn golden_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden"))
}

/// The golden file for one scenario.
#[must_use]
pub fn golden_path(name: &str) -> PathBuf {
    golden_dir().join(format!("{name}.json"))
}

/// Regenerates the whole corpus on disk.
///
/// # Errors
///
/// Propagates filesystem errors from creating `tests/golden/` or writing a
/// snapshot file.
pub fn bless_all() -> std::io::Result<()> {
    std::fs::create_dir_all(golden_dir())?;
    for name in SCENARIOS {
        crate::export::write_atomic(
            &golden_path(name),
            render(name, &run_scenario(name)).as_bytes(),
        )?;
    }
    Ok(())
}

/// Re-runs one scenario and compares it byte-for-byte with its golden file.
///
/// # Errors
///
/// Returns a human-readable report naming the first differing line (or the
/// missing file) and the bless command that regenerates the corpus.
pub fn check(name: &str) -> Result<(), String> {
    const BLESS: &str = "cargo run --release -p harness --bin repro -- golden --bless";
    let path = golden_path(name);
    let expected = std::fs::read_to_string(&path).map_err(|e| {
        format!("cannot read golden file {}: {e}\nregenerate with: {BLESS}", path.display())
    })?;
    let actual = render(name, &run_scenario(name));
    if expected == actual {
        return Ok(());
    }
    let diff =
        expected.lines().zip(actual.lines()).enumerate().find(|(_, (e, a))| e != a).map_or_else(
            || {
                format!(
                    "line counts differ: golden {} vs current {}",
                    expected.lines().count(),
                    actual.lines().count()
                )
            },
            |(i, (e, a))| {
                format!("first difference at line {}:\n  golden:  {e}\n  current: {a}", i + 1)
            },
        );
    Err(format!(
        "golden trace {name:?} diverged ({})\n{diff}\n\
         if the behaviour change is intentional, regenerate with: {BLESS}",
        path.display()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_deterministic() {
        let records = run_scenario("smk_pair");
        assert_eq!(render("smk_pair", &records), render("smk_pair", &records));
        assert!(!records.is_empty(), "tiny config records one entry per epoch");
    }

    #[test]
    #[should_panic(expected = "unknown golden scenario")]
    fn unknown_scenario_panics() {
        run_scenario("nope");
    }

    #[test]
    fn traced_run_matches_untraced_records() {
        let (gpu, traced) = run_scenario_traced("smk_pair");
        assert_eq!(
            records_hash(&traced),
            records_hash(&run_scenario("smk_pair")),
            "flight recording must not perturb the simulation"
        );
        let ring_events: usize =
            gpu.sms().iter().map(|sm| sm.events().len()).sum::<usize>() + gpu.events().len();
        assert!(ring_events > 0, "a busy scenario must record events");
    }
}
