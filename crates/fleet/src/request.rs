//! The request lifecycle: queued → running → done, with bounded retries and
//! explicit shedding so no request is ever silently lost.

use std::fmt;

use gpu_sim::snap::{Snap, SnapError, SnapReader};
use serde::{Deserialize, Serialize};

/// Why a request was shed. Every non-completed request carries one of
/// these — the fleet's zero-lost-requests accounting depends on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedReason {
    /// Rejected at admission: projected occupancy would have broken a
    /// guaranteed tenant's SLO.
    Admission,
    /// Shed under overload while load shedding was engaged.
    Overload,
    /// The bounded retry budget ran out (timeouts or device failures).
    RetriesExhausted,
    /// No healthy device remained to serve it.
    FleetDead,
    /// Still pending when the fleet hit its tick safety net.
    Unfinished,
}

gpu_sim::impl_snap_enum!(ShedReason {
    Admission = 0,
    Overload = 1,
    RetriesExhausted = 2,
    FleetDead = 3,
    Unfinished = 4,
});

impl fmt::Display for ShedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ShedReason::Admission => "admission",
            ShedReason::Overload => "overload",
            ShedReason::RetriesExhausted => "retries-exhausted",
            ShedReason::FleetDead => "fleet-dead",
            ShedReason::Unfinished => "unfinished",
        };
        f.write_str(s)
    }
}

/// Where a request currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestState {
    /// Waiting for placement; not placeable before `not_before` (retry
    /// backoff — zero for fresh arrivals).
    Queued {
        /// Earliest fleet cycle at which placement may consider it.
        not_before: u64,
    },
    /// Resident on a device, occupying one kernel slot.
    Running {
        /// Device index serving it.
        device: u32,
        /// Fleet cycle at which this placement started (timeout base).
        started_at: u64,
    },
    /// Completed: one full grid execution finished.
    Done {
        /// Fleet cycle at which completion was observed.
        finished_at: u64,
    },
    /// Explicitly dropped, with the reason and the cycle.
    Shed {
        /// Why it was dropped.
        reason: ShedReason,
        /// Fleet cycle of the decision.
        at: u64,
    },
    /// In flight between devices: its batch snapshot sits in the
    /// pending-migration queue waiting for a compatible spare. Retries are
    /// untouched — migration is not a failure of the request.
    Migrating {
        /// Device the batch left.
        from: u32,
        /// Fleet cycle at which the original placement started (preserved
        /// across the migration as the timeout base).
        started_at: u64,
    },
}

impl Snap for RequestState {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            RequestState::Queued { not_before } => {
                out.push(0);
                not_before.encode(out);
            }
            RequestState::Running { device, started_at } => {
                out.push(1);
                device.encode(out);
                started_at.encode(out);
            }
            RequestState::Done { finished_at } => {
                out.push(2);
                finished_at.encode(out);
            }
            RequestState::Shed { reason, at } => {
                out.push(3);
                reason.encode(out);
                at.encode(out);
            }
            RequestState::Migrating { from, started_at } => {
                out.push(4);
                from.encode(out);
                started_at.encode(out);
            }
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match u8::decode(r)? {
            0 => Ok(RequestState::Queued { not_before: u64::decode(r)? }),
            1 => Ok(RequestState::Running { device: u32::decode(r)?, started_at: u64::decode(r)? }),
            2 => Ok(RequestState::Done { finished_at: u64::decode(r)? }),
            3 => Ok(RequestState::Shed { reason: ShedReason::decode(r)?, at: u64::decode(r)? }),
            4 => Ok(RequestState::Migrating { from: u32::decode(r)?, started_at: u64::decode(r)? }),
            _ => Err(SnapError::Invalid("RequestState")),
        }
    }
}

/// One tenant request, from arrival to a terminal state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Global request id (index into the fleet's request table).
    pub id: usize,
    /// Tenant index (into the fleet config's tenant list).
    pub tenant: usize,
    /// Per-tenant sequence number (from the arrival stream).
    pub seq: u64,
    /// Fleet cycle of arrival.
    pub arrived_at: u64,
    /// Retries consumed so far (timeouts and device failures).
    pub retries: u32,
    /// Current lifecycle state.
    pub state: RequestState,
}

gpu_sim::impl_snap_struct!(Request { id, tenant, seq, arrived_at, retries, state });

impl Request {
    /// Whether the request reached a terminal state (done or shed).
    pub fn is_terminal(&self) -> bool {
        matches!(self.state, RequestState::Done { .. } | RequestState::Shed { .. })
    }

    /// Completion latency in fleet cycles, if completed.
    pub fn latency(&self) -> Option<u64> {
        match self.state {
            RequestState::Done { finished_at } => Some(finished_at - self.arrived_at),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::snap::{decode_from_slice, encode_to_vec};

    #[test]
    fn request_states_round_trip() {
        let states = [
            RequestState::Queued { not_before: 7 },
            RequestState::Running { device: 3, started_at: 4_000 },
            RequestState::Done { finished_at: 9_000 },
            RequestState::Shed { reason: ShedReason::Overload, at: 5_000 },
            RequestState::Migrating { from: 2, started_at: 4_000 },
        ];
        for state in states {
            let req = Request { id: 1, tenant: 0, seq: 2, arrived_at: 100, retries: 1, state };
            let back: Request = decode_from_slice(&encode_to_vec(&req)).expect("codec");
            assert_eq!(back, req);
        }
    }

    #[test]
    fn latency_only_for_completed() {
        let mut req = Request {
            id: 0,
            tenant: 0,
            seq: 0,
            arrived_at: 1_000,
            retries: 0,
            state: RequestState::Queued { not_before: 0 },
        };
        assert_eq!(req.latency(), None);
        assert!(!req.is_terminal());
        req.state = RequestState::Done { finished_at: 5_500 };
        assert_eq!(req.latency(), Some(4_500));
        assert!(req.is_terminal());
    }

    #[test]
    fn shed_reasons_render_stably() {
        assert_eq!(ShedReason::RetriesExhausted.to_string(), "retries-exhausted");
        assert_eq!(ShedReason::Admission.to_string(), "admission");
    }
}
