//! Quota search for non-QoS kernels (§3.5).
//!
//! Non-QoS kernels have no requirement of their own, but starving them
//! degenerates into time multiplexing while over-feeding them threatens the
//! QoS kernels. The paper sets each non-QoS kernel an *artificial* goal that
//! tracks how comfortably the QoS kernels are meeting theirs:
//!
//! ```text
//! IPC_goal = IPC_epoch × Π_{k ∈ QoS} IPC_epoch(k) / (α_k × IPC_goal(k))
//! ```
//!
//! If every QoS kernel overshoots, the product exceeds 1 and the non-QoS
//! goal grows; if any QoS kernel lags, the product shrinks below 1 and the
//! non-QoS kernel is reined in on the next epoch.

/// One QoS kernel's standing for the non-QoS goal computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosStanding {
    /// The kernel's IPC over the previous epoch.
    pub epoch_ipc: f64,
    /// The kernel's (history-adjusted) quota multiplier α.
    pub alpha: f64,
    /// The kernel's IPC goal.
    pub goal_ipc: f64,
}

/// Bounds applied to the per-epoch scaling factor so a single noisy epoch
/// cannot collapse or explode the non-QoS allocation.
const FACTOR_MIN: f64 = 0.25;
const FACTOR_MAX: f64 = 4.0;

/// The paper's initial non-QoS epoch IPC ("conservatively small"): 1.
pub const INITIAL_NONQOS_IPC: f64 = 1.0;

/// Computes the next artificial IPC goal for a non-QoS kernel.
///
/// `prev_epoch_ipc` is the non-QoS kernel's own IPC over the last epoch
/// (use [`INITIAL_NONQOS_IPC`] before the first one); `qos` describes every
/// QoS kernel's standing.
pub fn artificial_goal(prev_epoch_ipc: f64, qos: &[QosStanding]) -> f64 {
    let base = prev_epoch_ipc.max(INITIAL_NONQOS_IPC);
    let mut factor = 1.0;
    for s in qos {
        let denom = s.alpha * s.goal_ipc;
        if denom > 0.0 {
            factor *= s.epoch_ipc / denom;
        }
    }
    base * factor.clamp(FACTOR_MIN, FACTOR_MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn standing(epoch: f64, alpha: f64, goal: f64) -> QosStanding {
        QosStanding { epoch_ipc: epoch, alpha, goal_ipc: goal }
    }

    #[test]
    fn comfortable_qos_grows_nonqos() {
        // QoS kernel 30% above goal, α = 1 -> non-QoS scales up by 1.3.
        let next = artificial_goal(100.0, &[standing(130.0, 1.0, 100.0)]);
        assert!((next - 130.0).abs() < 1e-9);
    }

    #[test]
    fn lagging_qos_shrinks_nonqos() {
        let next = artificial_goal(100.0, &[standing(80.0, 1.0, 100.0)]);
        assert!((next - 80.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_discounts_apparent_success() {
        // Meeting the goal only because α pumped the quota is not headroom:
        // ipc == goal but α = 1.25 -> factor 0.8 < 1.
        let next = artificial_goal(100.0, &[standing(100.0, 1.25, 100.0)]);
        assert!((next - 80.0).abs() < 1e-9);
    }

    #[test]
    fn multiple_qos_kernels_multiply() {
        let next =
            artificial_goal(100.0, &[standing(120.0, 1.0, 100.0), standing(90.0, 1.0, 100.0)]);
        assert!((next - 100.0 * 1.2 * 0.9).abs() < 1e-9);
    }

    #[test]
    fn initial_ipc_floor_applies() {
        // A starved non-QoS kernel (epoch IPC 0) still gets the initial floor.
        let next = artificial_goal(0.0, &[standing(150.0, 1.0, 100.0)]);
        assert!(next >= INITIAL_NONQOS_IPC, "must be able to bootstrap");
    }

    #[test]
    fn factor_is_clamped() {
        let boom = artificial_goal(100.0, &[standing(10_000.0, 1.0, 1.0)]);
        assert!((boom - 400.0).abs() < 1e-9, "upper clamp");
        let bust = artificial_goal(100.0, &[standing(0.0001, 1.0, 1_000.0)]);
        assert!((bust - 25.0).abs() < 1e-9, "lower clamp");
    }

    #[test]
    fn no_qos_kernels_means_keep_pace() {
        let next = artificial_goal(123.0, &[]);
        assert!((next - 123.0).abs() < 1e-9);
    }
}
