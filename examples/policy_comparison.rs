//! Policy comparison: run one pair under every quota scheme plus the
//! baselines and print a side-by-side table (a one-pair slice of Fig. 6a /
//! Fig. 10 / Fig. 11).
//!
//! Run with:
//! `cargo run --release --example policy_comparison -- [qos] [besteffort] [goal_frac]`

use fgqos::{Gpu, GpuConfig, NullController, QosManager, QosSpec, QuotaScheme, SpartController};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let qos_name = args.get(1).cloned().unwrap_or_else(|| "tpacf".into());
    let be_name = args.get(2).cloned().unwrap_or_else(|| "stencil".into());
    let frac: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(0.75);
    let cycles = 200_000;

    let mut solo = Gpu::new(GpuConfig::paper_table1());
    let k = solo.launch(fgqos::workloads::by_name(&qos_name).expect("known benchmark"));
    solo.run(cycles, &mut NullController);
    let goal = frac * solo.stats().ipc(k);
    println!(
        "QoS kernel {qos_name} (goal {goal:.1} IPC = {:.0}% of isolated) \
         + best-effort {be_name}\n",
        frac * 100.0
    );
    println!(
        "{:<16} {:>10} {:>8} {:>8} {:>10} {:>8}",
        "policy", "QoS IPC", "of goal", "met?", "BE IPC", "saves"
    );

    let run = |label: &str, use_spart: bool, scheme: Option<QuotaScheme>| {
        let mut gpu = Gpu::new(GpuConfig::paper_table1());
        let q = gpu.launch(fgqos::workloads::by_name(&qos_name).expect("known"));
        let b = gpu.launch(fgqos::workloads::by_name(&be_name).expect("known"));
        if use_spart {
            let mut ctrl = SpartController::new()
                .with_kernel(q, QosSpec::qos(goal))
                .with_kernel(b, QosSpec::best_effort());
            gpu.run(cycles, &mut ctrl);
        } else {
            let mut mgr = QosManager::new(scheme.expect("quota policy has a scheme"))
                .with_kernel(q, QosSpec::qos(goal))
                .with_kernel(b, QosSpec::best_effort());
            gpu.run(cycles, &mut mgr);
        }
        let s = gpu.stats();
        println!(
            "{:<16} {:>10.1} {:>7.1}% {:>8} {:>10.1} {:>8}",
            label,
            s.ipc(q),
            100.0 * s.ipc(q) / goal,
            if s.ipc(q) >= goal { "yes" } else { "NO" },
            s.ipc(b),
            gpu.preempt_stats().saves,
        );
    };

    run("Spart", true, None);
    for scheme in QuotaScheme::ALL {
        run(scheme.label(), false, Some(scheme));
    }
    println!(
        "\nExpected shape (paper): Rollover meets the goal with the best \
         best-effort throughput;\nNaive undershoots; Rollover-Time meets the \
         goal but strangles the best-effort kernel."
    );
}
