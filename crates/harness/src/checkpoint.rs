//! Crash-resumable sweeps: a journal of completed cases plus a periodic
//! mid-case [`Gpu`] snapshot, persisted as rotated, checksummed generations.
//!
//! A checkpointed sweep runs its cases *sequentially*, each one in chunks
//! whose boundaries are multiples of the watchdog window (itself a multiple
//! of the controller epoch — the only cycles at which [`Gpu::snapshot`] is
//! legal). After every chunk the harness writes a new checkpoint generation:
//! the sweep identity (name, scale, plan fingerprint), the journal of
//! finished `Result<CaseResult, CaseError>` entries, and the in-flight
//! case's machine snapshot, controller state and epoch telemetry. Kill the
//! process at any point — `repro resume <dir>` reloads the newest loadable
//! generation and continues bit-identically: the resumed sweep's report
//! equals the uninterrupted one's byte for byte.
//!
//! Robustness properties, each exercised by `tests/checkpoint.rs`:
//! * writes are atomic (tmp + fsync + rename via [`crate::export::
//!   write_atomic`]), so a crash mid-write never leaves a torn newest file;
//! * every generation carries an FNV-1a checksum; a corrupt (bit-flipped)
//!   generation is detected, skipped with a warning, and the previous
//!   generation is used instead ([`KEEP_GENERATIONS`] are retained);
//! * a watchdog or audit failure persists the failing machine as a loadable
//!   [`FailureSnapshot`] that `repro inspect` pretty-prints alongside its
//!   [`HealthReport`](gpu_sim::HealthReport).

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use gpu_sim::trace::{EpochRecord, Tracer};
use gpu_sim::{Gpu, SimError, Snap, SnapshotBlob};
use qos_core::QuotaScheme;

use crate::cases::{pair_sweep, pairs, CaseSpec, Policy};
use crate::error::{failure_digest, CaseError, FailedCase};
use crate::export::write_atomic;
use crate::metrics::{mean, qos_reach, CaseResult};
use crate::runner::{
    build_controller, case_config, finish_case, panic_message, prepare_case, IsolatedCache,
    WATCHDOG_EPOCHS,
};
use crate::scale::RunScale;

/// Magic prefix of a sweep checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"FGCK";
/// Magic prefix of a persisted failure snapshot.
pub const FAILURE_MAGIC: [u8; 4] = *b"FGFS";
/// Schema version of the checkpoint container; bumped on any layout change
/// so stale files are refused instead of misdecoded. v2: the embedded
/// machine snapshots and health reports carry the counter registry and
/// flight-recorder rings (DESIGN.md §12).
pub const CHECKPOINT_SCHEMA_VERSION: u32 = 2;
/// How many checkpoint generations are kept on disk. The newest may be torn
/// or corrupt after a crash; older generations are the fallback.
pub const KEEP_GENERATIONS: usize = 3;
/// Default mid-case checkpoint cadence in cycles (rounded up to a watchdog
/// window multiple per case configuration).
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 20_000;

/// Why a checkpoint could not be written, loaded, or resumed.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// No loadable generation, or a structurally bad file.
    Corrupt(String),
    /// The checkpoint does not match the sweep being resumed (unknown sweep
    /// name, or the regenerated plan fingerprints differ).
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O failure: {e}"),
            CheckpointError::Corrupt(why) => write!(f, "checkpoint unusable: {why}"),
            CheckpointError::Mismatch(why) => write!(f, "checkpoint mismatch: {why}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// The in-flight case of an interrupted sweep: everything needed to continue
/// it bit-identically from its last chunk boundary.
#[derive(Debug, Clone)]
pub struct InProgressCase {
    /// Position of the case in the sweep plan.
    pub index: usize,
    /// Cycles already simulated (a chunk boundary, hence epoch-aligned).
    pub cycles_done: u64,
    /// [`SnapshotBlob::to_bytes`] of the machine at `cycles_done`.
    pub gpu_blob: Vec<u8>,
    /// The policy controller's epoch state.
    pub controller: crate::runner::CaseController,
    /// Epoch telemetry recorded so far (feeds the final `trace_hash`).
    pub records: Vec<EpochRecord>,
}

gpu_sim::impl_snap_struct!(InProgressCase { index, cycles_done, gpu_blob, controller, records });

/// One persisted sweep state: identity, journal, and the optional in-flight
/// case.
#[derive(Debug, Clone)]
pub struct SweepCheckpoint {
    /// Named sweep being run (see [`SWEEPS`]).
    pub sweep: String,
    /// Scale the sweep was started at.
    pub scale: RunScale,
    /// [`plan_fingerprint`] of the sweep's spec list; resume refuses to
    /// continue when the regenerated plan hashes differently.
    pub plan_fingerprint: u64,
    /// Requested checkpoint cadence (cycles). Persisted so a resume replays
    /// the exact chunk schedule — chunk boundaries shift watchdog-check
    /// timing in faulted cases, so bit-identical resumption needs the same
    /// cadence, not just the same plan.
    pub checkpoint_every: u64,
    /// Journal of finished cases, in plan order.
    pub completed: Vec<Result<CaseResult, CaseError>>,
    /// The interrupted case, if the sweep died mid-case.
    pub in_progress: Option<InProgressCase>,
}

gpu_sim::impl_snap_struct!(SweepCheckpoint {
    sweep,
    scale,
    plan_fingerprint,
    checkpoint_every,
    completed,
    in_progress,
});

/// A failing machine persisted at the moment a watchdog or audit error
/// surfaced (both land on epoch boundaries, so the snapshot is legal).
#[derive(Debug, Clone)]
pub struct FailureSnapshot {
    /// Position of the failing case in its sweep.
    pub case_index: usize,
    /// The case that failed.
    pub spec: CaseSpec,
    /// The typed failure (a watchdog error carries its
    /// [`HealthReport`](gpu_sim::HealthReport)).
    pub error: CaseError,
    /// [`SnapshotBlob::to_bytes`] of the machine at the failure cycle.
    pub gpu_blob: Vec<u8>,
}

gpu_sim::impl_snap_struct!(FailureSnapshot { case_index, spec, error, gpu_blob });

// ---------------------------------------------------------------------
// File framing: magic + schema version + payload + FNV-1a checksum.
// ---------------------------------------------------------------------

fn frame(magic: [u8; 4], payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 16);
    out.extend_from_slice(&magic);
    CHECKPOINT_SCHEMA_VERSION.encode(&mut out);
    out.extend_from_slice(payload);
    let checksum = gpu_sim::snap::fnv1a(&out);
    checksum.encode(&mut out);
    out
}

fn unframe(magic: [u8; 4], bytes: &[u8]) -> Result<&[u8], String> {
    let header = magic.len() + 4;
    if bytes.len() < header + 8 {
        return Err("file too short".to_string());
    }
    if bytes[..magic.len()] != magic {
        return Err("bad magic".to_string());
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
    let actual = gpu_sim::snap::fnv1a(body);
    if stored != actual {
        return Err(format!("checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"));
    }
    let version = u32::from_le_bytes(body[magic.len()..header].try_into().expect("4-byte version"));
    if version != CHECKPOINT_SCHEMA_VERSION {
        return Err(format!(
            "schema version {version} (this binary writes {CHECKPOINT_SCHEMA_VERSION})"
        ));
    }
    Ok(&body[header..])
}

fn decode_framed<T: Snap>(magic: [u8; 4], bytes: &[u8]) -> Result<T, String> {
    let payload = unframe(magic, bytes)?;
    gpu_sim::snap::decode_from_slice(payload).map_err(|e| e.to_string())
}

// ---------------------------------------------------------------------
// The checkpoint directory: rotated generations + failure snapshots.
// ---------------------------------------------------------------------

/// A directory of rotated sweep-checkpoint generations (`ckpt-<seq>.bin`)
/// and failure snapshots (`failure-case-<index>.snap`).
#[derive(Debug)]
pub struct CheckpointDir {
    root: PathBuf,
}

impl CheckpointDir {
    /// Opens (creating if needed) a checkpoint directory.
    ///
    /// # Errors
    ///
    /// Propagates `create_dir_all` failures.
    pub fn create(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(CheckpointDir { root })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.root
    }

    fn generation_path(&self, seq: u64) -> PathBuf {
        self.root.join(format!("ckpt-{seq:08}.bin"))
    }

    /// Existing generations, sorted oldest first.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures.
    pub fn generations(&self) -> std::io::Result<Vec<(u64, PathBuf)>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            let Some(seq) = name
                .strip_prefix("ckpt-")
                .and_then(|r| r.strip_suffix(".bin"))
                .and_then(|s| s.parse::<u64>().ok())
            else {
                continue;
            };
            out.push((seq, path));
        }
        out.sort_by_key(|&(seq, _)| seq);
        Ok(out)
    }

    /// Writes `ckpt` as a new generation (atomically) and prunes old ones,
    /// keeping the newest [`KEEP_GENERATIONS`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures from the write (pruning failures are
    /// ignored — stale generations are harmless).
    pub fn save(&self, ckpt: &SweepCheckpoint) -> std::io::Result<PathBuf> {
        let generations = self.generations()?;
        let seq = generations.last().map_or(0, |&(seq, _)| seq + 1);
        let path = self.generation_path(seq);
        write_atomic(&path, &frame(CHECKPOINT_MAGIC, &gpu_sim::snap::encode_to_vec(ckpt)))?;
        if generations.len() + 1 > KEEP_GENERATIONS {
            for (_, stale) in &generations[..generations.len() + 1 - KEEP_GENERATIONS] {
                let _ = std::fs::remove_file(stale);
            }
        }
        Ok(path)
    }

    /// Loads the newest loadable generation, degrading gracefully: a corrupt
    /// or truncated generation is skipped with a warning and the next-older
    /// one is tried. Returns `None` (plus the warnings) when no generation
    /// loads.
    ///
    /// # Errors
    ///
    /// Only on failure to list the directory; per-file problems degrade to
    /// warnings instead.
    pub fn load_latest(&self) -> std::io::Result<(Option<SweepCheckpoint>, Vec<String>)> {
        let mut warnings = Vec::new();
        for (_, path) in self.generations()?.into_iter().rev() {
            let bytes = match std::fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    warnings.push(format!("skipping {}: unreadable ({e})", path.display()));
                    continue;
                }
            };
            match decode_framed::<SweepCheckpoint>(CHECKPOINT_MAGIC, &bytes) {
                Ok(ckpt) => return Ok((Some(ckpt), warnings)),
                Err(why) => warnings.push(format!(
                    "skipping corrupt checkpoint {}: {why}; falling back to previous generation",
                    path.display()
                )),
            }
        }
        Ok((None, warnings))
    }

    /// Persists the machine state of a failed case for `repro inspect`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn save_failure(&self, snap: &FailureSnapshot) -> std::io::Result<PathBuf> {
        let path = self.root.join(format!("failure-case-{:04}.snap", snap.case_index));
        write_atomic(&path, &frame(FAILURE_MAGIC, &gpu_sim::snap::encode_to_vec(snap)))?;
        Ok(path)
    }
}

/// Loads a failure snapshot written by [`CheckpointDir::save_failure`].
///
/// # Errors
///
/// [`CheckpointError`] when the file is unreadable, torn, or checksum-bad.
pub fn load_failure(path: &Path) -> Result<FailureSnapshot, CheckpointError> {
    let bytes = std::fs::read(path)?;
    decode_framed(FAILURE_MAGIC, &bytes)
        .map_err(|why| CheckpointError::Corrupt(format!("{}: {why}", path.display())))
}

// ---------------------------------------------------------------------
// Named sweeps (self-describing resume) and the plan fingerprint.
// ---------------------------------------------------------------------

/// Named sweeps `repro run` accepts; a checkpoint records the name + scale,
/// so `repro resume` can regenerate the identical plan with no other input.
///
/// `smoke-faulty` is the failure drill: its second case livelocks under an
/// injected quota starvation, trips the watchdog, and leaves a
/// `failure-case-0001.snap` for `repro inspect` to pretty-print.
pub const SWEEPS: [&str; 5] = ["smoke", "smoke-faulty", "fig6a", "pairs-rollover", "pairs-spart"];

/// The epoch override of the `smoke`/`smoke-faulty` sweeps: short enough
/// that even a `Bench`-scale case spans several watchdog windows, so the
/// kill-and-resume tests exercise mid-case snapshots cheaply.
const SMOKE_EPOCH_CYCLES: u64 = 2_000;

fn smoke_specs(scale: RunScale) -> Vec<CaseSpec> {
    pairs()
        .into_iter()
        .take(4)
        .map(|(q, b)| {
            let mut spec = CaseSpec::new(
                &[q, b],
                &[Some(0.5), None],
                Policy::Quota(QuotaScheme::Rollover),
                scale.cycles(),
            );
            spec.epoch_cycles = Some(SMOKE_EPOCH_CYCLES);
            spec
        })
        .collect()
}

/// Regenerates the spec list of a named sweep at a scale. Deterministic:
/// the same `(name, scale)` always yields the same plan (and hence the same
/// [`plan_fingerprint`]).
pub fn sweep_specs(name: &str, scale: RunScale) -> Option<Vec<CaseSpec>> {
    let goals: Vec<f64> =
        qos_core::goals::paper_goal_fractions().into_iter().step_by(scale.goal_stride()).collect();
    match name {
        // A handful of pair cases: small enough for tests and CI smoke jobs,
        // big enough to cross several checkpoint generations.
        "smoke" => Some(smoke_specs(scale)),
        // The smoke sweep with a livelock injected into its second case:
        // all quotas starve mid-run, the watchdog trips, and the failing
        // machine is persisted as a failure snapshot.
        "smoke-faulty" => {
            let mut specs = smoke_specs(scale);
            specs[1].faults =
                gpu_sim::FaultPlan::one(3 * SMOKE_EPOCH_CYCLES, gpu_sim::FaultKind::StarveQuota);
            Some(specs)
        }
        "fig6a" => Some(pair_sweep(&Policy::FIG6A, &goals, scale.cycles(), scale.case_stride())),
        "pairs-rollover" => Some(pair_sweep(
            &[Policy::Quota(QuotaScheme::Rollover)],
            &goals,
            scale.cycles(),
            scale.case_stride(),
        )),
        "pairs-spart" => {
            Some(pair_sweep(&[Policy::Spart], &goals, scale.cycles(), scale.case_stride()))
        }
        _ => None,
    }
}

/// FNV-1a fingerprint over the encoded spec list: two plans fingerprint
/// equal iff every spec field is identical.
pub fn plan_fingerprint(specs: &[CaseSpec]) -> u64 {
    let mut buf = Vec::new();
    specs.len().encode(&mut buf);
    for spec in specs {
        spec.encode(&mut buf);
    }
    gpu_sim::snap::fnv1a(&buf)
}

// ---------------------------------------------------------------------
// The checkpointed sweep driver.
// ---------------------------------------------------------------------

/// Result of a checkpointed (or resumed) sweep run.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Name of the sweep.
    pub sweep: String,
    /// Scale it ran at.
    pub scale: RunScale,
    /// The plan that was run, in order.
    pub specs: Vec<CaseSpec>,
    /// One journal entry per case, in plan order.
    pub outcomes: Vec<Result<CaseResult, CaseError>>,
    /// Degradation warnings (corrupt generations skipped, discarded
    /// mid-case state, …); empty on a clean run.
    pub warnings: Vec<String>,
}

impl SweepOutcome {
    /// Renders the sweep's final report. Pure function of the journal, so an
    /// interrupted-then-resumed sweep prints the same bytes as an
    /// uninterrupted one.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "sweep {} [{:?} scale, {} case(s)]",
            self.sweep,
            self.scale,
            self.specs.len()
        );
        for (index, (outcome, spec)) in self.outcomes.iter().zip(&self.specs).enumerate() {
            match outcome {
                Ok(r) => {
                    let ipc: Vec<String> = r.ipc.iter().map(|v| format!("{v:.4}")).collect();
                    let _ = writeln!(
                        out,
                        "  case {index:3} ok      {}  ipc=[{}] trace={:#018x}",
                        spec.label(),
                        ipc.join(", "),
                        r.trace_hash
                    );
                }
                Err(e) => {
                    let _ =
                        writeln!(out, "  case {index:3} FAILED  {}  [{}]", spec.label(), e.kind());
                }
            }
        }
        let ok: Vec<&CaseResult> = self.outcomes.iter().filter_map(|o| o.as_ref().ok()).collect();
        let _ = writeln!(
            out,
            "QoS reach {:.3} | mean non-QoS throughput {:.3} | {} failure(s)",
            qos_reach(ok.iter().copied()),
            mean(ok.iter().copied(), CaseResult::nonqos_normalized),
            self.outcomes.len() - ok.len()
        );
        let failures: Vec<FailedCase> = self
            .outcomes
            .iter()
            .zip(&self.specs)
            .enumerate()
            .filter_map(|(index, (outcome, spec))| {
                outcome.as_ref().err().map(|error| FailedCase {
                    index,
                    spec: spec.clone(),
                    error: error.clone(),
                })
            })
            .collect();
        out.push_str(&failure_digest(&failures));
        out
    }
}

struct SweepIdentity<'a> {
    sweep: &'a str,
    scale: RunScale,
    plan_fingerprint: u64,
    checkpoint_every: u64,
}

impl SweepIdentity<'_> {
    fn checkpoint(
        &self,
        completed: &[Result<CaseResult, CaseError>],
        in_progress: Option<InProgressCase>,
    ) -> SweepCheckpoint {
        SweepCheckpoint {
            sweep: self.sweep.to_string(),
            scale: self.scale,
            plan_fingerprint: self.plan_fingerprint,
            checkpoint_every: self.checkpoint_every,
            completed: completed.to_vec(),
            in_progress,
        }
    }
}

/// Rounds the requested checkpoint cadence up to a whole number of watchdog
/// windows for this case — at least two — so every mid-case checkpoint lands
/// on an epoch-aligned chunk boundary where [`Gpu::snapshot`] is legal.
///
/// The two-window floor matters for liveness detection: `try_run` checks for
/// progress at absolute multiples of the window *strictly inside* the call,
/// so a chunk spanning exactly one window would contain no check at all and
/// a livelock would run to its cycle budget undetected. With ≥ 2 windows per
/// chunk every chunk contains an interior check, and a wedged machine trips
/// within at most two windows (one later than a straight run at worst —
/// checks coinciding with chunk boundaries are skipped).
fn chunk_cycles(every: u64, epoch_cycles: u64) -> u64 {
    let window = WATCHDOG_EPOCHS * epoch_cycles;
    every.max(1).div_ceil(window).max(2) * window
}

/// Runs one case in chunks, persisting a checkpoint generation after each
/// chunk and a [`FailureSnapshot`] if the simulator reports a health error.
#[allow(clippy::too_many_arguments)]
fn run_case_chunked(
    spec: &CaseSpec,
    index: usize,
    iso: &IsolatedCache,
    dir: &CheckpointDir,
    every: u64,
    resume: Option<InProgressCase>,
    completed: &[Result<CaseResult, CaseError>],
    identity: &SweepIdentity<'_>,
    warnings: &mut Vec<String>,
) -> Result<CaseResult, CaseError> {
    let mut prepared = prepare_case(spec, iso)?;
    let (mut tracer, mut done) = match resume {
        Some(ip) => {
            debug_assert_eq!(ip.index, index);
            let restored =
                SnapshotBlob::from_bytes(&ip.gpu_blob).and_then(|blob| prepared.gpu.restore(&blob));
            match restored {
                Ok(()) => (Tracer::from_parts(ip.controller, ip.records), ip.cycles_done),
                Err(e) => {
                    // The journal survives; only the mid-case state is lost.
                    warnings.push(format!(
                        "case {index}: discarding unusable mid-case snapshot ({e}); \
                         restarting the case from cycle 0"
                    ));
                    let ctrl = build_controller(spec, &prepared.kids, &prepared.goal_ipc);
                    (Tracer::new(ctrl), 0)
                }
            }
        }
        None => {
            let ctrl = build_controller(spec, &prepared.kids, &prepared.goal_ipc);
            (Tracer::new(ctrl), 0)
        }
    };

    let chunk = chunk_cycles(every, prepared.gpu.config().epoch_cycles);
    while done < spec.cycles {
        let step = chunk.min(spec.cycles - done);
        if let Err(sim_err) = prepared.gpu.try_run(step, &mut tracer) {
            // Watchdog trips and audit failures surface on epoch boundaries,
            // so the failing machine is snapshot-legal; persist it for
            // `repro inspect`.
            let error = CaseError::from(sim_err);
            match prepared.gpu.snapshot() {
                Ok(blob) => {
                    let snap = FailureSnapshot {
                        case_index: index,
                        spec: spec.clone(),
                        error: error.clone(),
                        gpu_blob: blob.to_bytes(),
                    };
                    if let Err(e) = dir.save_failure(&snap) {
                        warnings
                            .push(format!("case {index}: could not persist failure snapshot: {e}"));
                    }
                }
                Err(e) => warnings.push(format!(
                    "case {index}: failure state not snapshot-legal ({e}); \
                     no failure snapshot persisted"
                )),
            }
            return Err(error);
        }
        done += step;
        if done < spec.cycles {
            let blob = prepared
                .gpu
                .snapshot()
                .expect("chunk boundaries are watchdog-window (hence epoch) aligned");
            let in_progress = InProgressCase {
                index,
                cycles_done: done,
                gpu_blob: blob.to_bytes(),
                controller: tracer.inner().clone(),
                records: tracer.records().to_vec(),
            };
            if let Err(e) = dir.save(&identity.checkpoint(completed, Some(in_progress))) {
                warnings.push(format!("case {index}: checkpoint write failed: {e}"));
            }
        }
    }
    Ok(finish_case(spec, &prepared, tracer.records()))
}

#[allow(clippy::too_many_arguments)]
fn drive(
    sweep: &str,
    scale: RunScale,
    specs: Vec<CaseSpec>,
    dir: &CheckpointDir,
    every: u64,
    mut journal: Vec<Result<CaseResult, CaseError>>,
    mut in_progress: Option<InProgressCase>,
    mut warnings: Vec<String>,
) -> Result<SweepOutcome, CheckpointError> {
    let identity = SweepIdentity {
        sweep,
        scale,
        plan_fingerprint: plan_fingerprint(&specs),
        checkpoint_every: every,
    };
    journal.truncate(specs.len());
    let iso = IsolatedCache::new();
    for (index, spec) in specs.iter().enumerate().skip(journal.len()) {
        let resume = in_progress.take().filter(|ip| ip.index == index);
        // Same panic-isolation policy as the parallel runner: one bounded
        // retry (from scratch — the deterministic mid-case state would just
        // reproduce the panic), then a journaled `Panicked` entry.
        let attempt = |resume: Option<InProgressCase>, warnings: &mut Vec<String>| {
            catch_unwind(AssertUnwindSafe(|| {
                run_case_chunked(
                    spec, index, &iso, dir, every, resume, &journal, &identity, warnings,
                )
            }))
        };
        let result = match attempt(resume, &mut warnings) {
            Ok(r) => r,
            Err(_) => match attempt(None, &mut warnings) {
                Ok(r) => r,
                Err(payload) => Err(CaseError::Panicked {
                    payload: panic_message(payload.as_ref()),
                    attempts: 2,
                }),
            },
        };
        journal.push(result);
        if let Err(e) = dir.save(&identity.checkpoint(&journal, None)) {
            warnings.push(format!("case {index}: checkpoint write failed: {e}"));
        }
    }
    Ok(SweepOutcome { sweep: sweep.to_string(), scale, specs, outcomes: journal, warnings })
}

/// Runs a named sweep from the start, checkpointing into `dir` roughly every
/// `every` cycles of each case.
///
/// # Errors
///
/// [`CheckpointError::Mismatch`] for an unknown sweep name; I/O errors from
/// the checkpoint directory.
pub fn run_sweep_checkpointed(
    sweep: &str,
    scale: RunScale,
    dir: &CheckpointDir,
    every: u64,
) -> Result<SweepOutcome, CheckpointError> {
    let specs = sweep_specs(sweep, scale).ok_or_else(|| {
        CheckpointError::Mismatch(format!("unknown sweep {sweep:?} (known: {})", SWEEPS.join(", ")))
    })?;
    drive(sweep, scale, specs, dir, every, Vec::new(), None, Vec::new())
}

/// Resumes an interrupted sweep from the newest loadable checkpoint in
/// `dir`, continuing mid-case from the persisted machine snapshot. The
/// checkpoint cadence defaults to the one persisted in the checkpoint (so
/// the chunk schedule — and hence watchdog-check timing in faulted cases —
/// replays exactly); `every` overrides it.
///
/// # Errors
///
/// [`CheckpointError::Corrupt`] when no generation loads;
/// [`CheckpointError::Mismatch`] when the stored sweep name is unknown or
/// the regenerated plan fingerprints differently (the code or plan changed
/// since the checkpoint was written).
pub fn resume_sweep(
    dir: &CheckpointDir,
    every: Option<u64>,
) -> Result<SweepOutcome, CheckpointError> {
    let (latest, warnings) = dir.load_latest()?;
    let ckpt = latest.ok_or_else(|| {
        CheckpointError::Corrupt(format!(
            "no loadable checkpoint generation in {}",
            dir.path().display()
        ))
    })?;
    let specs = sweep_specs(&ckpt.sweep, ckpt.scale).ok_or_else(|| {
        CheckpointError::Mismatch(format!("checkpoint names unknown sweep {:?}", ckpt.sweep))
    })?;
    let fingerprint = plan_fingerprint(&specs);
    if fingerprint != ckpt.plan_fingerprint {
        return Err(CheckpointError::Mismatch(format!(
            "plan fingerprint changed: checkpoint {:#018x}, regenerated {fingerprint:#018x}",
            ckpt.plan_fingerprint
        )));
    }
    drive(
        &ckpt.sweep.clone(),
        ckpt.scale,
        specs,
        dir,
        every.unwrap_or(ckpt.checkpoint_every),
        ckpt.completed,
        ckpt.in_progress,
        warnings,
    )
}

// ---------------------------------------------------------------------
// Failure-snapshot inspection.
// ---------------------------------------------------------------------

/// Pretty-prints a persisted failure snapshot: the case, the typed error
/// (with its health report when the watchdog tripped), and the machine
/// state restored from the blob.
pub fn render_failure_snapshot(snap: &FailureSnapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "failure snapshot: case {} — {}", snap.case_index, snap.spec.label());
    let _ = writeln!(out, "error [{}]: {}", snap.error.kind(), snap.error);
    if let CaseError::Sim(SimError::Watchdog(report)) = &snap.error {
        let _ = writeln!(out, "health report: {}", report.summary());
        let _ = writeln!(
            out,
            "  cycle {} | window {} | last progress at {} | {} warp instruction(s) issued",
            report.cycle, report.window, report.last_progress_cycle, report.total_issued
        );
        for k in &report.kernels {
            let _ = writeln!(
                out,
                "  kernel {} ({}): {} resident TB(s), {} preempted, quota {}, \
                 gated on {} SM(s) ({} exhausted), {} thread insts",
                k.kernel,
                k.name,
                k.resident_tbs,
                k.preempted_tbs,
                k.quota,
                k.gated_sms,
                k.exhausted_sms,
                k.thread_insts
            );
        }
        if !report.events.is_empty() {
            let _ = writeln!(out, "flight recorder (most recent last):");
            for event in &report.events {
                let _ = writeln!(out, "  {event}");
            }
        }
    }
    match SnapshotBlob::from_bytes(&snap.gpu_blob) {
        Ok(blob) => {
            let _ = writeln!(
                out,
                "machine snapshot: schema v{}, config fingerprint {:#018x}, {} payload byte(s)",
                blob.version(),
                blob.config_fingerprint(),
                blob.payload_len()
            );
            let mut gpu = Gpu::new(case_config(&snap.spec));
            match gpu.restore(&blob) {
                Ok(()) => {
                    let stats = gpu.stats();
                    let _ = writeln!(out, "restored machine at cycle {}:", gpu.cycle());
                    for k in gpu.kernel_ids() {
                        let _ = writeln!(
                            out,
                            "  kernel {}: ipc {:.4}, {} thread insts, {} TB(s) completed",
                            k.index(),
                            stats.ipc(k),
                            stats.kernel(k).thread_insts,
                            stats.kernel(k).tbs_completed
                        );
                    }
                    let dropped = gpu.events().dropped()
                        + gpu.sms().iter().map(|sm| sm.events().dropped()).sum::<u64>();
                    let _ = writeln!(
                        out,
                        "flight recorder: {} event(s) buffered, {} dropped to ring overflow",
                        gpu.events().len()
                            + gpu.sms().iter().map(|sm| sm.events().len()).sum::<usize>(),
                        dropped
                    );
                }
                Err(e) => {
                    let _ = writeln!(out, "machine snapshot does not restore: {e}");
                }
            }
        }
        Err(e) => {
            let _ = writeln!(out, "machine snapshot is unusable: {e}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fgqos-ckpt-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_checkpoint(completed: usize) -> SweepCheckpoint {
        let specs = sweep_specs("smoke", RunScale::Bench).expect("known sweep");
        SweepCheckpoint {
            sweep: "smoke".to_string(),
            scale: RunScale::Bench,
            plan_fingerprint: plan_fingerprint(&specs),
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
            completed: (0..completed)
                .map(|i| Err(CaseError::Panicked { payload: format!("case {i}"), attempts: 2 }))
                .collect(),
            in_progress: None,
        }
    }

    #[test]
    fn generations_rotate_and_latest_wins() {
        let dir = CheckpointDir::create(tmp_dir("rotate")).expect("create");
        for i in 0..5 {
            dir.save(&tiny_checkpoint(i)).expect("save");
        }
        let generations = dir.generations().expect("list");
        assert_eq!(generations.len(), KEEP_GENERATIONS, "old generations pruned");
        let (latest, warnings) = dir.load_latest().expect("load");
        assert!(warnings.is_empty());
        assert_eq!(latest.expect("loadable").completed.len(), 4);
        let _ = std::fs::remove_dir_all(dir.path());
    }

    #[test]
    fn empty_dir_loads_nothing() {
        let dir = CheckpointDir::create(tmp_dir("empty")).expect("create");
        let (latest, warnings) = dir.load_latest().expect("load");
        assert!(latest.is_none());
        assert!(warnings.is_empty());
        let _ = std::fs::remove_dir_all(dir.path());
    }

    #[test]
    fn plan_fingerprint_is_sensitive_to_every_spec_field() {
        let a = sweep_specs("smoke", RunScale::Bench).expect("known");
        let mut b = a.clone();
        assert_eq!(plan_fingerprint(&a), plan_fingerprint(&b));
        b[0].cycles += 1;
        assert_ne!(plan_fingerprint(&a), plan_fingerprint(&b));
        assert_ne!(
            plan_fingerprint(&a),
            plan_fingerprint(&sweep_specs("smoke", RunScale::Smoke).expect("known"))
        );
    }

    #[test]
    fn chunking_rounds_up_to_watchdog_windows() {
        // window = 2 × epoch; the floor is two windows so every chunk
        // contains an interior liveness check.
        assert_eq!(chunk_cycles(1, 10_000), 40_000);
        assert_eq!(chunk_cycles(20_000, 10_000), 40_000);
        assert_eq!(chunk_cycles(40_001, 10_000), 60_000);
        assert_eq!(chunk_cycles(100_000, 1_000), 100_000);
    }

    #[test]
    fn unknown_sweep_is_a_mismatch() {
        let dir = CheckpointDir::create(tmp_dir("unknown")).expect("create");
        let err = run_sweep_checkpointed("nope", RunScale::Bench, &dir, 1).expect_err("bad");
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
        let _ = std::fs::remove_dir_all(dir.path());
    }

    #[test]
    fn checkpoint_file_round_trips() {
        let ckpt = tiny_checkpoint(2);
        let bytes = frame(CHECKPOINT_MAGIC, &gpu_sim::snap::encode_to_vec(&ckpt));
        let back: SweepCheckpoint = decode_framed(CHECKPOINT_MAGIC, &bytes).expect("round trip");
        assert_eq!(back.sweep, ckpt.sweep);
        assert_eq!(back.plan_fingerprint, ckpt.plan_fingerprint);
        assert_eq!(back.completed.len(), 2);
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let ckpt = tiny_checkpoint(1);
        let bytes = frame(CHECKPOINT_MAGIC, &gpu_sim::snap::encode_to_vec(&ckpt));
        // Flip one bit at a sample of positions across the file (every byte
        // would be slow for big payloads; the checksum covers them all
        // identically).
        for pos in (0..bytes.len()).step_by(7) {
            let mut evil = bytes.clone();
            evil[pos] ^= 0x10;
            assert!(
                decode_framed::<SweepCheckpoint>(CHECKPOINT_MAGIC, &evil).is_err(),
                "bit flip at byte {pos} went undetected"
            );
        }
    }
}
