//! Telemetry: deterministic latency histograms, counter time series, and a
//! host-side self-profiler (DESIGN.md §17).
//!
//! Three pieces with very different determinism contracts:
//!
//! * [`LatencyHistogram`] — an HDR-style log-bucketed histogram holding only
//!   integers. Recording is a shift-and-mask bucket computation; quantiles
//!   are derived at report time with pure integer (ppm-rank) arithmetic.
//!   Histograms are [`Snap`](crate::snap::Snap)-integrated, ride machine/fleet snapshots, and
//!   are therefore part of the bit-identity surface: a SIGKILLed run resumed
//!   from its checkpoint reproduces every bucket exactly.
//! * [`TimeSeries`] — a bounded ring of periodic counter-registry samples
//!   (one row per epoch or fleet tick). Also [`Snap`](crate::snap::Snap)-integrated and
//!   bit-identical across serial/parallel stepping and the fast-forward
//!   toggle, which is why samplers must exclude counters that describe the
//!   *host strategy* rather than the simulated machine (`ff_skipped_cycles`
//!   is the one such counter today — see [`TimeSeries::sample_deterministic`]).
//! * [`HostProfiler`] — opt-in wall-clock attribution per simulator phase.
//!   Host time is inherently nondeterministic, so the profiler is kept
//!   strictly **outside** snapshots and `records_hash`: it is never encoded,
//!   never compared, and costs a single branch per phase boundary when
//!   disabled.

use std::fmt;
use std::time::Instant;

use crate::observe::CounterEntry;

// ---------------------------------------------------------------------------
// Log-bucketed histogram
// ---------------------------------------------------------------------------

/// Values below `1 << LINEAR_BITS` get one bucket each (exact counts).
const LINEAR_BITS: u32 = 5;
/// Sub-buckets per power-of-two octave above the linear range: each octave
/// `[2^m, 2^{m+1})` is split into 16 equal slots, bounding the relative
/// quantization error at `1/16 ≈ 6.25%`.
const SUB_BUCKETS: u64 = 16;
/// Highest bucket index a `u64` value can map to (`m = 63`, slot 15).
#[cfg(test)]
const MAX_BUCKETS: usize = 32 + (64 - LINEAR_BITS as usize) * SUB_BUCKETS as usize;

/// An HDR-style log-bucketed histogram with integer-only state.
///
/// Values `< 32` are counted exactly (one bucket per value); larger values
/// land in one of 16 sub-buckets per power-of-two octave, so the reported
/// quantiles carry at most ~6.25% relative quantization error while the
/// bucket array stays small (a value of 2^63 still needs only ~976 buckets,
/// and the vector grows lazily to the highest bucket actually hit).
///
/// Everything is a `u64`: recording, merging, and quantile extraction use no
/// floating point, so the histogram is byte-identical wherever the recorded
/// value sequence is — across serial vs. parallel stepping, fast-forward
/// on/off, and snapshot → SIGKILL → resume.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Per-bucket counts, grown on demand; index via [`bucket_index`].
    counts: Vec<u64>,
    /// Total number of recorded values.
    count: u64,
    /// Sum of recorded values (saturating, for the mean).
    sum: u64,
    /// Largest recorded value (0 when empty).
    max: u64,
}

crate::impl_snap_struct!(LatencyHistogram { counts, count, sum, max });

/// Bucket index for a value.
fn bucket_index(v: u64) -> usize {
    if v < (1 << LINEAR_BITS) {
        return v as usize;
    }
    let m = 63 - v.leading_zeros(); // m >= LINEAR_BITS
    let slot = (v >> (m - 4)) & (SUB_BUCKETS - 1);
    (1 << LINEAR_BITS) + (m - LINEAR_BITS) as usize * SUB_BUCKETS as usize + slot as usize
}

/// Inclusive upper bound of a bucket — the deterministic value reported for
/// quantiles that land in it.
fn bucket_upper(index: usize) -> u64 {
    if index < (1 << LINEAR_BITS) {
        return index as u64;
    }
    let rel = index - (1 << LINEAR_BITS);
    let m = LINEAR_BITS + (rel / SUB_BUCKETS as usize) as u32;
    let slot = (rel % SUB_BUCKETS as usize) as u64;
    let width = 1u64 << (m - 4);
    let low = (1u64 << m) + slot * width;
    low.wrapping_add(width - 1) // saturates to u64::MAX in the top bucket
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` occurrences of the same value.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = bucket_index(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.max = self.max.max(v);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Integer mean of recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The quantile at `ppm` parts-per-million (e.g. 990_000 for p99): the
    /// smallest bucket upper bound such that at least `ceil(count·ppm/10^6)`
    /// recorded values are at or below it, clamped to the observed maximum.
    /// Pure integer arithmetic; returns 0 for an empty histogram.
    pub fn quantile_ppm(&self, ppm: u32) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let ppm = u64::from(ppm.min(1_000_000));
        // rank = ceil(count * ppm / 1e6), clamped to [1, count].
        let rank = ((u128::from(self.count) * u128::from(ppm)).div_ceil(1_000_000) as u64)
            .clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.quantile_ppm(500_000)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile_ppm(900_000)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile_ppm(950_000)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile_ppm(990_000)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile_ppm(999_000)
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs, lowest
    /// bound first — the exporter surface for Prometheus `le` buckets.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(idx, &c)| (bucket_upper(idx), c))
    }
}

// ---------------------------------------------------------------------------
// Counter time series
// ---------------------------------------------------------------------------

/// One sampled row of a [`TimeSeries`]: every column's value at one stamp.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeriesRow {
    /// Simulated-time stamp of the sample (cycle).
    pub stamp: u64,
    /// One value per column, in [`TimeSeries::columns`] order.
    pub values: Vec<i64>,
}

crate::impl_snap_struct!(SeriesRow { stamp, values });

/// A bounded ring of periodic counter-registry samples.
///
/// Columns are fixed by the first sample (scope-qualified counter names);
/// each subsequent sample appends one row, evicting the oldest once
/// `capacity` rows are held. Everything — names, rows, the eviction count —
/// is [`Snap`](crate::snap::Snap)-encoded, so the series survives checkpoint/restore
/// byte-identically and is part of the determinism surface.
///
/// A `capacity` of 0 disables the series entirely (the enabled check is one
/// comparison), which is the default for [`crate::Gpu`] so the per-epoch
/// registry walk costs nothing unless telemetry was requested.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimeSeries {
    capacity: usize,
    names: Vec<String>,
    rows: Vec<SeriesRow>,
    evicted: u64,
}

crate::impl_snap_struct!(TimeSeries { capacity, names, rows, evicted });

impl TimeSeries {
    /// A series holding at most `capacity` rows (0 disables sampling).
    pub fn new(capacity: usize) -> Self {
        TimeSeries { capacity, names: Vec::new(), rows: Vec::new(), evicted: 0 }
    }

    /// A disabled series (capacity 0; every sample is a no-op).
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// Whether sampling is enabled (capacity > 0).
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Maximum number of rows retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Scope-qualified column names, fixed by the first sample.
    pub fn columns(&self) -> &[String] {
        &self.names
    }

    /// Retained rows, oldest first.
    pub fn rows(&self) -> &[SeriesRow] {
        &self.rows
    }

    /// Rows evicted so far to honor the capacity bound. Zero means
    /// [`rows`](TimeSeries::rows) is the complete recording.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Samples the registry `entries` at `stamp`, keeping only entries for
    /// which `keep` returns true. The first sample fixes the column set; if
    /// a later sample's columns differ (a registry whose shape changed
    /// mid-run), the series restarts from the new shape and counts the
    /// discarded rows as evicted — deterministic, and visible to exporters.
    pub fn sample_filtered(
        &mut self,
        stamp: u64,
        entries: &[CounterEntry],
        keep: impl Fn(&CounterEntry) -> bool,
    ) {
        if self.capacity == 0 {
            return;
        }
        let mut names: Vec<String> = Vec::new();
        let mut values: Vec<i64> = Vec::new();
        for e in entries.iter().filter(|e| keep(e)) {
            names.push(format!("{}/{}", e.scope, e.name));
            values.push(e.value);
        }
        if self.names != names {
            if !self.names.is_empty() {
                self.evicted += self.rows.len() as u64;
                self.rows.clear();
            }
            self.names = names;
        }
        if self.rows.len() == self.capacity {
            self.rows.remove(0);
            self.evicted += 1;
        }
        self.rows.push(SeriesRow { stamp, values });
    }

    /// Samples every entry except counters that describe the *host
    /// execution strategy* rather than the simulated machine — today exactly
    /// `ff_skipped_cycles`, which legitimately differs across the
    /// fast-forward toggle while every simulated-state counter does not.
    /// This is what keeps a sampled series byte-identical across
    /// serial/parallel stepping and fast-forward on/off.
    pub fn sample_deterministic(&mut self, stamp: u64, entries: &[CounterEntry]) {
        self.sample_filtered(stamp, entries, |e| e.name != "ff_skipped_cycles");
    }
}

// ---------------------------------------------------------------------------
// Host-side self-profiler
// ---------------------------------------------------------------------------

/// A simulator phase the host profiler attributes wall-clock time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum ProfPhase {
    /// Stepping every SM domain for one cycle (serial or via the pool).
    SmStep,
    /// Ready-warp selection inside the SM step: building the live-warp
    /// bitmask and running the per-scheduler gather/choose passes. A
    /// sub-span of [`ProfPhase::SmStep`] (its time is also inside that
    /// total), attributed separately so dense-path reports show how much
    /// of the step is scheduler selection versus issue execution.
    IssueSelect,
    /// Draining SM interconnect ports: applying memory responses to warp
    /// scoreboards at the end-of-cycle barrier.
    IcnDrain,
    /// Serving drained port requests in the shared L2/DRAM hierarchy.
    MemsysServe,
    /// TB-scheduler service passes: dispatch, preemption checks.
    TbService,
    /// Epoch-boundary work: epoch accounting, invariant audits, the QoS
    /// controller's `on_epoch`, and telemetry sampling.
    QosEpochService,
    /// Idle fast-forward horizon scans and jumps.
    FastForward,
    /// Fleet-layer tick orchestration (arrivals, placement, migration
    /// bookkeeping, sampling) — everything except stepping the devices.
    FleetTick,
    /// Stepping fleet devices (each device's own phases are inside its GPU).
    DeviceStep,
    /// Serializing and writing checkpoints to disk.
    CheckpointWrite,
}

impl ProfPhase {
    /// Every phase, in display order.
    pub const ALL: [ProfPhase; 10] = [
        ProfPhase::SmStep,
        ProfPhase::IssueSelect,
        ProfPhase::IcnDrain,
        ProfPhase::MemsysServe,
        ProfPhase::TbService,
        ProfPhase::QosEpochService,
        ProfPhase::FastForward,
        ProfPhase::FleetTick,
        ProfPhase::DeviceStep,
        ProfPhase::CheckpointWrite,
    ];

    /// Stable, machine-readable phase name.
    pub fn name(self) -> &'static str {
        match self {
            ProfPhase::SmStep => "sm_step",
            ProfPhase::IssueSelect => "issue_select",
            ProfPhase::IcnDrain => "icn_drain",
            ProfPhase::MemsysServe => "memsys_serve",
            ProfPhase::TbService => "tb_service",
            ProfPhase::QosEpochService => "qos_epoch_service",
            ProfPhase::FastForward => "fast_forward",
            ProfPhase::FleetTick => "fleet_tick",
            ProfPhase::DeviceStep => "device_step",
            ProfPhase::CheckpointWrite => "checkpoint_write",
        }
    }
}

impl fmt::Display for ProfPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Accumulated wall-clock time and invocation count of one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTotal {
    /// Total nanoseconds attributed to the phase.
    pub nanos: u64,
    /// Number of timed spans.
    pub calls: u64,
}

/// Opt-in wall-clock attribution per simulator phase.
///
/// Deliberately **not** [`Snap`](crate::snap::Snap): host time is nondeterministic, so profiler
/// state never enters snapshots, reports, or `records_hash`. Disabled (the
/// default) every timing call is a single branch on a `bool`; enabled, each
/// phase boundary costs two `Instant::now()` reads.
#[derive(Debug, Clone, Default)]
pub struct HostProfiler {
    enabled: bool,
    totals: [PhaseTotal; ProfPhase::ALL.len()],
}

impl HostProfiler {
    /// A disabled profiler (all timing calls are no-ops).
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables or disables timing. Disabling keeps accumulated totals.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether timing is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Starts a span: `Some(now)` when enabled, `None` (free) when not.
    #[inline]
    pub fn begin(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Ends a span started by [`begin`](HostProfiler::begin), attributing
    /// its wall time to `phase`.
    #[inline]
    pub fn end(&mut self, phase: ProfPhase, started: Option<Instant>) {
        if let Some(t0) = started {
            self.add(phase, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Ends a span and starts the next one in a single clock read.
    #[inline]
    pub fn lap(&mut self, phase: ProfPhase, started: Option<Instant>) -> Option<Instant> {
        if let Some(t0) = started {
            let now = Instant::now();
            self.add(phase, now.duration_since(t0).as_nanos() as u64);
            Some(now)
        } else {
            None
        }
    }

    /// Attributes `nanos` to `phase` directly (for externally timed spans
    /// such as checkpoint writes).
    pub fn add(&mut self, phase: ProfPhase, nanos: u64) {
        self.add_span(phase, nanos, 1);
    }

    /// Attributes a pre-aggregated batch of `calls` spans totalling `nanos`
    /// to `phase` (for spans timed inside concurrently stepped domains and
    /// folded in at the barrier).
    pub fn add_span(&mut self, phase: ProfPhase, nanos: u64, calls: u64) {
        let t = &mut self.totals[phase as usize];
        t.nanos = t.nanos.saturating_add(nanos);
        t.calls += calls;
    }

    /// Accumulated total of one phase.
    pub fn total(&self, phase: ProfPhase) -> PhaseTotal {
        self.totals[phase as usize]
    }

    /// Every phase with a nonzero total, in [`ProfPhase::ALL`] order.
    pub fn rows(&self) -> Vec<(ProfPhase, PhaseTotal)> {
        ProfPhase::ALL.iter().map(|&p| (p, self.total(p))).filter(|(_, t)| t.calls > 0).collect()
    }

    /// Sum of all attributed nanoseconds.
    pub fn attributed_nanos(&self) -> u64 {
        self.totals.iter().map(|t| t.nanos).sum()
    }

    /// Folds another profiler's totals into this one.
    pub fn absorb(&mut self, other: &HostProfiler) {
        for (dst, src) in self.totals.iter_mut().zip(&other.totals) {
            dst.nanos = dst.nanos.saturating_add(src.nanos);
            dst.calls += src.calls;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::{CounterKind, CounterScope};
    use crate::snap::{decode_from_slice, encode_to_vec};

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.sum(), (0..32).sum::<u64>());
        assert_eq!(h.max(), 31);
        assert_eq!(h.quantile_ppm(1), 0, "rank 1 is the smallest value");
        assert_eq!(h.p50(), 15);
        assert_eq!(h.quantile_ppm(1_000_000), 31);
    }

    #[test]
    fn bucket_error_is_bounded() {
        // Every bucket upper bound must be within 1/16 of the values that
        // map into it.
        for v in [33u64, 100, 1_000, 65_537, 1 << 40, u64::MAX / 3, u64::MAX] {
            let idx = bucket_index(v);
            let upper = bucket_upper(idx);
            assert!(upper >= v, "upper bound {upper} below value {v}");
            // upper / v <= 1 + 1/16 + rounding slack
            assert!(
                (upper - v) as u128 * 16 <= v as u128 + 16,
                "bucket error too large: v={v} upper={upper}"
            );
        }
        // Monotone: larger values never land in earlier buckets.
        let mut last = 0;
        for v in (0..200u64).chain((8..20).map(|m| (1u64 << m) + 7)) {
            let idx = bucket_index(v);
            assert!(idx >= last);
            last = idx;
        }
        assert!(bucket_index(u64::MAX) < MAX_BUCKETS);
    }

    #[test]
    fn quantiles_are_clamped_to_observed_max() {
        let mut h = LatencyHistogram::new();
        h.record(1_000);
        assert_eq!(h.p50(), 1_000);
        assert_eq!(h.p999(), 1_000, "single value: every quantile is it");
    }

    #[test]
    fn quantile_ranks_follow_ppm() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // With 100 exact-ish samples, p90 must sit near 90 (within one
        // bucket's 6.25% quantization).
        let p90 = h.p90();
        assert!((88..=96).contains(&p90), "p90 = {p90}");
        assert!(h.p99() >= p90);
        assert!(h.p999() >= h.p99());
        assert_eq!(h.quantile_ppm(1_000_000), 100);
    }

    #[test]
    fn merge_matches_recording_everything_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for v in [0u64, 5, 31, 32, 100, 9_999, 1 << 33] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 70, 4_096, 1 << 20] {
            b.record_n(v, 3);
            all.record_n(v, 3);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn histogram_round_trips_through_the_codec() {
        let mut h = LatencyHistogram::new();
        for v in [3u64, 17, 1_000, 123_456_789] {
            h.record_n(v, v % 7 + 1);
        }
        let back: LatencyHistogram = decode_from_slice(&encode_to_vec(&h)).expect("codec");
        assert_eq!(back, h);
        assert_eq!(back.p99(), h.p99());
    }

    fn entry(name: &'static str, value: i64) -> CounterEntry {
        CounterEntry { name, scope: CounterScope::Machine, kind: CounterKind::Counter, value }
    }

    #[test]
    fn series_keeps_a_bounded_window_and_counts_evictions() {
        let mut s = TimeSeries::new(3);
        assert!(s.enabled());
        for i in 0..5u64 {
            s.sample_deterministic(i * 10, &[entry("a", i as i64), entry("b", -1)]);
        }
        assert_eq!(s.rows().len(), 3);
        assert_eq!(s.evicted(), 2);
        assert_eq!(s.columns(), ["machine/a".to_string(), "machine/b".to_string()]);
        let stamps: Vec<u64> = s.rows().iter().map(|r| r.stamp).collect();
        assert_eq!(stamps, [20, 30, 40], "oldest rows were evicted");
        assert_eq!(s.rows()[2].values, [4, -1]);
    }

    #[test]
    fn series_excludes_host_strategy_counters() {
        let mut s = TimeSeries::new(4);
        s.sample_deterministic(0, &[entry("cycle", 0), entry("ff_skipped_cycles", 123)]);
        assert_eq!(s.columns(), ["machine/cycle".to_string()]);
        assert_eq!(s.rows()[0].values, [0]);
    }

    #[test]
    fn disabled_series_records_nothing() {
        let mut s = TimeSeries::disabled();
        assert!(!s.enabled());
        s.sample_deterministic(5, &[entry("a", 1)]);
        assert!(s.rows().is_empty());
        assert_eq!(s.evicted(), 0);
    }

    #[test]
    fn series_restarts_when_the_registry_shape_changes() {
        let mut s = TimeSeries::new(8);
        s.sample_deterministic(0, &[entry("a", 1)]);
        s.sample_deterministic(1, &[entry("a", 2)]);
        s.sample_deterministic(2, &[entry("a", 3), entry("b", 4)]);
        assert_eq!(s.columns().len(), 2);
        assert_eq!(s.rows().len(), 1, "old-shape rows were discarded");
        assert_eq!(s.evicted(), 2);
    }

    #[test]
    fn series_round_trips_through_the_codec() {
        let mut s = TimeSeries::new(2);
        for i in 0..4u64 {
            s.sample_deterministic(i, &[entry("x", i as i64 * 3)]);
        }
        let back: TimeSeries = decode_from_slice(&encode_to_vec(&s)).expect("codec");
        assert_eq!(back, s);
    }

    #[test]
    fn disabled_profiler_is_free_and_silent() {
        let mut p = HostProfiler::new();
        assert!(!p.is_enabled());
        let t = p.begin();
        assert!(t.is_none());
        p.end(ProfPhase::SmStep, t);
        assert!(p.rows().is_empty());
        assert_eq!(p.attributed_nanos(), 0);
    }

    #[test]
    fn enabled_profiler_attributes_spans() {
        let mut p = HostProfiler::new();
        p.set_enabled(true);
        let t = p.begin();
        assert!(t.is_some());
        let t = p.lap(ProfPhase::SmStep, t);
        p.end(ProfPhase::IcnDrain, t);
        p.add(ProfPhase::CheckpointWrite, 1_000);
        assert_eq!(p.total(ProfPhase::SmStep).calls, 1);
        assert_eq!(p.total(ProfPhase::IcnDrain).calls, 1);
        assert_eq!(p.total(ProfPhase::CheckpointWrite).nanos, 1_000);
        let names: Vec<&str> = p.rows().iter().map(|(ph, _)| ph.name()).collect();
        assert_eq!(names, ["sm_step", "icn_drain", "checkpoint_write"]);
        let mut q = HostProfiler::new();
        q.absorb(&p);
        assert_eq!(q.total(ProfPhase::CheckpointWrite).nanos, 1_000);
        assert!(q.attributed_nanos() >= 1_000);
    }

    #[test]
    fn every_phase_has_a_unique_name() {
        let mut names: Vec<&str> = ProfPhase::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ProfPhase::ALL.len());
    }
}
