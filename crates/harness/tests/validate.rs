//! Integration tests for the `repro validate` correlation harness.
//!
//! The committed corpus under `tests/golden/validate/` must validate clean
//! on the canonical configuration; a deliberately perturbed configuration
//! must fail the gates; and bless must refuse a corpus written under a
//! foreign trace schema version.

use std::path::PathBuf;
use std::process::Command;

use gpu_sim::GpuConfig;
use harness::validate::{
    bless_dir, recapture_in, run_validation, run_validation_in, run_validation_with,
    CORR_THRESHOLD, MAX_REL_ERR, METRICS,
};
use trace::TRACE_SCHEMA_VERSION;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fgqos-validate-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn committed_corpus_validates_clean() {
    let report = run_validation().expect("committed corpus and expectations load");
    assert!(report.ok(), "committed corpus must pass:\n{}", report.render());
    assert_eq!(report.rows.len(), METRICS.len());
    for row in &report.rows {
        assert!(row.corr >= CORR_THRESHOLD, "{}: corr {}", row.metric, row.corr);
        assert!(row.max_rel_err <= MAX_REL_ERR, "{}: err {}", row.metric, row.max_rel_err);
    }
    let table = report.render();
    assert!(table.contains("PASS"), "report renders the verdict:\n{table}");
}

#[test]
fn perturbed_config_fails_the_gates() {
    // Halving the epoch length changes quota cadence, sampling, and IPC
    // accounting — expectations were pinned at epoch_cycles = 1000, so the
    // replayed metrics must drift past at least one gate.
    let mut cfg = GpuConfig::tiny();
    cfg.epoch_cycles = 500;
    let report = run_validation_with(&cfg).expect("corpus still loads");
    assert!(!report.ok(), "a perturbed configuration must fail validation:\n{}", report.render());
    assert!(report.render().contains("FAIL"));
}

#[test]
fn bless_refuses_a_foreign_trace_schema() {
    let dir = temp_dir("foreign");
    // A structurally intact frame stamped with a future schema version,
    // checksum re-sealed so only the version check can reject it.
    let desc = workloads::by_name("sgemm").expect("known workload");
    let kt =
        trace::capture(&desc, &GpuConfig::tiny(), trace::DEFAULT_CAPTURE_CYCLES).expect("capture");
    let mut bytes = trace::to_bytes(&kt);
    bytes[4..8].copy_from_slice(&(TRACE_SCHEMA_VERSION + 1).to_le_bytes());
    let body_len = bytes.len() - 8;
    let sum = gpu_sim::snap::fnv1a(&bytes[..body_len]);
    bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
    std::fs::write(dir.join("sgemm.fgtr"), &bytes).expect("write");

    let err = bless_dir(&dir).expect_err("bless must refuse a foreign schema");
    assert!(err.contains("refusing to bless"), "unexpected error: {err}");
    assert!(err.contains("--recapture"), "error must name the migration path: {err}");
    assert!(!dir.join("expectations.json").exists(), "refusal must not write expectations");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recapture_builds_a_corpus_that_validates() {
    let dir = temp_dir("recapture");
    recapture_in(&dir).expect("recapture seeds a fresh corpus");
    assert!(dir.join("expectations.json").exists());
    let report = run_validation_in(&dir, &GpuConfig::tiny()).expect("fresh corpus loads");
    assert!(report.ok(), "a freshly blessed corpus must pass:\n{}", report.render());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repro_validate_cli_exits_zero_and_writes_the_report() {
    let dir = temp_dir("cli");
    let out = dir.join("report.txt");
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["validate", "--out"])
        .arg(&out)
        .output()
        .expect("spawn repro");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "repro validate must exit 0 on the committed corpus\nstdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(stdout.contains("overall: PASS"), "stdout is the table:\n{stdout}");
    let report = std::fs::read_to_string(&out).expect("--out writes the report");
    assert_eq!(report, stdout, "the file and stdout carry the same table");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repro_validate_cli_rejects_unknown_flags() {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["validate", "--frobnicate"])
        .output()
        .expect("spawn repro");
    assert!(!output.status.success());
}
