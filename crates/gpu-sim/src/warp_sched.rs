//! Warp scheduling policies.
//!
//! The paper's QoS design deliberately leaves the underlying warp scheduling
//! algorithm unmodified — quotas only *gate* which kernels are eligible.
//! GTO (greedy-then-oldest, the Table 1 policy) keeps issuing from the same
//! warp while it is ready and otherwise falls back to the oldest ready warp;
//! LRR (loose round-robin) is provided for comparison and tests.

use serde::{Deserialize, Serialize};

/// Warp scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedPolicy {
    /// Greedy-then-oldest (Table 1 default).
    Gto,
    /// Loose round-robin.
    Lrr,
}

/// Mutable per-scheduler state.
#[derive(Debug, Clone, Default)]
pub struct SchedulerState {
    /// Warp slot the scheduler last issued from (GTO greediness).
    pub greedy: Option<u16>,
    /// Round-robin cursor (LRR).
    pub rr_cursor: u16,
}

/// A ready warp candidate: `(warp slot, dispatch age)`.
pub type Candidate = (u16, u64);

/// Picks the next warp under GTO: the previously issued warp if still ready,
/// otherwise the oldest ready warp (smallest age).
pub fn gto_choose(state: &SchedulerState, ready: &[Candidate]) -> Option<u16> {
    if let Some(g) = state.greedy {
        if ready.iter().any(|&(slot, _)| slot == g) {
            return Some(g);
        }
    }
    ready.iter().min_by_key(|&&(_, age)| age).map(|&(slot, _)| slot)
}

/// Picks the next warp under LRR: the first ready slot strictly after the
/// cursor, wrapping around.
pub fn lrr_choose(state: &SchedulerState, ready: &[Candidate]) -> Option<u16> {
    if ready.is_empty() {
        return None;
    }
    ready
        .iter()
        .map(|&(slot, _)| slot)
        .filter(|&s| s > state.rr_cursor)
        .min()
        .or_else(|| ready.iter().map(|&(slot, _)| slot).min())
}

/// Dispatches on `policy` and updates the scheduler state.
pub fn choose(policy: SchedPolicy, state: &mut SchedulerState, ready: &[Candidate]) -> Option<u16> {
    let pick = match policy {
        SchedPolicy::Gto => gto_choose(state, ready),
        SchedPolicy::Lrr => lrr_choose(state, ready),
    };
    if let Some(slot) = pick {
        state.greedy = Some(slot);
        state.rr_cursor = slot;
    }
    pick
}

crate::impl_snap_enum!(SchedPolicy { Gto = 0, Lrr = 1 });

crate::impl_snap_struct!(SchedulerState { greedy, rr_cursor });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gto_sticks_with_greedy_warp() {
        let mut st = SchedulerState::default();
        let ready = vec![(3u16, 30u64), (7, 10), (9, 20)];
        // First pick: oldest (age 10) = slot 7.
        assert_eq!(choose(SchedPolicy::Gto, &mut st, &ready), Some(7));
        // Slot 7 still ready: stay greedy even though it is not the oldest now.
        let ready2 = vec![(3u16, 5u64), (7, 10)];
        assert_eq!(choose(SchedPolicy::Gto, &mut st, &ready2), Some(7));
    }

    #[test]
    fn gto_falls_back_to_oldest() {
        let mut st = SchedulerState { greedy: Some(7), rr_cursor: 0 };
        let ready = vec![(3u16, 30u64), (9, 20)];
        assert_eq!(choose(SchedPolicy::Gto, &mut st, &ready), Some(9));
    }

    #[test]
    fn gto_none_when_nothing_ready() {
        let mut st = SchedulerState::default();
        assert_eq!(choose(SchedPolicy::Gto, &mut st, &[]), None);
    }

    #[test]
    fn lrr_rotates() {
        let mut st = SchedulerState::default();
        let ready = vec![(0u16, 0u64), (4, 0), (8, 0)];
        assert_eq!(choose(SchedPolicy::Lrr, &mut st, &ready), Some(4));
        assert_eq!(choose(SchedPolicy::Lrr, &mut st, &ready), Some(8));
        assert_eq!(choose(SchedPolicy::Lrr, &mut st, &ready), Some(0), "wraps");
        assert_eq!(choose(SchedPolicy::Lrr, &mut st, &ready), Some(4));
    }

    #[test]
    fn lrr_single_candidate() {
        let mut st = SchedulerState::default();
        let ready = vec![(2u16, 0u64)];
        assert_eq!(choose(SchedPolicy::Lrr, &mut st, &ready), Some(2));
        assert_eq!(choose(SchedPolicy::Lrr, &mut st, &ready), Some(2));
    }
}
