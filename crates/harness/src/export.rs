//! Exporting case results as CSV for external analysis/plotting.
//!
//! The `repro` reports are human-oriented tables; this module serializes raw
//! [`CaseResult`]s so the figures can be re-plotted (or re-analysed) outside
//! Rust. One row per *kernel* per case keeps the format flat and
//! spreadsheet-friendly.
//!
//! All on-disk artifacts (CSVs, reports, golden traces, checkpoints) go
//! through [`write_atomic`]: write to a temporary sibling, fsync, rename.
//! A crash mid-write — the exact scenario the checkpoint subsystem recovers
//! from — can therefore never leave a torn file under the final name.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

use crate::metrics::CaseResult;

/// Writes `contents` to `path` atomically: a unique temporary file in the
/// same directory is written, flushed and fsynced, then renamed over `path`.
/// Readers see either the old contents or the new — never a torn mix.
///
/// # Errors
///
/// Propagates filesystem errors; the temporary file is removed on failure.
pub fn write_atomic(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    // Unique per process so concurrent writers never clobber each other's
    // temporary; the final rename is the only race, and it is atomic.
    let tmp_name = format!(
        ".{}.tmp.{}",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("export"),
        std::process::id()
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Serializes `results` to CSV and writes the file atomically.
///
/// # Errors
///
/// Propagates filesystem errors from [`write_atomic`].
pub fn write_csv(path: &Path, results: &[CaseResult]) -> std::io::Result<()> {
    write_atomic(path, to_csv(results).as_bytes())
}

/// Writes a rendered report atomically.
///
/// # Errors
///
/// Propagates filesystem errors from [`write_atomic`].
pub fn write_report(path: &Path, report: &str) -> std::io::Result<()> {
    write_atomic(path, report.as_bytes())
}

/// CSV header matching [`to_csv`]'s row layout.
pub const CSV_HEADER: &str = "policy,config,cycles,case_kernels,goal_kernel,kernel,slot,\
                              is_qos,goal_frac,goal_ipc,ipc,isolated_ipc,reached,\
                              nonqos_normalized,insts_per_energy,preemption_saves";

/// Serializes results to CSV (header + one row per kernel per case).
pub fn to_csv(results: &[CaseResult]) -> String {
    let mut out = String::with_capacity(results.len() * 128 + CSV_HEADER.len());
    out.push_str(CSV_HEADER);
    out.push('\n');
    for r in results {
        let case_kernels = r.spec.kernels.join("+");
        for (slot, name) in r.spec.kernels.iter().enumerate() {
            let goal_frac = r.spec.goal_fracs[slot];
            let _ = writeln!(
                out,
                "{},{:?},{},{},{},{},{},{},{},{},{:.4},{:.4},{},{:.4},{:.6},{}",
                r.spec.policy.label(),
                r.spec.config,
                r.spec.cycles,
                case_kernels,
                r.spec.kernels[0],
                name,
                slot,
                goal_frac.is_some(),
                goal_frac.map(|f| format!("{f:.2}")).unwrap_or_default(),
                r.goal_ipc[slot].map(|g| format!("{g:.2}")).unwrap_or_default(),
                r.ipc[slot],
                r.isolated_ipc[slot],
                r.kernel_reached(slot),
                r.nonqos_normalized(),
                r.insts_per_energy,
                r.preemption_saves,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::{CaseSpec, Policy};
    use qos_core::QuotaScheme;

    fn sample() -> CaseResult {
        CaseResult {
            spec: CaseSpec::new(
                &["sgemm", "lbm"],
                &[Some(0.7), None],
                Policy::Quota(QuotaScheme::Rollover),
                1_000,
            ),
            ipc: vec![700.0, 40.0],
            isolated_ipc: vec![1_000.0, 120.0],
            goal_ipc: vec![Some(700.0), None],
            insts_per_energy: 1.5,
            preemption_saves: 4,
            trace_hash: 0,
        }
    }

    #[test]
    fn one_row_per_kernel_plus_header() {
        let csv = to_csv(&[sample()]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("policy,"));
        assert!(lines[1].contains("Rollover"));
        assert!(lines[1].contains("sgemm+lbm"));
        assert!(lines[1].contains(",true,0.70,"));
        assert!(lines[2].contains(",lbm,1,false,,,"));
    }

    #[test]
    fn column_count_is_consistent() {
        let csv = to_csv(&[sample()]);
        let header_cols = CSV_HEADER.replace(char::is_whitespace, "").split(',').count();
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), header_cols, "row has wrong column count: {line}");
        }
    }

    #[test]
    fn empty_results_yield_header_only() {
        let csv = to_csv(&[]);
        assert_eq!(csv.lines().count(), 1);
    }
}
