//! Epoch timeline: watch the QoS manager converge, epoch by epoch.
//!
//! Wraps the manager in a [`fgqos::sim::Tracer`] and prints the per-epoch
//! IPC / residency / quota series for both kernels — the dynamics behind
//! Fig. 4's quota schemes and §3.6's TB adjustment.
//!
//! Run with: `cargo run --release --example epoch_timeline`

use fgqos::sim::Tracer;
use fgqos::{Gpu, GpuConfig, NullController, QosManager, QosSpec, QuotaScheme};

fn main() {
    let cycles = 150_000;
    let mut solo = Gpu::new(GpuConfig::paper_table1());
    let k = solo.launch(fgqos::workloads::by_name("tpacf").expect("bundled"));
    solo.run(cycles, &mut NullController);
    let goal = 0.65 * solo.stats().ipc(k);

    let mut gpu = Gpu::new(GpuConfig::paper_table1());
    let q = gpu.launch(fgqos::workloads::by_name("tpacf").expect("bundled"));
    let b = gpu.launch(fgqos::workloads::by_name("stencil").expect("bundled"));
    let manager = QosManager::new(QuotaScheme::Rollover)
        .with_kernel(q, QosSpec::qos(goal))
        .with_kernel(b, QosSpec::best_effort());
    let mut tracer = Tracer::new(manager);
    gpu.run(cycles, &mut tracer);

    println!("tpacf QoS goal: {goal:.1} IPC; stencil best-effort\n");
    println!(
        "{:>5} {:>10} {:>8} {:>10} {:>10} {:>8} {:>8}",
        "epoch", "qos IPC", "qos TBs", "qos quota", "be IPC", "be TBs", "saves"
    );
    for r in tracer.records() {
        let qs = &r.kernels[q.index()];
        let bs = &r.kernels[b.index()];
        println!(
            "{:>5} {:>10.1} {:>8} {:>10} {:>10.1} {:>8} {:>8}",
            r.epoch,
            qs.epoch_ipc,
            qs.hosted_tbs,
            qs.quota_total,
            bs.epoch_ipc,
            bs.hosted_tbs,
            r.preemption_saves
        );
    }
    let (manager, records) = tracer.into_parts();
    let reached = manager.history_ipc(q) >= goal;
    println!(
        "\nfinal: goal {} after {} epochs (tracked history {:.1})",
        if reached { "REACHED" } else { "MISSED" },
        records.len(),
        manager.history_ipc(q),
    );
}
