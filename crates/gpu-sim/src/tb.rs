//! Per-thread-block residency state.

use crate::types::{Cycle, KernelId, TbIndex};

/// Lifecycle phase of a resident thread block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TbPhase {
    /// Context is being loaded (fresh dispatch or resume after preemption);
    /// warps may not issue until the given cycle.
    Loading(Cycle),
    /// Normal execution.
    Active,
    /// Context is being saved for preemption; warps are frozen and the slot
    /// is released at the given cycle.
    Saving(Cycle),
}

/// A thread block resident on an SM.
#[derive(Debug, Clone)]
pub struct TbState {
    /// Owning kernel.
    pub kernel: KernelId,
    /// Grid-wide index of this TB.
    pub tb_index: TbIndex,
    /// Warp slot indices (into the SM's warp array) belonging to this TB.
    pub warp_slots: Vec<u16>,
    /// Number of warps that have retired.
    pub warps_done: u16,
    /// Number of warps currently parked at the active barrier.
    pub barrier_arrived: u16,
    /// Current lifecycle phase.
    pub phase: TbPhase,
}

impl TbState {
    /// Whether all warps of the TB have retired.
    pub fn finished(&self) -> bool {
        self.warps_done as usize == self.warp_slots.len()
    }

    /// Whether warps of this TB may issue at `now`.
    pub fn issuable(&self, now: Cycle) -> bool {
        match self.phase {
            TbPhase::Active => true,
            TbPhase::Loading(until) => now >= until,
            TbPhase::Saving(_) => false,
        }
    }

    /// The cycle at which an in-flight context transition (load or save)
    /// completes, if one is pending. `None` for TBs in normal execution.
    pub fn transition_done_at(&self) -> Option<Cycle> {
        match self.phase {
            TbPhase::Active => None,
            TbPhase::Loading(until) | TbPhase::Saving(until) => Some(until),
        }
    }
}

use crate::snap::Snap;

impl Snap for TbPhase {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            TbPhase::Loading(until) => {
                out.push(0);
                until.encode(out);
            }
            TbPhase::Active => out.push(1),
            TbPhase::Saving(until) => {
                out.push(2);
                until.encode(out);
            }
        }
    }
    fn decode(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        match u8::decode(r)? {
            0 => Ok(TbPhase::Loading(Cycle::decode(r)?)),
            1 => Ok(TbPhase::Active),
            2 => Ok(TbPhase::Saving(Cycle::decode(r)?)),
            _ => Err(crate::snap::SnapError::Invalid("TbPhase")),
        }
    }
}

crate::impl_snap_struct!(TbState {
    kernel,
    tb_index,
    warp_slots,
    warps_done,
    barrier_arrived,
    phase,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn tb(phase: TbPhase) -> TbState {
        TbState {
            kernel: KernelId::new(0),
            tb_index: TbIndex(3),
            warp_slots: vec![0, 1, 2, 3],
            warps_done: 0,
            barrier_arrived: 0,
            phase,
        }
    }

    #[test]
    fn finished_requires_all_warps() {
        let mut t = tb(TbPhase::Active);
        assert!(!t.finished());
        t.warps_done = 4;
        assert!(t.finished());
    }

    #[test]
    fn issuable_by_phase() {
        assert!(tb(TbPhase::Active).issuable(0));
        assert!(!tb(TbPhase::Loading(10)).issuable(9));
        assert!(tb(TbPhase::Loading(10)).issuable(10));
        assert!(!tb(TbPhase::Saving(10)).issuable(100));
    }
}
