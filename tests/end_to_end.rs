//! End-to-end integration tests: the paper's *directional* claims must hold
//! on small-scale runs of the full stack (workloads → simulator → QoS
//! manager → metrics).

use fgqos::{Gpu, GpuConfig, NullController, QosManager, QosSpec, QuotaScheme, SpartController};
use harness::cases::{CaseSpec, Policy};
use harness::metrics::qos_reach;
use harness::runner::{run_case, run_cases, IsolatedCache};

// 60k cycles (6 paper epochs) is the smallest budget at which every
// directional claim below still holds with margin; the long sweeps beyond
// this are `#[ignore]`d by default and run by CI's long-tests job
// (`cargo test -- --ignored`).
const CYCLES: u64 = 60_000;

fn isolated_ipc(name: &str) -> f64 {
    let mut gpu = Gpu::new(GpuConfig::paper_table1());
    let k = gpu.launch(workloads::by_name(name).expect("known"));
    gpu.run(CYCLES, &mut NullController);
    gpu.stats().ipc(k)
}

#[test]
fn quota_gating_holds_qos_kernel_near_goal_not_far_past_it() {
    let goal = 0.6 * isolated_ipc("mri-q");
    let mut gpu = Gpu::new(GpuConfig::paper_table1());
    let q = gpu.launch(workloads::by_name("mri-q").expect("known"));
    let b = gpu.launch(workloads::by_name("stencil").expect("known"));
    let mut mgr = QosManager::new(QuotaScheme::Rollover)
        .with_kernel(q, QosSpec::qos(goal))
        .with_kernel(b, QosSpec::best_effort());
    gpu.run(CYCLES, &mut mgr);
    let ipc = gpu.stats().ipc(q);
    assert!(ipc >= goal, "goal missed: {ipc} < {goal}");
    assert!(
        ipc <= goal * 1.15,
        "fine-grained control should not overshoot wildly: {ipc} vs goal {goal}"
    );
}

#[test]
fn spart_overshoots_more_than_rollover() {
    // Fig. 9's claim: Spart's SM-granular allocation overshoots the goal by
    // far more than quota gating does.
    let goal = 0.5 * isolated_ipc("tpacf");
    let overshoot = |use_spart: bool| {
        let mut gpu = Gpu::new(GpuConfig::paper_table1());
        let q = gpu.launch(workloads::by_name("tpacf").expect("known"));
        let b = gpu.launch(workloads::by_name("lbm").expect("known"));
        if use_spart {
            let mut c = SpartController::new()
                .with_kernel(q, QosSpec::qos(goal))
                .with_kernel(b, QosSpec::best_effort());
            gpu.run(CYCLES, &mut c);
        } else {
            let mut m = QosManager::new(QuotaScheme::Rollover)
                .with_kernel(q, QosSpec::qos(goal))
                .with_kernel(b, QosSpec::best_effort());
            gpu.run(CYCLES, &mut m);
        }
        gpu.stats().ipc(q) / goal
    };
    let spart = overshoot(true);
    let rollover = overshoot(false);
    assert!(
        spart > rollover,
        "Spart ({spart:.3}x goal) must overshoot more than Rollover ({rollover:.3}x goal)"
    );
}

#[test]
fn rollover_time_degrades_best_effort_throughput() {
    // Fig. 10/11: similar QoSreach, much worse non-QoS throughput.
    let goal = 0.7 * isolated_ipc("sad");
    let run = |scheme| {
        let mut gpu = Gpu::new(GpuConfig::paper_table1());
        let q = gpu.launch(workloads::by_name("sad").expect("known"));
        let b = gpu.launch(workloads::by_name("mri-q").expect("known"));
        let mut m = QosManager::new(scheme)
            .with_kernel(q, QosSpec::qos(goal))
            .with_kernel(b, QosSpec::best_effort());
        gpu.run(CYCLES, &mut m);
        (gpu.stats().ipc(q), gpu.stats().ipc(b))
    };
    let (q_roll, b_roll) = run(QuotaScheme::Rollover);
    let (q_time, b_time) = run(QuotaScheme::RolloverTime);
    assert!(q_roll >= goal * 0.95 && q_time >= goal * 0.95, "both reach the goal");
    assert!(
        b_roll > b_time,
        "overlapped execution ({b_roll:.1}) must beat time multiplexing ({b_time:.1})"
    );
}

#[test]
#[ignore = "12-case sweep, ~2 min serial; CI's long-tests job runs it (cargo test -- --ignored)"]
fn rollover_reaches_goals_at_least_as_often_as_naive() {
    let iso = IsolatedCache::new();
    let mut specs = Vec::new();
    for policy in [Policy::Quota(QuotaScheme::Naive), Policy::Quota(QuotaScheme::Rollover)] {
        for (q, b) in [("sgemm", "spmv"), ("mri-q", "lbm"), ("stencil", "cutcp")] {
            for frac in [0.6, 0.85] {
                specs.push(CaseSpec::new(&[q, b], &[Some(frac), None], policy, 80_000));
            }
        }
    }
    let results: Vec<_> =
        run_cases(&specs, &iso).into_iter().map(|r| r.expect("healthy cases")).collect();
    let reach = |p: Policy| qos_reach(results.iter().filter(|r| r.spec.policy == p));
    let naive = reach(Policy::Quota(QuotaScheme::Naive));
    let rollover = reach(Policy::Quota(QuotaScheme::Rollover));
    assert!(rollover >= naive, "Rollover QoSreach ({rollover}) must be >= Naive ({naive})");
}

#[test]
fn audit_mode_stays_clean_on_a_managed_pair() {
    // The invariant audit (DESIGN.md §10) must never fire on a healthy
    // quota-managed run: occupancy, slot accounting and the quota ledger
    // all stay conserved across epochs of gating and preemption.
    let goal = 0.6 * isolated_ipc("sgemm");
    let mut cfg = GpuConfig::paper_table1();
    cfg.health.audit = true;
    cfg.health.watchdog_window = 2 * cfg.epoch_cycles;
    let mut gpu = Gpu::new(cfg);
    let q = gpu.launch(workloads::by_name("sgemm").expect("known"));
    let b = gpu.launch(workloads::by_name("spmv").expect("known"));
    let mut mgr = QosManager::new(QuotaScheme::Rollover)
        .with_kernel(q, QosSpec::qos(goal))
        .with_kernel(b, QosSpec::best_effort());
    gpu.try_run(CYCLES, &mut mgr).expect("healthy managed run must pass every audit");
    assert!(gpu.stats().ipc(q) > 0.0);
}

#[test]
fn memory_pair_contends_for_bandwidth() {
    // Fig. 7's M+M story requires real bandwidth contention: an unmanaged
    // co-run of two memory kernels must slow both below isolation.
    let iso_lbm = isolated_ipc("lbm");
    let iso_spmv = isolated_ipc("spmv");
    let mut gpu = Gpu::new(GpuConfig::paper_table1());
    let a = gpu.launch(workloads::by_name("lbm").expect("known"));
    let b = gpu.launch(workloads::by_name("spmv").expect("known"));
    gpu.set_sharing_mode(fgqos::sim::SharingMode::Smk);
    for sm in gpu.sm_ids().collect::<Vec<_>>() {
        gpu.set_tb_target(sm, a, 5);
        gpu.set_tb_target(sm, b, 5);
    }
    gpu.run(CYCLES, &mut NullController);
    let (ipc_a, ipc_b) = (gpu.stats().ipc(a), gpu.stats().ipc(b));
    assert!(ipc_a < iso_lbm, "lbm shared {ipc_a} must trail isolated {iso_lbm}");
    assert!(ipc_b < iso_spmv, "spmv shared {ipc_b} must trail isolated {iso_spmv}");
}

#[test]
fn two_qos_kernels_can_both_be_held_at_goals() {
    // The trio scenario of Fig. 6c at a modest goal pair.
    let iso = IsolatedCache::new();
    let spec = CaseSpec::new(
        &["mri-q", "sad", "lbm"],
        &[Some(0.35), Some(0.35), None],
        Policy::Quota(QuotaScheme::Rollover),
        80_000,
    );
    let r = run_case(&spec, &iso).expect("healthy case");
    assert!(
        r.success(),
        "both 35% goals should be reachable: ipc {:?} goals {:?}",
        r.ipc,
        r.goal_ipc
    );
    assert!(r.ipc[2] > 0.0, "the best-effort kernel must not be starved to zero");
}

#[test]
fn preemption_cost_is_modest() {
    // §4.8: the partial-context-switch overhead is small because transfers
    // overlap with other TBs' execution.
    let iso = IsolatedCache::new();
    let mut spec = CaseSpec::new(
        &["sgemm", "stencil"],
        &[Some(0.6), None],
        Policy::Quota(QuotaScheme::Rollover),
        60_000,
    );
    let real = run_case(&spec, &iso).expect("healthy case");
    spec.ablations.free_preemption = true;
    let free = run_case(&spec, &iso).expect("healthy case");
    let degradation = 1.0 - real.ipc[1] / free.ipc[1].max(1e-9);
    assert!(
        degradation < 0.25,
        "preemption overhead on the best-effort kernel should be modest, got {:.1}%",
        degradation * 100.0
    );
}
