//! Wall-clock benchmark of the fleet serving layer (DESIGN.md §15–§16).
//!
//! Runs each fleet scenario to completion twice with the same seed,
//! verifies the two reports are byte-identical (determinism is the fleet's
//! load-bearing invariant — checkpoints, resumes, and the chaos soak all
//! ride on it), and writes the timings plus serving counters to
//! `BENCH_fleet.json` (override the path with the first CLI argument).
//! The long-horizon leg is the diurnal scenario: 1 500 ticks of
//! triangle-wave load with a device loss and a planned drain mid-run, so
//! the timing covers checkpoint refreshes, migrations, and working-set
//! admission — the full serving hot path, not just device stepping.
//! CI's bench-smoke job uploads the file and fails if any scenario's
//! wall-clock regresses more than 5% against the committed baseline at
//! the repo root.

use std::time::Instant;

use fleet::{Fleet, RequestState};

/// Timed repetitions per scenario; the minimum is reported.
const REPS: u32 = 3;

/// Every registered scenario is timed; `diurnal` is the long-horizon
/// throughput leg called out in EXPERIMENTS.md.
const SEED: u64 = fleet::scenarios::DEFAULT_SEED;

struct Outcome {
    report: String,
    ticks: u64,
    cycles: u64,
    arrived: usize,
    done: usize,
    migrated: u64,
    lost: usize,
}

fn run_scenario(name: &str) -> Outcome {
    let cfg = fleet::scenarios::by_name(name, SEED).expect("registered scenario");
    let mut f = Fleet::new(cfg);
    f.run_to_completion();
    Outcome {
        report: f.report(name),
        ticks: f.ticks(),
        cycles: f.cycle(),
        arrived: f.requests().len(),
        done: f.requests().iter().filter(|r| matches!(r.state, RequestState::Done { .. })).count(),
        migrated: f.migrated_requests(),
        lost: f.lost_requests(),
    }
}

fn time_min(name: &str) -> (f64, Outcome) {
    let mut best = f64::INFINITY;
    let mut outcome = None;
    for _ in 0..REPS {
        let t = Instant::now();
        let o = run_scenario(name);
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        outcome = Some(o);
    }
    (best, outcome.expect("at least one rep"))
}

fn main() {
    // cargo bench forwards harness flags like `--bench`; skip them.
    let out_path = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_else(|| "BENCH_fleet.json".to_string());

    let mut rows = Vec::new();
    for name in fleet::scenarios::SCENARIOS {
        let (wall_ms, a) = time_min(name);
        let b = run_scenario(name);
        let identical = a.report == b.report;
        assert!(identical, "{name}: same seed produced a different report");
        assert_eq!(a.lost, 0, "{name}: a benchmark run must not lose requests");
        let ticks_per_s = a.ticks as f64 / (wall_ms / 1e3);
        println!(
            "{name:<12} {wall_ms:>8.1} ms   {:>5} ticks ({ticks_per_s:>7.0} ticks/s)   \
             {}/{} done   {} migrated",
            a.ticks, a.done, a.arrived, a.migrated
        );
        rows.push(format!(
            "    {{\"name\": \"{name}\", \"wall_ms\": {wall_ms:.3}, \"ticks\": {}, \
             \"device_cycles\": {}, \"ticks_per_s\": {ticks_per_s:.1}, \"arrived\": {}, \
             \"done\": {}, \"migrated\": {}, \"lost\": {}, \"identical\": {identical}}}",
            a.ticks, a.cycles, a.arrived, a.done, a.migrated, a.lost
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"fleet\",\n  \"seed\": {SEED},\n  \"reps\": {REPS},\n  \
         \"scenarios\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out_path, json).expect("benchmark results written");
    println!("wrote {out_path}");
}
