//! Offline stand-in for the `serde` crate.
//!
//! This build environment has no network access and no vendored registry, so
//! the real `serde` cannot be downloaded. The workspace only uses serde for
//! `#[derive(Serialize, Deserialize)]` markers on config/result types — no
//! code path actually serializes anything (export goes through a hand-rolled
//! CSV writer). This stub provides the two trait names with blanket
//! implementations so the derives are zero-cost no-ops; swapping the real
//! crate back in later is a one-line `Cargo.toml` change.

/// Marker stand-in for `serde::Serialize`. Blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`. Blanket-implemented for all types.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

/// Mirror of `serde::de` far enough for `use serde::de::DeserializeOwned`.
pub mod de {
    pub use crate::DeserializeOwned;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
