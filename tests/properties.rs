//! Property-based tests over the core data structures and invariants.

use fgqos::sim::cache::{AccessOutcome, Cache};
use fgqos::sim::dram::ServiceQueue;
use fgqos::{Gpu, GpuConfig, KernelDesc, NullController};
use gpu_sim::{AccessPattern, Op};
use proptest::prelude::*;
use qos_core::scheme::{alpha, distribute_quota, epoch_quota};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ------------------------------------------------------------------
    // Cache invariants
    // ------------------------------------------------------------------

    /// The most recently accessed line is always resident afterwards.
    #[test]
    fn cache_access_makes_line_resident(addrs in prop::collection::vec(0u64..1 << 24, 1..200)) {
        let mut c = Cache::new(4 * 1024, 4, 32);
        for &a in &addrs {
            c.access(a);
            prop_assert!(c.probe(a), "line {a:#x} must be resident right after access");
        }
    }

    /// hits + misses == number of accesses, and the hit rate is in [0, 1].
    #[test]
    fn cache_stats_conserve_accesses(addrs in prop::collection::vec(0u64..1 << 16, 0..300)) {
        let mut c = Cache::new(2 * 1024, 2, 32);
        for &a in &addrs {
            c.access(a);
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses(), addrs.len() as u64);
        prop_assert!((0.0..=1.0).contains(&s.hit_rate()));
    }

    /// A working set no larger than one way-set-worth of distinct lines per
    /// set never misses after the first pass (LRU guarantees inclusion).
    #[test]
    fn cache_small_working_set_stays_resident(seed in 0u64..1000) {
        let mut c = Cache::new(1024, 2, 32); // 16 sets x 2 ways? no: 16 sets
        // Choose distinct lines all mapping to different sets (stride = line).
        let lines: Vec<u64> = (0..16u64).map(|i| (seed % 7 + 1) * 32 * 1024 + i * 32).collect();
        for &a in &lines {
            c.access(a);
        }
        for &a in &lines {
            prop_assert_eq!(c.access(a), AccessOutcome::Hit);
        }
    }

    // ------------------------------------------------------------------
    // Service queue invariants
    // ------------------------------------------------------------------

    /// Completions are monotonically non-decreasing for ordered arrivals and
    /// never precede arrival + service time.
    #[test]
    fn queue_completions_are_causal(
        arrivals in prop::collection::vec(0u64..10_000, 1..100),
        service in 1u32..16,
    ) {
        let mut sorted = arrivals.clone();
        sorted.sort_unstable();
        let mut q = ServiceQueue::new(service, 100_000);
        let mut last_done = 0;
        for &t in &sorted {
            let done = q.serve(t);
            prop_assert!(done >= t + u64::from(service));
            prop_assert!(done >= last_done, "completions must be ordered");
            last_done = done;
        }
        prop_assert_eq!(q.served(), sorted.len() as u64);
    }

    // ------------------------------------------------------------------
    // Quota arithmetic
    // ------------------------------------------------------------------

    /// Distribution conserves the quota exactly and is zero where no TBs are.
    #[test]
    fn quota_distribution_conserves(
        quota in 0u64..10_000_000,
        tbs in prop::collection::vec(0u32..64, 1..64),
    ) {
        let parts = distribute_quota(quota, &tbs);
        prop_assert_eq!(parts.len(), tbs.len());
        let total_tbs: u64 = tbs.iter().map(|&t| u64::from(t)).sum();
        if total_tbs == 0 {
            prop_assert!(parts.iter().all(|&p| p == 0));
        } else {
            prop_assert_eq!(parts.iter().sum::<u64>(), quota, "no quota created or lost");
            for (part, &t) in parts.iter().zip(&tbs) {
                if t == 0 {
                    prop_assert_eq!(*part, 0, "no quota for SMs hosting nothing");
                }
            }
        }
    }

    /// α is always in [1, cap] and scales the quota monotonically.
    #[test]
    fn alpha_bounds_and_monotonicity(
        goal in 1.0f64..3000.0,
        history in 0.0f64..3000.0,
        cap in 1.0f64..16.0,
    ) {
        let a = alpha(goal, history, cap);
        prop_assert!(a >= 1.0 && a <= cap, "alpha {a} out of [1, {cap}]");
        let q1 = epoch_quota(goal, 1.0, 10_000);
        let q2 = epoch_quota(goal, a, 10_000);
        prop_assert!(q2 >= q1, "history adjustment never shrinks the quota");
    }

    // ------------------------------------------------------------------
    // Kernel-description arithmetic
    // ------------------------------------------------------------------

    /// Instruction accounting is consistent across aggregation levels.
    #[test]
    fn kernel_instruction_accounting(
        warps_per_tb in 1u32..8,
        iters in 1u32..64,
        alu_repeat in 1u16..32,
    ) {
        let k = KernelDesc::builder("p")
            .threads_per_tb(warps_per_tb * 32)
            .iterations(iters)
            .body(vec![Op::alu(2, alu_repeat), Op::mem_load(AccessPattern::stream())])
            .build();
        let per_warp = (u64::from(alu_repeat) * 32 + 32) * u64::from(iters);
        prop_assert_eq!(k.thread_insts_per_warp(), per_warp);
        prop_assert_eq!(k.thread_insts_per_tb(), per_warp * u64::from(warps_per_tb));
    }

    // ------------------------------------------------------------------
    // Whole-simulator fuzz: random small kernels never wedge the machine
    // ------------------------------------------------------------------

    /// Any well-formed kernel makes forward progress, replays
    /// deterministically, and retires the exact per-TB instruction count.
    #[test]
    fn simulator_runs_arbitrary_kernels(
        alu_lat in 1u16..12,
        alu_repeat in 1u16..16,
        trans in 1u8..16,
        lanes in 1u8..32,
        use_barrier in any::<bool>(),
        iters in 1u32..8,
        seed in 0u64..1000,
    ) {
        let mut body = vec![
            Op::alu_divergent(alu_lat, alu_repeat, lanes),
            Op::mem_load(AccessPattern::random(1 << 20, trans)),
        ];
        if use_barrier {
            body.push(Op::Bar);
            body.push(Op::alu(1, 1));
        }
        let kernel = KernelDesc::builder("fuzz")
            .threads_per_tb(64)
            .regs_per_thread(16)
            .grid_tbs(4)
            .iterations(iters)
            .seed(seed)
            .body(body)
            .build();

        let run = || {
            let mut gpu = Gpu::new(GpuConfig::tiny());
            let k = gpu.launch(kernel.clone());
            gpu.run(30_000, &mut NullController);
            let s = gpu.stats();
            (s.kernel(k).thread_insts, s.kernel(k).tbs_completed)
        };
        let (insts, tbs) = run();
        prop_assert!(insts > 0, "kernel must make progress");
        prop_assert_eq!(run(), (insts, tbs), "replay must be deterministic");
        if tbs > 0 {
            // Completed TBs retire exactly the statically known instruction
            // count; the remainder belongs to still-resident TBs.
            prop_assert!(insts >= tbs * kernel.thread_insts_per_tb());
        }
    }
}

// ----------------------------------------------------------------------
// Differential oracle: fast-forward vs. naive stepping
// ----------------------------------------------------------------------

/// Everything observable about one simulation run. Two runs of the same
/// scenario must compare equal field-for-field regardless of whether the
/// idle-cycle fast-forward or the naive per-cycle loop executed them.
#[derive(Debug, Clone, PartialEq)]
struct RunSummary {
    outcome: Result<(), fgqos::sim::SimError>,
    cycle: u64,
    kernels: Vec<fgqos::sim::KernelStats>,
    records: Vec<fgqos::sim::trace::EpochRecord>,
    records_hash: u64,
    per_sm_busy_issued: Vec<(u64, u64)>,
    per_sm_l1: Vec<(u64, u64)>,
    l2: (u64, u64),
    preempt: fgqos::sim::preempt::PreemptStats,
    insts_per_energy_bits: u64,
    traffic: Vec<[u64; 4]>,
    dram_wait_bits: u64,
    // Observability surface (DESIGN.md §12): both runs fly with the recorder
    // on, so the merged event stream and every registry counter — including
    // the replayed quota-blocked cycles — must match event-for-event.
    events: Vec<fgqos::sim::TraceEvent>,
    counters: Vec<fgqos::sim::CounterEntry>,
}

#[allow(clippy::too_many_arguments)]
fn run_differential_case(
    fast_forward: bool,
    intra_parallel: bool,
    descs: &[KernelDesc],
    ctrl_sel: usize,
    goal: f64,
    watchdog: bool,
    audit: bool,
    fault: Option<(u64, fgqos::sim::FaultKind)>,
    cycles: u64,
) -> RunSummary {
    use fgqos::{Controller, QosManager, QosSpec, QuotaScheme, SpartController};

    let mut cfg = GpuConfig::tiny();
    cfg.fast_forward = fast_forward;
    cfg.intra_parallel = intra_parallel;
    cfg.trace.level = fgqos::sim::TraceLevel::Events;
    cfg.health.audit = audit;
    cfg.health.watchdog_window = if watchdog { 2 * cfg.epoch_cycles } else { 0 };
    if let Some((at, kind)) = fault {
        cfg.faults = fgqos::sim::FaultPlan::one(at, kind);
    }
    let mut gpu = Gpu::new(cfg);
    let kids: Vec<_> = descs.iter().map(|d| gpu.launch(d.clone())).collect();
    let spec = |slot: usize| {
        if slot == 0 {
            QosSpec::qos(goal)
        } else if slot == 1 && kids.len() == 3 {
            QosSpec::qos(goal * 0.5)
        } else {
            QosSpec::best_effort()
        }
    };
    let ctrl: Box<dyn Controller> = match ctrl_sel {
        0 => Box::new(NullController),
        5 => {
            let mut c = SpartController::new();
            for (slot, &k) in kids.iter().enumerate() {
                c = c.with_kernel(k, spec(slot));
            }
            Box::new(c)
        }
        sel => {
            let scheme = match sel {
                1 => QuotaScheme::Naive,
                2 => QuotaScheme::Rollover,
                3 => QuotaScheme::RolloverTime,
                _ => QuotaScheme::Elastic,
            };
            let mut m = QosManager::new(scheme);
            for (slot, &k) in kids.iter().enumerate() {
                m = m.with_kernel(k, spec(slot));
            }
            Box::new(m)
        }
    };
    let mut tracer = fgqos::sim::Tracer::new(ctrl);
    let outcome = gpu.try_run(cycles, &mut tracer);
    let stats = gpu.stats();
    let traffic = gpu.mem().traffic();
    RunSummary {
        outcome,
        cycle: gpu.cycle(),
        kernels: kids.iter().map(|&k| *stats.kernel(k)).collect(),
        records_hash: fgqos::sim::trace::records_hash(tracer.records()),
        records: tracer.records().to_vec(),
        per_sm_busy_issued: gpu
            .sms()
            .iter()
            .map(|sm| (sm.busy_cycles(), sm.issued_total()))
            .collect(),
        per_sm_l1: gpu.sms().iter().map(|sm| (sm.l1_stats().hits, sm.l1_stats().misses)).collect(),
        l2: (gpu.mem().l2_stats().hits, gpu.mem().l2_stats().misses),
        preempt: gpu.preempt_stats(),
        insts_per_energy_bits: fgqos::sim::power::insts_per_energy(&gpu).to_bits(),
        traffic: kids
            .iter()
            .map(|&k| {
                let i = k.index();
                [
                    traffic.l1_accesses[i],
                    traffic.l2_accesses[i],
                    traffic.dram_accesses[i],
                    traffic.context_transactions[i],
                ]
            })
            .collect(),
        dram_wait_bits: gpu.mem().mean_dram_wait().to_bits(),
        events: gpu.recent_events(usize::MAX),
        // ff_skipped_cycles counts how many cycles the fast-forward jumped
        // over — stepping-mode metadata that differs between the two runs by
        // construction. Every other counter must match bit-exactly.
        counters: gpu
            .counter_registry()
            .into_iter()
            .filter(|e| e.name != "ff_skipped_cycles")
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The bit-identity contract, both ways at once: for random kernel
    /// mixes, QoS goals, schemes, health settings and injected faults, a
    /// fast-forward run and a naive per-cycle run produce identical
    /// `Stats`, `Tracer` epoch records, cache/DRAM traffic, preemption
    /// counts and health outcomes (including watchdog reports and audit
    /// verdicts) — and a third run with `intra_parallel` stepping (its own
    /// fast-forward setting drawn independently, so the parallel × ff
    /// matrix is covered) matches them bit-for-bit too, full event stream
    /// and counter registry included.
    #[test]
    fn fast_forward_matches_naive_stepping(
        nk in 1usize..4,
        alu_lat in 1u16..12,
        alu_repeat in 1u16..16,
        trans in 1u8..16,
        lanes in 1u8..32,
        use_barrier in any::<bool>(),
        iters in 1u32..6,
        seed in 0u64..10_000,
        cycles in 3_000u64..10_000,
        ctrl_sel in 0usize..6,
        goal_frac in 0.1f64..1.5,
        watchdog in any::<bool>(),
        audit in any::<bool>(),
        fault_sel in 0usize..4,
        fault_cycle in 500u64..6_000,
        par_ff in any::<bool>(),
    ) {
        let descs: Vec<KernelDesc> = (0..nk)
            .map(|k| {
                let k16 = k as u16;
                let mut body = vec![
                    Op::alu_divergent(alu_lat + k16, alu_repeat, lanes),
                    Op::mem_load(AccessPattern::random(1 << (18 + k), trans)),
                ];
                if use_barrier && k == 0 {
                    body.push(Op::Bar);
                    body.push(Op::alu(1, 1));
                }
                KernelDesc::builder(format!("diff{k}"))
                    .threads_per_tb(64)
                    .regs_per_thread(16)
                    .grid_tbs(4)
                    .iterations(iters + k as u32)
                    .seed(seed.wrapping_mul(k as u64 + 1))
                    .body(body)
                    .build()
            })
            .collect();
        let fault = match fault_sel {
            1 => Some((fault_cycle, fgqos::sim::FaultKind::StarveQuota)),
            2 => Some((fault_cycle, fgqos::sim::FaultKind::FreezeScheduler { sm: 0 })),
            3 => Some((fault_cycle, fgqos::sim::FaultKind::StallPreemption)),
            _ => None,
        };
        let goal = goal_frac * 100.0;
        let fast = run_differential_case(
            true, false, &descs, ctrl_sel, goal, watchdog, audit, fault, cycles,
        );
        let naive = run_differential_case(
            false, false, &descs, ctrl_sel, goal, watchdog, audit, fault, cycles,
        );
        prop_assert_eq!(&fast, &naive);
        let parallel = run_differential_case(
            par_ff, true, &descs, ctrl_sel, goal, watchdog, audit, fault, cycles,
        );
        prop_assert_eq!(&parallel, &naive);
    }
}

/// Cross-mode snapshot interchange: serial and `intra_parallel` stepping
/// reach byte-identical machine state at epoch boundaries — the blobs,
/// config fingerprint included, compare equal because `intra_parallel` is a
/// stepping strategy and not part of the machine — and a blob taken under
/// one mode restores into a machine stepping under the other and continues
/// exactly as an uninterrupted run does.
#[test]
fn parallel_and_serial_snapshots_interchange() {
    use fgqos::sim::snap::{decode_from_slice, encode_to_vec};
    use fgqos::{QosManager, QosSpec, QuotaScheme};

    fn state_digest(
        gpu: &Gpu,
    ) -> (
        u64,
        Vec<fgqos::sim::KernelStats>,
        Vec<fgqos::sim::TraceEvent>,
        Vec<fgqos::sim::CounterEntry>,
    ) {
        let stats = gpu.stats();
        (
            gpu.cycle(),
            gpu.kernel_ids().map(|k| *stats.kernel(k)).collect(),
            gpu.recent_events(usize::MAX),
            gpu.counter_registry(),
        )
    }

    let machine = |intra_parallel: bool| {
        let mut cfg = GpuConfig::tiny();
        cfg.intra_parallel = intra_parallel;
        cfg.trace.level = fgqos::sim::TraceLevel::Events;
        let mut gpu = Gpu::new(cfg);
        let q = gpu.launch(workloads::by_name("sgemm").expect("known"));
        let b = gpu.launch(workloads::by_name("lbm").expect("known"));
        let ctrl = QosManager::new(QuotaScheme::Rollover)
            .with_kernel(q, QosSpec::qos(200.0))
            .with_kernel(b, QosSpec::best_effort());
        (gpu, ctrl)
    };
    let half = 4 * GpuConfig::tiny().epoch_cycles;

    let (mut serial, mut sctrl) = machine(false);
    serial.run(half, &mut sctrl);
    let sblob = serial.snapshot().expect("epoch-aligned");
    let ctrl_bytes = encode_to_vec(&sctrl);

    let (mut par, mut pctrl) = machine(true);
    par.run(half, &mut pctrl);
    let pblob = par.snapshot().expect("epoch-aligned");
    assert_eq!(sblob.to_bytes(), pblob.to_bytes(), "cross-mode snapshot blobs differ");
    assert_eq!(ctrl_bytes, encode_to_vec(&pctrl), "controllers diverged across modes");

    // Reference: the serial machine never stops.
    serial.run(half, &mut sctrl);
    let reference = state_digest(&serial);

    // Swap the blobs across modes and continue each restored machine under a
    // round-tripped controller: both must land exactly on the reference.
    for (blob, intra_parallel) in [(&pblob, false), (&sblob, true)] {
        let (mut gpu, _) = machine(intra_parallel);
        gpu.restore(blob).expect("cross-mode restore");
        let mut ctrl: QosManager = decode_from_slice(&ctrl_bytes).expect("controller round-trips");
        gpu.run(half, &mut ctrl);
        assert_eq!(
            state_digest(&gpu),
            reference,
            "restored {}-stepping continuation diverged",
            if intra_parallel { "parallel" } else { "serial" },
        );
    }
}

#[test]
fn simulator_invariants_hold_under_qos_management() {
    // A controller that checks occupancy invariants at every epoch while the
    // QoS manager reshuffles TBs underneath it.
    use fgqos::{Controller, QosManager, QosSpec, QuotaScheme};

    struct Checked {
        inner: QosManager,
    }
    impl Controller for Checked {
        fn on_epoch(&mut self, gpu: &mut Gpu, epoch: u64) {
            self.inner.on_epoch(gpu, epoch);
            let max_threads = gpu.config().sm.max_threads;
            for sm in gpu.sms() {
                assert!(sm.used_threads() <= max_threads, "thread occupancy exceeded");
                assert!(sm.free_threads() <= max_threads);
            }
        }
    }

    let mut gpu = Gpu::new(GpuConfig::paper_table1());
    let q = gpu.launch(workloads::by_name("sgemm").expect("known"));
    let b = gpu.launch(workloads::by_name("lbm").expect("known"));
    let inner = QosManager::new(QuotaScheme::Rollover)
        .with_kernel(q, QosSpec::qos(900.0))
        .with_kernel(b, QosSpec::best_effort());
    gpu.run(60_000, &mut Checked { inner });
    assert!(gpu.stats().ipc(q) > 0.0);
}
