//! Named, fully-deterministic fleet scenarios.
//!
//! Each scenario is a complete [`FleetConfig`] — device classes, tenants,
//! policy knobs, fault schedule, planned drains — so `repro fleet <name>`
//! needs nothing but a name and an optional seed override. The constants
//! below are calibrated against the tiny device configuration: one 8-TB
//! request kernel completes well inside 20k cycles solo, and inside ~3×
//! that when sharing a device with three neighbours under SMK.

use gpu_sim::FaultKind;
use qos_core::{SloTarget, TenantClass};
use workloads::arrival::ArrivalModel;

use crate::config::{
    DeviceClass, FleetConfig, FleetFault, MigrationConfig, Placement, PlannedDrain, TenantSpec,
};

/// Default master seed for scenarios (overridable on the CLI).
pub const DEFAULT_SEED: u64 = 0x000F_1EE7_CAFE;

/// Scenario names, in presentation order.
pub const SCENARIOS: [&str; 5] = ["steady", "overload", "chaos", "migration", "diurnal"];

/// Builds the named scenario, or `None` for an unknown name.
pub fn by_name(name: &str, seed: u64) -> Option<FleetConfig> {
    match name {
        "steady" => Some(steady(seed)),
        "overload" => Some(overload(seed)),
        "chaos" => Some(chaos(seed)),
        "migration" => Some(migration(seed)),
        "diurnal" => Some(diurnal(seed)),
        _ => None,
    }
}

fn base(seed: u64) -> FleetConfig {
    FleetConfig {
        classes: vec![DeviceClass::small(2)],
        placement: Placement::Spread,
        migration: MigrationConfig::default(),
        seed,
        epoch_cycles: 1_000,
        tick_cycles: 4_000,
        timeout_cycles: 60_000,
        max_retries: 3,
        backoff_base: 2_000,
        est_service_cycles: 20_000,
        shed_enter_permille: 900,
        shed_exit_permille: 500,
        max_ticks: 600,
        tenants: Vec::new(),
        faults: Vec::new(),
        drains: Vec::new(),
    }
}

fn guaranteed(deadline: u64, floor_ppm: u32) -> TenantClass {
    TenantClass::guaranteed(SloTarget::new(deadline, floor_ppm))
}

/// Two healthy devices, light load, no faults: every request should
/// complete with headroom. The baseline the fault scenarios are read
/// against.
pub fn steady(seed: u64) -> FleetConfig {
    let mut cfg = base(seed);
    cfg.tenants = vec![
        TenantSpec {
            name: "latency".into(),
            class: guaranteed(120_000, 900_000),
            arrival: ArrivalModel::Open { mean_gap: 8_000 },
            requests: 12,
            grid_tbs: 8,
            mem_bytes: 64 << 20,
        },
        TenantSpec {
            name: "batch".into(),
            class: TenantClass::best_effort(),
            arrival: ArrivalModel::Open { mean_gap: 6_000 },
            requests: 12,
            grid_tbs: 8,
            mem_bytes: 64 << 20,
        },
    ];
    cfg
}

/// One device, a guaranteed closed-loop tenant, and a best-effort open
/// tenant arriving far faster than the device can drain: admission control
/// and load shedding must sacrifice best-effort work to keep the guarantee.
pub fn overload(seed: u64) -> FleetConfig {
    let mut cfg = base(seed);
    cfg.classes = vec![DeviceClass::small(1)];
    cfg.placement = Placement::Binpack;
    cfg.tenants = vec![
        TenantSpec {
            name: "latency".into(),
            class: guaranteed(120_000, 850_000),
            arrival: ArrivalModel::Closed { think: 10_000, population: 2 },
            requests: 10,
            grid_tbs: 8,
            mem_bytes: 64 << 20,
        },
        TenantSpec {
            name: "flood".into(),
            class: TenantClass::best_effort(),
            arrival: ArrivalModel::Open { mean_gap: 1_000 },
            requests: 60,
            grid_tbs: 8,
            mem_bytes: 64 << 20,
        },
    ];
    cfg
}

/// The chaos soak: four devices, three tenants, and a fault schedule that
/// kills one device outright and wedges another mid-run. In-flight batches
/// on the failed devices migrate to the two survivors from their last
/// checkpoints — every guaranteed tenant still meets its floor, every
/// request ends completed or explicitly shed.
pub fn chaos(seed: u64) -> FleetConfig {
    let mut cfg = base(seed);
    cfg.classes = vec![DeviceClass::small(4)];
    cfg.tenants = vec![
        TenantSpec {
            name: "latency".into(),
            class: guaranteed(200_000, 850_000),
            arrival: ArrivalModel::Open { mean_gap: 8_000 },
            requests: 15,
            grid_tbs: 8,
            mem_bytes: 64 << 20,
        },
        TenantSpec {
            name: "interactive".into(),
            class: guaranteed(200_000, 850_000),
            arrival: ArrivalModel::Closed { think: 8_000, population: 2 },
            requests: 12,
            grid_tbs: 8,
            mem_bytes: 64 << 20,
        },
        TenantSpec {
            name: "batch".into(),
            class: TenantClass::best_effort(),
            arrival: ArrivalModel::Open { mean_gap: 4_000 },
            requests: 20,
            grid_tbs: 8,
            mem_bytes: 64 << 20,
        },
    ];
    cfg.faults = vec![
        FleetFault { at_cycle: 30_000, device: 1, kind: FaultKind::DeviceLoss },
        FleetFault { at_cycle: 50_000, device: 2, kind: FaultKind::DeviceWedge },
    ];
    cfg
}

/// The migration storm: a heterogeneous fleet (six small + two big devices)
/// takes three same-tick failures inside the small class plus a planned
/// drain of a big device. Small-class blobs may only land on small spares
/// and big-class blobs on the remaining big device, so the storm exercises
/// compatibility classes, the pending-migration queue under contention, and
/// patience fallback — while every guaranteed SLO still holds and
/// `lost_requests()` stays zero.
pub fn migration(seed: u64) -> FleetConfig {
    let mut cfg = base(seed);
    cfg.classes = vec![DeviceClass::small(6), DeviceClass::big(2)];
    cfg.placement = Placement::LeastLoaded;
    cfg.migration =
        MigrationConfig { enabled: true, checkpoint_every_ticks: 1, patience_ticks: 12 };
    cfg.timeout_cycles = 120_000;
    cfg.max_ticks = 900;
    cfg.tenants = vec![
        TenantSpec {
            name: "latency".into(),
            class: guaranteed(300_000, 850_000),
            arrival: ArrivalModel::Open { mean_gap: 6_000 },
            requests: 20,
            grid_tbs: 8,
            mem_bytes: 64 << 20,
        },
        TenantSpec {
            name: "interactive".into(),
            class: guaranteed(300_000, 850_000),
            arrival: ArrivalModel::Closed { think: 6_000, population: 3 },
            requests: 15,
            grid_tbs: 8,
            mem_bytes: 64 << 20,
        },
        TenantSpec {
            name: "batch".into(),
            class: TenantClass::best_effort(),
            arrival: ArrivalModel::Open { mean_gap: 3_000 },
            requests: 30,
            grid_tbs: 8,
            mem_bytes: 128 << 20,
        },
    ];
    // Three small devices die in the same tick window; a big device drains
    // for maintenance shortly after. Devices 6 and 7 are the big class.
    cfg.faults = vec![
        FleetFault { at_cycle: 30_000, device: 0, kind: FaultKind::DeviceLoss },
        FleetFault { at_cycle: 30_000, device: 1, kind: FaultKind::DeviceLoss },
        FleetFault { at_cycle: 30_000, device: 2, kind: FaultKind::DeviceWedge },
    ];
    cfg.drains = vec![PlannedDrain { at_cycle: 60_000, device: 6 }];
    cfg
}

/// The long-horizon diurnal soak: arrival rate swings ±60% around its mean
/// over a 500k-cycle "day" while the fleet rides a planned drain and a
/// device loss across the peak. Exercises working-set admission (the EWMA
/// converges over hundreds of completions), migration under a slowly
/// breathing queue, and the throughput leg of the benchmark suite.
pub fn diurnal(seed: u64) -> FleetConfig {
    let mut cfg = base(seed);
    cfg.classes = vec![DeviceClass::small(2), DeviceClass::big(1)];
    cfg.placement = Placement::LeastLoaded;
    cfg.migration =
        MigrationConfig { enabled: true, checkpoint_every_ticks: 2, patience_ticks: 12 };
    cfg.timeout_cycles = 120_000;
    cfg.max_ticks = 1_500;
    cfg.tenants = vec![
        TenantSpec {
            name: "latency".into(),
            class: guaranteed(400_000, 850_000),
            arrival: ArrivalModel::Diurnal {
                mean_gap: 12_000,
                period: 500_000,
                swing_permille: 600,
            },
            requests: 150,
            grid_tbs: 8,
            mem_bytes: 64 << 20,
        },
        TenantSpec {
            name: "batch".into(),
            class: TenantClass::best_effort(),
            arrival: ArrivalModel::Diurnal {
                mean_gap: 10_000,
                period: 500_000,
                swing_permille: 600,
            },
            requests: 250,
            grid_tbs: 8,
            mem_bytes: 96 << 20,
        },
    ];
    cfg.faults = vec![FleetFault { at_cycle: 700_000, device: 1, kind: FaultKind::DeviceLoss }];
    cfg.drains = vec![PlannedDrain { at_cycle: 1_200_000, device: 0 }];
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_validates() {
        for name in SCENARIOS {
            let cfg = by_name(name, DEFAULT_SEED).expect("known scenario");
            cfg.validate().unwrap_or_else(|e| panic!("scenario {name}: {e}"));
        }
    }

    #[test]
    fn unknown_scenario_is_none() {
        assert!(by_name("nope", 1).is_none());
    }

    #[test]
    fn chaos_schedules_a_loss_and_a_wedge() {
        let cfg = chaos(DEFAULT_SEED);
        assert!(cfg.faults.iter().any(|f| f.kind == FaultKind::DeviceLoss));
        assert!(cfg.faults.iter().any(|f| f.kind == FaultKind::DeviceWedge));
    }

    #[test]
    fn migration_storm_is_heterogeneous_with_same_tick_failures() {
        let cfg = migration(DEFAULT_SEED);
        assert!(cfg.classes.len() >= 2, "needs at least two migration classes");
        assert!(cfg.faults.len() >= 3);
        let storm_cycle = cfg.faults[0].at_cycle;
        assert!(
            cfg.faults.iter().filter(|f| f.at_cycle == storm_cycle).count() >= 3,
            "the storm must land at least three failures in the same tick"
        );
        assert!(!cfg.drains.is_empty(), "the storm includes a planned drain");
        // The drained device must belong to the big class so both classes
        // exercise the migration path.
        let small_count: u32 = cfg.classes[0].count;
        assert!(cfg.drains[0].device >= small_count);
    }

    #[test]
    fn diurnal_is_long_horizon_with_breathing_arrivals() {
        let cfg = diurnal(DEFAULT_SEED);
        assert!(cfg.max_ticks >= 1_000, "long horizon");
        for t in &cfg.tenants {
            assert!(
                matches!(t.arrival, ArrivalModel::Diurnal { .. }),
                "diurnal tenants breathe: {:?}",
                t.arrival
            );
        }
        assert!(!cfg.faults.is_empty() && !cfg.drains.is_empty());
    }
}
