//! Translating application-level QoS goals into architectural IPC goals.
//!
//! QoS requirements arrive as frame rates, data rates or deadlines. The
//! paper's OS-resident kernel scheduler subtracts non-kernel latencies
//! (PCIe transfers, queueing) from the end-to-end budget and converts the
//! remaining *pure kernel execution time* into an IPC target (§3.2):
//!
//! ```text
//! IPC = instructions_of_kernel / (frequency × kernel_execution_time)
//! ```
//!
//! The evaluation then expresses goals as a percentage of the kernel's
//! isolated IPC, which [`GoalTranslation`] reproduces.

use serde::{Deserialize, Serialize};

/// Per-kernel QoS specification handed to a [`crate::QosManager`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosSpec {
    goal_ipc: Option<f64>,
}

impl QosSpec {
    /// A QoS kernel that must sustain `goal_ipc` thread-level IPC.
    ///
    /// # Panics
    ///
    /// Panics if `goal_ipc` is not finite and positive.
    pub fn qos(goal_ipc: f64) -> Self {
        assert!(goal_ipc.is_finite() && goal_ipc > 0.0, "IPC goal must be finite and positive");
        QosSpec { goal_ipc: Some(goal_ipc) }
    }

    /// A best-effort (non-QoS) kernel: no guarantee, maximize throughput
    /// with whatever the QoS kernels leave.
    pub fn best_effort() -> Self {
        QosSpec { goal_ipc: None }
    }

    /// The IPC goal, or `None` for best-effort kernels.
    pub fn goal_ipc(&self) -> Option<f64> {
        self.goal_ipc
    }

    /// Whether this is a QoS kernel.
    pub fn is_qos(&self) -> bool {
        self.goal_ipc.is_some()
    }
}

impl Default for QosSpec {
    fn default() -> Self {
        QosSpec::best_effort()
    }
}

/// End-to-end goal translation (§3.2).
///
/// Captures the OS-level accounting that precedes architectural QoS
/// management: the application's deadline minus data-transfer and queueing
/// time gives the kernel-execution budget, which together with the predicted
/// instruction count yields the IPC goal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GoalTranslation {
    /// GPU core clock in MHz.
    pub core_mhz: u32,
    /// Predicted total (thread-level) instructions of the kernel. In data
    /// centres this is stable and predictable across invocations (§3.2).
    pub kernel_instructions: u64,
    /// Bytes transferred over PCIe per invocation (0 for unified memory).
    pub transfer_bytes: u64,
    /// PCIe bandwidth in bytes per microsecond (≈ GB/s × 1000 / 1e6).
    pub pcie_bytes_per_us: f64,
    /// Fixed PCIe/queueing latency per invocation, in microseconds.
    pub fixed_latency_us: f64,
}

impl GoalTranslation {
    /// Translation for a unified-memory system (no transfer cost).
    pub fn unified(core_mhz: u32, kernel_instructions: u64) -> Self {
        GoalTranslation {
            core_mhz,
            kernel_instructions,
            transfer_bytes: 0,
            pcie_bytes_per_us: 0.0,
            fixed_latency_us: 0.0,
        }
    }

    /// Non-kernel overhead (transfer + fixed latency) in microseconds.
    pub fn overhead_us(&self) -> f64 {
        let transfer = if self.transfer_bytes == 0 || self.pcie_bytes_per_us <= 0.0 {
            0.0
        } else {
            self.transfer_bytes as f64 / self.pcie_bytes_per_us
        };
        transfer + self.fixed_latency_us
    }

    /// IPC goal needed to finish each invocation within `deadline_us`
    /// (e.g. 16 667 µs for 60 fps frame processing).
    ///
    /// Returns `None` if the overhead alone exceeds the deadline — no
    /// architectural policy can meet such a goal.
    pub fn ipc_goal_for_deadline(&self, deadline_us: f64) -> Option<f64> {
        let budget_us = deadline_us - self.overhead_us();
        if budget_us <= 0.0 {
            return None;
        }
        let budget_cycles = budget_us * f64::from(self.core_mhz);
        Some(self.kernel_instructions as f64 / budget_cycles)
    }

    /// IPC goal for a sustained rate of `per_second` kernel invocations
    /// (frame rate or request rate).
    pub fn ipc_goal_for_rate(&self, per_second: f64) -> Option<f64> {
        if per_second <= 0.0 {
            return None;
        }
        self.ipc_goal_for_deadline(1e6 / per_second)
    }
}

/// Per-tenant latency SLO for fleet-level serving: a per-request deadline
/// plus the fraction of requests that must meet it.
///
/// Attainment is tracked in parts-per-million so the floor check is pure
/// integer arithmetic — byte-identical across runs and platforms, which the
/// fleet's deterministic reports depend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloTarget {
    /// Per-request latency deadline, in fleet cycles (arrival to completion).
    pub deadline_cycles: u64,
    /// Minimum fraction of arrived requests that must complete within the
    /// deadline, in parts per million (e.g. `990_000` = 99%).
    pub attainment_floor_ppm: u32,
}

impl SloTarget {
    /// An SLO requiring `floor_ppm`/1e6 of requests within `deadline_cycles`.
    ///
    /// # Panics
    ///
    /// Panics if the deadline is zero or the floor exceeds 1e6.
    pub fn new(deadline_cycles: u64, attainment_floor_ppm: u32) -> Self {
        assert!(deadline_cycles > 0, "SLO deadline must be positive");
        assert!(attainment_floor_ppm <= 1_000_000, "attainment floor is at most 1e6 ppm");
        SloTarget { deadline_cycles, attainment_floor_ppm }
    }

    /// Whether `met` deadline hits out of `total` arrived requests satisfy
    /// the floor. Exact integer comparison; `total == 0` trivially passes.
    pub fn satisfied_by(&self, met: u64, total: u64) -> bool {
        u128::from(met) * 1_000_000 >= u128::from(total) * u128::from(self.attainment_floor_ppm)
    }

    /// The attainment floor as a fraction in `[0, 1]`, for display.
    pub fn floor_fraction(&self) -> f64 {
        f64::from(self.attainment_floor_ppm) / 1e6
    }

    /// The SLO's error budget in parts per million: the fraction of arrived
    /// requests allowed to miss the deadline before the floor is violated
    /// (`1e6 - attainment_floor_ppm`).
    pub fn error_budget_ppm(&self) -> u32 {
        1_000_000 - self.attainment_floor_ppm
    }

    /// SLO burn rate in parts per million of the error budget consumed:
    /// `1_000_000` means misses are arriving exactly at the budgeted rate,
    /// below means headroom, above means the floor is being burned through
    /// (at `> 1_000_000` the SLO check [`satisfied_by`](Self::satisfied_by)
    /// fails). Pure integer arithmetic in u128, saturating into u64. A zero
    /// budget (floor = 100%) is treated as 1 ppm so the rate stays finite;
    /// `total == 0` reports 0.
    pub fn burn_rate_ppm(&self, met: u64, total: u64) -> u64 {
        if total == 0 {
            return 0;
        }
        let missed = u128::from(total.saturating_sub(met));
        let miss_ppm = missed * 1_000_000 / u128::from(total);
        let budget = u128::from(self.error_budget_ppm().max(1));
        u64::try_from(miss_ppm * 1_000_000 / budget).unwrap_or(u64::MAX)
    }
}

/// Fleet-level tenant service class: guaranteed (admission-protected, never
/// shed, must meet its [`SloTarget`]) or best-effort (admitted and shed
/// according to cluster load).
///
/// The same `Option` shape as [`QosSpec`], one level up: `QosSpec` classifies
/// a *kernel* on one GPU, `TenantClass` classifies a *request stream* across
/// a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantClass {
    slo: Option<SloTarget>,
}

impl TenantClass {
    /// A guaranteed tenant with an SLO floor the fleet must defend.
    pub fn guaranteed(slo: SloTarget) -> Self {
        TenantClass { slo: Some(slo) }
    }

    /// A best-effort tenant: no guarantee; first to be shed under overload.
    pub fn best_effort() -> Self {
        TenantClass { slo: None }
    }

    /// The SLO target, or `None` for best-effort tenants.
    pub fn slo(&self) -> Option<SloTarget> {
        self.slo
    }

    /// Whether this tenant holds a guarantee.
    pub fn is_guaranteed(&self) -> bool {
        self.slo.is_some()
    }
}

impl Default for TenantClass {
    fn default() -> Self {
        TenantClass::best_effort()
    }
}

/// Builds the paper's goal sweep: fractions of isolated IPC from 50% to 95%
/// in 5% steps (§4.1).
pub fn paper_goal_fractions() -> Vec<f64> {
    (10..=19).map(|i| f64::from(i) * 0.05).collect()
}

/// The two-QoS-kernel sweep: (25%, 25%) … (70%, 70%) in 5% steps (§4.1).
pub fn paper_dual_goal_fractions() -> Vec<f64> {
    (5..=14).map(|i| f64::from(i) * 0.05).collect()
}

gpu_sim::impl_snap_struct!(QosSpec { goal_ipc });

gpu_sim::impl_snap_struct!(SloTarget { deadline_cycles, attainment_floor_ppm });

gpu_sim::impl_snap_struct!(TenantClass { slo });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_accessors() {
        let q = QosSpec::qos(100.0);
        assert!(q.is_qos());
        assert_eq!(q.goal_ipc(), Some(100.0));
        let b = QosSpec::best_effort();
        assert!(!b.is_qos());
        assert_eq!(b.goal_ipc(), None);
        assert_eq!(QosSpec::default(), b);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn spec_rejects_nonpositive_goal() {
        let _ = QosSpec::qos(0.0);
    }

    #[test]
    fn tenant_class_accessors() {
        let slo = SloTarget::new(40_000, 990_000);
        let g = TenantClass::guaranteed(slo);
        assert!(g.is_guaranteed());
        assert_eq!(g.slo(), Some(slo));
        let b = TenantClass::best_effort();
        assert!(!b.is_guaranteed());
        assert_eq!(b.slo(), None);
        assert_eq!(TenantClass::default(), b);
    }

    #[test]
    fn slo_floor_check_is_exact() {
        let slo = SloTarget::new(10_000, 990_000); // 99%
        assert!(slo.satisfied_by(0, 0), "no arrivals trivially satisfies");
        assert!(slo.satisfied_by(99, 100));
        assert!(!slo.satisfied_by(98, 100));
        assert!(slo.satisfied_by(990_000, 1_000_000));
        assert!(!slo.satisfied_by(989_999, 1_000_000));
        assert!((slo.floor_fraction() - 0.99).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn slo_rejects_zero_deadline() {
        let _ = SloTarget::new(0, 1_000);
    }

    #[test]
    fn slo_error_budget_and_burn_rate_are_integer_exact() {
        let slo = SloTarget::new(10_000, 990_000); // 99% floor => 1% budget
        assert_eq!(slo.error_budget_ppm(), 10_000);
        assert_eq!(slo.burn_rate_ppm(0, 0), 0, "no arrivals burns nothing");
        assert_eq!(slo.burn_rate_ppm(100, 100), 0, "all met burns nothing");
        // 1 miss in 100 = 10_000 ppm missed = exactly the 1% budget.
        assert_eq!(slo.burn_rate_ppm(99, 100), 1_000_000);
        // 2 misses in 100 = twice the budget.
        assert_eq!(slo.burn_rate_ppm(98, 100), 2_000_000);
        // Half the budget.
        assert_eq!(slo.burn_rate_ppm(995, 1_000), 500_000);
        // Burn > 1e6 exactly when the floor check fails (total > 0).
        for (met, total) in [(99u64, 100u64), (98, 100), (995, 1_000), (0, 7), (7, 7)] {
            let burning = slo.burn_rate_ppm(met, total) > 1_000_000;
            assert_eq!(burning, !slo.satisfied_by(met, total), "met={met} total={total}");
        }
    }

    #[test]
    fn slo_burn_rate_with_zero_budget_stays_finite() {
        let strict = SloTarget::new(1_000, 1_000_000); // 100% floor
        assert_eq!(strict.error_budget_ppm(), 0);
        assert_eq!(strict.burn_rate_ppm(10, 10), 0);
        // One miss in a million with a 1-ppm effective budget: rate 1e6.
        assert_eq!(strict.burn_rate_ppm(999_999, 1_000_000), 1_000_000);
        assert!(strict.burn_rate_ppm(0, 2) > 1_000_000);
    }

    #[test]
    fn tenant_class_round_trips_through_the_codec() {
        use gpu_sim::snap::{decode_from_slice, encode_to_vec};
        for class in
            [TenantClass::guaranteed(SloTarget::new(25_000, 950_000)), TenantClass::best_effort()]
        {
            let back: TenantClass = decode_from_slice(&encode_to_vec(&class)).expect("codec");
            assert_eq!(back, class);
        }
    }

    #[test]
    fn unified_memory_has_no_overhead() {
        let t = GoalTranslation::unified(1216, 1_000_000);
        assert_eq!(t.overhead_us(), 0.0);
    }

    #[test]
    fn deadline_translation_matches_formula() {
        // 1216 MHz, 1e9 instructions, 16.667 ms budget -> IPC = 1e9 / (16667 * 1216)
        let t = GoalTranslation::unified(1216, 1_000_000_000);
        let ipc = t.ipc_goal_for_deadline(16_667.0).expect("feasible deadline");
        let expect = 1e9 / (16_667.0 * 1216.0);
        assert!((ipc - expect).abs() < 1e-9);
    }

    #[test]
    fn rate_is_deadline_reciprocal() {
        let t = GoalTranslation::unified(1216, 1_000_000_000);
        let by_rate = t.ipc_goal_for_rate(60.0).expect("feasible rate");
        let by_deadline = t.ipc_goal_for_deadline(1e6 / 60.0).expect("feasible deadline");
        assert!((by_rate - by_deadline).abs() < 1e-9);
    }

    #[test]
    fn transfer_overhead_shrinks_budget() {
        let mut t = GoalTranslation::unified(1216, 1_000_000_000);
        let base = t.ipc_goal_for_deadline(10_000.0).expect("feasible");
        t.transfer_bytes = 100 << 20; // 100 MiB
        t.pcie_bytes_per_us = 16_000.0; // ~16 GB/s
        let with_copy = t.ipc_goal_for_deadline(10_000.0).expect("still feasible");
        assert!(with_copy > base, "less time for the kernel => higher IPC needed");
    }

    #[test]
    fn infeasible_deadline_is_none() {
        let mut t = GoalTranslation::unified(1216, 1_000);
        t.fixed_latency_us = 50.0;
        assert_eq!(t.ipc_goal_for_deadline(40.0), None);
        assert_eq!(t.ipc_goal_for_rate(0.0), None);
    }

    #[test]
    fn paper_sweeps_match_methodology() {
        let single = paper_goal_fractions();
        assert_eq!(single.len(), 10);
        assert!((single[0] - 0.50).abs() < 1e-12);
        assert!((single[9] - 0.95).abs() < 1e-12);
        let dual = paper_dual_goal_fractions();
        assert_eq!(dual.len(), 10);
        assert!((dual[0] - 0.25).abs() < 1e-12);
        assert!((dual[9] - 0.70).abs() < 1e-12);
    }
}
