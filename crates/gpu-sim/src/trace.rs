//! Epoch-granular telemetry: record per-kernel time series while any
//! controller runs.
//!
//! [`Tracer`] wraps an inner [`Controller`] and snapshots per-kernel IPC,
//! residency and quota state at every epoch — the data behind the paper's
//! time-behaviour arguments (§3.5's "a kernel can behave differently during
//! execution") and this repo's debugging examples.

use serde::{Deserialize, Serialize};

use crate::gpu::{Controller, Gpu};
use crate::types::KernelId;

/// One kernel's state at one epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelSample {
    /// Thread-level IPC over the elapsed epoch.
    pub epoch_ipc: f64,
    /// TBs resident across all SMs.
    pub hosted_tbs: u32,
    /// Sum of quota counters across SMs (after the controller ran).
    pub quota_total: i64,
    /// Preempted TBs waiting in the pool.
    pub preempted: usize,
}

/// One epoch's record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Epoch index.
    pub epoch: u64,
    /// Simulation cycle at the boundary.
    pub cycle: u64,
    /// Per-kernel samples, indexed by kernel slot.
    pub kernels: Vec<KernelSample>,
    /// Cumulative TB context saves.
    pub preemption_saves: u64,
}

/// A stable 64-bit FNV-1a hash over a full record stream.
///
/// Every field is folded in bit-exactly (`f64` samples via `to_bits`), so
/// two runs hash equal iff their entire epoch telemetry is identical — the
/// determinism and differential tests compare runs through this.
pub fn records_hash(records: &[EpochRecord]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    fn fold(h: u64, v: u64) -> u64 {
        v.to_le_bytes().iter().fold(h, |h, &b| (h ^ u64::from(b)).wrapping_mul(PRIME))
    }
    let mut h = fold(OFFSET, records.len() as u64);
    for r in records {
        h = fold(h, r.epoch);
        h = fold(h, r.cycle);
        h = fold(h, r.preemption_saves);
        h = fold(h, r.kernels.len() as u64);
        for s in &r.kernels {
            h = fold(h, s.epoch_ipc.to_bits());
            h = fold(h, u64::from(s.hosted_tbs));
            h = fold(h, s.quota_total as u64);
            h = fold(h, s.preempted as u64);
        }
    }
    h
}

/// A controller wrapper that records an [`EpochRecord`] per epoch.
#[derive(Debug)]
pub struct Tracer<C> {
    inner: C,
    records: Vec<EpochRecord>,
}

impl<C: Controller> Tracer<C> {
    /// Wraps `inner`, recording after each of its epoch callbacks.
    pub fn new(inner: C) -> Self {
        Tracer { inner, records: Vec::new() }
    }

    /// The recorded series so far.
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// The wrapped controller.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Consumes the tracer, returning the inner controller and the records.
    pub fn into_parts(self) -> (C, Vec<EpochRecord>) {
        (self.inner, self.records)
    }

    /// Rebuilds a tracer from a controller and previously recorded epochs
    /// (the inverse of [`Tracer::into_parts`]; used when resuming a
    /// checkpointed run).
    pub fn from_parts(inner: C, records: Vec<EpochRecord>) -> Self {
        Tracer { inner, records }
    }

    /// The per-epoch IPC series of one kernel.
    pub fn ipc_series(&self, k: KernelId) -> Vec<f64> {
        self.records.iter().filter_map(|r| r.kernels.get(k.index()).map(|s| s.epoch_ipc)).collect()
    }

    /// The residency (hosted TBs) series of one kernel.
    pub fn residency_series(&self, k: KernelId) -> Vec<u32> {
        self.records.iter().filter_map(|r| r.kernels.get(k.index()).map(|s| s.hosted_tbs)).collect()
    }
}

impl<C: Controller> Controller for Tracer<C> {
    fn on_epoch(&mut self, gpu: &mut Gpu, epoch: u64) {
        self.inner.on_epoch(gpu, epoch);
        let snap = gpu.epoch_snapshot();
        let kernels = gpu
            .kernel_ids()
            .map(|k| KernelSample {
                epoch_ipc: snap.ipc(k),
                hosted_tbs: gpu.sms().iter().map(|sm| sm.hosted_tbs(k)).sum(),
                quota_total: gpu.sms().iter().map(|sm| sm.quota(k)).sum(),
                preempted: gpu.preempted_len(k),
            })
            .collect();
        self.records.push(EpochRecord {
            epoch,
            cycle: gpu.cycle(),
            kernels,
            preemption_saves: gpu.preempt_stats().saves,
        });
    }
}

crate::impl_snap_struct!(KernelSample { epoch_ipc, hosted_tbs, quota_total, preempted });

crate::impl_snap_struct!(EpochRecord { epoch, cycle, kernels, preemption_saves });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::gpu::NullController;
    use crate::kernel::{KernelDesc, Op};

    fn kernel() -> KernelDesc {
        KernelDesc::builder("t")
            .threads_per_tb(128)
            .grid_tbs(64)
            .iterations(16)
            .body(vec![Op::alu(2, 8)])
            .build()
    }

    #[test]
    fn records_one_entry_per_epoch() {
        let mut gpu = Gpu::new(GpuConfig::tiny());
        let k = gpu.launch(kernel());
        let mut tracer = Tracer::new(NullController);
        gpu.run(5_000, &mut tracer); // tiny epoch = 1000 cycles -> 5 epochs
        assert_eq!(tracer.records().len(), 5);
        assert_eq!(tracer.records()[0].epoch, 0);
        let series = tracer.ipc_series(k);
        assert_eq!(series.len(), 5);
        assert!(series[1] > 0.0, "the kernel progresses after warm-up");
        assert!(tracer.residency_series(k).iter().skip(1).all(|&h| h > 0));
    }

    #[test]
    fn records_hash_fold_order_is_pinned() {
        // The fold order (len, then per record epoch/cycle/saves/kernel-count,
        // then per sample ipc-bits/tbs/quota/preempted) is load-bearing: the
        // golden corpus, checkpoint journals and sweep reports all embed this
        // hash. If this hardcoded value changes, the hash function changed —
        // bless the golden corpus and say so loudly in the changelog.
        let records = vec![
            EpochRecord {
                epoch: 0,
                cycle: 1_000,
                kernels: vec![
                    KernelSample { epoch_ipc: 1.5, hosted_tbs: 4, quota_total: -32, preempted: 1 },
                    KernelSample { epoch_ipc: 0.0, hosted_tbs: 0, quota_total: 0, preempted: 0 },
                ],
                preemption_saves: 2,
            },
            EpochRecord {
                epoch: 1,
                cycle: 2_000,
                kernels: vec![KernelSample {
                    epoch_ipc: 2.25,
                    hosted_tbs: 7,
                    quota_total: 640,
                    preempted: 0,
                }],
                preemption_saves: 2,
            },
        ];
        assert_eq!(records_hash(&records), 0x00e1_7c1e_fa31_1de9);
        assert_eq!(records_hash(&[]), 0xa8c7_f832_281a_39c5, "empty-stream hash pinned too");
    }

    #[test]
    fn into_parts_round_trips() {
        let mut gpu = Gpu::new(GpuConfig::tiny());
        gpu.launch(kernel());
        let mut tracer = Tracer::new(NullController);
        gpu.run(2_000, &mut tracer);
        let (_inner, records) = tracer.into_parts();
        assert_eq!(records.len(), 2);
        assert!(records[1].cycle >= 1_000);
    }
}
