//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--scale bench|smoke|quick|paper] <experiment>...
//! repro --scale quick all
//! repro fig6a fig9
//! repro list
//! repro run <sweep> --checkpoint-dir DIR [--scale s] [--checkpoint-every N]
//! repro resume <DIR> [--checkpoint-every N]
//! repro inspect <failure-snapshot-file>
//! repro trace <golden-scenario> [--out trace.json]
//! repro fleet <scenario> [--seed N] [--checkpoint-dir DIR]
//!             [--checkpoint-every TICKS] [--trace FILE]
//!             [--metrics-out FILE] [--profile]
//! repro fleet resume <DIR> [--metrics-out FILE]
//! repro metrics <fleet-scenario> [--seed N] [--out FILE]
//! repro profile <scenario>
//! repro validate [--bless | --recapture] [--out report.txt]
//! ```
//!
//! `run`/`resume`/`inspect` are the crash-resumable sweep commands: `run`
//! executes a named sweep with periodic checkpoints, `resume` continues a
//! killed sweep from its newest loadable checkpoint, and `inspect`
//! pretty-prints a persisted failure snapshot. The final sweep report is the
//! only stdout either `run` or `resume` produces (progress and degradation
//! warnings go to stderr), so a killed-then-resumed sweep's stdout is
//! byte-identical to an uninterrupted run's.

use std::process::ExitCode;

use harness::checkpoint::{
    self, load_failure, render_failure_snapshot, resume_sweep, run_sweep_checkpointed,
    CheckpointDir, DEFAULT_CHECKPOINT_EVERY,
};
use harness::experiments::Session;
use harness::scale::RunScale;

const EXPERIMENTS: [&str; 19] = [
    "table1",
    "table2",
    "fig5",
    "fig6a",
    "fig6b",
    "fig6c",
    "fig7",
    "fig8a",
    "fig8b",
    "fig8c",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "ablations",
    "ablation-epoch",
    "all",
];

fn usage() -> String {
    format!(
        "usage: repro [--scale bench|smoke|quick|paper] <experiment>...\n\
         \u{20}      repro golden [--bless]\n\
         \u{20}      repro run <sweep> --checkpoint-dir DIR [--scale s] [--checkpoint-every N]\n\
         \u{20}      repro resume <DIR> [--checkpoint-every N]\n\
         \u{20}      repro inspect <failure-snapshot-file>\n\
         \u{20}      repro trace <scenario> [--out FILE]\n\
         \u{20}      repro fleet <scenario> [--seed N] [--checkpoint-dir DIR] \
         [--checkpoint-every TICKS] [--trace FILE] [--metrics-out FILE] [--profile]\n\
         \u{20}      repro fleet resume <DIR> [--metrics-out FILE]\n\
         \u{20}      repro metrics <fleet-scenario> [--seed N] [--out FILE]\n\
         \u{20}      repro profile <scenario>\n\
         \u{20}      repro validate [--bless | --recapture] [--out FILE]\n\
         experiments: {}\n\
         sweeps: {}\n\
         scenarios: {}\n\
         fleet scenarios: {}\n\
         golden: verify the golden-trace corpus (tests/golden/); \
         --bless regenerates it\n\
         run/resume: checkpointed sweep execution; resume continues a killed\n\
         sweep from the newest loadable checkpoint in DIR\n\
         inspect: pretty-print a failure-case-*.snap machine snapshot\n\
         trace: export a golden scenario's flight recording as Chrome-trace\n\
         JSON (load at ui.perfetto.dev); stdout unless --out is given\n\
         fleet: run a multi-GPU serving scenario (admission control, retries,\n\
         device-fault tolerance); exit 0 iff every guaranteed SLO is met and\n\
         no request is lost; `fleet resume` continues a killed run;\n\
         --metrics-out exports the telemetry (JSON at FILE, Prometheus text\n\
         at FILE.prom), --profile prints the host-time hotspot table to stderr\n\
         metrics: run a fleet scenario and export its telemetry (counter time\n\
         series, per-tenant latency histograms, SLO burn tracks); JSON on\n\
         stdout, or JSON + .prom files when --out is given\n\
         profile: run a scenario with the host profiler armed and print the\n\
         wall-time hotspot table; scenarios: {} plus the fleet scenarios\n\
         validate: replay the committed trace corpus (tests/golden/validate/)\n\
         and correlate IPC/residency/quota/cache metrics against committed\n\
         expectations; exit 0 iff every metric passes; --bless re-pins the\n\
         expectations, --recapture re-records the traces first, --out also\n\
         writes the correlation report to FILE\n",
        EXPERIMENTS.join(" "),
        checkpoint::SWEEPS.join(" "),
        harness::golden::SCENARIOS.join(" "),
        fleet::scenarios::SCENARIOS.join(" "),
        harness::telemetry::PROFILE_SCENARIOS.join(" ")
    )
}

/// Parses `--checkpoint-every N` / `--scale s` style flags shared by the
/// `run` and `resume` subcommands. Returns `(positional, scale, every, dir)`.
#[allow(clippy::type_complexity)]
fn parse_sweep_args(
    args: impl Iterator<Item = String>,
) -> Result<(Vec<String>, RunScale, Option<u64>, Option<String>), String> {
    let mut args = args.peekable();
    let mut positional = Vec::new();
    let mut scale = RunScale::Quick;
    let mut every = None;
    let mut dir = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" | "-s" => {
                let value = args.next().ok_or("--scale needs a value")?;
                scale =
                    RunScale::parse(&value).ok_or_else(|| format!("unknown scale {value:?}"))?;
            }
            "--checkpoint-every" => {
                let value = args.next().ok_or("--checkpoint-every needs a value")?;
                every = Some(value.parse::<u64>().ok().filter(|&n| n > 0).ok_or_else(|| {
                    format!("--checkpoint-every wants a positive cycle count, got {value:?}")
                })?);
            }
            "--checkpoint-dir" => {
                dir = Some(args.next().ok_or("--checkpoint-dir needs a value")?);
            }
            other => positional.push(other.to_string()),
        }
    }
    Ok((positional, scale, every, dir))
}

fn finish_sweep(outcome: checkpoint::SweepOutcome) -> ExitCode {
    for w in &outcome.warnings {
        eprintln!("warning: {w}");
    }
    // The report is the only stdout: killed + resumed == uninterrupted.
    print!("{}", outcome.report());
    if outcome.outcomes.iter().all(Result::is_ok) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `repro run <sweep> --checkpoint-dir DIR`: a checkpointed sweep from the
/// start.
fn cmd_run(args: impl Iterator<Item = String>) -> ExitCode {
    let (positional, scale, every, dir) = match parse_sweep_args(args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let [sweep] = positional.as_slice() else {
        eprintln!("`repro run` wants exactly one sweep name\n{}", usage());
        return ExitCode::FAILURE;
    };
    let Some(dir) = dir else {
        eprintln!("`repro run` needs --checkpoint-dir\n{}", usage());
        return ExitCode::FAILURE;
    };
    let dir = match CheckpointDir::create(&dir) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot open checkpoint dir {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let every = every.unwrap_or(DEFAULT_CHECKPOINT_EVERY);
    eprintln!(
        "[sweep {sweep} at {scale:?} scale, checkpointing into {} every ~{every} cycles]",
        dir.path().display()
    );
    match run_sweep_checkpointed(sweep, scale, &dir, every) {
        Ok(outcome) => finish_sweep(outcome),
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// `repro resume <DIR>`: continue a killed sweep from its newest loadable
/// checkpoint.
fn cmd_resume(args: impl Iterator<Item = String>) -> ExitCode {
    let (positional, _scale, every, dir_flag) = match parse_sweep_args(args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    // Accept the directory either positionally or via --checkpoint-dir.
    let dir = match (positional.as_slice(), dir_flag) {
        ([d], None) => d.clone(),
        ([], Some(d)) => d,
        _ => {
            eprintln!("`repro resume` wants exactly one checkpoint directory\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let dir = match CheckpointDir::create(&dir) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot open checkpoint dir {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match resume_sweep(&dir, every) {
        Ok(outcome) => finish_sweep(outcome),
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// `repro inspect <file>`: pretty-print a persisted failure snapshot.
fn cmd_inspect(mut args: impl Iterator<Item = String>) -> ExitCode {
    let (Some(path), None) = (args.next(), args.next()) else {
        eprintln!("`repro inspect` wants exactly one snapshot file\n{}", usage());
        return ExitCode::FAILURE;
    };
    match load_failure(std::path::Path::new(&path)) {
        Ok(snap) => {
            print!("{}", render_failure_snapshot(&snap));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// `repro trace <scenario> [--out FILE]`: run a golden scenario with the
/// flight recorder on and export the Chrome-trace JSON document.
fn cmd_trace(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut positional = Vec::new();
    let mut out = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" | "-o" => {
                let Some(path) = args.next() else {
                    eprintln!("--out needs a file path\n{}", usage());
                    return ExitCode::FAILURE;
                };
                out = Some(path);
            }
            other => positional.push(other.to_string()),
        }
    }
    let [name] = positional.as_slice() else {
        eprintln!("`repro trace` wants exactly one scenario name\n{}", usage());
        return ExitCode::FAILURE;
    };
    if !harness::golden::SCENARIOS.contains(&name.as_str()) {
        eprintln!("unknown scenario {name:?} (known: {})", harness::golden::SCENARIOS.join(", "));
        return ExitCode::FAILURE;
    }
    let doc = harness::perfetto::export_scenario(name);
    if let Err(e) = harness::perfetto::check_chrome_trace(&doc) {
        eprintln!("internal error: exported trace fails its own schema check: {e}");
        return ExitCode::FAILURE;
    }
    match out {
        Some(path) => {
            if let Err(e) =
                harness::export::write_atomic(std::path::Path::new(&path), doc.as_bytes())
            {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path} ({} bytes)", doc.len());
        }
        None => print!("{doc}"),
    }
    ExitCode::SUCCESS
}

/// `repro fleet <scenario> ...` / `repro fleet resume <DIR>`: checkpointed
/// fleet serving runs. The report is the only stdout, so a killed-then-
/// resumed run's output is byte-identical to an uninterrupted one's.
fn cmd_fleet(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut positional = Vec::new();
    let mut seed = fleet::scenarios::DEFAULT_SEED;
    let mut dir = None;
    let mut every = harness::fleet_cli::DEFAULT_FLEET_EVERY;
    let mut trace = None;
    let mut metrics_out = None;
    let mut profile = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let Some(value) = args.next().and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("--seed needs an unsigned integer\n{}", usage());
                    return ExitCode::FAILURE;
                };
                seed = value;
            }
            "--checkpoint-dir" => {
                let Some(value) = args.next() else {
                    eprintln!("--checkpoint-dir needs a value\n{}", usage());
                    return ExitCode::FAILURE;
                };
                dir = Some(value);
            }
            "--checkpoint-every" => {
                let Some(value) =
                    args.next().and_then(|v| v.parse::<u64>().ok().filter(|&n| n > 0))
                else {
                    eprintln!("--checkpoint-every wants a positive tick count\n{}", usage());
                    return ExitCode::FAILURE;
                };
                every = value;
            }
            "--trace" => {
                let Some(value) = args.next() else {
                    eprintln!("--trace needs a file path\n{}", usage());
                    return ExitCode::FAILURE;
                };
                trace = Some(value);
            }
            "--metrics-out" => {
                let Some(value) = args.next() else {
                    eprintln!("--metrics-out needs a file path\n{}", usage());
                    return ExitCode::FAILURE;
                };
                metrics_out = Some(value);
            }
            "--profile" => profile = true,
            other => positional.push(other.to_string()),
        }
    }
    let outcome = match positional.as_slice() {
        [cmd, dir_arg] if cmd == "resume" => harness::fleet_cli::resume(
            std::path::Path::new(dir_arg),
            metrics_out.as_deref().map(std::path::Path::new),
        ),
        [name] => {
            eprintln!("[fleet {name}, seed {seed}]");
            let opts = harness::fleet_cli::FleetRunOpts {
                checkpoint_dir: dir.as_deref().map(std::path::Path::new),
                every_ticks: every,
                trace: trace.as_deref().map(std::path::Path::new),
                metrics_out: metrics_out.as_deref().map(std::path::Path::new),
                profile,
            };
            harness::fleet_cli::run_scenario(name, seed, &opts)
        }
        _ => {
            eprintln!("`repro fleet` wants one scenario name or `resume <DIR>`\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    match outcome {
        Ok(outcome) => {
            if let Some(table) = &outcome.profile {
                // Host-time attribution is wall-clock noise, never part of
                // the deterministic report stream.
                eprint!("{table}");
            }
            // The report is the only stdout: killed + resumed == uninterrupted.
            print!("{}", outcome.report);
            if outcome.ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// `repro metrics <fleet-scenario> [--seed N] [--out FILE]`: run a fleet
/// scenario to completion and export its telemetry. JSON goes to stdout,
/// or to FILE (with the Prometheus text beside it at FILE.prom) when
/// `--out` is given.
fn cmd_metrics(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut positional = Vec::new();
    let mut seed = fleet::scenarios::DEFAULT_SEED;
    let mut out = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let Some(value) = args.next().and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("--seed needs an unsigned integer\n{}", usage());
                    return ExitCode::FAILURE;
                };
                seed = value;
            }
            "--out" | "-o" => {
                let Some(path) = args.next() else {
                    eprintln!("--out needs a file path\n{}", usage());
                    return ExitCode::FAILURE;
                };
                out = Some(path);
            }
            other => positional.push(other.to_string()),
        }
    }
    let [name] = positional.as_slice() else {
        eprintln!("`repro metrics` wants exactly one fleet scenario name\n{}", usage());
        return ExitCode::FAILURE;
    };
    let (json, prom) = match harness::telemetry::run_fleet_metrics(name, seed) {
        Ok(docs) => docs,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match out {
        Some(path) => {
            let path = std::path::PathBuf::from(path);
            let prom_path = path.with_extension("prom");
            for (p, doc) in [(&path, &json), (&prom_path, &prom)] {
                if let Err(e) = harness::export::write_atomic(p, doc.as_bytes()) {
                    eprintln!("cannot write {}: {e}", p.display());
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {} ({} bytes)", p.display(), doc.len());
            }
        }
        None => print!("{json}"),
    }
    ExitCode::SUCCESS
}

/// `repro profile <scenario>`: run a scenario with the host profiler armed
/// and print the wall-time hotspot table.
fn cmd_profile(mut args: impl Iterator<Item = String>) -> ExitCode {
    let (Some(name), None) = (args.next(), args.next()) else {
        eprintln!("`repro profile` wants exactly one scenario name\n{}", usage());
        return ExitCode::FAILURE;
    };
    match harness::telemetry::profile_scenario(&name) {
        Ok(table) => {
            print!("{table}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// `repro validate [--bless | --recapture] [--out FILE]`: replay the trace
/// corpus and correlate against committed expectations. The correlation
/// table is the only stdout; `--out` additionally writes it to a file (pass
/// or fail — CI uploads it as the failure artifact).
fn cmd_validate(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut bless = false;
    let mut recapture = false;
    let mut out = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bless" => bless = true,
            "--recapture" => recapture = true,
            "--out" | "-o" => {
                let Some(path) = args.next() else {
                    eprintln!("--out needs a file path\n{}", usage());
                    return ExitCode::FAILURE;
                };
                out = Some(path);
            }
            other => {
                eprintln!("`repro validate` does not take {other:?}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }
    if recapture {
        if let Err(e) = harness::validate::recapture() {
            eprintln!("recapture failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("re-recorded trace corpus under {}", harness::validate::validate_dir().display());
    } else if bless {
        if let Err(e) = harness::validate::bless() {
            eprintln!("bless failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if bless || recapture {
        eprintln!("blessed {}", harness::validate::expectations_path().display());
    }
    match harness::validate::run_validation() {
        Ok(report) => {
            let table = report.render();
            if let Some(path) = out {
                if let Err(e) =
                    harness::export::write_atomic(std::path::Path::new(&path), table.as_bytes())
                {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {path}");
            }
            print!("{table}");
            if report.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// Verifies (or with `bless` regenerates) the golden-trace corpus.
fn run_golden(bless: bool) -> ExitCode {
    if bless {
        if let Err(e) = harness::golden::bless_all() {
            eprintln!("failed to write golden corpus: {e}");
            return ExitCode::FAILURE;
        }
        for name in harness::golden::SCENARIOS {
            println!("blessed {}", harness::golden::golden_path(name).display());
        }
        return ExitCode::SUCCESS;
    }
    let mut ok = true;
    for name in harness::golden::SCENARIOS {
        match harness::golden::check(name) {
            Ok(()) => println!("golden {name}: ok"),
            Err(e) => {
                ok = false;
                eprintln!("golden {name}: FAILED\n{e}");
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_one(session: &Session, name: &str) -> Option<String> {
    Some(match name {
        "table1" => session.table1(),
        "table2" => session.table2(),
        "fig5" => session.fig5(),
        "fig6a" => session.fig6a(),
        "fig6b" => session.fig6b(),
        "fig6c" => session.fig6c(),
        "fig7" => session.fig7(),
        "fig8a" => session.fig8a(),
        "fig8b" => session.fig8bc(1),
        "fig8c" => session.fig8bc(2),
        "fig9" => session.fig9(),
        "fig10" => session.fig10(),
        "fig11" => session.fig11(),
        "fig12" => session.fig12(),
        "fig13" => session.fig13(),
        "fig14" => session.fig14(),
        "ablation-epoch" => session.ablation_epoch_length(),
        "ablations" => format!(
            "{}\n{}\n{}",
            session.ablation_preemption(),
            session.ablation_history(),
            session.ablation_static()
        ),
        _ => return None,
    })
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    match args.peek().map(String::as_str) {
        Some("run") => return cmd_run(args.skip(1)),
        Some("resume") => return cmd_resume(args.skip(1)),
        Some("inspect") => return cmd_inspect(args.skip(1)),
        Some("trace") => return cmd_trace(args.skip(1)),
        Some("fleet") => return cmd_fleet(args.skip(1)),
        Some("metrics") => return cmd_metrics(args.skip(1)),
        Some("profile") => return cmd_profile(args.skip(1)),
        Some("validate") => return cmd_validate(args.skip(1)),
        _ => {}
    }
    let mut scale = RunScale::Quick;
    let mut bless = false;
    let mut wanted: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bless" => bless = true,
            "--scale" | "-s" => {
                let Some(value) = args.next() else {
                    eprintln!("--scale needs a value\n{}", usage());
                    return ExitCode::FAILURE;
                };
                match RunScale::parse(&value) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("unknown scale {value:?}\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "list" | "--list" => {
                println!("{}", EXPERIMENTS.join("\n"));
                return ExitCode::SUCCESS;
            }
            "help" | "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    if wanted.iter().any(|w| w == "golden") {
        if wanted.len() > 1 {
            eprintln!("`golden` cannot be combined with experiments\n{}", usage());
            return ExitCode::FAILURE;
        }
        return run_golden(bless);
    }
    if bless {
        eprintln!("--bless only applies to `golden`\n{}", usage());
        return ExitCode::FAILURE;
    }
    if wanted.iter().any(|w| w == "all") {
        // `all` covers the paper's tables/figures and the section 4.8
        // ablations; the epoch-length ablation is extra and opt-in.
        wanted = EXPERIMENTS[..EXPERIMENTS.len() - 2].iter().map(|s| s.to_string()).collect();
    }
    for w in &wanted {
        if !EXPERIMENTS.contains(&w.as_str()) {
            eprintln!("unknown experiment {w:?}\n{}", usage());
            return ExitCode::FAILURE;
        }
    }

    let session = Session::new(scale);
    for name in &wanted {
        let started = std::time::Instant::now();
        let report = run_one(&session, name).expect("validated above");
        println!("{report}");
        eprintln!("[{name} done in {:.1}s]\n", started.elapsed().as_secs_f64());
    }
    // Every run ends with the failure digest: either the all-clear line or
    // one line per failed case (label, error kind, health summary).
    println!("{}", session.failure_digest());
    if session.failures().is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
