//! The SM front end: per-cycle scheduler gather/choose/issue, the
//! work-conserving scavenger, interconnect-port traffic, and the
//! fast-forward horizon protocol.

use crate::icn::{self, IcnRequest, IcnResponse};
use crate::kernel::{KernelDesc, MemSpace, Op};
use crate::memsys::MemSystem;
use crate::observe::TraceEventKind;
use crate::tb::{TbPhase, TbState};
use crate::types::{per_kernel, Cycle, PerKernel};
use crate::warp_sched::choose;
use crate::MAX_KERNELS;

use super::Sm;

impl Sm {
    pub(super) fn warp_issuable(&self, slot: u16, now: Cycle) -> bool {
        let Some(w) = self.warps[slot as usize].as_ref() else { return false };
        if w.done || w.at_barrier || w.ready_at > now {
            return false;
        }
        self.tbs[w.tb_slot as usize].as_ref().is_some_and(|tb| tb.issuable(now))
    }

    /// The earliest future cycle at which this SM could change state, or
    /// `None` if it is fully quiescent.
    ///
    /// A returned cycle `<= now` means the SM is busy *right now* (some
    /// non-inert warp can issue this cycle), so fast-forward must not skip
    /// anything. Horizons come from two sources: in-flight context
    /// transitions (whose completion mutates slot state in
    /// `process_transitions`) and stalled warps' `ready_at` scoreboards.
    /// Warps never hold the [`icn::PENDING`] sentinel here: the machine
    /// drains every port before it consults horizons.
    pub(crate) fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut horizon: Option<Cycle> = None;
        for &slot in &self.transitioning {
            if let Some(until) =
                self.tbs[slot as usize].as_ref().and_then(TbState::transition_done_at)
            {
                horizon = Some(horizon.map_or(until, |h| h.min(until)));
            }
        }
        if self.sched_frozen || self.used_threads == 0 {
            // A frozen or empty SM never issues; only transitions can fire.
            return horizon;
        }
        let inert: [bool; MAX_KERNELS] = std::array::from_fn(|k| self.quota_inert(k));
        for w in self.warps.iter().flatten() {
            if inert[w.kernel.index()] {
                continue;
            }
            let Some(tb) = self.tbs[w.tb_slot as usize].as_ref() else { continue };
            if let Some(wake) = w.next_wake(tb.phase) {
                if wake <= now {
                    return Some(wake);
                }
                horizon = Some(horizon.map_or(wake, |h| h.min(wake)));
            }
        }
        horizon
    }

    /// Accounts for the idle cycles `[from, target)` jumped over by
    /// fast-forward, mirroring exactly what per-cycle [`Sm::tick`] calls
    /// would have done: a hosted, unfrozen SM burns busy cycles and empty
    /// issue slots even when no warp can issue, and the gather loop counts
    /// every issuable-but-quota-denied warp once per cycle. Neither the
    /// freeze/occupancy conditions nor kernel inertness can change
    /// mid-window (they only move on simulated cycles), so the quota-blocked
    /// tally is replayed per warp from its scoreboard release to the window
    /// end. Only quota-inert kernels can own issuable warps inside a skipped
    /// window — a non-inert issuable warp would have held fast-forward back
    /// via [`Sm::next_event`] — and transitioning TBs stay un-issuable for
    /// the whole window because their completion is itself a horizon.
    ///
    /// Touches only this SM's private state, so the machine may run it for
    /// all domains concurrently under `intra_parallel`.
    pub(crate) fn note_skipped_cycles(&mut self, from: Cycle, target: Cycle) {
        if self.sched_frozen || self.used_threads == 0 {
            return;
        }
        let skipped = target - from;
        self.busy_cycles += skipped;
        self.issue_slots += skipped * u64::from(self.num_scheds);
        let inert: [bool; MAX_KERNELS] = std::array::from_fn(|k| self.quota_inert(k));
        if !inert.iter().any(|&b| b) {
            return;
        }
        let mut blocked: PerKernel<u64> = per_kernel(|_| 0);
        for w in self.warps.iter().flatten() {
            let k = w.kernel.index();
            if !inert[k] || w.done || w.at_barrier {
                continue;
            }
            let active =
                self.tbs[w.tb_slot as usize].as_ref().is_some_and(|tb| tb.phase == TbPhase::Active);
            if !active {
                continue;
            }
            let start = from.max(w.ready_at);
            if start < target {
                blocked[k] += target - start;
            }
        }
        for (k, b) in blocked.iter().enumerate() {
            self.quota_blocked[k] += b;
        }
    }

    /// Advances the SM by one cycle, touching only domain-local state.
    ///
    /// Global-memory instructions do not reach the shared hierarchy here:
    /// they are parked in this SM's `IcnPort` and served when the machine
    /// calls [`Sm::drain_icn`] at the end-of-cycle barrier. Because every
    /// read and write stays inside the domain, the machine may tick all SMs
    /// concurrently under `intra_parallel` with bit-identical results.
    pub(crate) fn tick(&mut self, now: Cycle) {
        if !self.transitioning.is_empty() {
            self.process_transitions(now);
        }
        if self.sched_frozen || self.used_threads == 0 {
            return;
        }
        self.busy_cycles += 1;
        self.issue_slots += u64::from(self.num_scheds);

        for sid in 0..self.num_scheds {
            // Gather issuable warps for this scheduler.
            let mut ready = std::mem::take(&mut self.ready_buf);
            ready.clear();
            let mut slot = sid;
            while slot < self.max_warps {
                if self.warp_issuable(slot, now) {
                    let k = self.warps[slot as usize].as_ref().expect("issuable warp").kernel;
                    if self.quota_allows(k.index()) {
                        let age = self.warps[slot as usize].as_ref().expect("warp").age;
                        ready.push((slot, age));
                    } else {
                        self.quota_blocked[k.index()] += 1;
                    }
                }
                slot += self.num_scheds;
            }
            let pick = choose(self.policy, &mut self.scheds[sid as usize], &ready);
            self.ready_buf = ready;
            if let Some(slot) = pick {
                self.issue(slot, now);
                self.issued_total += 1;
            } else if let Some(slot) = self.scavenge(sid, now) {
                // Work-conserving slack reclamation: the slot would idle --
                // no admissible warp is ready -- so a quota-exhausted
                // *non-QoS* warp may use it (QoS kernels stay throttled at
                // their goals; this is the "keep them running" intent of
                // the mid-epoch rule in section 3.4.1). The issue still
                // debits the quota counter, so epoch accounting and the
                // section 3.5 feedback see the true consumption.
                self.issue(slot, now);
                self.issued_total += 1;
            }
        }
    }

    /// Drains this SM's interconnect port into the shared memory system and
    /// applies the responses to the issuing warps' scoreboards.
    ///
    /// The machine calls this once per cycle, after all SM domains have
    /// ticked, iterating SMs in index order — so the shared queues observe
    /// requests in exactly the order the old serial loop produced them
    /// (SM 0's issues in scheduler order, then SM 1's, …), which is the
    /// determinism argument for `intra_parallel` stepping (DESIGN.md §13).
    pub(crate) fn drain_icn(
        &mut self,
        mem: &mut MemSystem,
        now: Cycle,
        prof: &mut crate::telemetry::HostProfiler,
    ) {
        if self.icn.requests.is_empty() {
            return;
        }
        let t0 = prof.begin();
        let mut port = std::mem::take(&mut self.icn);
        for req in port.requests.drain(..) {
            let s = req.miss_start as usize;
            let misses = &port.lines[s..s + req.miss_len as usize];
            let ready_at = mem.serve(req.kernel, misses, u64::from(req.total_lines), now);
            port.responses.push(IcnResponse { warp_slot: req.warp_slot, ready_at });
        }
        port.lines.clear();
        // Host-time attribution (opt-in, free when disabled): the serve loop
        // above is the shared-memory-system phase; the response delivery
        // below is the interconnect-drain phase proper.
        let t1 = prof.lap(crate::telemetry::ProfPhase::MemsysServe, t0);
        for resp in port.responses.drain(..) {
            // A vacated slot means the warp retired on this very instruction
            // and its whole TB completed at issue time; the serial path wrote
            // the completion cycle into a warp that was removed in the same
            // call, so dropping the response is identical. Slots cannot have
            // been *reused* yet: dispatch only happens in the TB scheduler's
            // service pass, outside the tick→drain window.
            if let Some(w) = self.warps[resp.warp_slot as usize].as_mut() {
                w.ready_at = resp.ready_at;
            }
        }
        // Hand the (now empty) buffers back so next cycle reuses the
        // allocations.
        self.icn = port;
        prof.end(crate::telemetry::ProfPhase::IcnDrain, t1);
    }

    /// Steps the SM one cycle *and* drains its port immediately — the
    /// single-SM equivalent of the machine's tick→barrier→drain sequence,
    /// for tests that drive an SM without a `Gpu` around it.
    #[cfg(test)]
    pub(crate) fn step(&mut self, now: Cycle, mem: &mut MemSystem) {
        self.tick(now);
        self.drain_icn(mem, now, &mut crate::telemetry::HostProfiler::new());
    }

    /// Oldest issuable non-QoS warp whose kernel is only blocked by an
    /// exhausted quota; `None` under the Rollover-Time priority gate while
    /// QoS quota remains (strict time multiplexing is that scheme's point).
    fn scavenge(&self, sid: u16, now: Cycle) -> Option<u16> {
        if self.quota_frozen {
            return None;
        }
        if self.priority_block && self.any_qos_quota_positive() {
            return None;
        }
        let mut best: Option<(u16, u64)> = None;
        let mut slot = sid;
        while slot < self.max_warps {
            if self.warp_issuable(slot, now) {
                let w = self.warps[slot as usize].as_ref().expect("issuable warp");
                let k = w.kernel.index();
                if self.gated[k] && !self.is_qos[k] && self.quota[k] <= 0 {
                    match best {
                        Some((_, age)) if age <= w.age => {}
                        _ => best = Some((slot, w.age)),
                    }
                }
            }
            slot += self.num_scheds;
        }
        best.map(|(slot, _)| slot)
    }

    fn issue(&mut self, slot: u16, now: Cycle) {
        let k = self.warps[slot as usize].as_ref().expect("issued warp exists").kernel.index();
        // `Op` is `Copy` and the body length is all the control flow needs,
        // so the hot path avoids cloning the kernel's `Arc`.
        let (op, body_len) = {
            let d = self.descs[k].as_ref().expect("desc");
            let w = self.warps[slot as usize].as_ref().expect("warp");
            (d.body()[w.pc as usize], d.body().len())
        };
        let w = self.warps[slot as usize].as_mut().expect("issued warp exists");

        if w.rem == 0 {
            w.rem = match op {
                Op::Alu { repeat, .. } | Op::Sfu { repeat, .. } => repeat.max(1),
                Op::Mem { .. } | Op::Bar => 1,
            };
        }

        let lanes;
        match op {
            Op::Alu { latency, active_lanes, .. } => {
                lanes = active_lanes;
                w.ready_at = now + Cycle::from(latency.max(1));
                self.alu_thread_insts[k] += u64::from(active_lanes);
            }
            Op::Sfu { latency, active_lanes, .. } => {
                lanes = active_lanes;
                w.ready_at = now + Cycle::from(latency.max(1));
                self.sfu_thread_insts[k] += u64::from(active_lanes);
            }
            Op::Mem { space: MemSpace::Shared, active_lanes, .. } => {
                lanes = active_lanes;
                w.ready_at = now + Cycle::from(self.l1_hit_latency);
                self.smem_accesses[k] += u64::from(active_lanes);
            }
            Op::Mem { space: MemSpace::Global, pattern, active_lanes, .. } => {
                lanes = active_lanes;
                let tb_index =
                    self.tbs[w.tb_slot as usize].as_ref().expect("TB of issuing warp").tb_index.0;
                let mut buf = [0u64; 32];
                let n = w.gen_lines(
                    &pattern,
                    KernelDesc::base_addr(k),
                    self.line_bytes,
                    tb_index,
                    &mut buf,
                );
                // The private L1 is looked up here, inside the domain; only
                // the misses cross the interconnect. The request is enqueued
                // even when every line hit, because the L1-access ledger
                // lives in the memory domain and counts total lines. The
                // warp parks on the PENDING sentinel until the drain writes
                // the real completion cycle later this same cycle.
                let miss_start = self.icn.lines.len() as u32;
                for &addr in &buf[..n] {
                    if self.l1.access(addr) == crate::cache::AccessOutcome::Miss {
                        self.icn.lines.push(addr);
                    }
                }
                let miss_len = self.icn.lines.len() as u32 - miss_start;
                self.icn.requests.push(IcnRequest {
                    kernel: w.kernel,
                    warp_slot: slot,
                    total_lines: n as u32,
                    miss_start,
                    miss_len,
                });
                w.ready_at = icn::PENDING;
            }
            Op::Bar => {
                lanes = crate::WARP_SIZE as u8;
                w.ready_at = now + 1;
            }
        }

        // Retire one dynamic instruction and advance the program counter.
        w.rem -= 1;
        let mut arrived_barrier = false;
        let mut retired = false;
        if w.rem == 0 {
            w.pc += 1;
            if usize::from(w.pc) == body_len {
                w.iter -= 1;
                if w.iter == 0 {
                    w.done = true;
                    retired = true;
                } else {
                    w.pc = 0;
                }
            }
            if matches!(op, Op::Bar) {
                w.at_barrier = true;
                arrived_barrier = true;
            }
        }
        let tb_slot = w.tb_slot;

        self.counters[k].thread_insts += u64::from(lanes);
        self.counters[k].warp_insts += 1;
        if self.gated[k] {
            let before = self.quota[k];
            self.quota[k] -= i64::from(lanes);
            self.quota_debit[k] += i64::from(lanes);
            if before > 0 && self.quota[k] <= 0 {
                self.quota_exhaustions[k] += 1;
                self.record(now, TraceEventKind::QuotaExhausted { kernel: k as u32 });
            }
        }

        if arrived_barrier {
            self.note_barrier_arrival(tb_slot, now);
        }
        if retired {
            self.note_warp_retired(tb_slot, now);
        }
    }
}
