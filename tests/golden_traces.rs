//! Golden-trace regression tests: each canonical scenario's per-epoch
//! IPC/residency/quota telemetry must match its snapshot in `tests/golden/`
//! byte for byte. A failure means simulator behaviour changed; if the change
//! is intentional, regenerate the corpus with
//! `cargo run --release -p harness --bin repro -- golden --bless`.

use fgqos::bench::golden;

#[test]
fn corpus_is_complete() {
    for name in golden::SCENARIOS {
        let path = golden::golden_path(name);
        assert!(path.is_file(), "missing golden file {}", path.display());
    }
}

#[test]
fn smk_pair_matches_golden() {
    golden::check("smk_pair").unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn spart_pair_matches_golden() {
    golden::check("spart_pair").unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn datacenter_trio_matches_golden() {
    golden::check("datacenter_trio").unwrap_or_else(|e| panic!("{e}"));
}

/// The naive per-cycle loop must reproduce the fast-forwarded golden
/// snapshots exactly — the corpus pins one record stream, not one per
/// stepping mode.
#[test]
fn golden_hashes_are_stepping_independent() {
    use fgqos::sim::trace::records_hash;
    for name in golden::SCENARIOS {
        let hash = records_hash(&golden::run_scenario_naive(name));
        let contents =
            std::fs::read_to_string(golden::golden_path(name)).expect("golden file readable");
        assert!(
            contents.contains(&format!("{hash:#018x}")),
            "{name}: naive-loop records_hash {hash:#018x} not present in snapshot"
        );
    }
}

/// Concurrent SM-domain stepping (`intra_parallel`) must also reproduce the
/// golden snapshots exactly — the parallel loop is a stepping strategy, not
/// a behaviour change.
#[test]
fn golden_hashes_hold_under_parallel_stepping() {
    use fgqos::sim::trace::records_hash;
    for name in golden::SCENARIOS {
        let hash = records_hash(&golden::run_scenario_parallel(name));
        let contents =
            std::fs::read_to_string(golden::golden_path(name)).expect("golden file readable");
        assert!(
            contents.contains(&format!("{hash:#018x}")),
            "{name}: parallel-stepping records_hash {hash:#018x} not present in snapshot"
        );
    }
}
