//! Pluggable placement policies: which idle device a queued request lands
//! on.
//!
//! The fleet consults a [`PlacementPolicy`] object for every eligible queued
//! request each tick, handing it a read-only [`PlacementCtx`] describing the
//! candidate devices (free kernel slots, free memory by working-set
//! estimate, class, load history) and fleet-level pressure. The policy only
//! *suggests* a device; the fleet re-validates capacity deterministically,
//! so a buggy policy can degrade placement quality but never oversubscribe
//! a device or corrupt accounting.
//!
//! Built-in policies ([`Placement::Binpack`], [`Placement::Spread`],
//! [`Placement::LeastLoaded`]) resolve directly; [`Placement::Custom`]
//! names resolve through a process-global registry, mirroring how `gpu_ext`
//! registers scheduling policy objects with the simulator.

use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use crate::config::Placement;

/// One candidate device, as the policy sees it. Views are pre-filtered to
/// healthy devices with at least one free kernel slot.
#[derive(Debug, Clone)]
pub struct DeviceView {
    /// Fleet-wide device index.
    pub device: u32,
    /// Index into `FleetConfig::classes`.
    pub class: usize,
    /// Kernel slots still free on this device this tick.
    pub free_slots: usize,
    /// Device memory not yet claimed by working-set estimates, in bytes.
    pub free_mem_bytes: u64,
    /// Requests already assigned to this device this tick (0 ⇒ still idle).
    pub assigned: usize,
    /// Batches this device has started over its lifetime — a load/wear
    /// signal for queue-aware policies.
    pub batches: u64,
}

/// One queued request, as the policy sees it.
#[derive(Debug, Clone, Copy)]
pub struct RequestView {
    /// Fleet-wide request id.
    pub id: usize,
    /// Owning tenant index.
    pub tenant: usize,
    /// Whether the tenant holds a guaranteed (SLO-backed) contract.
    pub guaranteed: bool,
    /// Working-set estimate for the request, in bytes (measured EWMA, not
    /// the declared reservation).
    pub mem_bytes: u64,
    /// Cycles the request has waited since arrival.
    pub queued_for: u64,
}

/// Fleet-level pressure context for one placement round.
#[derive(Debug)]
pub struct PlacementCtx<'a> {
    /// Current fleet cycle.
    pub now: u64,
    /// Requests waiting in the queue (including the one being placed).
    pub queue_depth: usize,
    /// Projected occupancy over the admission horizon, in permille.
    pub load_permille: u64,
    /// Candidate devices, ascending by device index.
    pub devices: &'a [DeviceView],
}

/// A placement policy object. Implementations must be deterministic pure
/// functions of their inputs — the fleet's replay and snapshot/resume
/// guarantees depend on it.
pub trait PlacementPolicy: fmt::Debug + Send + Sync {
    /// The policy's registry name.
    fn name(&self) -> &str;

    /// Chooses a device for `req`, or `None` to leave it queued this tick.
    /// Returning a device that lacks capacity is safe: the fleet
    /// re-validates and treats it as `None`.
    fn assign(&self, req: &RequestView, ctx: &PlacementCtx<'_>) -> Option<u32>;
}

/// First device (ascending index) with room: fills one device before
/// touching the next.
#[derive(Debug)]
pub struct Binpack;

impl PlacementPolicy for Binpack {
    fn name(&self) -> &str {
        "binpack"
    }
    fn assign(&self, req: &RequestView, ctx: &PlacementCtx<'_>) -> Option<u32> {
        ctx.devices
            .iter()
            .find(|d| d.free_slots > 0 && d.free_mem_bytes >= req.mem_bytes)
            .map(|d| d.device)
    }
}

/// Most free kernel slots wins (ties to the lowest index): spreads load and
/// blast radius across the fleet.
#[derive(Debug)]
pub struct Spread;

impl PlacementPolicy for Spread {
    fn name(&self) -> &str {
        "spread"
    }
    fn assign(&self, req: &RequestView, ctx: &PlacementCtx<'_>) -> Option<u32> {
        ctx.devices
            .iter()
            .filter(|d| d.free_slots > 0 && d.free_mem_bytes >= req.mem_bytes)
            .max_by(|a, b| a.free_slots.cmp(&b.free_slots).then(b.device.cmp(&a.device)))
            .map(|d| d.device)
    }
}

/// Queue-aware: fewest requests assigned this tick, then fewest lifetime
/// batches (coldest device), then lowest index.
#[derive(Debug)]
pub struct LeastLoaded;

impl PlacementPolicy for LeastLoaded {
    fn name(&self) -> &str {
        "least-loaded"
    }
    fn assign(&self, req: &RequestView, ctx: &PlacementCtx<'_>) -> Option<u32> {
        ctx.devices
            .iter()
            .filter(|d| d.free_slots > 0 && d.free_mem_bytes >= req.mem_bytes)
            .min_by(|a, b| {
                a.assigned
                    .cmp(&b.assigned)
                    .then(a.batches.cmp(&b.batches))
                    .then(a.device.cmp(&b.device))
            })
            .map(|d| d.device)
    }
}

fn registry() -> &'static Mutex<Vec<Arc<dyn PlacementPolicy>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<dyn PlacementPolicy>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Registers a custom policy under its [`PlacementPolicy::name`].
/// Re-registering a name replaces the earlier object (last write wins), so
/// tests can shadow each other safely.
pub fn register_policy(policy: Arc<dyn PlacementPolicy>) {
    let mut reg = registry().lock().expect("placement registry poisoned");
    reg.retain(|p| p.name() != policy.name());
    reg.push(policy);
}

/// Resolves a [`Placement`] selector to its policy object: built-ins
/// directly, `Custom` through the registry. `None` means the name is
/// unknown ([`crate::FleetConfigError::UnknownPlacement`]).
pub fn resolve(placement: &Placement) -> Option<Arc<dyn PlacementPolicy>> {
    match placement {
        Placement::Binpack => Some(Arc::new(Binpack)),
        Placement::Spread => Some(Arc::new(Spread)),
        Placement::LeastLoaded => Some(Arc::new(LeastLoaded)),
        Placement::Custom(name) => registry()
            .lock()
            .expect("placement registry poisoned")
            .iter()
            .find(|p| p.name() == name.as_str())
            .cloned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views() -> Vec<DeviceView> {
        vec![
            DeviceView {
                device: 0,
                class: 0,
                free_slots: 1,
                free_mem_bytes: 1 << 20,
                assigned: 3,
                batches: 10,
            },
            DeviceView {
                device: 1,
                class: 0,
                free_slots: 4,
                free_mem_bytes: 1 << 30,
                assigned: 0,
                batches: 2,
            },
            DeviceView {
                device: 2,
                class: 1,
                free_slots: 4,
                free_mem_bytes: 1 << 30,
                assigned: 0,
                batches: 1,
            },
        ]
    }

    fn req(mem: u64) -> RequestView {
        RequestView { id: 0, tenant: 0, guaranteed: false, mem_bytes: mem, queued_for: 0 }
    }

    fn ctx(devices: &[DeviceView]) -> PlacementCtx<'_> {
        PlacementCtx { now: 0, queue_depth: 1, load_permille: 500, devices }
    }

    #[test]
    fn builtins_pick_by_their_own_criterion() {
        let v = views();
        assert_eq!(Binpack.assign(&req(64), &ctx(&v)), Some(0), "binpack fills device 0 first");
        assert_eq!(
            Binpack.assign(&req(2 << 20), &ctx(&v)),
            Some(1),
            "binpack skips devices without memory"
        );
        assert_eq!(Spread.assign(&req(64), &ctx(&v)), Some(1), "spread wants most free slots");
        assert_eq!(
            LeastLoaded.assign(&req(64), &ctx(&v)),
            Some(2),
            "least-loaded breaks the tie toward the coldest device"
        );
        assert_eq!(Spread.assign(&req(u64::MAX), &ctx(&v)), None, "nothing fits");
    }

    #[test]
    fn custom_policies_register_and_resolve() {
        #[derive(Debug)]
        struct PinHighest;
        impl PlacementPolicy for PinHighest {
            fn name(&self) -> &str {
                "pin-highest"
            }
            fn assign(&self, _req: &RequestView, ctx: &PlacementCtx<'_>) -> Option<u32> {
                ctx.devices.last().map(|d| d.device)
            }
        }

        assert!(resolve(&Placement::Custom("pin-highest".into())).is_none());
        register_policy(Arc::new(PinHighest));
        let policy = resolve(&Placement::Custom("pin-highest".into())).expect("registered");
        let v = views();
        assert_eq!(policy.assign(&req(64), &ctx(&v)), Some(2));
        assert!(resolve(&Placement::Binpack).is_some());
        assert!(resolve(&Placement::LeastLoaded).is_some());
    }
}
